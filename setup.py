"""Setup shim.

The execution environment has no ``wheel`` package (offline), so PEP 517
editable installs cannot build a wheel. This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``python setup.py develop``) work with legacy setuptools.
"""

from setuptools import setup

setup(
    # duplicated from [project.scripts]: setuptools 65's beta pyproject
    # support does not materialize console scripts on `setup.py develop`
    entry_points={"console_scripts": ["repro-mining = repro.cli:main"]},
)
