#!/usr/bin/env python3
"""Dissecting the cnhv.co short-link service (Section 4.1).

Enumerates a calibrated short-link population, scrapes creator tokens and
hash requirements from the landing pages, *actually resolves* a sample of
links by computing (scaled) CryptoNight hashes — reverting Coinhive's XOR
blob obfuscation on the way — and reports the paper's Figure 3/4 and
Table 4/5 views.

Run:  python examples/shortlink_study.py
"""

from collections import Counter

from repro.analysis.reporting import render_cdf_points, render_table
from repro.analysis.shortlink import ShortLinkStudy
from repro.coinhive.resolver import LinkResolver, duration_seconds
from repro.internet.shortlinks import build_shortlink_population


def main() -> None:
    population = build_shortlink_population(seed=13, scale=0.003)
    service = population.service
    print(f"enumerated {len(service)} active short links "
          f"(IDs a..{service.links[-1].link_id})")

    # --- scan phase: no hashing needed, just landing-page scraping ---
    resolver = LinkResolver(shortlinks=service, hash_scale=2048)
    scanned = resolver.scan()
    print(f"scanned {len(scanned)} landing pages for (token, goal) pairs")

    # --- Figure 3: links per token ---
    study = ShortLinkStudy(population=population, resolver=resolver, sample_per_top_user=50)
    ranks = study.links_per_token()
    print(render_table(
        ["metric", "value"],
        [
            ["distinct tokens", len(ranks.counts_by_rank)],
            ["top-1 creator share", f"{ranks.top1_share:.1%} (paper: 1/3)"],
            ["top-10 creators share", f"{ranks.topn_share(10):.1%} (paper: 85%)"],
        ],
        title="\nFigure 3: heavy-user concentration",
    ))

    # --- Figure 4: hash requirements and durations ---
    requirements = study.hash_requirements()
    print("\nFigure 4: required hashes (unbiased), quantiles:")
    print(render_cdf_points(sorted(requirements.user_bias_removed)))
    for hashes in (512, 1024, 65536):
        print(f"  {hashes:>6} hashes -> {duration_seconds(hashes):6.0f}s at 20 H/s "
              f"(≤ this: {requirements.share_resolvable_within(hashes):.0%} of links)")

    # --- Tables 4 + 5: resolve destinations ---
    destinations = study.destinations()
    rows = [
        [host, f"{count / destinations.top_user_sample_size:.1%}"]
        for host, count in destinations.top_user_domains.most_common(8)
    ]
    print(render_table(["destination", "freq"], rows,
                       title="\nTable 4: top-10 creators' destinations"))
    rows = [[cat, count] for cat, count in destinations.unbiased_categories.most_common(8)]
    print(render_table(["category", "count"], rows,
                       title="\nTable 5: categories of the unbiased dataset"))
    print(f"\nresolver computed {destinations.hashes_computed} physical hashes "
          f"(scale 1:{resolver.hash_scale}, as the paper computed 61.5M real ones)")


if __name__ == "__main__":
    main()
