#!/usr/bin/env python3
"""Quickstart: detect a browser miner the way the paper does.

Builds a tiny synthetic web containing one Coinhive-mining site and one
clean site, crawls both with the instrumented headless browser, and runs
the two detectors — the NoCoin block list and the WebAssembly
fingerprint — on the captures.

Run:  python examples/quickstart.py
"""

from repro.blockchain.chain import Blockchain
from repro.blockchain.difficulty import DifficultyAdjuster
from repro.blockchain.hashing import FAST_PARAMS
from repro.coinhive.miner_script import CoinhiveMinerKit
from repro.coinhive.service import CoinhiveService
from repro.core.detector import PageDetector
from repro.core.features import extract_features
from repro.core.signatures import build_reference_database, wasm_signature
from repro.web.browser import HeadlessBrowser
from repro.web.http import SyntheticWeb
from repro.web.scripts import inline_key


def main() -> None:
    # 1. A Monero-like chain and the Coinhive service on top of it.
    chain = Blockchain(
        pow_params=FAST_PARAMS,
        adjuster=DifficultyAdjuster(window=30, cut=2, initial_difficulty=100_000),
        genesis_timestamp=1_525_000_000,
    )
    coinhive = CoinhiveService(chain=chain)

    # 2. A synthetic web: one mining site (official Coinhive embed), one clean.
    web = SyntheticWeb()
    kit = CoinhiveMinerKit(service=coinhive, web=web)
    kit.install()
    owner = coinhive.register_user("shady-streaming.com")
    tags = kit.official_tags(owner.token, endpoint_index=5)
    html = "<html><head>{}</head><body>Watch movies free!</body></html>".format(
        "".join(tag.to_element().serialize() for tag in tags)
    )
    web.register_page("http://www.shady-streaming.com/", html.encode())
    web.register_page(
        "http://www.knitting-blog.com/",
        b"<html><head></head><body>Scarf patterns</body></html>",
    )
    behaviors = {
        (tag.src or inline_key(tag.inline)): tag.behavior
        for tag in tags
        if tag.behavior is not None
    }

    # 3. Crawl with the instrumented browser (Section 3.2 methodology).
    browser = HeadlessBrowser(web, behavior_registry=behaviors)
    detector = PageDetector()
    detector.classifier.database = build_reference_database()

    for domain in ("shady-streaming.com", "knitting-blog.com"):
        page = browser.visit(f"http://www.{domain}/")
        report = detector.detect_page(domain, page)
        print(f"\n== {domain} ==")
        print(f"  wasm modules dumped : {len(page.wasm_dumps)}")
        print(f"  websocket endpoints : {sorted(page.websocket_urls())}")
        print(f"  NoCoin list hit     : {report.nocoin_hit} {report.nocoin_rule_labels}")
        if report.is_miner:
            miner = report.miner
            print(f"  MINER detected      : family={miner.family} via {miner.method}")
            features = extract_features(page.wasm_dumps[0])
            print(f"  wasm signature      : {wasm_signature(page.wasm_dumps[0])[:16]}…")
            print(
                f"  instruction mix     : xor={features.xor_count} shifts={features.shift_count}"
                f" rotates={features.rotate_count} loads={features.load_count}"
                f" memory={features.memory_pages} pages"
            )
            print(f"  name hints          : {features.name_hints[:3]}")
        else:
            print("  no miner on this page")


if __name__ == "__main__":
    main()
