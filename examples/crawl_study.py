#!/usr/bin/env python3
"""Prevalence study: a scaled-down rerun of the paper's Section 3.

Generates calibrated Alexa and .org populations (at 20% of the paper's
detection counts to keep this example snappy), runs both measurement
pipelines — the zgrab/NoCoin pass (Figure 2) and the instrumented Chrome
pass (Tables 1 and 2) — and prints paper-style tables.

Run:  python examples/crawl_study.py
"""

from repro.analysis.crawl import ChromeCampaign, ZgrabCampaign
from repro.analysis.reporting import render_table
from repro.internet.population import build_population


def main() -> None:
    for dataset in ("alexa", "org"):
        population = build_population(dataset, seed=7, scale=0.2)
        print(f"\n######## dataset: {dataset} "
              f"({len(population.sites)} crawled sites, scale 0.2) ########")

        # --- Section 3.1: zgrab + NoCoin (Figure 2) ---
        scans = ZgrabCampaign(population=population).both_scans()
        rows = [
            [scan.scan_date, scan.nocoin_domains,
             ", ".join(f"{k} {v:.0%}" for k, v in list(scan.script_shares.items())[:4])]
            for scan in scans
        ]
        print(render_table(["scan", "NoCoin domains", "top script shares"], rows,
                           title="\nFigure 2 style: NoCoin hits per scan"))

        # --- Section 3.2: Chrome crawl (Tables 1 + 2) ---
        result = ChromeCampaign(population=population).run()
        rows = [[family, count] for family, count in result.signature_counts.most_common(5)]
        rows.append(["Total WebAssembly", result.total_wasm_sites])
        print(render_table(["classification", "count"], rows,
                           title="\nTable 1 style: top Wasm signatures"))

        tab = result.cross_tab
        print(render_table(
            ["metric", "value"],
            [
                ["NoCoin hits (post-JS HTML)", tab.nocoin_hits],
                ["…of which actually mining", tab.nocoin_hits_with_miner_wasm],
                ["Wasm-signature miners", tab.wasm_miner_hits],
                ["missed by NoCoin", f"{tab.miners_missed_by_nocoin} ({tab.missed_fraction:.0%})"],
                ["signature advantage", f"{tab.detection_factor:.1f}x"],
            ],
            title="\nTable 2 style: detector comparison",
        ))


if __name__ == "__main__":
    main()
