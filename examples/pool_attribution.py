#!/usr/bin/env python3
"""Associating Monero blocks with the Coinhive pool (Section 4.2).

Two stages, exactly as the paper runs them:

1. **Live polling** — join the pool as a miner, poll all 32 endpoints for
   PoW inputs every 500 ms, revert the XOR obfuscation, and cluster
   inputs by previous-block pointer (at most 8 per endpoint / 128 per
   block ⇒ 16 backends).
2. **Month-scale observation** — simulate two weeks of the Monero network
   with Coinhive contributing ~1.2% of blocks, attribute blocks by Merkle
   root matching, and derive hash rate, user counts, and revenue.

Run:  python examples/pool_attribution.py
"""

from repro.analysis.economics import EconomicsReport, user_count_bracket
from repro.analysis.network import NetworkSimConfig, simulate_network
from repro.analysis.reporting import render_day_hour_heatmap, render_table
from repro.blockchain.chain import Blockchain
from repro.blockchain.difficulty import DifficultyAdjuster
from repro.blockchain.hashing import FAST_PARAMS
from repro.coinhive.service import CoinhiveService
from repro.core.pool_association import PoolObserver
from repro.sim.clock import utc_timestamp
from repro.sim.events import EventLoop


def stage1_polling() -> None:
    chain = Blockchain(
        pow_params=FAST_PARAMS,
        adjuster=DifficultyAdjuster(window=30, cut=2, initial_difficulty=10**9),
        genesis_timestamp=1_526_000_000,
    )
    service = CoinhiveService(chain=chain)
    observer = PoolObserver(
        fetch_input=service.pow_input_for_endpoint,
        endpoints=service.endpoints(),
        poll_interval=0.5,
        detransform=service.obfuscator.revert,
    )
    loop = EventLoop()
    observer.run(loop, duration=300.0)
    print("stage 1 — endpoint polling (500 ms, 5 minutes simulated):")
    print(f"  polls: {observer.polls}, distinct PoW inputs per endpoint ≤ "
          f"{observer.max_inputs_per_endpoint()} (paper: 8)")
    print(f"  distinct PoW inputs per block ≤ {observer.max_inputs_per_block()} "
          f"(paper: 128 ⇒ 16 backends behind 32 endpoints)")


def stage2_attribution() -> None:
    config = NetworkSimConfig(
        start=utc_timestamp(2018, 4, 26),
        end=utc_timestamp(2018, 5, 10),
        seed=99,
    )
    observation = simulate_network(config)
    days = (config.end - config.start) / 86400
    attributed = observation.attributed

    print(f"\nstage 2 — {days:.0f} simulated days, {observation.chain.height} blocks on chain")
    print(f"  blocks attributed to Coinhive : {len(attributed)}")
    print(f"  attribution recall vs truth   : {observation.attribution_recall():.1%}")
    print(f"  share of all blocks           : {observation.overall_share():.2%} (paper: 1.18%)")

    median_difficulty = observation.chain.median_difficulty(last=5000)
    pool_rate = observation.overall_share() * median_difficulty / 120
    economics = EconomicsReport.from_attributed(attributed)
    high, low = user_count_bracket(pool_rate)
    print(render_table(
        ["quantity", "value", "paper"],
        [
            ["median difficulty", f"{median_difficulty / 1e9:.1f}G", "55.4G"],
            ["network hash rate", f"{median_difficulty / 120 / 1e6:.0f} MH/s", "462 MH/s"],
            ["Coinhive hash rate", f"{pool_rate / 1e6:.1f} MH/s", "5.5 MH/s"],
            ["users @20–100 H/s", f"{low:,.0f}–{high:,.0f}", "58K–292K"],
            ["XMR mined (window)", f"{economics.xmr_mined:.0f}", "~1271 per 4 weeks"],
            ["USD @120/XMR", f"{economics.gross_usd:,.0f}", ""],
        ],
        title="\nderived economics",
    ))

    print("\n" + render_day_hour_heatmap(
        observation.day_hour_matrix(),
        title="Figure 5 style: attributed blocks per (day, hour)  [.=0, +=10+]",
    ))


if __name__ == "__main__":
    stage1_polling()
    stage2_attribution()
