#!/usr/bin/env python3
"""Running captured miner Wasm in the bundled interpreter.

Goes one step beyond the paper: instead of only *reading* a dumped module
(static signature + instruction counts), execute it and profile what the
code actually does — then show why that matters, by padding a miner with
dead float code that fools the static feature classifier but not the
dynamic one.

Run:  python examples/dynamic_analysis.py
"""

from repro.core.classifier import MinerClassifier
from repro.core.dynamic import DynamicMinerDetector, pad_with_dead_code, profile_execution
from repro.core.features import extract_features
from repro.core.signatures import SignatureDatabase
from repro.wasm.builder import ModuleBlueprint, WasmCorpusBuilder
from repro.wasm.decoder import decode_module
from repro.wasm.encoder import encode_module
from repro.wasm.interp import Instance


def show(label: str, wasm: bytes) -> None:
    static = extract_features(wasm)
    dynamic = profile_execution(wasm)
    print(f"\n== {label} ==")
    print(f"  static : instrs={static.total_instructions:5d}  "
          f"bitop={static.bitop_density:.3f}  float={static.float_density:.3f}")
    print(f"  dynamic: executed={dynamic.executed:5d}  "
          f"bitop={dynamic.xor_density + dynamic.shift_density:.3f}  "
          f"float={dynamic.float_density:.3f}  rotates={dynamic.rotate_count}")
    static_clf = MinerClassifier(database=SignatureDatabase())  # no signature help
    dyn_clf = DynamicMinerDetector()
    print(f"  static instruction-mix verdict : "
          f"{'MINER' if static_clf.classify_wasm(wasm).is_miner else 'benign'}")
    print(f"  dynamic executed-mix verdict   : "
          f"{'MINER' if dyn_clf.is_miner(wasm) else 'benign'}")


def main() -> None:
    corpus = WasmCorpusBuilder(root_seed=31337)  # signatures unknown to any DB
    miner = corpus.build(ModuleBlueprint("coinhive", 0))

    # 1. run the mining kernels directly
    module = decode_module(miner)
    instance = Instance(module)
    for export in (e.name for e in module.exports if e.kind == 0):
        result = instance.invoke(export, 16, 7)
        print(f"invoked {export}(16, 7) -> {result[0]:#010x}")
    print(f"scratchpad bytes touched across kernels: "
          f"{sum(1 for b in instance.memory if b)}")

    # 2. strip the telltale names so only instruction mixes matter
    module.func_names = {}
    module.module_name = None
    module.exports = [type(e)(f"f{i}", e.kind, e.index) for i, e in enumerate(module.exports)]
    stripped = encode_module(module)
    show("stripped miner", stripped)

    # 3. the evasion: pad with float-heavy dead code
    padded = pad_with_dead_code(stripped, float_functions=8)
    show("stripped + dead-code padded miner", padded)

    # 4. control: a real codec module
    show("benign video codec", corpus.build(ModuleBlueprint("video-codec", 0)))


if __name__ == "__main__":
    main()
