"""Tests for the synthetic Wasm corpus."""

import pytest

from repro.core.features import extract_features
from repro.wasm.builder import (
    BENIGN_FAMILIES,
    FAMILY_PROFILES,
    MINER_FAMILIES,
    ModuleBlueprint,
    WasmCorpusBuilder,
    all_blueprints,
)
from repro.wasm.decoder import decode_module
from repro.wasm.validator import validate_module


class TestCorpusShape:
    def test_corpus_size_matches_paper_scale(self):
        # the paper catalogued ~160 distinct assemblies
        assert 150 <= len(all_blueprints()) <= 220

    def test_both_kinds_present(self):
        assert len(MINER_FAMILIES) >= 8
        assert len(BENIGN_FAMILIES) >= 4

    def test_coinhive_has_most_variants(self):
        counts = {name: profile.num_variants for name, profile in FAMILY_PROFILES.items()}
        assert max(counts, key=counts.get) == "coinhive"


class TestDeterminism:
    def test_same_blueprint_same_bytes(self):
        a = WasmCorpusBuilder().build(ModuleBlueprint("coinhive", 3))
        b = WasmCorpusBuilder().build(ModuleBlueprint("coinhive", 3))
        assert a == b

    def test_different_variants_differ(self):
        builder = WasmCorpusBuilder()
        assert builder.build(ModuleBlueprint("coinhive", 0)) != builder.build(
            ModuleBlueprint("coinhive", 1)
        )

    def test_cache_returns_same_object(self):
        builder = WasmCorpusBuilder()
        blueprint = ModuleBlueprint("cryptoloot", 2)
        assert builder.build(blueprint) is builder.build(blueprint)

    def test_different_seed_different_bytes(self):
        a = WasmCorpusBuilder(root_seed=1).build(ModuleBlueprint("coinhive", 0))
        b = WasmCorpusBuilder(root_seed=2).build(ModuleBlueprint("coinhive", 0))
        assert a != b


class TestStructure:
    @pytest.fixture(scope="class")
    def builder(self):
        return WasmCorpusBuilder()

    def test_all_modules_validate(self, builder):
        for blueprint in all_blueprints():
            module = decode_module(builder.build(blueprint))
            validate_module(module)

    def test_miner_memory_is_scratchpad_sized(self, builder):
        module = decode_module(builder.build(ModuleBlueprint("coinhive", 0)))
        assert module.memories[0].minimum >= 32  # ≥2 MiB of pages

    def test_benign_math_memory_small(self, builder):
        module = decode_module(builder.build(ModuleBlueprint("math-lib", 0)))
        assert module.memories[0].minimum < 16

    def test_miner_exports_present(self, builder):
        module = decode_module(builder.build(ModuleBlueprint("coinhive", 0)))
        assert "_cryptonight_hash" in module.exported_func_names()

    def test_stripped_family_has_no_name_section(self, builder):
        module = decode_module(builder.build(ModuleBlueprint("notgiven688", 0)))
        assert module.func_names == {}


class TestFeatureSeparation:
    """The corpus must separate along the paper's features."""

    @pytest.fixture(scope="class")
    def builder(self):
        return WasmCorpusBuilder()

    def test_miners_are_bitop_dense(self, builder):
        for family in MINER_FAMILIES:
            features = extract_features(builder.build(ModuleBlueprint(family, 0)))
            assert features.bitop_density > 0.09, family
            assert features.rotate_count >= 4, family

    def test_benign_float_families_are_not(self, builder):
        for family in ("game-engine", "math-lib"):
            features = extract_features(builder.build(ModuleBlueprint(family, 0)))
            assert features.bitop_density < 0.06, family
            assert features.float_density > 0.1, family

    def test_compression_is_a_hard_negative_but_separable(self, builder):
        """zlib-style code has xor/shift but no big memory and few rotates."""
        variants = [
            extract_features(builder.build(ModuleBlueprint("compression", v)))
            for v in range(4)
        ]
        avg_xor = sum(f.xor_density for f in variants) / len(variants)
        assert avg_xor > 0.015                                # real bit traffic (CRC32)…
        assert all(f.rotate_count == 0 for f in variants)     # …but no rotates
        assert all(f.memory_pages < 16 for f in variants)     # and no 2 MB scratchpad

    def test_miners_have_integer_only_kernels(self, builder):
        for family in MINER_FAMILIES:
            features = extract_features(builder.build(ModuleBlueprint(family, 1)))
            assert features.float_density < 0.02, family
