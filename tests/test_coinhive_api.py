"""Tests for the owner-facing Coinhive API."""

import pytest

from repro.blockchain.transactions import ATOMIC_PER_XMR
from repro.coinhive.api import CoinhiveApi, MIN_PAYOUT_ATOMIC
from repro.coinhive.captcha import CaptchaService


@pytest.fixture()
def api(coinhive_service):
    return CoinhiveApi(service=coinhive_service)


@pytest.fixture()
def owner(coinhive_service):
    return coinhive_service.register_user("mysite.com")


class TestBalance:
    def test_unknown_token_rejected(self, api):
        response = api.user_balance("NOPE")
        assert not response.success
        assert response.error == "invalid_site_key"

    def test_fresh_account_zero(self, api, owner):
        response = api.user_balance(owner.token)
        assert response.success
        assert response.data["balance"] == 0
        assert not response.data["withdrawable"]

    def test_balance_reflects_payout_ledger(self, api, owner, coinhive_service):
        coinhive_service.pool.payouts.balances_atomic[owner.token] = 2 * ATOMIC_PER_XMR
        response = api.user_balance(owner.token)
        assert response.data["balance_xmr"] == pytest.approx(2.0)
        assert response.data["withdrawable"]


class TestStats:
    def test_site_stats_track_shares(self, api, owner, coinhive_service):
        coinhive_service.pool.shares.record(owner.token, 16)
        coinhive_service.pool.shares.record(owner.token, 16)
        response = api.site_stats(owner.token)
        assert response.data["shares_total"] == 2
        assert response.data["hashes_total"] == 32

    def test_pool_stats_public(self, api):
        response = api.pool_stats()
        assert response.success
        assert response.data["fee_percent"] == 30
        assert response.data["endpoints"] == 32


class TestWithdraw:
    def test_below_minimum_rejected(self, api, owner, coinhive_service):
        coinhive_service.pool.payouts.balances_atomic[owner.token] = MIN_PAYOUT_ATOMIC - 1
        response = api.withdraw(owner.token, "4ADDRESS")
        assert not response.success
        assert response.error == "balance_too_low"

    def test_successful_withdrawal_zeroes_balance(self, api, owner, coinhive_service):
        coinhive_service.pool.payouts.balances_atomic[owner.token] = MIN_PAYOUT_ATOMIC
        response = api.withdraw(owner.token, "4ADDRESS")
        assert response.success
        assert response.data["amount"] == MIN_PAYOUT_ATOMIC
        assert api.user_balance(owner.token).data["balance"] == 0
        assert api.payouts_issued == [(owner.token, "4ADDRESS", MIN_PAYOUT_ATOMIC)]

    def test_empty_address_rejected(self, api, owner):
        assert not api.withdraw(owner.token, "").success


class TestTokenVerify:
    def test_captcha_verification_flow(self, api):
        captcha = CaptchaService()
        challenge = captcha.create("SITE", 10, now=0.0)
        token = captcha.submit_hashes(challenge.challenge_id, 10, now=1.0)
        assert api.token_verify(captcha, token, now=2.0).success
        # single use: the second verify fails
        assert not api.token_verify(captcha, token, now=3.0).success

    def test_bogus_token(self, api):
        response = api.token_verify(CaptchaService(), "junk", now=0.0)
        assert not response.success
        assert response.data["verified"] is False


class TestEnvelope:
    def test_to_dict_shape(self, api, owner):
        payload = api.user_balance(owner.token).to_dict()
        assert payload["success"] is True
        assert "balance" in payload
