"""CLI surface of the attribution graph: ``repro obs graph`` family.

Pins the PR's acceptance criteria end to end: twin same-seed runs write
byte-identical ``graph.jsonl`` regardless of shard count or executor,
``path <miner> --to includer`` names the campaign includer that seeded
the site, and the ``query --fail-on`` gates reuse the ledger-wide exit
contract (0 ok / 1 violated / 2 bad expression).
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.obs.clock import TickClock, use_clock

CRAWL = [
    "--seed", "11", "crawl", "--dataset", "alexa", "--scale", "0.05",
    "--shards", "2", "--executor", "serial",
]


def _crawl(run_dir, extra=()):
    with use_clock(TickClock()):
        return main([*CRAWL, "--run-dir", str(run_dir), *extra])


@pytest.fixture(scope="module")
def graph_run(tmp_path_factory):
    run = tmp_path_factory.mktemp("graph") / "run"
    assert _crawl(run) == 0
    return run


def _loaded(graph_run):
    from repro.graph.model import read_graph_jsonl

    return read_graph_jsonl(graph_run / "graph.jsonl")


class TestGraphArtifact:
    def test_twin_runs_byte_identical_across_shards_and_executors(
        self, graph_run, tmp_path
    ):
        twin = tmp_path / "twin"
        assert _crawl(twin, extra=["--shards", "3", "--executor", "thread",
                                   "--workers", "2"]) == 0
        assert (twin / "graph.jsonl").read_bytes() == (
            graph_run / "graph.jsonl"
        ).read_bytes()

    def test_artifact_is_listed_and_counted(self, graph_run):
        import json

        manifest = json.loads((graph_run / "manifest.json").read_text())
        assert "graph.jsonl" in manifest["artifacts"]
        header = json.loads(
            (graph_run / "graph.jsonl").read_text().splitlines()[0]
        )
        graph = _loaded(graph_run)
        assert header["nodes"] == len(graph.nodes)
        assert header["edges"] == len(graph.edges)

    def test_load_run_exposes_the_graph(self, graph_run):
        from repro.obs.ledger import load_run

        artifacts = load_run(graph_run)
        assert artifacts.graph is not None
        assert artifacts.graph.nodes_of_kind("includer")


def _campaign_seeded_miner(graph):
    """A miner domain reached by a campaign includer's ``includes`` edge."""
    for (kind, src, dst), _attrs in sorted(graph.edges.items()):
        if kind != "includes":
            continue
        if "campaign" not in graph.nodes[src][1].get("kind", ()):
            continue
        if "yes" in graph.nodes[dst][1].get("miner", ()):
            return dst, src
    raise AssertionError("population seeded no campaign-included miner")


class TestGraphPath:
    def test_path_names_the_seeding_includer(self, graph_run, capsys):
        graph = _loaded(graph_run)
        miner, includer = _campaign_seeded_miner(graph)
        assert main([
            "obs", "graph", "path", str(graph_run), miner, "--to", "includer",
        ]) == 0
        out = capsys.readouterr().out
        # the nearest includer is the campaign seeder, never the benign
        # infra shared across a fifth of the population
        assert includer in out
        assert "kind=campaign" in out
        assert "url=" in out  # the inclusion evidence is cited

    def test_bare_domain_name_resolves(self, graph_run, capsys):
        graph = _loaded(graph_run)
        miner, _ = _campaign_seeded_miner(graph)
        # strip both the kind prefix and the dataset qualifier: the bare
        # site name a user would paste must still resolve
        bare = miner.split(":", 1)[1].split("/", 1)[1]
        assert main([
            "obs", "graph", "path", str(graph_run), bare, "--to", "family",
        ]) == 0
        assert "family:" in capsys.readouterr().out

    def test_unreachable_target_exits_1(self, graph_run, capsys):
        graph = _loaded(graph_run)
        miner, _ = _campaign_seeded_miner(graph)
        # crawl runs have no service plane, hence no tenant nodes
        assert main([
            "obs", "graph", "path", str(graph_run), miner, "--to", "tenant",
        ]) == 1
        assert "no path" in capsys.readouterr().out

    def test_unknown_kind_exits_2(self, graph_run, capsys):
        graph = _loaded(graph_run)
        miner, _ = _campaign_seeded_miner(graph)
        assert main([
            "obs", "graph", "path", str(graph_run), miner, "--to", "nonsense",
        ]) == 2

    def test_unknown_node_lists_near_misses(self, graph_run, capsys):
        assert main([
            "obs", "graph", "neighbors", str(graph_run), "domain:nope.example",
        ]) == 1
        assert "no graph node" in capsys.readouterr().out


class TestGraphNeighbors:
    def test_miner_neighborhood_shows_provenance(self, graph_run, capsys):
        graph = _loaded(graph_run)
        miner, includer = _campaign_seeded_miner(graph)
        assert main(["obs", "graph", "neighbors", str(graph_run), miner]) == 0
        out = capsys.readouterr().out
        assert includer in out
        assert "attributed-to" in out


class TestGraphClusters:
    def test_components_are_per_campaign(self, graph_run, capsys):
        assert main(["obs", "graph", "clusters", str(graph_run)]) == 0
        out = capsys.readouterr().out
        assert "campaign clusters" in out
        assert "-seeder" in out

    def test_benign_includers_never_define_clusters(self, graph_run):
        from repro.graph.query import clusters

        graph = _loaded(graph_run)
        benign = {
            nid
            for nid, (kind, attrs) in graph.nodes.items()
            if kind == "includer" and "benign" in attrs.get("kind", ())
        }
        assert benign  # the trio exists at this scale
        clustered = {n for component in clusters(graph) for n in component.nodes}
        assert not benign & clustered


class TestGraphQuery:
    def test_prints_sorted_metrics(self, graph_run, capsys):
        assert main(["obs", "graph", "query", str(graph_run)]) == 0
        out = capsys.readouterr().out
        assert "clusters.count = " in out
        assert "edges.includes = " in out

    def test_gate_passes(self, graph_run):
        assert main([
            "obs", "graph", "query", str(graph_run),
            "--fail-on", "edges.includes<1",
        ]) == 0

    def test_inverted_gate_trips_exit_1(self, graph_run, capsys):
        assert main([
            "obs", "graph", "query", str(graph_run),
            "--fail-on", "edges.includes>=1",
        ]) == 1
        assert "VIOLATED" in capsys.readouterr().out

    def test_unknown_metric_exits_2(self, graph_run, capsys):
        assert main([
            "obs", "graph", "query", str(graph_run),
            "--fail-on", "clusters.bogus>1",
        ]) == 2
        assert "available" in capsys.readouterr().out

    def test_relative_gate_exits_2(self, graph_run, capsys):
        assert main([
            "obs", "graph", "query", str(graph_run),
            "--fail-on", "edges.total>1.5x",
        ]) == 2
        assert "absolute" in capsys.readouterr().out


class TestExplainHint:
    def test_explain_cites_graph_nodes_and_hint(self, graph_run, capsys):
        graph = _loaded(graph_run)
        miner, _ = _campaign_seeded_miner(graph)
        qualified = miner.split(":", 1)[1]  # alexa/<domain>
        domain = qualified.split("/", 1)[1]
        assert main(["obs", "explain", str(graph_run), domain]) == 0
        out = capsys.readouterr().out
        assert "graph node: " in out
        assert f"repro obs graph neighbors {graph_run} domain:{qualified}" in out


class TestScorecardClusters:
    def test_scorecard_shows_per_includer_rows_and_gates(self, graph_run, capsys):
        assert main(["obs", "scorecard", str(graph_run)]) == 0
        out = capsys.readouterr().out
        assert "per-includer-cluster detection" in out
        assert "-seeder" in out

    def test_cluster_gate_is_addressable(self, graph_run, capsys):
        import re

        from repro.graph.query import clusters

        graph = _loaded(graph_run)
        component = next(c for c in clusters(graph) if c.includers)
        # the gate grammar's target charset is [A-Za-z0-9_.-]; the
        # scorecard folds anything else (dataset slashes, "+") to "-"
        label = re.sub(r"[^A-Za-z0-9_.\-]", "-", component.label)
        assert main([
            "obs", "scorecard", str(graph_run),
            "--fail-on", f"cluster.{label}.miner_share<0.01",
        ]) == 0
        assert f"cluster.{label}.miner_share" in capsys.readouterr().out
