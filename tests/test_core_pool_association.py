"""Tests for the pool-association methodology (Section 4.2)."""

import pytest

from repro.blockchain.block import Block
from repro.core.pool_association import (
    BlockAttributor,
    NetworkEstimator,
    PoolObserver,
)
from repro.pool.jobs import build_template
from repro.sim.events import EventLoop


class TestPoolObserver:
    def test_polling_collects_and_clusters(self, coinhive_service):
        observer = PoolObserver(
            fetch_input=coinhive_service.pow_input_for_endpoint,
            endpoints=coinhive_service.endpoints(),
            detransform=coinhive_service.obfuscator.revert,
        )
        observer.poll_once(now=0.0)
        assert len(observer.observations) == 32
        tip = coinhive_service.chain.tip.block_id()
        assert set(observer.clusters) == {tip}
        # 16 backends with distinct extra nonces → 16 distinct roots
        assert len(observer.clusters[tip]) == 16

    def test_without_detransform_prev_pointer_is_garbage(self, coinhive_service):
        """The XOR countermeasure: a naive observer clusters on corrupted
        prev-ids that never match the chain."""
        observer = PoolObserver(
            fetch_input=coinhive_service.pow_input_for_endpoint,
            endpoints=coinhive_service.endpoints()[:4],
        )
        observer.poll_once(now=0.0)
        tip = coinhive_service.chain.tip.block_id()
        assert tip not in observer.clusters

    def test_failures_counted_not_raised(self, coinhive_service):
        coinhive_service.add_outage(0.0, 100.0)
        observer = PoolObserver(
            fetch_input=coinhive_service.pow_input_for_endpoint,
            endpoints=coinhive_service.endpoints()[:5],
        )
        observer.poll_once(now=50.0)
        assert observer.failures == 5
        assert observer.observations == []

    def test_run_polls_at_interval(self, coinhive_service):
        observer = PoolObserver(
            fetch_input=coinhive_service.pow_input_for_endpoint,
            endpoints=coinhive_service.endpoints()[:2],
            poll_interval=0.5,
            detransform=coinhive_service.obfuscator.revert,
        )
        loop = EventLoop()
        observer.run(loop, duration=5.0)
        # 11 ticks (t=0 .. t=5) × 2 endpoints
        assert observer.polls == 22

    def test_paper_bounds_8_and_128(self, coinhive_service):
        """Per endpoint ≤ 8 PoW inputs per block; ≤ 128 across all 32."""
        observer = PoolObserver(
            fetch_input=coinhive_service.pow_input_for_endpoint,
            endpoints=coinhive_service.endpoints(),
            poll_interval=5.0,
            detransform=coinhive_service.obfuscator.revert,
        )
        loop = EventLoop()
        observer.run(loop, duration=600.0)  # 5 block intervals of polling
        assert observer.max_inputs_per_endpoint() <= 8
        assert observer.max_inputs_per_block() <= 128
        assert observer.max_inputs_per_block() > 16  # refreshes really happen


class TestBlockAttributor:
    def test_attributes_matching_merkle_root(self, small_chain):
        template = build_template(small_chain, "coinhive", b"x", timestamp=1_525_000_100)
        clusters = {template.header.prev_id: {template.merkle_root()}}
        block = template.to_block(nonce=7)
        small_chain.force_append(block)
        attributed = BlockAttributor(chain=small_chain).attribute(clusters)
        assert len(attributed) == 1
        assert attributed[0].height == 1
        assert attributed[0].reward_atomic == block.reward()

    def test_foreign_block_not_attributed(self, small_chain):
        ours = build_template(small_chain, "coinhive", b"ours", timestamp=1_525_000_100)
        theirs = build_template(small_chain, "otherpool", b"theirs", timestamp=1_525_000_100)
        clusters = {ours.header.prev_id: {ours.merkle_root()}}
        small_chain.force_append(theirs.to_block(nonce=1))
        attributed = BlockAttributor(chain=small_chain).attribute(clusters)
        assert attributed == []

    def test_unextended_cluster_ignored(self, small_chain):
        clusters = {b"\x77" * 32: {b"\x88" * 32}}
        assert BlockAttributor(chain=small_chain).attribute(clusters) == []

    def test_results_sorted_by_height(self, small_chain):
        attributed_roots = {}
        for i in range(3):
            template = build_template(
                small_chain, "coinhive", bytes([i]), timestamp=1_525_000_100 + 120 * i
            )
            attributed_roots[template.header.prev_id] = {template.merkle_root()}
            small_chain.force_append(template.to_block(nonce=i))
        result = BlockAttributor(chain=small_chain).attribute(attributed_roots)
        assert [b.height for b in result] == [1, 2, 3]


class TestNetworkEstimator:
    """The paper's arithmetic, checked against its published numbers."""

    def test_blocks_per_day(self):
        assert NetworkEstimator().blocks_per_day_network() == 720

    def test_pool_share_8_5_blocks(self):
        # 8.5 blocks/day of 720 → 1.18%
        share = NetworkEstimator().pool_share(8.5)
        assert share == pytest.approx(0.0118, abs=0.0001)

    def test_network_hashrate_from_difficulty(self):
        # 55.4G difficulty → 462 MH/s
        rate = NetworkEstimator().network_hashrate(55.4e9)
        assert rate == pytest.approx(462e6, rel=0.01)

    def test_pool_hashrate(self):
        # 1.18% of 462 MH/s ≈ 5.5 MH/s
        rate = NetworkEstimator().pool_hashrate(8.5, 55.4e9)
        assert rate == pytest.approx(5.45e6, rel=0.02)

    def test_user_bracket(self):
        estimator = NetworkEstimator()
        users_at_20 = estimator.users_required(5.5e6, 20)
        users_at_100 = estimator.users_required(5.5e6, 100)
        assert users_at_20 == pytest.approx(275_000, rel=0.1)  # paper: 292K
        assert users_at_100 == pytest.approx(55_000, rel=0.1)  # paper: 58K

    def test_monthly_revenue(self):
        # ~1271 XMR per 4 weeks at 120 USD ≈ 150k USD/month
        revenue = NetworkEstimator().monthly_revenue_usd(1271.0)
        assert revenue == pytest.approx(152_520, rel=0.01)

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            NetworkEstimator().users_required(1e6, 0)
