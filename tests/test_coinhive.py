"""Tests for the Coinhive service simulator."""

import pytest

from repro.blockchain.block import NONCE_OFFSET
from repro.coinhive.obfuscation import BlobObfuscator
from repro.coinhive.service import (
    CoinhiveService,
    ENDPOINTS_PER_BACKEND,
    NUM_ENDPOINTS,
    make_token,
)
from repro.coinhive.shortlink import ShortLinkService, id_to_index, index_to_id
from repro.pool.jobs import parse_blob


class TestObfuscator:
    def test_involution(self):
        obf = BlobObfuscator()
        blob = bytes(range(80))
        assert obf.apply(obf.apply(blob)) == blob

    def test_changes_bytes_at_offset_only(self):
        obf = BlobObfuscator(key=b"\xff\xff", offset=5)
        blob = bytes(20)
        out = obf.apply(blob)
        assert out[:5] == blob[:5]
        assert out[5:7] == b"\xff\xff"
        assert out[7:] == blob[7:]

    def test_default_offset_hits_header(self):
        assert BlobObfuscator().offset == NONCE_OFFSET - 8

    def test_too_short_blob_rejected(self):
        with pytest.raises(ValueError):
            BlobObfuscator().apply(b"short")

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            BlobObfuscator(key=b"")

    def test_revert_is_apply(self):
        obf = BlobObfuscator()
        assert obf.revert == obf.apply


class TestTokens:
    def test_deterministic(self):
        assert make_token("x") == make_token("x")

    def test_format(self):
        token = make_token("site-a")
        assert len(token) == 32
        assert token == token.upper()


class TestService:
    def test_32_endpoints_16_backends(self, coinhive_service):
        endpoints = coinhive_service.endpoints()
        assert len(endpoints) == NUM_ENDPOINTS == 32
        backends = {coinhive_service.backend_for(e) for e in endpoints}
        assert len(backends) == 16

    def test_two_endpoints_per_backend(self, coinhive_service):
        from collections import Counter

        counts = Counter(coinhive_service.backend_for(e) for e in coinhive_service.endpoints())
        assert all(count == ENDPOINTS_PER_BACKEND for count in counts.values())

    def test_endpoint_naming(self, coinhive_service):
        assert coinhive_service.endpoints()[0] == "wss://ws1.coinhive.com/proxy"
        assert coinhive_service.endpoints()[-1] == "wss://ws32.coinhive.com/proxy"

    def test_unknown_endpoint_rejected(self, coinhive_service):
        with pytest.raises(KeyError):
            coinhive_service.backend_for("wss://ws99.coinhive.com/proxy")

    def test_pow_input_is_obfuscated(self, coinhive_service):
        """The raw blob differs from the true template blob (the paper's
        countermeasure), and the corruption sits in the prev_id field."""
        endpoint = coinhive_service.endpoints()[0]
        blob = coinhive_service.pow_input_for_endpoint(endpoint, now=100.0)
        restored = coinhive_service.obfuscator.revert(blob)
        assert blob != restored
        _, prev_raw, _, _, _ = parse_blob(blob)
        _, prev_true, _, _, _ = parse_blob(restored)
        assert prev_raw != prev_true

    def test_deobfuscated_blob_references_tip(self, coinhive_service):
        endpoint = coinhive_service.endpoints()[0]
        blob = coinhive_service.pow_input_for_endpoint(endpoint, now=100.0)
        restored = coinhive_service.obfuscator.revert(blob)
        _, prev_id, _, _, _ = parse_blob(restored)
        assert prev_id == coinhive_service.chain.tip.block_id()

    def test_same_backend_same_template_between_refreshes(self, coinhive_service):
        e1, e2 = coinhive_service.endpoints()[0], coinhive_service.endpoints()[1]
        # ws1 and ws2 belong to the same backend
        assert coinhive_service.backend_for(e1) == coinhive_service.backend_for(e2)
        blob1 = coinhive_service.pow_input_for_endpoint(e1, now=100.0)
        blob2 = coinhive_service.pow_input_for_endpoint(e2, now=101.0)
        root1 = parse_blob(coinhive_service.obfuscator.revert(blob1))[3]
        root2 = parse_blob(coinhive_service.obfuscator.revert(blob2))[3]
        assert root1 == root2

    def test_different_backends_differ(self, coinhive_service):
        e1, e3 = coinhive_service.endpoints()[0], coinhive_service.endpoints()[2]
        assert coinhive_service.backend_for(e1) != coinhive_service.backend_for(e3)
        blob1 = coinhive_service.pow_input_for_endpoint(e1, now=100.0)
        blob3 = coinhive_service.pow_input_for_endpoint(e3, now=100.0)
        root1 = parse_blob(coinhive_service.obfuscator.revert(blob1))[3]
        root3 = parse_blob(coinhive_service.obfuscator.revert(blob3))[3]
        assert root1 != root3

    def test_template_refresh_after_interval(self, coinhive_service):
        endpoint = coinhive_service.endpoints()[0]
        blob_a = coinhive_service.pow_input_for_endpoint(endpoint, now=0.0)
        blob_b = coinhive_service.pow_input_for_endpoint(endpoint, now=20.0)  # > 15 s
        root_a = parse_blob(coinhive_service.obfuscator.revert(blob_a))[3]
        root_b = parse_blob(coinhive_service.obfuscator.revert(blob_b))[3]
        assert root_a != root_b

    def test_outage_blocks_jobs(self, coinhive_service):
        coinhive_service.add_outage(50.0, 150.0)
        assert coinhive_service.is_down(100.0)
        with pytest.raises(RuntimeError):
            coinhive_service.pow_input_for_endpoint(coinhive_service.endpoints()[0], now=100.0)
        # before and after the window everything works
        coinhive_service.pow_input_for_endpoint(coinhive_service.endpoints()[0], now=10.0)
        coinhive_service.pow_input_for_endpoint(coinhive_service.endpoints()[0], now=200.0)

    def test_bad_outage_window_rejected(self, coinhive_service):
        with pytest.raises(ValueError):
            coinhive_service.add_outage(10.0, 10.0)

    def test_register_user(self, coinhive_service):
        user = coinhive_service.register_user("example.com")
        assert coinhive_service.users[user.token] is user

    def test_fee_is_30_percent(self, coinhive_service):
        assert coinhive_service.pool.payouts.pool_fee_percent == 30


class TestShortLinkIds:
    def test_first_ids(self):
        assert index_to_id(0) == "a"
        assert index_to_id(1) == "b"
        assert index_to_id(25) == "z"
        assert index_to_id(26) == "0"
        assert index_to_id(35) == "9"
        assert index_to_id(36) == "aa"

    def test_roundtrip(self):
        for index in (0, 35, 36, 100, 36 + 36**2, 12345, 36 + 36**2 + 36**3 + 5):
            assert id_to_index(index_to_id(index)) == index

    def test_ids_are_enumerable_in_creation_order(self):
        service = ShortLinkService()
        ids = [service.create("T", f"https://x.com/{i}", 100).link_id for i in range(40)]
        assert ids == [index_to_id(i) for i in range(40)]

    def test_invalid_characters_rejected(self):
        with pytest.raises(ValueError):
            id_to_index("A!")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            id_to_index("")

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            index_to_id(-1)


class TestShortLinkService:
    def test_create_and_get(self):
        service = ShortLinkService()
        link = service.create("TOKEN", "https://youtu.be/x", 1024)
        assert service.get(link.link_id) is link
        assert link.url == f"https://cnhv.co/{link.link_id}"

    def test_zero_hashes_rejected(self):
        with pytest.raises(ValueError):
            ShortLinkService().create("T", "https://x.com", 0)

    def test_landing_page_embeds_token_and_goal(self):
        service = ShortLinkService()
        link = service.create("ABCDEF123456", "https://x.com", 2048)
        page = service.landing_page(link.link_id)
        assert "ABCDEF123456" in page
        assert "goal: 2048" in page
        assert "coinhive.min.js" in page

    def test_landing_page_unknown_link(self):
        assert ShortLinkService().landing_page("zz") is None

    def test_resolution_requires_full_goal(self):
        service = ShortLinkService()
        link = service.create("T", "https://target.com/", 100)
        assert service.submit_hashes(link.link_id, 60) is None
        assert not link.resolved
        assert service.submit_hashes(link.link_id, 40) == "https://target.com/"
        assert link.resolved

    def test_submit_to_unknown_link(self):
        with pytest.raises(KeyError):
            ShortLinkService().submit_hashes("qq", 10)

    def test_negative_hashes_rejected(self):
        service = ShortLinkService()
        link = service.create("T", "https://x.com", 10)
        with pytest.raises(ValueError):
            service.submit_hashes(link.link_id, -1)

    def test_visit_counts(self):
        service = ShortLinkService()
        link = service.create("T", "https://x.com", 10)
        service.visit(link.link_id)
        service.visit(link.link_id)
        assert link.visits == 2

    def test_enumerate_ids_caps_by_length(self):
        service = ShortLinkService()
        for i in range(50):
            service.create("T", f"https://x.com/{i}", 10)
        ones = service.enumerate_ids(max_chars=1)
        assert len(ones) == 36
