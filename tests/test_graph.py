"""The attribution graph: model laws, includer layer, builder, queries.

The shard merge law (associative/commutative/idempotent union) and the
sorted serialization together are what make ``graph.jsonl`` byte-identical
for twin same-seed runs regardless of shard count or executor — the
CLI-level twin test pins exactly that. The includer layer is pure in
``(seed, dataset, domain)``, so streamed and materialized populations
seed identical inclusion edges.
"""

from __future__ import annotations

import copy

import pytest

from repro.graph.model import (
    Graph,
    GraphSchemaError,
    graph_to_jsonl,
    parse_graph_jsonl,
    read_graph_jsonl,
)
from repro.graph.query import clusters, find_path, graph_metrics, neighbors
from repro.internet.includers import build_includer_layer, layer_for_spec
from repro.internet.population import DATASETS, build_population
from repro.internet.streaming import StreamingPopulation


def _sample_graphs():
    a = Graph()
    a.add_node("domain", "shop.com", miner="yes", role="miner")
    a.add_node("includer", "zamcdn.io", kind="campaign", family="coinhive")
    a.add_edge("includes", "includer:zamcdn.io", "domain:shop.com", url="https://zamcdn.io/t.js")
    b = Graph()
    b.add_node("domain", "shop.com", blocked="no")
    b.add_node("family", "coinhive")
    b.add_edge("attributed-to", "domain:shop.com", "family:coinhive", method="signature")
    c = Graph()
    c.add_node("domain", "news.org", miner="no")
    c.add_edge("attributed-to", "domain:shop.com", "family:coinhive", method="backend")
    return a, b, c


def _canon(graph):
    return graph_to_jsonl(graph)


class TestMergeLaw:
    def test_associative(self):
        a, b, c = _sample_graphs()
        left = copy.deepcopy(a).merge(copy.deepcopy(b)).merge(copy.deepcopy(c))
        right = copy.deepcopy(a).merge(copy.deepcopy(b).merge(copy.deepcopy(c)))
        assert _canon(left) == _canon(right)

    def test_commutative(self):
        a, b, _ = _sample_graphs()
        ab = copy.deepcopy(a).merge(copy.deepcopy(b))
        ba = copy.deepcopy(b).merge(copy.deepcopy(a))
        assert _canon(ab) == _canon(ba)

    def test_idempotent(self):
        a, b, _ = _sample_graphs()
        once = copy.deepcopy(a).merge(copy.deepcopy(b))
        twice = copy.deepcopy(a).merge(copy.deepcopy(b)).merge(copy.deepcopy(b))
        assert _canon(once) == _canon(twice)

    def test_attr_values_union(self):
        a = Graph()
        a.add_node("domain", "shop.com", pipeline="zgrab0")
        b = Graph()
        b.add_node("domain", "shop.com", pipeline="chrome")
        a.merge(b)
        assert a.node_attrs("domain:shop.com")["pipeline"] == "chrome,zgrab0"


class TestSerialization:
    def test_round_trip_is_byte_identical(self):
        a, b, c = _sample_graphs()
        graph = a.merge(b).merge(c)
        text = graph_to_jsonl(graph)
        assert graph_to_jsonl(parse_graph_jsonl(text)) == text

    def test_header_declares_counts_and_version(self):
        a, _, _ = _sample_graphs()
        header = graph_to_jsonl(a).splitlines()[0]
        assert header == '{"edges":1,"nodes":2,"schema_version":1}'

    def test_headerless_legacy_file_is_tolerated(self):
        a, b, _ = _sample_graphs()
        graph = a.merge(b)
        lines = graph_to_jsonl(graph).splitlines()[1:]
        legacy = parse_graph_jsonl("\n".join(lines))
        assert _canon(legacy) == _canon(graph)

    def test_future_schema_is_rejected_with_upgrade_hint(self):
        with pytest.raises(GraphSchemaError, match="upgrade repro"):
            parse_graph_jsonl('{"edges":0,"nodes":0,"schema_version":99}\n')

    def test_malformed_line_is_rejected(self):
        with pytest.raises(GraphSchemaError, match="malformed"):
            parse_graph_jsonl('{"edges":0,"nodes":0,"schema_version":1}\nnot json\n')

    def test_attr_values_fold_commas_and_newlines(self):
        graph = Graph()
        graph.add_node("domain", "shop.com", note="a,b\nc")
        assert graph.node_attrs("domain:shop.com")["note"] == "a;b c"
        text = graph_to_jsonl(graph)
        assert _canon(parse_graph_jsonl(text)) == text


class TestIncluderLayer:
    def test_layer_is_pure_in_seed_and_dataset(self):
        first = build_includer_layer("alexa", 2018, ["coinhive", "cryptoloot"])
        second = build_includer_layer("alexa", 2018, ["cryptoloot", "coinhive"])
        assert first == second
        assert build_includer_layer("alexa", 7, ["coinhive"]) != build_includer_layer(
            "alexa", 8, ["coinhive"]
        )

    def test_one_campaign_includer_per_family_plus_benign_trio(self):
        layer = build_includer_layer("alexa", 2018, ["coinhive", "cryptoloot"])
        kinds = [includer.kind for includer in layer.includers]
        assert kinds.count("campaign") == 2
        assert kinds.count("benign") == 3
        assert len({includer.domain for includer in layer.includers}) == 5

    def test_campaign_includers_never_appear_off_campaign(self):
        population = build_population("alexa", seed=2018, scale=0.05)
        layer = population.includer_layer
        for site in population.sites:
            for includer in layer.includers_for(site):
                if includer.kind == "campaign":
                    assert site.family == includer.family

    def test_stream_and_materialized_seed_identical_edges(self):
        population = StreamingPopulation("alexa", seed=2018, size=60)
        materialized = population.materialize()
        assert population.includer_layer == materialized.includer_layer
        layer = population.includer_layer
        for index in range(60):
            streamed = layer.includers_for(population.site(index))
            eager = layer.includers_for(materialized.sites[index])
            assert streamed == eager

    def test_includer_tags_land_in_served_html(self):
        population = build_population("alexa", seed=2018, scale=0.05)
        layer = population.includer_layer
        tagged = 0
        for site in population.sites:
            expected = {includer.url for includer in layer.includers_for(site)}
            body = population.web.fetch(f"http://www.{site.domain}/").body.decode()
            present = {
                includer.url for includer in layer.includers if includer.url in body
            }
            assert present == expected, site.domain
            tagged += bool(expected)
        assert tagged  # the layer actually fired somewhere at this scale

    def test_layer_for_spec_covers_every_miner_family(self):
        layer = layer_for_spec(DATASETS["alexa"], 2018)
        families = {i.family for i in layer.includers if i.kind == "campaign"}
        assert families == set(DATASETS["alexa"].miner_counts)


class TestUnobservedRuns:
    def test_bare_campaign_builds_no_graph(self):
        from repro.analysis.crawl import ZgrabCampaign

        population = build_population("com", seed=5, scale=0.001)
        result = ZgrabCampaign(population=population).scan(0)
        assert result.graph is None
        assert result.verdicts == ()
