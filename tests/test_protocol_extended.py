"""Tests for the extended protocol messages and their service wiring."""

import pytest

from repro.pool.protocol import (
    AuthedMessage,
    BannedMessage,
    ErrorMessage,
    JobMessage,
    LoginMessage,
    ProtocolError,
    decode_message,
    encode_message,
)
from repro.sim.events import EventLoop
from repro.web.websocket import WebSocketChannel


class TestExtendedMessages:
    def test_authed_roundtrip(self):
        message = AuthedMessage(token="ABC", hashes=1024)
        assert decode_message(encode_message(message)) == message

    def test_banned_roundtrip(self):
        message = BannedMessage(reason="invalid token")
        assert decode_message(encode_message(message)) == message

    def test_error_roundtrip(self):
        message = ErrorMessage(error="rate limited")
        assert decode_message(encode_message(message)) == message

    def test_error_requires_field(self):
        with pytest.raises(ProtocolError):
            decode_message('{"type": "error", "params": {}}')


class TestServiceHandshake:
    def _open(self, coinhive_service, token: str):
        loop = EventLoop()
        endpoint = coinhive_service.endpoints()[0]
        handler = coinhive_service.websocket_handler(endpoint)
        received = []
        channel = WebSocketChannel(url=endpoint, loop=loop, server_handler=handler)
        channel.on_message = received.append
        channel.send(encode_message(LoginMessage(token=token)))
        loop.run_all()
        return channel, [decode_message(frame) for frame in received]

    def test_login_yields_authed_then_job(self, coinhive_service):
        _channel, messages = self._open(coinhive_service, "GOODTOKEN")
        assert isinstance(messages[0], AuthedMessage)
        assert messages[0].token == "GOODTOKEN"
        assert isinstance(messages[1], JobMessage)

    def test_empty_token_banned_and_closed(self, coinhive_service):
        channel, messages = self._open(coinhive_service, "")
        assert isinstance(messages[0], BannedMessage)
        assert channel.closed

    def test_outage_closes_without_reply(self, coinhive_service):
        coinhive_service.add_outage(0.0, 1000.0)
        channel, messages = self._open(coinhive_service, "TOKEN")
        assert messages == []
        assert channel.closed
