"""Differential testing: the interpreter vs a Python reference evaluator.

Hypothesis generates random straight-line i32 programs over two locals;
both the interpreter and an independent Python model evaluate them, and
the results must agree bit-for-bit. This catches exactly the class of bug
unit tests miss: wrapping, signedness, and shift-modulo corner cases.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.wasm.interp import Instance
from repro.wasm.types import CodeEntry, Export, FuncType, Instr, Limits, Module, ValType

_MASK32 = (1 << 32) - 1


def _signed(value: int) -> int:
    return value - (1 << 32) if value >= 1 << 31 else value


#: op name → reference implementation on (a, b) unsigned 32-bit ints.
_REFERENCE = {
    "i32.add": lambda a, b: (a + b) & _MASK32,
    "i32.sub": lambda a, b: (a - b) & _MASK32,
    "i32.mul": lambda a, b: (a * b) & _MASK32,
    "i32.and": lambda a, b: a & b,
    "i32.or": lambda a, b: a | b,
    "i32.xor": lambda a, b: a ^ b,
    "i32.shl": lambda a, b: (a << (b % 32)) & _MASK32,
    "i32.shr_u": lambda a, b: a >> (b % 32),
    "i32.shr_s": lambda a, b: (_signed(a) >> (b % 32)) & _MASK32,
    "i32.rotl": lambda a, b: ((a << (b % 32)) | (a >> ((32 - b) % 32))) & _MASK32 if b % 32 else a,
    "i32.rotr": lambda a, b: ((a >> (b % 32)) | (a << ((32 - b) % 32))) & _MASK32 if b % 32 else a,
    "i32.eq": lambda a, b: int(a == b),
    "i32.ne": lambda a, b: int(a != b),
    "i32.lt_u": lambda a, b: int(a < b),
    "i32.lt_s": lambda a, b: int(_signed(a) < _signed(b)),
    "i32.gt_u": lambda a, b: int(a > b),
    "i32.gt_s": lambda a, b: int(_signed(a) > _signed(b)),
    "i32.le_u": lambda a, b: int(a <= b),
    "i32.ge_s": lambda a, b: int(_signed(a) >= _signed(b)),
}

_BINOPS = sorted(_REFERENCE)

#: one program step: (op, constant) — the constant feeds the second operand.
_step = st.tuples(st.sampled_from(_BINOPS), st.integers(min_value=0, max_value=_MASK32))


def _build_module(steps) -> Module:
    """local0 = f(local0) through the step chain; returns local0."""
    body = []
    for op, constant in steps:
        body.append(Instr("local.get", (0,)))
        body.append(Instr("i32.const", (_signed(constant),)))
        body.append(Instr(op, ()))
        body.append(Instr("local.set", (0,)))
    body.append(Instr("local.get", (0,)))
    body.append(Instr("end"))
    module = Module()
    module.types = [FuncType((ValType.I32,), (ValType.I32,))]
    module.func_type_indices = [0]
    module.memories = [Limits(1)]
    module.exports = [Export("f", 0, 0)]
    module.codes = [CodeEntry(body=body)]
    return module


def _reference_eval(steps, start: int) -> int:
    acc = start & _MASK32
    for op, constant in steps:
        acc = _REFERENCE[op](acc, constant) & _MASK32
    return acc


class TestDifferential:
    @given(
        steps=st.lists(_step, min_size=1, max_size=25),
        start=st.integers(min_value=0, max_value=_MASK32),
    )
    @settings(max_examples=200, deadline=None)
    def test_interpreter_matches_reference(self, steps, start):
        module = _build_module(steps)
        result = Instance(module).invoke("f", start)
        assert result == [_reference_eval(steps, start)]

    @given(start=st.integers(min_value=0, max_value=_MASK32))
    @settings(max_examples=50, deadline=None)
    def test_shift_by_large_counts(self, start):
        """Shift counts are taken modulo 32 (spec), even huge ones."""
        steps = [("i32.shl", 33), ("i32.shr_u", 65), ("i32.rotl", 96)]
        module = _build_module(steps)
        assert Instance(module).invoke("f", start) == [_reference_eval(steps, start)]

    @given(
        a=st.integers(min_value=0, max_value=_MASK32),
        b=st.integers(min_value=1, max_value=_MASK32),
    )
    @settings(max_examples=80, deadline=None)
    def test_division_matches_trunc_semantics(self, a, b):
        """div_s truncates toward zero; rem_s takes the dividend's sign."""
        body = [
            Instr("local.get", (0,)),
            Instr("i32.const", (_signed(b),)),
            Instr("i32.div_s", ()),
            Instr("local.get", (0,)),
            Instr("i32.const", (_signed(b),)),
            Instr("i32.rem_s", ()),
            Instr("i32.add", ()),
            Instr("end"),
        ]
        module = _build_module([])
        module.codes[0].body = body
        result = Instance(module).invoke("f", a)
        sa, sb = _signed(a), _signed(b)
        expected = (int(sa / sb) + (sa - sb * int(sa / sb))) & _MASK32
        assert result == [expected]
