"""Tests for the month-scale network simulation (Figure 5, Table 6)."""

import pytest

from repro.analysis.economics import EconomicsReport
from repro.analysis.network import NetworkSimConfig, simulate_network
from repro.sim.clock import utc_timestamp


@pytest.fixture(scope="module")
def week_observation():
    """One simulated week spanning the Coinhive outage of 6–7 May."""
    config = NetworkSimConfig(
        start=utc_timestamp(2018, 5, 3),
        end=utc_timestamp(2018, 5, 10),
        seed=11,
    )
    return simulate_network(config)


class TestSimulation:
    def test_block_rate_near_target(self, week_observation):
        blocks = week_observation.chain.height
        expected = 7 * 720
        assert abs(blocks - expected) < expected * 0.05

    def test_difficulty_stays_near_initial(self, week_observation):
        chain = week_observation.chain
        median = chain.median_difficulty(last=1000)
        assert median == pytest.approx(week_observation.config.initial_difficulty, rel=0.15)

    def test_attribution_high_recall(self, week_observation):
        assert week_observation.attribution_recall() > 0.9

    def test_attribution_no_false_positives(self, week_observation):
        attributed_heights = {b.height for b in week_observation.attributed}
        assert attributed_heights <= week_observation.coinhive_truth_heights

    def test_outage_day_has_few_blocks(self, week_observation):
        per_day = week_observation.blocks_per_day()
        outage_day = per_day.get("2018-05-06", 0)
        normal_day = per_day.get("2018-05-04", 0)
        assert outage_day < normal_day

    def test_blocks_found_throughout_day(self, week_observation):
        hourly = week_observation.hourly_totals()
        assert sum(1 for count in hourly if count > 0) >= 20  # global user base

    def test_deterministic(self):
        config = NetworkSimConfig(
            start=utc_timestamp(2018, 5, 3), end=utc_timestamp(2018, 5, 4), seed=3
        )
        a = simulate_network(config)
        b = simulate_network(config)
        assert len(a.attributed) == len(b.attributed)
        assert a.chain.height == b.chain.height

    def test_day_hour_matrix_shape(self, week_observation):
        matrix = week_observation.day_hour_matrix()
        for (date, hour), count in matrix.items():
            assert 0 <= hour < 24
            assert count > 0
            assert date.startswith("2018-05")

    def test_share_near_configured(self, week_observation):
        share = week_observation.overall_share()
        # configured 1.18% × May factor 1.04, minus outage losses
        assert 0.006 < share < 0.018

    def test_economics_from_attribution(self, week_observation):
        report = EconomicsReport.from_attributed(week_observation.attributed)
        per_block = report.xmr_mined / max(1, len(week_observation.attributed))
        assert 4.0 < per_block < 5.0  # ≈4.55 XMR reward level
