"""Property tests (Hypothesis) for the observability merge laws.

The whole point of :class:`~repro.obs.metrics.MetricsRegistry` is that
every aggregation path in the codebase — serial fold, thread pool, process
pool, resumed run — is the *same* algebra. That only holds if merge is
exactly associative and commutative with the empty registry as identity,
which in turn only holds because histogram durations are stored as integer
nanoseconds. These tests pin the laws; the executor determinism tests
(``test_obs_determinism.py``) then get them for free.
"""

from __future__ import annotations

import copy

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.ledger import FaultLedger
from repro.faults.plan import FaultKind
from repro.faults.taxonomy import ErrorClass
import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    TRACE_SCHEMA_VERSION,
    Span,
    Tracer,
    TraceSchemaError,
    parse_jsonl,
    spans_to_jsonl,
)


# ---------------------------------------------------------------------------
# strategies

_names = st.sampled_from(
    ["shard.sites", "stage.fetch", "stage.detect", "poll.ticks", "fault.dns", "x"]
)

_registries = st.builds(
    lambda counters, gauges, observations: _build_registry(counters, gauges, observations),
    counters=st.dictionaries(_names, st.integers(min_value=0, max_value=10**9), max_size=5),
    gauges=st.dictionaries(
        _names, st.floats(allow_nan=False, allow_infinity=False, width=32), max_size=4
    ),
    observations=st.dictionaries(
        _names,
        st.lists(st.integers(min_value=0, max_value=120 * 10**9), max_size=8),
        max_size=4,
    ),
)


def _build_registry(counters, gauges, observations) -> MetricsRegistry:
    registry = MetricsRegistry()
    for name, n in counters.items():
        registry.inc(name, n)
    for name, value in gauges.items():
        registry.gauge_max(name, value)
    for name, series in observations.items():
        for ns in series:
            registry.observe_ns(name, ns)
    return registry


def _merged(*registries: MetricsRegistry) -> MetricsRegistry:
    out = MetricsRegistry()
    for registry in registries:
        out.merge(registry)
    return out


_tag_text = st.text(max_size=20)

_spans = st.builds(
    Span,
    span_id=st.text(min_size=1, max_size=12),
    name=st.sampled_from(["campaign", "shard", "site", "fetch", "detect", "ws-poll"]),
    start=st.floats(min_value=0, max_value=10**6, allow_nan=False),
    end=st.floats(min_value=0, max_value=10**6, allow_nan=False),
    parent_id=st.text(max_size=12),
    tags=st.dictionaries(_tag_text, _tag_text, max_size=4),
)

_ledgers = st.builds(
    lambda injections, observed, recoveries, ints: _build_ledger(
        injections, observed, recoveries, ints
    ),
    injections=st.lists(st.sampled_from(list(FaultKind)), max_size=10),
    observed=st.lists(st.sampled_from(list(ErrorClass)), max_size=10),
    recoveries=st.lists(
        st.tuples(st.sampled_from(list(FaultKind)), st.booleans()), max_size=10
    ),
    ints=st.lists(st.integers(min_value=0, max_value=50), min_size=6, max_size=6),
)


def _build_ledger(injections, observed, recoveries, ints) -> FaultLedger:
    ledger = FaultLedger()
    for kind in injections:
        ledger.record_injection(kind)
    for error_class in observed:
        ledger.record_observed(error_class)
    for kind, recovered in recoveries:
        ledger.settle([kind], recovered=recovered)
    (
        ledger.retries,
        ledger.breaker_opened,
        ledger.breaker_half_open,
        ledger.breaker_closed,
        ledger.checkpoint_recorded,
        ledger.checkpoint_resumed,
    ) = ints
    return ledger


# ---------------------------------------------------------------------------
# registry merge laws


@settings(max_examples=200)
@given(a=_registries, b=_registries, c=_registries)
def test_merge_is_associative(a, b, c):
    left = _merged(_merged(a, b), c)
    right = _merged(a, _merged(b, c))
    assert left.to_dict() == right.to_dict()


@settings(max_examples=200)
@given(a=_registries, b=_registries)
def test_merge_is_commutative(a, b):
    assert _merged(a, b).to_dict() == _merged(b, a).to_dict()


@given(a=_registries)
def test_empty_registry_is_identity(a):
    assert _merged(a, MetricsRegistry()).to_dict() == a.to_dict()
    assert _merged(MetricsRegistry(), a).to_dict() == a.to_dict()


@given(a=_registries, b=_registries)
def test_merge_does_not_mutate_operand(a, b):
    before = b.to_dict()
    _merged(a, b)
    assert b.to_dict() == before


@given(a=_registries)
def test_registry_serialization_round_trips(a):
    assert MetricsRegistry.from_dict(a.to_dict()) == a


# ---------------------------------------------------------------------------
# trace serialization + aggregation


@settings(max_examples=200)
@given(spans=st.lists(_spans, max_size=10))
def test_span_jsonl_round_trip_is_lossless(spans):
    tracer = Tracer(prefix="p")
    tracer.adopt(copy.deepcopy(spans))
    restored = parse_jsonl(tracer.to_jsonl())
    assert [s.to_dict() for s in restored] == [s.to_dict() for s in spans]


@settings(max_examples=200)
@given(spans=st.lists(_spans, max_size=10))
def test_versioned_files_start_with_schema_header(spans):
    text = spans_to_jsonl(copy.deepcopy(spans))
    first = json.loads(text.splitlines()[0])
    assert first == {"schema_version": TRACE_SCHEMA_VERSION}
    restored = parse_jsonl(text)
    assert [s.to_dict() for s in restored] == [s.to_dict() for s in spans]


@settings(max_examples=200)
@given(spans=st.lists(_spans, max_size=10))
def test_legacy_headerless_files_still_parse(spans):
    # files written before the header existed: span lines only
    legacy = "".join(
        json.dumps(span.to_dict(), sort_keys=True) + "\n" for span in spans
    )
    restored = parse_jsonl(legacy)
    assert [s.to_dict() for s in restored] == [s.to_dict() for s in spans]


@given(
    spans=st.lists(_spans, max_size=4),
    version=st.integers(min_value=TRACE_SCHEMA_VERSION + 1, max_value=10**6),
)
def test_future_schema_versions_are_rejected(spans, version):
    text = spans_to_jsonl(spans)
    bumped = text.replace(
        json.dumps({"schema_version": TRACE_SCHEMA_VERSION}, separators=(",", ":")),
        json.dumps({"schema_version": version}, separators=(",", ":")),
        1,
    )
    with pytest.raises(TraceSchemaError, match="upgrade repro"):
        parse_jsonl(bumped)


@given(a=st.lists(_spans, max_size=8), b=st.lists(_spans, max_size=8))
def test_span_counts_are_additive_under_adoption(a, b):
    merged = Tracer(prefix="m")
    merged.adopt(copy.deepcopy(a))
    merged.adopt(copy.deepcopy(b))
    counts_a = Tracer(prefix="a")
    counts_a.adopt(copy.deepcopy(a))
    counts_b = Tracer(prefix="b")
    counts_b.adopt(copy.deepcopy(b))
    expected = counts_a.counts_by_name()
    for name, n in counts_b.counts_by_name().items():
        expected[name] = expected.get(name, 0) + n
    assert merged.counts_by_name() == expected


# ---------------------------------------------------------------------------
# fault-ledger homomorphism: export-then-merge == merge-then-export


@settings(max_examples=200)
@given(a=_ledgers, b=_ledgers)
def test_ledger_export_is_a_merge_homomorphism(a, b):
    merged_first = copy.deepcopy(a).merge(b).as_registry()
    exported_first = _merged(a.as_registry(), b.as_registry())
    assert merged_first.to_dict() == exported_first.to_dict()


@given(a=_ledgers)
def test_ledger_export_matches_totals(a):
    registry = a.as_registry()
    assert sum(registry.counters_with_prefix("fault.injected.").values()) == a.total_injected
    assert sum(registry.counters_with_prefix("fault.observed.").values()) == a.total_observed
    assert registry.counter("health.retries") == a.retries


# ---------------------------------------------------------------------------
# Histogram.quantile edge cases: empty, single sample, extremes, and
# monotonicity across bucket boundaries (the float-division misbucketing
# fix — an observation exactly on a bound must land in that bound's
# bucket, and quantiles must never decrease as q grows)


from repro.obs.metrics import DEFAULT_BOUNDS, Histogram


class TestHistogramQuantileEdges:
    def test_empty_histogram_quantiles_are_zero(self):
        histogram = Histogram()
        for q in (0.0, 0.5, 1.0):
            assert histogram.quantile(q) == 0.0

    def test_single_sample_is_every_quantile(self):
        histogram = Histogram()
        histogram.observe(0.007)
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert histogram.quantile(q) == pytest.approx(0.007)

    def test_q0_is_min_and_q1_is_max_exactly(self):
        histogram = Histogram()
        histogram.observe(0.002)
        histogram.observe(0.8)
        assert histogram.quantile(0.0) == pytest.approx(0.002)
        assert histogram.quantile(1.0) == pytest.approx(0.8)
        # out-of-range q clamps rather than misindexing
        assert histogram.quantile(-1.0) == pytest.approx(0.002)
        assert histogram.quantile(2.0) == pytest.approx(0.8)

    def test_observation_on_a_bound_lands_in_that_bucket(self):
        # 0.05 is an exact bucket bound; float ns/1e9 division used to
        # round it down into the next-lower bucket for some bounds
        for bound in DEFAULT_BOUNDS:
            histogram = Histogram()
            histogram.observe(bound)
            bucket = histogram.bounds.index(bound)
            assert histogram.counts[bucket] == 1, f"bound {bound} misbucketed"

    @settings(max_examples=120)
    @given(
        samples=st.lists(
            st.floats(min_value=0.0, max_value=120.0, allow_nan=False),
            min_size=1,
            max_size=40,
        )
    )
    def test_quantiles_are_monotone_in_q(self, samples):
        histogram = Histogram()
        for sample in samples:
            histogram.observe(sample)
        qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0]
        values = [histogram.quantile(q) for q in qs]
        assert values == sorted(values), f"non-monotone quantiles: {values}"
        assert values[0] == histogram.min_seconds
        assert values[-1] == histogram.max_seconds

    @settings(max_examples=120)
    @given(
        samples=st.lists(
            st.floats(min_value=0.0, max_value=120.0, allow_nan=False),
            min_size=1,
            max_size=40,
        ),
        q=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_quantiles_stay_within_observed_range(self, samples, q):
        histogram = Histogram()
        for sample in samples:
            histogram.observe(sample)
        value = histogram.quantile(q)
        assert histogram.min_seconds <= value <= histogram.max_seconds
