"""Chaos campaigns: crawls under injected faults.

The three acceptance invariants:

1. campaigns never crash under any profile — failures are accounted, not
   raised;
2. the fault ledger exactly accounts for every injection
   (``injected == recovered + unrecovered`` and, for saturation plans,
   closed-form expected counts);
3. a sharded run and a sequential run under the same plan produce
   bit-identical merged results, and a run killed mid-shard resumes from
   its checkpoint journal to the same merged report.
"""

from __future__ import annotations

import pytest

from repro.analysis.crawl import ChromeCampaign, ZgrabCampaign
from repro.analysis.parallel import (
    ParallelConfig,
    PopulationRecipe,
    ShardedChromeCampaign,
    ShardedZgrabCampaign,
)
from repro.faults.ledger import FaultLedger
from repro.faults.plan import FaultKind, FaultPlan, build_fault_plan
from repro.faults.resilience import BreakerPolicy, ResiliencePolicy, RetryPolicy
from repro.internet.population import build_population

pytestmark = pytest.mark.chaos

SEED = 2018
SCALE = 0.04


def _chaos_population(profile: str, dataset: str = "alexa"):
    population = build_population(dataset, seed=SEED, scale=SCALE)
    population.attach_fault_plan(build_fault_plan(profile, seed=SEED))
    return population


def _fault_counters(ledger: FaultLedger) -> tuple:
    """The counters that must be identical across execution modes and
    resumes (checkpoint counters legitimately differ)."""
    return (
        ledger.injected,
        ledger.observed,
        ledger.recovered,
        ledger.unrecovered,
        ledger.retries,
        ledger.breaker_opened,
        ledger.breaker_half_open,
        ledger.breaker_closed,
    )


class TestCampaignsNeverCrash:
    @pytest.mark.parametrize("profile", ["mild", "heavy"])
    def test_zgrab_both_scans_complete(self, profile):
        population = _chaos_population(profile)
        campaign = ZgrabCampaign(population=population, resilience=ResiliencePolicy())
        partial = campaign.scan_sites(population.sites, 0)
        result = campaign.finalize_scan(partial, 0)
        assert result.domains_probed == len(population.sites)
        assert partial.fault_ledger.balanced()
        assert partial.fault_ledger.total_injected > 0

    @pytest.mark.parametrize("profile", ["mild", "heavy"])
    def test_chrome_run_completes(self, profile):
        population = _chaos_population(profile)
        campaign = ChromeCampaign(population=population)
        partial = campaign.run_sites(enumerate(population.sites))
        result = campaign.finalize_run(partial)
        assert len(result.reports) == len(population.sites)
        assert partial.fault_ledger.balanced()

    def test_heavy_recovers_some_and_loses_some(self):
        population = _chaos_population("heavy")
        campaign = ZgrabCampaign(population=population, resilience=ResiliencePolicy())
        ledger = campaign.scan_sites(population.sites, 0).fault_ledger
        assert ledger.total_recovered > 0          # retries paid off somewhere
        assert sum(ledger.unrecovered.values()) > 0  # and chaos still hurt
        assert ledger.retries > 0


class TestExactAccounting:
    def test_reset_saturation_closed_form(self):
        """rate=1.0 resets: every domain burns exactly max_attempts
        injections, opens its breaker, and books one terminal failure."""
        population = build_population("alexa", seed=SEED, scale=SCALE)
        population.attach_fault_plan(FaultPlan(seed=SEED, rates={FaultKind.RESET: 1.0}))
        resilience = ResiliencePolicy(
            retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
            breaker=BreakerPolicy(failure_threshold=3),
            deadline=1000.0,
        )
        campaign = ZgrabCampaign(population=population, resilience=resilience)
        partial = campaign.scan_sites(population.sites, 0)
        n = len(population.sites)
        ledger = partial.fault_ledger
        assert partial.fetch_failures == n
        assert ledger.injected["reset"] == 3 * n
        assert ledger.unrecovered["reset"] == 3 * n
        assert ledger.retries == 2 * n
        assert ledger.breaker_opened == n
        assert ledger.observed["connection-reset"] == n
        assert ledger.balanced()

    def test_dns_saturation_fails_fast(self):
        """Permanent faults must not burn the retry budget."""
        population = build_population("alexa", seed=SEED, scale=SCALE)
        population.attach_fault_plan(FaultPlan(seed=SEED, rates={FaultKind.DNS: 1.0}))
        resilience = ResiliencePolicy(
            retry=RetryPolicy(max_attempts=3, backoff_base=0.0), breaker=None
        )
        campaign = ZgrabCampaign(population=population, resilience=resilience)
        ledger = campaign.scan_sites(population.sites, 0).fault_ledger
        n = len(population.sites)
        assert ledger.injected["dns"] == n     # exactly one attempt per domain
        assert ledger.retries == 0
        assert ledger.observed["dns"] == n

    def test_flap_saturation_all_recover(self):
        """Flapping origins fail ``flap_failures`` attempts then recover —
        with enough retry budget every injection settles as recovered."""
        population = build_population("alexa", seed=SEED, scale=SCALE)
        population.attach_fault_plan(
            FaultPlan(seed=SEED, rates={FaultKind.FLAP: 1.0}, flap_failures=2)
        )
        resilience = ResiliencePolicy(
            retry=RetryPolicy(max_attempts=4, backoff_base=0.0),
            breaker=BreakerPolicy(failure_threshold=5),
            deadline=1000.0,
        )
        campaign = ZgrabCampaign(population=population, resilience=resilience)
        partial = campaign.scan_sites(population.sites, 0)
        ledger = partial.fault_ledger
        n = len(population.sites)
        assert ledger.injected["flap"] == 2 * n
        # the flap always clears, so its injections recover exactly on the
        # domains whose *organic* fetch then succeeds, and settle as
        # unrecovered on the population's genuinely dead hosts
        assert ledger.recovered["flap"] == 2 * (n - partial.fetch_failures)
        assert ledger.unrecovered["flap"] == 2 * partial.fetch_failures
        assert ledger.balanced()
        # flap-recovered fetches then hit the organic population, so the
        # scan's outcomes match a no-chaos scan exactly
        clean_population = build_population("alexa", seed=SEED, scale=SCALE)
        clean = ZgrabCampaign(population=clean_population).scan_sites(
            clean_population.sites, 0
        )
        assert partial.nocoin_domains == clean.nocoin_domains
        assert partial.fetch_failures == clean.fetch_failures


class TestShardedEqualsSequential:
    @pytest.fixture(scope="class")
    def sequential(self):
        population = _chaos_population("heavy")
        campaign = ZgrabCampaign(population=population, resilience=ResiliencePolicy())
        partial = campaign.scan_sites(population.sites, 0)
        return campaign.finalize_scan(partial, 0), partial.fault_ledger

    @pytest.mark.parametrize("mode,shards,workers", [("serial", 4, 1), ("thread", 5, 3)])
    def test_same_plan_same_results_and_ledger(self, sequential, mode, shards, workers):
        seq_result, seq_ledger = sequential
        population = _chaos_population("heavy")
        config = ParallelConfig(
            shards=shards, workers=workers, mode=mode, resilience=ResiliencePolicy()
        )
        campaign = ShardedZgrabCampaign(population=population, config=config)
        result = campaign.scan(0)
        assert result == seq_result
        assert _fault_counters(campaign.metrics.fault_ledger) == _fault_counters(seq_ledger)

    def test_chrome_sharded_equals_sequential(self):
        population = _chaos_population("mild")
        campaign = ChromeCampaign(population=population)
        seq_partial = campaign.run_sites(enumerate(population.sites))
        seq_result = campaign.finalize_run(seq_partial)

        sharded = ShardedChromeCampaign(
            recipe=PopulationRecipe("alexa", seed=SEED, scale=SCALE, fault_profile="mild"),
            config=ParallelConfig(shards=4, workers=2, mode="thread"),
        )
        result = sharded.run()
        assert result == seq_result
        assert _fault_counters(sharded.metrics.fault_ledger) == _fault_counters(
            seq_partial.fault_ledger
        )


class TestStreamingUnderChaos:
    """Fault plans attach to streaming populations exactly as to built
    ones: per-thread lazy webs all carry the plan, accounting balances,
    and execution mode cannot change the merged outcome."""

    def _streaming_population(self, profile: str):
        from repro.internet.streaming import StreamingPopulation

        population = StreamingPopulation("alexa", seed=SEED, size=220)
        population.attach_fault_plan(build_fault_plan(profile, seed=SEED))
        return population

    @pytest.mark.parametrize("profile", ["mild", "heavy"])
    def test_streamed_scan_completes_and_balances(self, profile):
        population = self._streaming_population(profile)
        campaign = ZgrabCampaign(population=population, resilience=ResiliencePolicy())
        partial = campaign.scan_sites(population.sites, 0)
        assert campaign.finalize_scan(partial, 0).domains_probed == 220
        assert partial.fault_ledger.balanced()
        assert partial.fault_ledger.total_injected > 0

    @pytest.mark.parametrize("mode,shards,workers", [("serial", 4, 1), ("thread", 5, 3)])
    def test_streamed_sharded_equals_sequential(self, mode, shards, workers):
        population = self._streaming_population("heavy")
        sequential = ZgrabCampaign(population=population, resilience=ResiliencePolicy())
        seq_partial = sequential.scan_sites(population.sites, 0)
        seq_result = sequential.finalize_scan(seq_partial, 0)

        sharded = ShardedZgrabCampaign(
            population=self._streaming_population("heavy"),
            config=ParallelConfig(
                shards=shards, workers=workers, mode=mode, resilience=ResiliencePolicy()
            ),
        )
        assert sharded.scan(0) == seq_result
        assert _fault_counters(sharded.metrics.fault_ledger) == _fault_counters(
            seq_partial.fault_ledger
        )


class TestKillAndResume:
    def test_zgrab_killed_shards_resume_to_identical_report(self, tmp_path, monkeypatch):
        plan = build_fault_plan("mild", seed=SEED)
        resilience = ResiliencePolicy()

        def fresh_population():
            population = build_population("alexa", seed=SEED, scale=SCALE)
            population.attach_fault_plan(plan)
            return population

        baseline_campaign = ShardedZgrabCampaign(
            population=fresh_population(),
            config=ParallelConfig(shards=4, workers=1, mode="serial", resilience=resilience),
        )
        baseline = baseline_campaign.scan(0)
        baseline_ledger = baseline_campaign.metrics.fault_ledger

        # run 1: every shard dies after 3 sites (the journal keeps the prefix)
        calls = {"n": 0}
        original = ZgrabCampaign._scan_site

        def bomb(self, fetcher, site):
            calls["n"] += 1
            if calls["n"] % 4 == 0:
                raise RuntimeError("simulated kill")
            return original(self, fetcher, site)

        monkeypatch.setattr(ZgrabCampaign, "_scan_site", bomb)
        interrupted = ShardedZgrabCampaign(
            population=fresh_population(),
            config=ParallelConfig(
                shards=4,
                workers=1,
                mode="serial",
                retry=RetryPolicy(max_attempts=1),
                resilience=resilience,
                checkpoint_dir=str(tmp_path),
            ),
        )
        partial_result = interrupted.scan(0)
        assert interrupted.metrics.failed_shards  # the kill really happened
        assert partial_result.domains_probed < baseline.domains_probed
        monkeypatch.setattr(ZgrabCampaign, "_scan_site", original)

        # run 2: same journal directory, no bomb — resumes and completes
        resumed_campaign = ShardedZgrabCampaign(
            population=fresh_population(),
            config=ParallelConfig(
                shards=4,
                workers=1,
                mode="serial",
                resilience=resilience,
                checkpoint_dir=str(tmp_path),
            ),
        )
        resumed = resumed_campaign.scan(0)
        resumed_ledger = resumed_campaign.metrics.fault_ledger
        assert resumed == baseline
        assert _fault_counters(resumed_ledger) == _fault_counters(baseline_ledger)
        assert resumed_ledger.checkpoint_resumed > 0

    def test_datasets_sharing_a_checkpoint_dir_stay_isolated(self, tmp_path):
        """``reproduce`` loops several datasets over one checkpoint
        directory; each dataset's shards must journal under their own
        names and never replay another dataset's outcomes for
        overlapping population indices."""

        def run(dataset, checkpoint_dir=None):
            population = build_population(dataset, seed=SEED, scale=SCALE)
            campaign = ShardedZgrabCampaign(
                population=population,
                config=ParallelConfig(
                    shards=4, workers=1, mode="serial", checkpoint_dir=checkpoint_dir
                ),
            )
            return campaign.scan(0)

        baseline_alexa = run("alexa")
        baseline_com = run("com")
        assert run("alexa", str(tmp_path)) == baseline_alexa
        assert run("com", str(tmp_path)) == baseline_com  # same dir, fresh journals
        # reruns replay each dataset's own journal, not the other's
        assert run("alexa", str(tmp_path)) == baseline_alexa
        assert run("com", str(tmp_path)) == baseline_com

    def test_stale_journal_from_other_config_is_discarded(self, tmp_path):
        """Resuming with a different seed must re-run every site instead
        of replaying the old configuration's outcomes."""

        def run(seed, checkpoint_dir=None):
            population = build_population("alexa", seed=seed, scale=SCALE)
            campaign = ShardedZgrabCampaign(
                population=population,
                config=ParallelConfig(
                    shards=2, workers=1, mode="serial", checkpoint_dir=checkpoint_dir
                ),
            )
            return campaign.scan(0), campaign.metrics.fault_ledger

        run(seed=1, checkpoint_dir=str(tmp_path))
        resumed, ledger = run(seed=2, checkpoint_dir=str(tmp_path))
        clean, _ = run(seed=2)
        assert resumed == clean
        assert ledger.checkpoint_resumed == 0  # nothing crossed the seeds

    def test_chrome_full_replay_is_identical(self, tmp_path):
        recipe = PopulationRecipe("alexa", seed=SEED, scale=SCALE, fault_profile="mild")
        config = ParallelConfig(
            shards=3, workers=1, mode="serial", checkpoint_dir=str(tmp_path)
        )
        first_campaign = ShardedChromeCampaign(recipe=recipe, config=config)
        first = first_campaign.run()
        assert first_campaign.metrics.fault_ledger.checkpoint_recorded == len(
            first.reports
        )

        second_campaign = ShardedChromeCampaign(recipe=recipe, config=config)
        second = second_campaign.run()
        assert second == first
        ledger = second_campaign.metrics.fault_ledger
        assert ledger.checkpoint_resumed == len(first.reports)
        assert _fault_counters(ledger) == _fault_counters(
            first_campaign.metrics.fault_ledger
        )
