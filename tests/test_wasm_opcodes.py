"""Sanity tests on the opcode table itself."""

import pytest

from repro.wasm import opcodes


class TestTableIntegrity:
    def test_codes_unique(self):
        assert len(opcodes.BY_CODE) == len(opcodes.BY_NAME)

    def test_spec_fields_consistent(self):
        for code, spec in opcodes.BY_CODE.items():
            assert spec.code == code
            assert opcodes.BY_NAME[spec.name] is spec

    def test_immediate_kinds_closed_set(self):
        kinds = {
            "none", "blocktype", "u32", "u32x2", "memarg",
            "i32", "i64", "f32", "f64", "br_table",
        }
        assert {spec.immediate for spec in opcodes.BY_CODE.values()} <= kinds

    def test_spec_for_unknown_raises(self):
        with pytest.raises(KeyError):
            opcodes.spec_for(0xFF)

    def test_spec_for_known(self):
        assert opcodes.spec_for(0x73).name == "i32.xor"


class TestFeatureGroups:
    def test_groups_are_disjoint(self):
        groups = [
            opcodes.XOR_OPS, opcodes.SHIFT_OPS, opcodes.ROTATE_OPS,
            opcodes.LOAD_OPS, opcodes.STORE_OPS, opcodes.MUL_OPS,
        ]
        seen = set()
        for group in groups:
            assert not (seen & group)
            seen |= group

    def test_groups_reference_real_ops(self):
        for group in (
            opcodes.XOR_OPS, opcodes.SHIFT_OPS, opcodes.ROTATE_OPS,
            opcodes.LOAD_OPS, opcodes.STORE_OPS, opcodes.MUL_OPS,
            opcodes.FLOAT_OPS,
        ):
            for name in group:
                assert name in opcodes.BY_NAME

    def test_load_group_complete(self):
        assert "i32.load" in opcodes.LOAD_OPS
        assert "i64.load32_u" in opcodes.LOAD_OPS
        assert "i32.store" not in opcodes.LOAD_OPS

    def test_float_ops_cover_both_widths(self):
        assert "f32.add" in opcodes.FLOAT_OPS
        assert "f64.sqrt" in opcodes.FLOAT_OPS
        assert "i32.add" not in opcodes.FLOAT_OPS

    def test_shift_excludes_rotates(self):
        assert "i32.rotl" not in opcodes.SHIFT_OPS
        assert "i32.rotl" in opcodes.ROTATE_OPS
