"""Tests for block-list generation from crawl results."""

import pytest

from repro.analysis.crawl import ChromeCampaign
from repro.analysis.defense import (
    augmented_list,
    evaluate_coverage,
    generate_rules,
)
from repro.core.detector import DetectionReport
from repro.core.classifier import Classification


def miner_report(domain: str, ws_urls, nocoin=False) -> DetectionReport:
    report = DetectionReport(domain=domain, nocoin_hit=nocoin)
    report.wasm_present = True
    report.miner = Classification(True, "coinhive", "signature", 1.0)
    report.websocket_urls = tuple(ws_urls)
    return report


class TestGenerateRules:
    def test_collects_websocket_hosts(self):
        reports = [
            miner_report("a.com", ["wss://ws1.coinhive.com/proxy"]),
            miner_report("b.com", ["wss://ws2.coinhive.com/proxy", "wss://pool.x.net/w"]),
        ]
        generated = generate_rules(reports, {})
        assert "ws1.coinhive.com" in generated.websocket_hosts
        assert "pool.x.net" in generated.websocket_hosts
        assert len(generated) == 3

    def test_non_miners_ignored(self):
        clean = DetectionReport(domain="c.com", nocoin_hit=True)
        assert len(generate_rules([clean], {})) == 0

    def test_rule_lines_are_adblock_syntax(self):
        reports = [miner_report("a.com", ["wss://evil.pool.io/x"])]
        lines = generate_rules(reports, {}).to_lines()
        assert lines == ["||evil.pool.io^"]


class TestAugmentedList:
    def test_augmented_matches_new_endpoint(self):
        reports = [miner_report("a.com", ["wss://sneaky-pool.biz/ws"])]
        combined = augmented_list(generate_rules(reports, {}))
        assert combined.match_url("wss://sneaky-pool.biz/ws") is not None
        # base rules still present
        assert combined.match_url("https://coinhive.com/lib/coinhive.min.js") is not None


class TestCoverage:
    def test_coverage_improves_with_generated_rules(self):
        reports = [
            miner_report("a.com", ["wss://ws1.coinhive.com/proxy"], nocoin=True),
            miner_report("b.com", ["wss://hidden-pool.net/w"], nocoin=False),
            miner_report("c.com", ["wss://hidden-pool.net/w"], nocoin=False),
        ]
        combined = augmented_list(generate_rules(reports, {}))
        comparison = evaluate_coverage(reports, combined)
        assert comparison.miners_total == 3
        assert comparison.covered_by_base == 1
        assert comparison.covered_by_augmented == 3
        assert comparison.augmented_missed_fraction < comparison.base_missed_fraction

    def test_end_to_end_on_population(self, alexa_population):
        """Crawl → generate → re-evaluate: the 82% gap mostly closes."""
        result = ChromeCampaign(population=alexa_population).run()
        site_hosts = {s.domain: f"www.{s.domain}" for s in alexa_population.sites}
        generated = generate_rules(result.reports, site_hosts)
        assert len(generated) > 0
        combined = augmented_list(generated)
        comparison = evaluate_coverage(result.reports, combined)
        assert comparison.base_missed_fraction > 0.6          # the paper's gap
        assert comparison.augmented_missed_fraction < 0.15    # mostly closed
