"""Tests for the simulated clock."""

import datetime

import pytest

from repro.sim.clock import SimClock, utc_timestamp


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance_moves_forward(self):
        clock = SimClock()
        clock.advance(5.0)
        clock.advance(2.5)
        assert clock.now == 7.5

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_advance_to_absolute(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_advance_to_rejects_past(self):
        clock = SimClock()
        clock.advance_to(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(9.0)

    def test_advance_to_same_time_is_noop(self):
        clock = SimClock()
        clock.advance_to(3.0)
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_unix_offset(self):
        clock = SimClock(epoch=1_000_000.0)
        clock.advance(50.0)
        assert clock.unix == 1_000_050.0

    def test_datetime_is_utc(self):
        clock = SimClock(epoch=utc_timestamp(2018, 5, 1, 12))
        dt = clock.datetime()
        assert dt.tzinfo == datetime.timezone.utc
        assert (dt.year, dt.month, dt.day, dt.hour) == (2018, 5, 1, 12)

    def test_repr_mentions_time(self):
        assert "now=" in repr(SimClock())


class TestUtcTimestamp:
    def test_epoch_zero(self):
        assert utc_timestamp(1970, 1, 1) == 0.0

    def test_known_date(self):
        # 2018-05-01 00:00 UTC
        assert utc_timestamp(2018, 5, 1) == 1525132800.0

    def test_hours_and_minutes(self):
        assert utc_timestamp(1970, 1, 1, 1, 30) == 5400.0
