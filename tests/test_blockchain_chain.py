"""Tests for difficulty retargeting, emission, and chain validation."""

import pytest

from repro.blockchain.block import Block, BlockHeader
from repro.blockchain.chain import (
    Blockchain,
    BlockValidationError,
    GENERATED_AT_START,
    Mempool,
    base_reward,
    TAIL_REWARD,
    MONEY_SUPPLY,
)
from repro.blockchain.difficulty import DifficultyAdjuster
from repro.blockchain.hashing import FAST_PARAMS, cryptonight, hash_meets_difficulty
from repro.blockchain.transactions import ATOMIC_PER_XMR, TransferFactory, coinbase_transaction
from repro.sim.rng import RngStream


class TestEmission:
    def test_mid_2018_reward_level(self):
        # Monero's reward in mid-2018 was ≈4.7 XMR
        assert base_reward(GENERATED_AT_START) == pytest.approx(4.7 * ATOMIC_PER_XMR, rel=1e-6)

    def test_reward_decreases_with_supply(self):
        assert base_reward(GENERATED_AT_START + 10**18) < base_reward(GENERATED_AT_START)

    def test_tail_emission_floor(self):
        assert base_reward(MONEY_SUPPLY) == TAIL_REWARD


class TestDifficultyAdjuster:
    def test_bootstrap_returns_initial(self):
        adjuster = DifficultyAdjuster(initial_difficulty=1234)
        assert adjuster.next_difficulty([], []) == 1234
        assert adjuster.next_difficulty([100], [50]) == 1234

    def test_stable_rate_stable_difficulty(self):
        adjuster = DifficultyAdjuster(window=30, cut=3, initial_difficulty=1000)
        timestamps = [i * 120 for i in range(30)]
        cumulative = [1000 * (i + 1) for i in range(30)]
        nxt = adjuster.next_difficulty(timestamps, cumulative)
        assert 950 <= nxt <= 1050

    def test_fast_blocks_raise_difficulty(self):
        adjuster = DifficultyAdjuster(window=30, cut=3, initial_difficulty=1000)
        timestamps = [i * 60 for i in range(30)]  # 2× too fast
        cumulative = [1000 * (i + 1) for i in range(30)]
        assert adjuster.next_difficulty(timestamps, cumulative) > 1800

    def test_slow_blocks_lower_difficulty(self):
        adjuster = DifficultyAdjuster(window=30, cut=3, initial_difficulty=1000)
        timestamps = [i * 240 for i in range(30)]
        cumulative = [1000 * (i + 1) for i in range(30)]
        assert adjuster.next_difficulty(timestamps, cumulative) < 600

    def test_out_of_order_timestamps_tolerated(self):
        adjuster = DifficultyAdjuster(window=30, cut=3, initial_difficulty=1000)
        timestamps = [i * 120 for i in range(30)]
        timestamps[10], timestamps[11] = timestamps[11], timestamps[10]
        cumulative = [1000 * (i + 1) for i in range(30)]
        assert adjuster.next_difficulty(timestamps, cumulative) > 0

    def test_mismatched_history_rejected(self):
        with pytest.raises(ValueError):
            DifficultyAdjuster().next_difficulty([1, 2], [1])

    def test_hashrate_conversion_matches_paper(self):
        # 55.4G difficulty / 120 s target = 462 MH/s (Section 4.2)
        adjuster = DifficultyAdjuster()
        assert adjuster.hashrate_from_difficulty(55_400_000_000) == pytest.approx(4.62e8, rel=0.01)


def mine_block(chain: Blockchain, timestamp: int, txs=()) -> Block:
    """Find a valid nonce the honest way (FAST params keep this quick)."""
    reward = chain.current_reward()
    height = chain.height + 1
    coinbase = coinbase_transaction(height, reward, "test-pool", height.to_bytes(4, "little"))
    header = BlockHeader(7, 7, timestamp, chain.tip.block_id(), 0)
    difficulty = chain.current_difficulty()
    nonce = 0
    while True:
        block = Block(header=header.with_nonce(nonce), transactions=[coinbase, *txs])
        if hash_meets_difficulty(block.pow_hash(FAST_PARAMS), difficulty):
            return block
        nonce += 1


class TestBlockchain:
    def test_genesis_exists(self, small_chain):
        assert small_chain.height == 0
        assert small_chain.tip.coinbase.is_coinbase

    def test_submit_valid_block(self, small_chain):
        block = mine_block(small_chain, 1_525_000_120)
        small_chain.submit(block)
        assert small_chain.height == 1
        assert small_chain.tip is block

    def test_rejects_wrong_parent(self, small_chain):
        block = mine_block(small_chain, 1_525_000_120)
        small_chain.submit(block)
        with pytest.raises(BlockValidationError, match="tip"):
            small_chain.submit(block)  # same parent again

    def test_rejects_bad_pow(self, small_chain):
        block = mine_block(small_chain, 1_525_000_120)
        bad = Block(header=block.header.with_nonce(block.header.nonce + 1_000_000),
                    transactions=block.transactions)
        # exceedingly unlikely to also satisfy PoW; if it does, skip
        if hash_meets_difficulty(bad.pow_hash(FAST_PARAMS), small_chain.current_difficulty()):
            pytest.skip("lottery nonce")
        with pytest.raises(BlockValidationError, match="PoW"):
            small_chain.submit(bad)

    def test_rejects_wrong_reward(self, small_chain):
        height = small_chain.height + 1
        coinbase = coinbase_transaction(height, small_chain.current_reward() * 2, "greedy")
        header = BlockHeader(7, 7, 1_525_000_120, small_chain.tip.block_id(), 0)
        block = Block(header=header, transactions=[coinbase])
        with pytest.raises(BlockValidationError, match="emission|PoW"):
            # PoW check may trip first; either rejection is correct
            small_chain.submit(block)

    def test_rejects_wrong_coinbase_height(self, small_chain):
        coinbase = coinbase_transaction(99, small_chain.current_reward(), "pool")
        header = BlockHeader(7, 7, 1_525_000_120, small_chain.tip.block_id(), 0)
        block = Block(header=header, transactions=[coinbase])
        chain2 = small_chain
        # force PoW to pass by searching a nonce
        difficulty = chain2.current_difficulty()
        nonce = 0
        while not hash_meets_difficulty(
            Block(header=header.with_nonce(nonce), transactions=[coinbase]).pow_hash(FAST_PARAMS),
            difficulty,
        ):
            nonce += 1
        with pytest.raises(BlockValidationError, match="height"):
            chain2.submit(Block(header=header.with_nonce(nonce), transactions=[coinbase]))

    def test_block_after_lookup(self, small_chain):
        parent_id = small_chain.tip.block_id()
        block = mine_block(small_chain, 1_525_000_120)
        small_chain.submit(block)
        assert small_chain.block_after(parent_id) is block
        assert small_chain.block_after(b"\x99" * 32) is None

    def test_height_of(self, small_chain):
        block = mine_block(small_chain, 1_525_000_120)
        small_chain.submit(block)
        assert small_chain.height_of(block) == 1

    def test_force_append_still_checks_parent(self, small_chain):
        coinbase = coinbase_transaction(1, small_chain.current_reward(), "pool")
        header = BlockHeader(7, 7, 1_525_000_120, b"\x42" * 32, 0)
        with pytest.raises(BlockValidationError):
            small_chain.force_append(Block(header=header, transactions=[coinbase]))

    def test_generated_supply_tracks_rewards(self, small_chain):
        before = small_chain.generated_atomic
        block = mine_block(small_chain, 1_525_000_120)
        small_chain.submit(block)
        assert small_chain.generated_atomic == before + block.reward()

    def test_total_rewards(self, small_chain):
        block = mine_block(small_chain, 1_525_000_120)
        small_chain.submit(block)
        assert small_chain.total_rewards_atomic() == block.reward()

    def test_difficulty_cache_invalidated_on_append(self, small_chain):
        d0 = small_chain.current_difficulty()
        assert small_chain.current_difficulty() == d0  # cached path
        small_chain.submit(mine_block(small_chain, 1_525_000_120))
        assert isinstance(small_chain.current_difficulty(), int)


class TestMempool:
    def test_add_and_take(self):
        pool = Mempool()
        factory = TransferFactory(rng=RngStream(2, "mp"))
        txs = [factory.make() for _ in range(5)]
        for tx in txs:
            pool.add(tx)
        assert len(pool) == 5
        assert pool.take(3) == txs[:3]

    def test_coinbase_rejected(self):
        pool = Mempool()
        with pytest.raises(ValueError):
            pool.add(coinbase_transaction(1, 100, "x"))

    def test_remove_included(self, small_chain):
        pool = Mempool()
        factory = TransferFactory(rng=RngStream(3, "mp"))
        txs = [factory.make() for _ in range(3)]
        for tx in txs:
            pool.add(tx)
        block = mine_block(small_chain, 1_525_000_120, txs=txs[:2])
        assert pool.remove_included(block) == 2
        assert len(pool) == 1
