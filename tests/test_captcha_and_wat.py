"""Tests for the captcha service and the WAT printer."""

import pytest

from repro.coinhive.captcha import CaptchaService
from repro.core.nocoin import default_nocoin_list
from repro.wasm.builder import ModuleBlueprint
from repro.wasm.decoder import decode_module
from repro.wasm.wat import disassemble, print_function, print_module
from repro.web.html import extract_scripts


class TestCaptcha:
    @pytest.fixture()
    def service(self):
        return CaptchaService()

    def test_create_and_solve(self, service):
        challenge = service.create("SITEKEY", goal_hashes=256, now=0.0)
        assert not challenge.solved
        assert service.submit_hashes(challenge.challenge_id, 200, now=1.0) is None
        token = service.submit_hashes(challenge.challenge_id, 56, now=2.0)
        assert token is not None
        assert challenge.solved

    def test_verification_single_use(self, service):
        challenge = service.create("S", 10, now=0.0)
        token = service.submit_hashes(challenge.challenge_id, 10, now=1.0)
        assert service.verify(token, now=2.0)
        assert not service.verify(token, now=3.0)  # consumed

    def test_verification_expires(self, service):
        challenge = service.create("S", 10, now=0.0)
        token = service.submit_hashes(challenge.challenge_id, 10, now=1.0)
        assert not service.verify(token, now=1.0 + service.token_ttl + 1)

    def test_resubmit_after_solve_returns_same_token(self, service):
        challenge = service.create("S", 10, now=0.0)
        first = service.submit_hashes(challenge.challenge_id, 10, now=1.0)
        second = service.submit_hashes(challenge.challenge_id, 5, now=2.0)
        assert first == second

    def test_progress(self, service):
        challenge = service.create("S", 100, now=0.0)
        service.submit_hashes(challenge.challenge_id, 25, now=1.0)
        assert challenge.progress() == 0.25

    def test_unknown_challenge(self, service):
        with pytest.raises(KeyError):
            service.submit_hashes("nope", 1, now=0.0)

    def test_invalid_goal(self, service):
        with pytest.raises(ValueError):
            service.create("S", 0, now=0.0)

    def test_widget_is_nocoin_detectable(self, service):
        challenge = service.create("SITEKEY", 512, now=0.0)
        html = service.widget_html(challenge)
        hits = default_nocoin_list().match_scripts(extract_scripts(html))
        assert hits  # the captcha loader is a coinhive.com URL

    def test_bogus_verification_token(self, service):
        assert not service.verify("deadbeef", now=0.0)


class TestWatPrinter:
    def test_disassemble_miner(self, coinhive_wasm):
        text = disassemble(coinhive_wasm)
        assert text.startswith("(module")
        assert "i32.xor" in text
        assert '(export "_cryptonight_hash" (func' in text
        assert "(memory 33" in text

    def test_function_names_used(self, coinhive_wasm):
        module = decode_module(coinhive_wasm)
        text = print_function(module, 0)
        assert text.startswith("(func $cryptonight_hash")

    def test_unnamed_functions_get_index_comment(self, corpus):
        module = decode_module(corpus.build(ModuleBlueprint("notgiven688", 0)))
        text = print_function(module, 0)
        assert "(;1;)" in text  # index 1: after one imported function

    def test_max_functions_truncation(self, coinhive_wasm):
        module = decode_module(coinhive_wasm)
        text = print_module(module, max_functions=1)
        assert "more functions" in text

    def test_memarg_rendering(self, coinhive_wasm):
        text = disassemble(coinhive_wasm)
        assert "offset=" in text

    def test_control_flow_indented(self, coinhive_wasm):
        text = disassemble(coinhive_wasm)
        lines = text.splitlines()
        loop_lines = [l for l in lines if l.strip() == "loop"]
        assert loop_lines
        # something after a loop is deeper-indented
        index = lines.index(loop_lines[0])
        assert len(lines[index + 1]) - len(lines[index + 1].lstrip()) > len(
            loop_lines[0]
        ) - len(loop_lines[0].lstrip())
