"""Multi-window burn-rate alerting: rules, windows, and the fire/resolve
state machine — plus the issue's acceptance scenario end to end.

The synthetic-feed tests drive :meth:`AlertRuleSet.evaluate` with
hand-built tick records so every transition (unpopulated window, short
window violated but long not, fire, hysteresis while firing, resolve on
short-window recovery) is pinned without a service in the loop. The
acceptance tests then run the real seeded loadgen: a 2x-capacity
overload MUST fire a burn-rate alert citing window, threshold, observed
value, and degradation tier; the same seed at quarter capacity fires
none; and twin runs serialize byte-identically.
"""

from __future__ import annotations

import pytest

from repro.obs.alerts import (
    AlertRule,
    AlertRuleSet,
    default_service_rules,
    windowed_value,
    worst_tier,
)
from repro.obs.metrics import DEFAULT_BOUNDS
from repro.obs.timeseries import HistogramWindow, TickRecord


def _tick(tick, counters=None, latency=None):
    histograms = {}
    if latency is not None:
        counts = [0] * (len(DEFAULT_BOUNDS) + 1)
        for seconds, n in latency:
            bucket = len(DEFAULT_BOUNDS)
            for i, bound in enumerate(DEFAULT_BOUNDS):
                if seconds <= bound:
                    bucket = i
                    break
            counts[bucket] += n
        histograms["service.latency"] = HistogramWindow(
            bounds=DEFAULT_BOUNDS,
            counts=counts,
            count=sum(counts),
            total_ns=sum(int(s * 1e9) * n for s, n in latency),
        )
    return TickRecord(
        tick=tick, time=float(tick + 1), counters=counters or {}, histograms=histograms
    )


def _shed_tick(tick, offered=10, rejected=8):
    return _tick(
        tick,
        counters={
            "service.requests.offered": offered,
            "service.rejected.queue_full": rejected,
            "service.tier.static-only": offered - rejected,
        },
    )


def _quiet_tick(tick, offered=10):
    return _tick(
        tick,
        counters={
            "service.requests.offered": offered,
            "service.requests.completed": offered,
            "service.tier.full": offered,
        },
    )


class TestRuleParsing:
    def test_parse_builds_sorted_windows(self):
        rule = AlertRule.parse("r", "shed_rate>0.2", windows=(15.0, 5.0))
        assert rule.windows == (5.0, 15.0)
        assert rule.target == "shed_rate"
        assert rule.op == ">"
        assert rule.value == 0.2
        assert rule.expr == "shed_rate>0.2"

    def test_relative_expressions_are_rejected(self):
        with pytest.raises(ValueError, match="absolute"):
            AlertRule.parse("r", "p99>1.5x", windows=(5.0,))

    def test_garbage_expression_is_rejected(self):
        with pytest.raises(ValueError, match="bad alert expression"):
            AlertRule.parse("r", "p99 is large", windows=(5.0,))

    def test_windows_must_be_positive_and_nonempty(self):
        with pytest.raises(ValueError, match="at least one window"):
            AlertRule.parse("r", "p99>1", windows=())
        with pytest.raises(ValueError, match="positive"):
            AlertRule.parse("r", "p99>1", windows=(0.0, 5.0))

    def test_default_rules_cover_shed_latency_error(self):
        rules = default_service_rules()
        assert {rule.name for rule in rules} == {
            "shed-burn", "latency-burn", "error-burn",
        }
        assert all(rule.windows == (5.0, 15.0) for rule in rules)


class TestWindowedValue:
    def test_counter_resolves_to_per_second_rate(self):
        records = [_tick(0, {"work.done": 4}), _tick(1, {"work.done": 6})]
        assert windowed_value("work.done", records, 1.0) == 5.0

    def test_shed_rate_is_ratio_of_window_deltas(self):
        records = [_shed_tick(0), _shed_tick(1, offered=10, rejected=0)]
        assert windowed_value("shed_rate", records, 1.0) == pytest.approx(0.4)

    def test_latency_shorthand_reads_windowed_histogram(self):
        records = [_tick(0, latency=[(0.004, 9), (2.0, 1)])]
        assert windowed_value("p50", records, 1.0) == 0.005
        # window quantiles are bucket-resolution: 2.0s is covered by the
        # 5.0s bucket, and a window has no exact max to clamp to
        assert windowed_value("p99", records, 1.0) == 5.0

    def test_explicit_histogram_stat(self):
        records = [_tick(0, latency=[(0.004, 2)])]
        assert windowed_value("service.latency.count", records, 1.0) == 2.0

    def test_empty_window_is_zero(self):
        assert windowed_value("p99", [], 1.0) == 0.0
        assert windowed_value("shed_rate", [_tick(0)], 1.0) == 0.0

    def test_worst_tier_prefers_most_degraded(self):
        records = [
            _tick(0, {"service.tier.full": 5, "service.tier.no-dynamic": 1}),
        ]
        assert worst_tier(records) == "no-dynamic"
        assert worst_tier([_tick(0)]) == "n/a"


class TestFireResolveStateMachine:
    def _rules(self):
        return AlertRuleSet(
            rules=(AlertRule.parse("shed-burn", "shed_rate>0.2", windows=(2.0, 4.0)),)
        )

    def test_no_fire_until_longest_window_populated(self):
        rules = self._rules()
        firing = {}
        records = [_shed_tick(0)]
        assert rules.evaluate(records, 1.0, firing) == []
        records.append(_shed_tick(1))
        records.append(_shed_tick(2))
        assert rules.evaluate(records, 1.0, firing) == []
        assert not firing.get("shed-burn")

    def test_fires_once_every_window_violates(self):
        rules = self._rules()
        firing = {}
        records = [_shed_tick(t) for t in range(4)]
        events = rules.evaluate(records, 1.0, firing)
        assert [event.kind for event in events] == ["fire"]
        event = events[0]
        assert event.rule == "shed-burn"
        assert event.tier == "static-only"
        # evidence cites both windows with observed value and threshold
        assert [w[0] for w in event.windows] == [2.0, 4.0]
        assert all(observed == pytest.approx(0.8) for _, observed, _, _ in event.windows)
        assert all(threshold == 0.2 for _, _, threshold, _ in event.windows)
        assert "2s window observed 0.8" in event.summary
        assert "static-only" in event.summary
        assert firing["shed-burn"] is True

    def test_short_window_violation_alone_does_not_fire(self):
        rules = self._rules()
        firing = {}
        # three quiet ticks then one bad one: short window (2 ticks) is at
        # 0.4 but the long window (4 ticks) is only 0.2 — not > 0.2
        records = [_quiet_tick(t) for t in range(3)] + [_shed_tick(3)]
        assert rules.evaluate(records, 1.0, firing) == []

    def test_no_refire_while_still_firing(self):
        rules = self._rules()
        firing = {}
        records = [_shed_tick(t) for t in range(4)]
        rules.evaluate(records, 1.0, firing)
        records.append(_shed_tick(4))
        assert rules.evaluate(records, 1.0, firing) == []

    def test_resolves_when_short_window_recovers(self):
        rules = self._rules()
        firing = {}
        records = [_shed_tick(t) for t in range(4)]
        rules.evaluate(records, 1.0, firing)
        records.append(_quiet_tick(4))
        assert rules.evaluate(records, 1.0, firing) == []  # one good tick isn't enough
        records.append(_quiet_tick(5))
        events = rules.evaluate(records, 1.0, firing)
        assert [event.kind for event in events] == ["resolve"]
        assert events[0].windows[0][0] == 2.0
        assert firing["shed-burn"] is False

    def test_refires_after_resolution(self):
        rules = self._rules()
        firing = {}
        records = [_shed_tick(t) for t in range(4)]
        rules.evaluate(records, 1.0, firing)
        records += [_quiet_tick(4), _quiet_tick(5)]
        rules.evaluate(records, 1.0, firing)
        records += [_shed_tick(6), _shed_tick(7)]
        # long window: ticks 4-7 = quiet,quiet,shed,shed → 0.4 > 0.2; fires again
        events = rules.evaluate(records[-4:], 1.0, firing)
        assert [event.kind for event in events] == ["fire"]


# ---------------------------------------------------------------------------
# acceptance: the seeded overload fires, quarter capacity stays silent


OVERLOAD = dict(
    seed=11, dataset="alexa", scale=0.1, duration=20.0, tenants=4,
    timeseries_interval=0.5, cooldown=10.0,
)


@pytest.fixture(scope="module")
def overload_report():
    from repro.service.loadgen import LoadgenConfig, run_loadgen

    # ~2x the server's nominal capacity (~24 r/s)
    return run_loadgen(LoadgenConfig(rate=48.0, fault_profile="heavy", **OVERLOAD))


class TestAcceptance:
    def test_overload_fires_shed_burn_with_full_evidence(self, overload_report):
        series = overload_report.timeseries
        fired = series.fired("shed-burn")
        assert fired, "2x-capacity overload must fire the shed-burn alert"
        event = fired[0]
        assert event.expr == "shed_rate>0.2"
        # the event cites every window with observed value and threshold
        assert [w[0] for w in event.windows] == [5.0, 15.0]
        for _, observed, threshold, op in event.windows:
            assert observed > threshold
            assert op == ">"
        # and the degradation tier in force
        assert event.tier in ("static-only", "no-classifier", "no-dynamic", "full")
        assert event.tier != "full", "an overloaded server should be degrading"

    def test_overload_alert_resolves_during_cooldown(self, overload_report):
        series = overload_report.timeseries
        resolved = series.resolved("shed-burn")
        assert resolved, "cooldown must let the shed-burn alert resolve on tape"
        assert resolved[0].tick > series.fired("shed-burn")[0].tick
        assert overload_report.alerts_fired >= 1
        assert overload_report.alerts_resolved >= 1

    def test_quarter_capacity_fires_nothing(self):
        from repro.service.loadgen import LoadgenConfig, run_loadgen

        report = run_loadgen(LoadgenConfig(rate=6.0, **OVERLOAD))
        assert report.timeseries.alerts == []
        assert report.alerts_fired == 0

    def test_twin_runs_serialize_byte_identically(self, overload_report):
        from repro.service.loadgen import LoadgenConfig, run_loadgen

        twin = run_loadgen(LoadgenConfig(rate=48.0, fault_profile="heavy", **OVERLOAD))
        assert twin.timeseries.to_jsonl() == overload_report.timeseries.to_jsonl()

    def test_summary_rows_report_ticks_and_alerts(self, overload_report):
        rows = dict(
            (row[0], row[1]) for row in overload_report.summary_rows()
        )
        assert rows["timeseries ticks"] == len(overload_report.recorder.records)
        fired = overload_report.alerts_fired
        resolved = overload_report.alerts_resolved
        assert rows["alerts fired/resolved"] == f"{fired}/{resolved}"
