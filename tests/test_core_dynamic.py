"""Tests for the execution-based detector extension."""

import pytest

from repro.core.classifier import MinerClassifier
from repro.core.dynamic import (
    DynamicMinerDetector,
    pad_with_dead_code,
    profile_execution,
)
from repro.core.features import extract_features
from repro.core.signatures import SignatureDatabase
from repro.wasm.builder import ModuleBlueprint

pytestmark = pytest.mark.filterwarnings("ignore")


class TestProfileExecution:
    def test_miner_profile_is_bitop_heavy(self, coinhive_wasm):
        profile = profile_execution(coinhive_wasm)
        assert profile.completed
        assert profile.executed > 500
        assert profile.xor_density + profile.shift_density > 0.08
        assert profile.rotate_count >= 4
        assert profile.float_density < 0.02

    def test_benign_profile_is_float_heavy(self, corpus):
        profile = profile_execution(corpus.build(ModuleBlueprint("math-lib", 0)))
        assert profile.completed
        assert profile.float_density > 0.1

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            profile_execution(12345)

    def test_executed_scales_with_iterations(self, coinhive_wasm):
        small = profile_execution(coinhive_wasm, iterations=4)
        large = profile_execution(coinhive_wasm, iterations=64)
        assert large.executed > small.executed


class TestDynamicDetector:
    def test_detects_corpus_miners(self, corpus):
        detector = DynamicMinerDetector()
        for family in ("coinhive", "cryptoloot", "notgiven688"):
            assert detector.is_miner(corpus.build(ModuleBlueprint(family, 0))), family

    def test_rejects_benign(self, corpus):
        detector = DynamicMinerDetector()
        for family in ("game-engine", "math-lib", "compression", "image-filter"):
            assert not detector.is_miner(corpus.build(ModuleBlueprint(family, 0))), family

    def test_rejects_garbage(self):
        assert not DynamicMinerDetector().is_miner(b"not wasm")


class TestDeadCodePadding:
    def test_padding_preserves_decode_and_execution(self, coinhive_wasm):
        padded = pad_with_dead_code(coinhive_wasm)
        profile = profile_execution(padded)
        original = profile_execution(coinhive_wasm)
        # executed behaviour identical: dead functions never run
        assert profile.executed == original.executed
        assert profile.float_density == original.float_density

    def test_padding_inflates_static_float_counts(self, coinhive_wasm):
        padded = pad_with_dead_code(coinhive_wasm)
        static = extract_features(padded)
        assert static.float_density > 0.3  # statically it looks like a codec

    def test_static_classifier_fooled_dynamic_not(self, coinhive_wasm):
        """The headline property: padding defeats the static instruction-mix
        cascade (unknown signature, stripped names) but not the dynamic one."""
        padded = pad_with_dead_code(coinhive_wasm)
        # strip names so the static cascade must rely on instruction mix
        from repro.wasm.decoder import decode_module
        from repro.wasm.encoder import encode_module

        module = decode_module(padded)
        module.func_names = {}
        module.module_name = None
        module.exports = [e for e in module.exports if e.kind != 0 or not e.name.startswith("_crypto")] or module.exports
        stripped = encode_module(module)

        static = MinerClassifier(database=SignatureDatabase())
        dynamic = DynamicMinerDetector()
        static_verdict = static.classify_wasm(stripped)
        assert not static_verdict.is_miner          # fooled
        assert dynamic.is_miner(padded)             # not fooled
