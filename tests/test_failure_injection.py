"""Failure-injection tests: the pipelines must degrade, not break.

Real crawls hit dead DNS, TLS-less hosts, hanging servers, truncated
binaries, and mid-observation service outages. Each scenario here injects
one failure class and asserts the affected component (a) survives and
(b) accounts for the failure honestly.
"""

import pytest

from repro.analysis.crawl import ZgrabCampaign
from repro.core.detector import PageDetector
from repro.core.pool_association import PoolObserver
from repro.core.signatures import SignatureDatabase
from repro.sim.events import EventLoop
from repro.web.browser import BrowserConfig, HeadlessBrowser
from repro.web.http import Resource, SyntheticWeb
from repro.web.scripts import MinerBehavior, inline_key
from repro.web.websocket import WebSocketChannel, WebSocketClosed


class TestCrawlerResilience:
    def test_zgrab_campaign_counts_failures(self, alexa_population):
        scan = ZgrabCampaign(population=alexa_population).scan(0)
        # the population contains http-only sites: TLS failures expected
        assert scan.fetch_failures > 0
        assert scan.domains_probed == len(alexa_population.sites)

    def test_browser_survives_dead_subresources(self):
        web = SyntheticWeb()
        html = (
            "<html><head>"
            '<script src="https://gone.example/app.js"></script>'
            '<script src="http://www.site.com/ok.js"></script>'
            "</head><body>x</body></html>"
        )
        web.register_page("http://www.site.com/", html.encode())
        web.register("http://www.site.com/ok.js", Resource(content=b"/*ok*/"))
        result = HeadlessBrowser(web).visit("http://www.site.com/")
        assert result.status == "ok"

    def test_browser_timeout_on_hanging_page_with_no_load_event(self):
        """A page that loads but whose scripts keep the DOM churning past
        every cap still finishes by the load+5s rule."""
        web = SyntheticWeb()
        web.register_page("http://www.busy.com/", b"<html><body></body></html>")
        browser = HeadlessBrowser(web, config=BrowserConfig())
        result = browser.visit("http://www.busy.com/")
        assert result.finished_at <= 15.0 + browser.loop.now

    def test_miner_with_dead_wasm_url_mines_nothing(self):
        web = SyntheticWeb()
        inline = "m('T1');"
        behavior = MinerBehavior(
            wasm_url="https://dead.cdn/cn.wasm",
            socket_url="wss://nope.pool/x",
            token="T1",
        )
        web.register_page(
            "http://www.m.com/", f"<html><head><script>{inline}</script></head></html>".encode()
        )
        browser = HeadlessBrowser(web, behavior_registry={inline_key(inline): behavior})
        result = browser.visit("http://www.m.com/")
        assert not result.has_wasm()
        assert not result.websocket_frames

    def test_miner_with_dead_pool_endpoint(self, corpus):
        from repro.wasm.builder import ModuleBlueprint

        web = SyntheticWeb()
        wasm = corpus.build(ModuleBlueprint("coinhive", 0))
        web.register("https://cdn.x/cn.wasm", Resource(content=wasm, content_type="application/wasm"))
        inline = "m('T2');"
        behavior = MinerBehavior(
            wasm_url="https://cdn.x/cn.wasm",
            socket_url="wss://unregistered.pool/x",
            token="T2",
        )
        web.register_page(
            "http://www.m.com/", f"<html><head><script>{inline}</script></head></html>".encode()
        )
        browser = HeadlessBrowser(web, behavior_registry={inline_key(inline): behavior})
        result = browser.visit("http://www.m.com/")
        assert result.has_wasm()        # the dump still happened
        assert not result.websocket_frames  # but no pool traffic


class TestDetectorResilience:
    def test_truncated_wasm_dump_not_a_crash(self, coinhive_wasm):
        detector = PageDetector()
        from repro.web.browser import PageResult

        page = PageResult(url="x", final_html="<html></html>")
        page.wasm_dumps = [coinhive_wasm[: len(coinhive_wasm) // 2]]
        report = detector.detect_page("x.com", page)
        assert not report.is_miner  # unparseable → not classified as miner

    def test_adversarial_wasm_magic_only(self):
        detector = PageDetector()
        from repro.web.browser import PageResult

        page = PageResult(url="x", final_html="")
        page.wasm_dumps = [b"\x00asm\x01\x00\x00\x00" + b"\xff" * 64]
        report = detector.detect_page("x.com", page)
        assert report.miner is None or not report.miner.is_miner

    def test_error_page_reported_as_error(self):
        detector = PageDetector()
        from repro.web.browser import PageResult

        page = PageResult(url="x", status="error", error="name not resolved")
        report = detector.detect_page("x.com", page)
        assert report.status == "error"
        assert not report.is_miner


class TestObserverResilience:
    def test_observer_survives_total_outage(self, coinhive_service):
        coinhive_service.add_outage(0.0, 10_000.0)
        observer = PoolObserver(
            fetch_input=coinhive_service.pow_input_for_endpoint,
            endpoints=coinhive_service.endpoints(),
            detransform=coinhive_service.obfuscator.revert,
        )
        loop = EventLoop()
        observer.run(loop, duration=30.0)
        assert observer.failures == observer.polls
        assert observer.max_inputs_per_block() == 0

    def test_observer_resumes_after_outage(self, coinhive_service):
        coinhive_service.add_outage(0.0, 10.0)
        observer = PoolObserver(
            fetch_input=coinhive_service.pow_input_for_endpoint,
            endpoints=coinhive_service.endpoints()[:4],
            poll_interval=5.0,
            detransform=coinhive_service.obfuscator.revert,
        )
        loop = EventLoop()
        observer.run(loop, duration=30.0)
        assert observer.failures > 0
        assert observer.observations  # post-outage polls succeeded

    def test_observer_tolerates_garbage_blobs(self):
        observer = PoolObserver(
            fetch_input=lambda endpoint, now: b"\x00\x01garbage",
            endpoints=["e1", "e2"],
        )
        observer.poll_once(0.0)
        assert observer.failures == 2
        assert not observer.observations


class TestWebSocketFailureModes:
    def test_send_on_closed_channel_raises(self):
        loop = EventLoop()
        channel = WebSocketChannel(url="wss://x/y", loop=loop, server_handler=lambda c, p: None)
        channel.close()
        with pytest.raises(WebSocketClosed):
            channel.send("hello")

    def test_server_send_after_close_is_dropped(self):
        loop = EventLoop()
        received = []
        channel = WebSocketChannel(url="wss://x/y", loop=loop, server_handler=lambda c, p: None)
        channel.on_message = received.append
        channel.server_send("late")
        channel.close()
        loop.run_all()
        assert received == []

    def test_in_flight_frames_cancelled_on_close(self):
        loop = EventLoop()
        delivered = []
        channel = WebSocketChannel(
            url="wss://x/y", loop=loop, server_handler=lambda c, p: delivered.append(p)
        )
        channel.send("frame")
        channel.close()
        loop.run_all()
        assert delivered == []
