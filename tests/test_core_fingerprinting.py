"""Tests for signatures, features, and the classifier cascade."""

import pytest

from repro.core.classifier import Classification, MinerClassifier
from repro.core.features import extract_features
from repro.core.signatures import (
    SignatureDatabase,
    SignatureRecord,
    build_reference_database,
    unordered_signature,
    wasm_signature,
    whole_module_signature,
)
from repro.wasm.builder import ModuleBlueprint, WasmCorpusBuilder, all_blueprints
from repro.wasm.decoder import WasmDecodeError, decode_module
from repro.wasm.encoder import encode_module


class TestSignature:
    def test_deterministic(self, coinhive_wasm):
        assert wasm_signature(coinhive_wasm) == wasm_signature(coinhive_wasm)

    def test_hex_sha256(self, coinhive_wasm):
        signature = wasm_signature(coinhive_wasm)
        assert len(signature) == 64
        int(signature, 16)

    def test_signature_ignores_name_section(self, coinhive_wasm):
        """Identical code with stripped names keeps the signature — the
        whole point of hashing function bodies instead of the module."""
        module = decode_module(coinhive_wasm)
        module.func_names = {}
        module.module_name = None
        stripped = encode_module(module)
        assert stripped != coinhive_wasm
        assert wasm_signature(stripped) == wasm_signature(coinhive_wasm)
        assert whole_module_signature(stripped) != whole_module_signature(coinhive_wasm)

    def test_signature_is_order_sensitive(self, corpus):
        """The paper's 'strict order' combination."""
        module = decode_module(corpus.build(ModuleBlueprint("coinhive", 1)))
        module.codes = list(reversed(module.codes))
        module.func_type_indices = list(reversed(module.func_type_indices))
        reordered = encode_module(module)
        original = corpus.build(ModuleBlueprint("coinhive", 1))
        assert wasm_signature(reordered) != wasm_signature(original)
        # the unordered ablation variant is reorder-invariant
        assert unordered_signature(reordered) == unordered_signature(original)

    def test_non_wasm_raises(self):
        with pytest.raises(WasmDecodeError):
            wasm_signature(b"not wasm at all")


class TestDatabase:
    def test_reference_database_covers_corpus(self, signature_db, corpus):
        assert len(signature_db) == len(all_blueprints())
        for blueprint in all_blueprints()[:20]:
            record = signature_db.lookup(corpus.build(blueprint))
            assert record is not None
            assert record.family == blueprint.family

    def test_lookup_unknown_returns_none(self, signature_db):
        other = WasmCorpusBuilder(root_seed=999)
        assert signature_db.lookup(other.build(ModuleBlueprint("coinhive", 0))) is None

    def test_lookup_garbage_returns_none(self, signature_db):
        assert signature_db.lookup(b"garbage") is None

    def test_collision_detection(self):
        database = SignatureDatabase()
        database.add(SignatureRecord("s1", "coinhive", True))
        with pytest.raises(ValueError, match="collision"):
            database.add(SignatureRecord("s1", "cryptoloot", True))

    def test_idempotent_same_family(self):
        database = SignatureDatabase()
        database.add(SignatureRecord("s1", "coinhive", True))
        database.add(SignatureRecord("s1", "coinhive", True, variant=1))
        assert len(database) == 1

    def test_json_roundtrip(self, signature_db):
        restored = SignatureDatabase.from_json(signature_db.to_json())
        assert len(restored) == len(signature_db)
        assert restored.miner_signatures() == signature_db.miner_signatures()

    def test_families(self, signature_db):
        families = signature_db.families()
        assert "coinhive" in families
        assert "math-lib" in families


class TestFeatures:
    def test_name_hints_found(self, coinhive_wasm):
        features = extract_features(coinhive_wasm)
        assert features.has_hash_names()
        assert any("cryptonight" in h.lower() for h in features.name_hints)

    def test_no_hints_on_benign(self, benign_wasm):
        features = extract_features(benign_wasm)
        assert not features.has_hash_names()

    def test_counts_are_consistent(self, coinhive_wasm):
        features = extract_features(coinhive_wasm)
        assert features.total_instructions > 0
        for count in (features.xor_count, features.shift_count, features.load_count):
            assert 0 <= count <= features.total_instructions

    def test_accepts_module_object(self, coinhive_wasm):
        module = decode_module(coinhive_wasm)
        assert extract_features(module).total_instructions == extract_features(coinhive_wasm).total_instructions

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            extract_features(42)

    def test_densities_zero_for_empty(self):
        from repro.core.features import WasmFeatures

        empty = WasmFeatures(0, 0, 0, 0, 0, 0, 0, 0, 0, 0)
        assert empty.xor_density == 0.0
        assert empty.bitop_density == 0.0


class TestClassifier:
    @pytest.fixture()
    def classifier(self, signature_db):
        return MinerClassifier(database=signature_db)

    def test_known_miner_by_signature(self, classifier, coinhive_wasm):
        result = classifier.classify_wasm(coinhive_wasm)
        assert result.is_miner
        assert result.family == "coinhive"
        assert result.method == "signature"
        assert result.confidence == 1.0

    def test_known_benign_by_signature(self, classifier, benign_wasm):
        result = classifier.classify_wasm(benign_wasm)
        assert not result.is_miner

    def test_unknown_variant_by_name_hint(self, signature_db):
        """A new build (different seed) of a known concept: signature
        misses, names still give it away."""
        classifier = MinerClassifier(database=signature_db)
        novel = WasmCorpusBuilder(root_seed=4242).build(ModuleBlueprint("coinhive", 0))
        result = classifier.classify_wasm(novel)
        assert result.is_miner
        assert result.method == "name-hint"

    def test_stripped_unknown_by_instruction_mix(self, signature_db):
        classifier = MinerClassifier(database=signature_db)
        novel = WasmCorpusBuilder(root_seed=4242).build(ModuleBlueprint("notgiven688", 3))
        result = classifier.classify_wasm(novel)
        assert result.is_miner
        assert result.method in ("instruction-mix", "backend")

    def test_backend_resolves_family(self, signature_db):
        classifier = MinerClassifier(database=signature_db)
        novel = WasmCorpusBuilder(root_seed=4242).build(ModuleBlueprint("notgiven688", 3))
        result = classifier.classify_wasm(
            novel, websocket_urls=("wss://notgiven688.webminepool.com/ws1",)
        )
        assert result.family == "notgiven688"

    def test_unknown_backend_becomes_unknown_wss(self, signature_db):
        classifier = MinerClassifier(database=signature_db)
        novel = WasmCorpusBuilder(root_seed=4242).build(ModuleBlueprint("unknown-wss", 3))
        result = classifier.classify_wasm(
            novel, websocket_urls=("wss://3.unknown-pool.net/ws",)
        )
        assert result.is_miner
        assert result.family == "unknown-wss"

    def test_unknown_benign_stays_benign(self, signature_db):
        classifier = MinerClassifier(database=signature_db)
        novel = WasmCorpusBuilder(root_seed=4242).build(ModuleBlueprint("game-engine", 2))
        result = classifier.classify_wasm(novel)
        assert not result.is_miner

    def test_compression_hard_negative(self, signature_db):
        classifier = MinerClassifier(database=signature_db)
        novel = WasmCorpusBuilder(root_seed=4242).build(ModuleBlueprint("compression", 1))
        assert not classifier.classify_wasm(novel).is_miner

    def test_invalid_bytes(self, classifier):
        result = classifier.classify_wasm(b"\x00asm\x01\x00\x00\x00garbage!!")
        assert not result.is_miner
        assert result.family == "invalid"

    def test_page_is_miner_picks_miner_among_dumps(self, classifier, coinhive_wasm, benign_wasm):
        result = classifier.page_is_miner([benign_wasm, coinhive_wasm])
        assert result is not None and result.family == "coinhive"

    def test_page_without_miners(self, classifier, benign_wasm):
        assert classifier.page_is_miner([benign_wasm]) is None

    def test_corpus_wide_accuracy(self, signature_db, corpus):
        """Every corpus module classifies to its ground truth via signature."""
        classifier = MinerClassifier(database=signature_db)
        for blueprint in all_blueprints():
            result = classifier.classify_wasm(corpus.build(blueprint))
            assert result.is_miner == blueprint.profile().is_miner, blueprint.label

    def test_novel_corpus_accuracy_without_signatures(self, corpus):
        """With an EMPTY database the cascade alone must separate the
        corpus almost perfectly — the paper's 'beyond block lists' claim."""
        classifier = MinerClassifier(database=SignatureDatabase())
        wrong = []
        blueprints = all_blueprints()
        for blueprint in blueprints:
            profile = blueprint.profile()
            urls = (profile.backend % 1,) if (profile.is_miner and profile.backend) else ()
            result = classifier.classify_wasm(corpus.build(blueprint), websocket_urls=urls)
            if result.is_miner != profile.is_miner:
                wrong.append(blueprint.label)
        assert len(wrong) <= len(blueprints) * 0.03, wrong
