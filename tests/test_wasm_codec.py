"""Encoder/decoder round-trip and malformed-input tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.wasm.builder import ModuleBlueprint, WasmCorpusBuilder, all_blueprints
from repro.wasm.decoder import WasmDecodeError, decode_module, function_body_bytes
from repro.wasm.encoder import encode_instr, encode_module
from repro.wasm.types import (
    CodeEntry,
    Export,
    FuncType,
    Import,
    Instr,
    Limits,
    Module,
    ValType,
)


def minimal_module() -> Module:
    module = Module()
    module.types = [FuncType((ValType.I32,), (ValType.I32,))]
    module.func_type_indices = [0]
    module.memories = [Limits(1, 4)]
    module.exports = [Export("run", 0, 0), Export("memory", 2, 0)]
    module.codes = [
        CodeEntry(
            locals_=[(2, ValType.I32)],
            body=[
                Instr("local.get", (0,)),
                Instr("i32.const", (42,)),
                Instr("i32.add", ()),
                Instr("end"),
            ],
        )
    ]
    module.func_names = {0: "run"}
    module.module_name = "minimal"
    return module


class TestRoundTrip:
    def test_minimal_module(self):
        data = encode_module(minimal_module())
        module = decode_module(data)
        assert len(module.types) == 1
        assert module.types[0].params == (ValType.I32,)
        assert module.exports[0].name == "run"
        assert module.func_names[0] == "run"
        assert module.module_name == "minimal"
        assert encode_module(module) == data

    def test_magic_and_version(self):
        data = encode_module(minimal_module())
        assert data[:4] == b"\x00asm"
        assert data[4:8] == b"\x01\x00\x00\x00"

    def test_import_roundtrip(self):
        module = minimal_module()
        module.imports = [
            Import("env", "abort", 0, 0),
            Import("env", "memory", 2, Limits(2, None)),
            Import("env", "g", 3, (ValType.I64, True)),
        ]
        decoded = decode_module(encode_module(module))
        assert decoded.imports[0].name == "abort"
        assert decoded.imports[1].desc == Limits(2, None)
        assert decoded.imports[2].desc == (ValType.I64, True)

    def test_negative_i32_const(self):
        module = minimal_module()
        module.codes[0].body[1] = Instr("i32.const", (-1000,))
        decoded = decode_module(encode_module(module))
        assert decoded.codes[0].body[1].operands == (-1000,)

    def test_memarg_roundtrip(self):
        module = minimal_module()
        module.codes[0].body = [
            Instr("local.get", (0,)),
            Instr("i32.load", (2, 1024)),
            Instr("end"),
        ]
        decoded = decode_module(encode_module(module))
        assert decoded.codes[0].body[1].operands == (2, 1024)

    def test_br_table_roundtrip(self):
        module = minimal_module()
        module.codes[0].body = [
            Instr("block", (None,)),
            Instr("local.get", (0,)),
            Instr("br_table", ((0, 0), 0)),
            Instr("end"),
            Instr("i32.const", (1,)),
            Instr("end"),
        ]
        decoded = decode_module(encode_module(module))
        assert decoded.codes[0].body[2].operands == ((0, 0), 0)

    def test_float_consts_roundtrip(self):
        module = minimal_module()
        module.codes[0].body = [
            Instr("f64.const", (3.5,)),
            Instr("i64.reinterpret_f64", ()),
            Instr("i32.wrap_i64", ()),
            Instr("end"),
        ]
        decoded = decode_module(encode_module(module))
        assert decoded.codes[0].body[0].operands == (3.5,)

    @settings(max_examples=25, deadline=None)
    @given(st.sampled_from(all_blueprints()))
    def test_corpus_roundtrip(self, blueprint):
        builder = WasmCorpusBuilder()
        data = builder.build(blueprint)
        assert encode_module(decode_module(data)) == data


class TestFunctionBodyBytes:
    def test_bodies_match_code_section(self, coinhive_wasm):
        bodies = function_body_bytes(coinhive_wasm)
        module = decode_module(coinhive_wasm)
        assert len(bodies) == len(module.codes)
        assert all(isinstance(b, bytes) and b for b in bodies)

    def test_not_wasm_raises(self):
        with pytest.raises(WasmDecodeError):
            function_body_bytes(b"hello world")


class TestMalformedInput:
    def test_empty(self):
        with pytest.raises(WasmDecodeError):
            decode_module(b"")

    def test_bad_magic(self):
        with pytest.raises(WasmDecodeError, match="magic"):
            decode_module(b"\x00bad\x01\x00\x00\x00")

    def test_bad_version(self):
        with pytest.raises(WasmDecodeError, match="version"):
            decode_module(b"\x00asm\x02\x00\x00\x00")

    def test_truncated_section(self):
        data = encode_module(minimal_module())
        with pytest.raises(WasmDecodeError):
            decode_module(data[:-3])

    def test_section_length_overruns(self):
        # custom section claiming more bytes than exist
        data = b"\x00asm\x01\x00\x00\x00" + b"\x00\x7f"
        with pytest.raises(WasmDecodeError):
            decode_module(data)

    def test_out_of_order_sections(self):
        good = encode_module(minimal_module())
        # find type (1) and memory (5) sections and swap their order crudely:
        # craft module with memory section before type section
        data = b"\x00asm\x01\x00\x00\x00"
        memory_section = b"\x05\x03\x01\x00\x01"
        type_section = b"\x01\x04\x01\x60\x00\x00"
        with pytest.raises(WasmDecodeError, match="out of order"):
            decode_module(data + memory_section + type_section)
        assert decode_module(good)  # sanity: the good one still parses

    def test_code_count_mismatch(self):
        module = minimal_module()
        module.func_type_indices = [0, 0]  # declares 2 funcs, 1 body
        data = encode_module(module)
        with pytest.raises(WasmDecodeError, match="bodies"):
            decode_module(data)

    def test_unknown_opcode(self):
        # craft a body containing opcode 0xFE (not in our subset)
        module = minimal_module()
        data = encode_module(module)
        patched = data.replace(bytes([0x6A]), bytes([0xFE]))
        with pytest.raises(WasmDecodeError):
            decode_module(patched)

    @given(st.binary(max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_arbitrary_bytes_never_crash(self, data):
        """Decoder must fail cleanly, never with unexpected exceptions."""
        try:
            decode_module(data)
        except WasmDecodeError:
            pass


class TestEncodeInstr:
    def test_unknown_instruction_rejected(self):
        with pytest.raises(ValueError):
            encode_instr(Instr("i32.frobnicate", ()))

    def test_blocktype_empty(self):
        assert encode_instr(Instr("block", (None,))) == b"\x02\x40"

    def test_blocktype_valtype(self):
        assert encode_instr(Instr("block", (ValType.I32,))) == b"\x02\x7f"
