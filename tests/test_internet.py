"""Tests for the synthetic populations (domains, sites, short links)."""

import pytest

from repro.internet.distributions import (
    DiurnalModel,
    draw_hash_requirement,
    heavy_user_counts,
    paper_holiday_calendar,
    zipf_counts,
)
from repro.internet.domains import DomainGenerator
from repro.internet.population import DATASETS, build_population
from repro.internet.shortlinks import build_shortlink_population
from repro.sim.clock import utc_timestamp
from repro.sim.rng import RngStream


class TestDistributions:
    def test_zipf_counts_sum(self):
        counts = zipf_counts(1000, 50, 1.3, RngStream(1))
        assert sum(counts) == 1000
        assert all(c >= 1 for c in counts)
        assert counts[0] == max(counts)

    def test_zipf_rejects_undersized_total(self):
        with pytest.raises(ValueError):
            zipf_counts(10, 20, 1.0, RngStream(1))

    def test_heavy_user_shape(self):
        counts = heavy_user_counts(100_000, RngStream(2), tail_users=500)
        total = sum(counts)
        assert total == 100_000
        assert counts[0] / total == pytest.approx(1 / 3, abs=0.01)
        assert sum(counts[:10]) / total == pytest.approx(0.85, abs=0.01)

    def test_hash_requirement_mixture(self):
        rng = RngStream(3)
        draws = [draw_hash_requirement(rng) for _ in range(3000)]
        # majority at the presets ≤1024, small far tail
        small = sum(1 for v in draws if v <= 1024)
        huge = sum(1 for v in draws if v >= 10**6)
        assert small / len(draws) > 0.55
        assert 0 < huge / len(draws) < 0.1
        assert max(draws) >= 10**6

    def test_diurnal_outage_zeroes(self):
        model = DiurnalModel(outages=[(100.0, 200.0)])
        assert model.factor(150.0) == 0.0
        assert model.factor(250.0) > 0.0

    def test_holiday_boost(self):
        model = DiurnalModel(holidays=paper_holiday_calendar())
        labor_day_eve = utc_timestamp(2018, 4, 30, 12)
        normal_day = utc_timestamp(2018, 4, 23, 12)
        assert model.factor(labor_day_eve) > model.factor(normal_day)

    def test_hourly_profile_averages_one(self):
        model = DiurnalModel()
        assert sum(model.hourly) / 24 == pytest.approx(1.0, abs=0.02)


class TestDomainGenerator:
    def test_unique_domains(self):
        generator = DomainGenerator(RngStream(1, "d"))
        domains = {generator.opaque("com") for _ in range(500)}
        assert len(domains) == 500

    def test_categorized_carries_fragment(self):
        generator = DomainGenerator(RngStream(2, "d"))
        from repro.rulespace.engine import RuleSpaceEngine

        engine = RuleSpaceEngine()
        for _ in range(20):
            domain = generator.categorized("Gaming", "com")
            assert "Gaming" in engine.classify_domain(domain)

    def test_draw_respects_classified_fraction(self):
        generator = DomainGenerator(RngStream(3, "d"))
        categorized = sum(
            1 for _ in range(400) if generator.draw("org", None, 0.7)[1] is not None
        )
        assert 230 <= categorized <= 330

    def test_tld_applied(self):
        generator = DomainGenerator(RngStream(4, "d"))
        assert generator.opaque("org").endswith(".org")


class TestWebPopulation:
    def test_dataset_specs_exist(self):
        assert set(DATASETS) == {"alexa", "com", "net", "org"}

    def test_deterministic(self):
        a = build_population("net", seed=5, scale=0.05)
        b = build_population("net", seed=5, scale=0.05)
        assert a.domains() == b.domains()

    def test_seed_changes_population(self):
        a = build_population("net", seed=5, scale=0.05)
        b = build_population("net", seed=6, scale=0.05)
        assert a.domains() != b.domains()

    def test_alexa_roles(self, alexa_population):
        roles = {site.role for site in alexa_population.sites}
        assert {"miner", "dead-miner", "cpmstar", "consent-declined", "benign-wasm", "clean"} <= roles

    def test_scale_shrinks_counts(self):
        small = build_population("net", seed=1, scale=0.02)
        assert len(small.sites) < 300

    def test_all_sites_reachable_somehow(self, alexa_population):
        web = alexa_population.web
        for site in alexa_population.sites[:50]:
            host = f"www.{site.domain}"
            assert web.has_host(host)

    def test_miner_sites_have_behaviors(self, alexa_population):
        assert alexa_population.behavior_registry
        # at least one registered behavior per (static-tag) miner site
        miners = alexa_population.sites_by_role("miner")
        assert len(alexa_population.behavior_registry) >= len(miners) * 0.5

    def test_ground_truth_miners_nonempty(self, alexa_population):
        assert alexa_population.ground_truth_miners()

    def test_com_population_is_static_only(self):
        population = build_population("com", seed=9, scale=0.01)
        assert not population.sites_by_role("miner")
        assert population.sites_by_role("listed-tag")


class TestShortLinkPopulation:
    def test_scale(self, shortlink_population):
        # 1.7M × 0.002 ≈ 3.4K links
        assert 3000 <= len(shortlink_population.service) <= 4000

    def test_heavy_user_concentration(self, shortlink_population):
        counts = sorted(shortlink_population.links_per_token().values(), reverse=True)
        total = sum(counts)
        assert counts[0] / total == pytest.approx(1 / 3, abs=0.02)
        assert sum(counts[:10]) / total == pytest.approx(0.85, abs=0.02)

    def test_top_tokens_are_heavy_creators(self, shortlink_population):
        top = shortlink_population.top_tokens(10)
        heavy = {c.token for c in shortlink_population.creators if c.is_heavy}
        assert set(top) == heavy

    def test_deterministic(self):
        a = build_shortlink_population(seed=3, scale=0.001)
        b = build_shortlink_population(seed=3, scale=0.001)
        assert [l.target_url for l in a.service.links] == [l.target_url for l in b.service.links]

    def test_heavy_destinations_match_table4_hosts(self, shortlink_population):
        from repro.internet.shortlinks import TOP_USER_DESTINATIONS

        heavy_tokens = set(shortlink_population.top_tokens(10))
        known_hosts = {host for host, _ in TOP_USER_DESTINATIONS}
        heavy_links = [l for l in shortlink_population.service.links if l.token in heavy_tokens]
        hits = sum(
            1 for l in heavy_links
            if l.target_url.split("://")[1].split("/")[0] in known_hosts
        )
        assert hits / len(heavy_links) > 0.8  # paper: ~89%

    def test_misconfigured_tail_exists(self, shortlink_population):
        assert any(l.required_hashes >= 10**18 for l in shortlink_population.service.links)

    def test_registers_creators_with_coinhive(self, coinhive_service):
        population = build_shortlink_population(seed=3, scale=0.001, coinhive=coinhive_service)
        assert any(u.kind == "shortlink" for u in coinhive_service.users.values())
