"""Tests for seeded random streams."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.rng import RngStream, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")

    def test_differs_by_name(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_differs_by_root(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_name_path_not_collapsible(self):
        # ("ab",) and ("a", "b") must not collide
        assert derive_seed(0, "ab") != derive_seed(0, "a", "b")

    @given(st.integers(min_value=0, max_value=2**62), st.text(max_size=20))
    def test_always_64_bit(self, root, name):
        seed = derive_seed(root, name)
        assert 0 <= seed < 2**64


class TestRngStream:
    def test_same_stream_same_sequence(self):
        a = RngStream(7, "x")
        b = RngStream(7, "x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_substream_independent_of_parent_consumption(self):
        parent1 = RngStream(7, "x")
        parent2 = RngStream(7, "x")
        parent2.random()  # consume from one parent only
        assert parent1.substream("child").random() == parent2.substream("child").random()

    def test_randbytes_length(self):
        assert len(RngStream(1).randbytes(33)) == 33

    def test_choices_respects_weights(self):
        rng = RngStream(3, "w")
        picks = rng.choices(["a", "b"], [0.999, 0.001], k=500)
        assert picks.count("a") > 450

    def test_zipf_weights_normalized(self):
        weights = RngStream(1).zipf_rank_weights(100, 1.3)
        assert abs(sum(weights) - 1.0) < 1e-9
        assert weights == sorted(weights, reverse=True)

    def test_zipf_weights_reject_bad_n(self):
        with pytest.raises(ValueError):
            RngStream(1).zipf_rank_weights(0, 1.0)

    def test_bounded_pareto_within_bounds(self):
        rng = RngStream(5, "p")
        for _ in range(200):
            value = rng.bounded_pareto(1.2, 10.0, 1000.0)
            assert 10.0 <= value <= 1000.0 + 1e-6

    def test_bounded_pareto_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            RngStream(1).bounded_pareto(1.0, 10.0, 5.0)

    def test_exponential_interarrivals_within_horizon(self):
        rng = RngStream(9, "e")
        times = list(rng.exponential_interarrivals(rate=1.0, horizon=50.0))
        assert all(0 < t < 50.0 for t in times)
        assert times == sorted(times)

    def test_exponential_interarrivals_zero_rate(self):
        assert list(RngStream(1).exponential_interarrivals(0.0, 10.0)) == []

    def test_interarrival_rate_roughly_matches(self):
        rng = RngStream(11, "rate")
        times = list(rng.exponential_interarrivals(rate=2.0, horizon=1000.0))
        assert 1800 < len(times) < 2200
