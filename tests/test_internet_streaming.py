"""Equivalence/property battery for streaming populations.

The streaming refactor's contract is behavioural: the same seed must mean
the same internet whether streamed or materialized, sharded or serial,
sampled or exhaustive — and site *i* must be derivable in isolation.
These properties ARE the product of the refactor; hypothesis drives them
across seeds, sizes, shard counts, and strata shapes.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.internet.domains import DomainGenerator, index_of_domain, indexed_domain
from repro.internet.population import DATASETS, build_population
from repro.internet.streaming import (
    RankStratum,
    StreamingPopulation,
    base_role_rates,
    default_strata,
    parse_strata,
)
from repro.sim.rng import RngStream

DATASET_NAMES = sorted(DATASETS)

#: strata with rank boundaries inside small test populations, so every
#: bucket (including boundary-straddling ones) actually gets exercised
SMALL_STRATA = st.sampled_from(["top:10:0.5,mid:60:0.3,tail:-:0.1", "all:-:0.25", ""])


def _make(dataset, seed, size, strata_text="", sample=0):
    strata = parse_strata(strata_text, DATASETS[dataset]) if strata_text else None
    return StreamingPopulation(
        dataset, seed=seed, size=size, strata=strata, sample_per_stratum=sample
    )


def _observe(web, url):
    """What a crawler sees: the response, or the exact failure."""
    from repro.web.http import FetchError

    try:
        response = web.fetch(url)
    except FetchError as error:
        return ("error", str(error))
    return ("ok", response.status, response.body)


def _site_key(site):
    """Every site attribute the campaigns can observe."""
    return (
        site.domain, site.role, site.category, site.stratum, site.rank,
        site.family, site.wasm_variant, site.official_url, site.https,
        site.static_tags, site.present_scan2,
    )


class TestStreamEqualsMaterialized:
    @settings(max_examples=15, deadline=None)
    @given(
        dataset=st.sampled_from(DATASET_NAMES),
        seed=st.integers(0, 2**32 - 1),
        size=st.integers(1, 120),
        strata_text=SMALL_STRATA,
    )
    def test_sites_and_ground_truth_agree(self, dataset, seed, size, strata_text):
        population = _make(dataset, seed, size, strata_text)
        materialized = population.materialize()
        assert len(materialized.sites) == size
        for index in range(size):
            assert _site_key(population.site(index)) == _site_key(materialized.sites[index])
        assert population.ground_truth_miners() == materialized.ground_truth_miners()

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), size=st.integers(1, 60))
    def test_lazy_web_serves_materialized_bytes(self, seed, size):
        strata_text = "top:5:0.6,tail:-:0.3"  # force signal roles into view
        population = _make("alexa", seed, size, strata_text)
        materialized = population.materialize()
        lazy_web, eager_web = population.web, materialized.web
        for site in materialized.sites:
            for scheme in ("http", "https"):
                url = f"{scheme}://www.{site.domain}/"
                assert _observe(lazy_web, url) == _observe(eager_web, url), url

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), size=st.integers(1, 200))
    def test_site_derivable_in_isolation(self, seed, size):
        """Site i from a fresh instance == site i from a fully-walked one,
        and deriving it touches no other site."""
        walked = _make("com", seed, size)
        all_keys = [_site_key(site) for site in walked.iter_sites()]
        probe = size // 2
        fresh = _make("com", seed, size)
        assert _site_key(fresh.site(probe)) == all_keys[probe]
        # a second cold instance probed in reverse order agrees everywhere
        reverse = _make("com", seed, size)
        for index in reversed(range(size)):
            assert _site_key(reverse.site(index)) == all_keys[index]


class TestShardPlanPartitions:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        size=st.integers(0, 500),
        num_shards=st.integers(1, 12),
        sample=st.integers(0, 9),
        strata_text=SMALL_STRATA,
    )
    def test_disjoint_union_complete_order_stable(
        self, seed, size, num_shards, sample, strata_text
    ):
        population = _make("net", seed, size, strata_text, sample=sample)
        plan = population.shard_plan(num_shards)
        assert len(plan) == num_shards
        flattened = [index for shard in plan for index in shard]
        expected = list(population.scan_indices())
        # union-complete and order-stable: concatenating the shards in
        # shard order reproduces the scan order exactly (hence disjoint)
        assert flattened == expected
        assert len(set(flattened)) == len(flattened)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**16), size=st.integers(1, 300), shards=st.integers(1, 8))
    def test_shards_on_disjoint_ranges_never_collide(self, seed, size, shards):
        """Satellite 1's regression: two shards generating names over
        disjoint index ranges can never produce the same domain, with no
        shared seen-set between them."""
        population = _make("org", seed, size)
        seen: dict = {}
        for shard_id, indices in enumerate(population.shard_plan(shards)):
            for site in population.iter_sites(indices):
                assert site.domain not in seen, (
                    f"{site.domain} from shard {shard_id} collides with "
                    f"shard {seen[site.domain]}"
                )
                seen[site.domain] = shard_id
        assert len(seen) == size

    def test_more_shards_than_indices(self):
        population = _make("com", 5, 3)
        plan = population.shard_plan(7)
        assert [len(shard) for shard in plan] == [1, 1, 1, 0, 0, 0, 0]


class TestIndexedDomains:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), index=st.integers(0, 10**9))
    def test_round_trip(self, seed, index):
        rng = RngStream(seed, "t")
        domain = indexed_domain(rng, index, "com")
        assert index_of_domain(domain) == index

    def test_legacy_generator_names_decode_to_none(self):
        generator = DomainGenerator(rng=RngStream(3, "legacy"))
        for _ in range(200):
            domain, _category = generator.draw("org")
            assert index_of_domain(domain) is None, domain

    def test_population_rejects_foreign_domains(self):
        population = _make("com", 9, 50)
        assert population.index_of_domain("example.com") is None
        assert population.index_of_domain("fake-7.com") is None  # wrong body
        assert population.index_of_domain(f"fake-{10**6}.com") is None  # out of range
        domain = population.site(17).domain
        assert population.index_of_domain(domain) == 17
        assert population.is_true_miner("not-a-streamed-name.net") is False

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            indexed_domain(RngStream(1, "t"), -1, "com")


class _LegacySeenSetGenerator:
    """The historical probe-a-seen-set uniqueness scheme, verbatim."""

    def __init__(self) -> None:
        self._used: set = set()

    def unique(self, base: str, tld: str) -> str:
        candidate = f"{base}.{tld}"
        serial = 1
        while candidate in self._used:
            serial += 1
            candidate = f"{base}{serial}.{tld}"
        self._used.add(candidate)
        return candidate


def _legacy_draw(rng, legacy, tld, classified_fraction=0.7):
    """Replay :meth:`DomainGenerator.draw`'s rng tape through the legacy
    seen-set probe (same base construction, historical uniqueness)."""
    from repro.internet.domains import _categorized_base, _draw_category, _opaque_base

    if rng.random() >= classified_fraction:
        return legacy.unique(_opaque_base(rng), tld), None
    category_name = _draw_category(rng, None)
    return legacy.unique(_categorized_base(rng, category_name), tld), category_name


class TestDomainGeneratorCounters:
    """Satellite 1: the per-base serial counters must reproduce the old
    seen-set sequence exactly while holding O(#bases) state."""

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), draws=st.integers(1, 400))
    def test_sequence_matches_legacy_seen_set(self, seed, draws):
        generator = DomainGenerator(rng=RngStream(seed, "names"))
        twin_rng = RngStream(seed, "names")
        legacy = _LegacySeenSetGenerator()
        for _ in range(draws):
            assert generator.draw("com") == _legacy_draw(twin_rng, legacy, "com")

    def test_digit_ending_fragment_aliasing_matches_legacy(self):
        """'cam4'-style bases spell the same string as another base's
        serial; both schemes must resolve the clash identically."""
        generator = DomainGenerator(rng=RngStream(0, "unused"))
        legacy = _LegacySeenSetGenerator()
        script = [("ulmcam", "com")] * 4 + [("ulmcam4", "com"), ("ulmcam4", "com"), ("ulmcam", "com")]
        new_names = [generator._unique(base, tld) for base, tld in script]
        old_names = [legacy.unique(base, tld) for base, tld in script]
        assert new_names == old_names
        assert len(set(new_names)) == len(new_names)

    def test_state_is_bounded_by_distinct_bases(self):
        generator = DomainGenerator(rng=RngStream(11, "names"))
        domains = [generator.draw("net")[0] for _ in range(3000)]
        assert len(set(domains)) == 3000  # still collision-free
        assert len(generator._base_counts) <= 3000
        # heavy reuse: the counter map stays far below one entry per name
        assert len(generator._base_counts) < len(domains)

    def test_same_base_different_tlds_stay_independent(self):
        generator = DomainGenerator(rng=RngStream(0, "x"))
        assert generator._unique("alpha", "com") == "alpha.com"
        assert generator._unique("alpha", "net") == "alpha.net"  # no serial
        assert generator._unique("alpha", "com") == "alpha2.com"


class TestStrata:
    def test_default_strata_tile_from_rank_one(self):
        for name in DATASET_NAMES:
            strata = default_strata(DATASETS[name])
            assert strata[0].lo == 1
            for left, right in zip(strata, strata[1:]):
                assert right.lo == left.hi + 1
            assert strata[-1].hi is None

    def test_stratum_sizes_clip_to_population(self):
        population = _make("com", 1, 2500)
        assert population.stratum_sizes() == {
            "top1k": 1000, "top10k": 1500, "top100k": 0, "top1m": 0, "tail": 0,
        }

    def test_every_site_labelled_with_its_rank_stratum(self):
        population = _make("alexa", 4, 40, "top:10:0.4,mid:25:0.2,tail:-:0.1")
        for index, site in enumerate(population.iter_sites()):
            assert site.rank == index + 1
            if index < 10:
                assert site.stratum == "top"
            elif index < 25:
                assert site.stratum == "mid"
            else:
                assert site.stratum == "tail"

    def test_parse_rejects_malformed_specs(self):
        spec = DATASETS["com"]
        with pytest.raises(ValueError):
            parse_strata("", spec)
        with pytest.raises(ValueError):
            parse_strata("a:10", spec)
        with pytest.raises(ValueError):
            parse_strata("a:-:0.1,b:20:0.1", spec)  # unbounded not last
        with pytest.raises(ValueError):
            parse_strata("a:20:0.1,b:10:0.1", spec)  # ends before it starts

    def test_validation_rejects_gapped_or_oversignalled_strata(self):
        gapped = (
            RankStratum(name="a", lo=1, hi=10),
            RankStratum(name="b", lo=20, hi=None),
        )
        with pytest.raises(ValueError):
            StreamingPopulation("com", size=30, strata=gapped)
        hot = (RankStratum(name="a", lo=1, hi=None, role_rates=(("miner", 1.5),)),)
        with pytest.raises(ValueError):
            StreamingPopulation("com", size=30, strata=hot)

    def test_base_rates_reflect_paper_composition(self):
        rates = dict(base_role_rates(DATASETS["alexa"]))
        assert "miner" in rates and rates["miner"] > 0
        assert "listed-tag" not in rates  # chrome dataset: miners, not tags
        zone = dict(base_role_rates(DATASETS["com"]))
        assert "listed-tag" in zone and "miner" not in zone


class TestSampling:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**16), size=st.integers(1, 400), k=st.integers(1, 20))
    def test_sample_is_sorted_in_bounds_and_stratified(self, seed, size, k):
        text = "top:20:0.3,tail:-:0.1"
        population = _make("net", seed, size, text, sample=k)
        indices = population.sample_indices()
        assert indices == sorted(indices)
        assert len(indices) == len(set(indices))
        for stratum in population.strata:
            within = [i for i in indices if stratum.contains(i + 1)]
            assert len(within) == min(k, stratum.size_within(size))

    def test_sample_independent_of_other_strata(self):
        """A stratum's sample comes from its own substream: reshaping the
        strata above/below it must not move its chosen ranks."""
        a = _make("com", 7, 1000, "top:100:0.3,tail:-:0.1", sample=10)
        b = _make("com", 7, 1000, "x:50:0.2,y:100:0.3,tail:-:0.1", sample=10)
        tail_a = [i for i in a.sample_indices() if i >= 100]
        tail_b = [i for i in b.sample_indices() if i >= 100]
        assert tail_a == tail_b

    def test_zero_sample_means_full_scan(self):
        population = _make("com", 1, 25)
        assert list(population.scan_indices()) == list(range(25))


class TestLazySequence:
    def test_slicing_and_negative_indexing(self):
        population = _make("org", 2, 30)
        assert [s.domain for s in population.sites[5:8]] == [
            population.site(i).domain for i in (5, 6, 7)
        ]
        assert population.sites[-1].domain == population.site(29).domain

    def test_cache_eviction_keeps_results_identical(self):
        big = _make("org", 2, 200)
        tiny = StreamingPopulation("org", seed=2, size=200, site_cache=2, web_cache=1)
        for index in (0, 150, 3, 150, 0, 199):
            assert _site_key(big.sites[index]) == _site_key(tiny.sites[index])
        # web-plane eviction: revisit a long-evicted site's page
        first = tiny.web.fetch(f"http://www.{tiny.site(0).domain}/")
        for index in range(1, 50):
            tiny.web.fetch(f"http://www.{tiny.site(index).domain}/")
        again = tiny.web.fetch(f"http://www.{tiny.site(0).domain}/")
        assert (first.status, first.body) == (again.status, again.body)

    def test_out_of_range_raises(self):
        population = _make("org", 2, 4)
        with pytest.raises(IndexError):
            population.site(4)
        with pytest.raises(IndexError):
            population.site(-1)


class TestCheckpointIdentity:
    def test_range_identity_is_o1_and_seed_sensitive(self):
        a = _make("com", 1, 1000)
        b = _make("com", 2, 1000)
        indices = range(0, 500)
        assert a.checkpoint_identity(indices) != b.checkpoint_identity(indices)
        assert a.checkpoint_identity(indices) == _make("com", 1, 1000).checkpoint_identity(indices)
        assert a.checkpoint_identity(range(0, 500)) != a.checkpoint_identity(range(500, 1000))

    def test_sampled_list_identity_round_trips(self):
        population = _make("com", 3, 1000, sample=5)
        shard = population.shard_plan(2)[0]
        assert population.checkpoint_identity(shard) == population.checkpoint_identity(list(shard))


class TestLegacyPopulationUntouched:
    def test_built_sites_carry_no_stratum(self):
        population = build_population("alexa", seed=42, scale=0.02)
        for site in population.sites:
            assert site.stratum == ""
            assert site.rank == 0
