"""Streaming campaigns end to end: determinism, resume, strata, memory.

The streaming population promises the campaign layer an internet that is
identical however it is executed. This suite drives the real campaigns
(sharded zgrab, checkpoint journals, run ledger, scorecard, CLI) over
streamed populations and pins:

- serial / thread / process executor invariance of results, counters,
  and span views;
- kill-and-resume equal to an uninterrupted run, with O(1)-sized journal
  fingerprints doing the matching;
- per-stratum prevalence estimates converging on the configured rates,
  including empty and single-site strata;
- stratum labels surviving into verdicts.jsonl and scorecard rows;
- a 10M-domain sampled campaign completing under a measured memory
  bound (the tentpole's constant-memory claim, asserted).
"""

from __future__ import annotations

import json
import tracemalloc

import pytest

from repro.analysis.crawl import ZgrabCampaign
from repro.analysis.parallel import ParallelConfig, ShardedZgrabCampaign
from repro.faults.resilience import RetryPolicy
from repro.internet.population import DATASETS
from repro.internet.streaming import StreamingPopulation, parse_strata
from repro.obs.clock import TickClock, use_clock
from repro.obs.profile import make_obs

SEED = 2018
SIZE = 320
SHARDS = 4
STRATA_TEXT = "top:40:0.5,mid:160:0.25,tail:-:0.1"


def _population(dataset="alexa", seed=SEED, size=SIZE, strata_text=STRATA_TEXT, sample=0):
    strata = parse_strata(strata_text, DATASETS[dataset]) if strata_text else None
    return StreamingPopulation(
        dataset, seed=seed, size=size, strata=strata, sample_per_stratum=sample
    )


def _run(population, mode, workers, checkpoint_dir=None, retry=None):
    obs = make_obs(prefix="sdet")
    campaign = ShardedZgrabCampaign(
        population=population,
        config=ParallelConfig(
            shards=SHARDS,
            workers=workers,
            mode=mode,
            retry=retry if retry is not None else RetryPolicy(),
            checkpoint_dir=checkpoint_dir,
        ),
        obs=obs,
    )
    result = campaign.scan(0)
    return result, campaign.metrics, obs


def _span_view(obs):
    counts: dict = {}
    for span in obs.tracer.spans:
        counts[span.name] = counts.get(span.name, 0) + 1
    return counts, {span.span_id for span in obs.tracer.spans}


def _nonhealth_counters(registry):
    return {k: v for k, v in registry.counters.items() if not k.startswith("health.")}


class TestExecutorInvariance:
    @pytest.mark.parametrize("mode,workers", [("thread", SHARDS), ("process", 2)])
    def test_parallel_equals_serial(self, mode, workers):
        serial_result, serial_metrics, serial_obs = _run(_population(), "serial", 1)
        result, metrics, obs = _run(_population(), mode, workers)
        assert result == serial_result
        assert (
            metrics.merged_registry().counters
            == serial_metrics.merged_registry().counters
        )
        assert (
            metrics.merged_registry().histogram_counts()
            == serial_metrics.merged_registry().histogram_counts()
        )
        assert _span_view(obs) == _span_view(serial_obs)

    def test_verdict_stream_is_mode_invariant(self):
        serial_result, _, _ = _run(_population(), "serial", 1)
        thread_result, _, _ = _run(_population(), "thread", SHARDS)
        serial_dump = [v.to_dict() for v in serial_result.verdicts]
        assert serial_dump == [v.to_dict() for v in thread_result.verdicts]
        assert all(v["stratum"] in ("top", "mid", "tail") for v in serial_dump)

    def test_sampled_campaign_is_mode_invariant(self):
        serial_result, _, _ = _run(_population(sample=11), "serial", 1)
        thread_result, _, _ = _run(_population(sample=11), "thread", SHARDS)
        assert serial_result == thread_result
        assert serial_result.domains_probed == 33  # 11 per stratum

    def test_sharded_equals_unsharded_campaign(self):
        population = _population()
        sequential = ZgrabCampaign(population=population)
        partial = sequential.scan_sites(population.sites, 0)
        baseline = sequential.finalize_scan(partial, 0)
        sharded, _, _ = _run(_population(), "thread", SHARDS)
        assert sharded == baseline

    def test_timing_reproduces_under_tick_clock(self):
        snapshots = []
        for _ in range(2):
            with use_clock(TickClock()):
                _result, metrics, obs = _run(_population(), "serial", 1)
            snapshots.append(
                (
                    metrics.wall_seconds,
                    [s.wall_seconds for s in metrics.shards],
                    obs.tracer.to_jsonl(),
                )
            )
        assert snapshots[0] == snapshots[1]


class TestKillAndResume:
    def test_killed_run_resumes_bit_identical(self, tmp_path, monkeypatch):
        baseline, baseline_metrics, _ = _run(_population(), "serial", 1)

        calls = {"n": 0}
        original = ZgrabCampaign._scan_site

        def bomb(self, fetcher, site):
            calls["n"] += 1
            if calls["n"] % 5 == 0:
                raise RuntimeError("simulated kill")
            return original(self, fetcher, site)

        monkeypatch.setattr(ZgrabCampaign, "_scan_site", bomb)
        interrupted, interrupted_metrics, _ = _run(
            _population(),
            "serial",
            1,
            checkpoint_dir=str(tmp_path),
            retry=RetryPolicy(max_attempts=1),
        )
        assert interrupted_metrics.failed_shards
        assert interrupted.domains_probed < baseline.domains_probed
        monkeypatch.setattr(ZgrabCampaign, "_scan_site", original)

        resumed, resumed_metrics, _ = _run(
            _population(), "serial", 1, checkpoint_dir=str(tmp_path)
        )
        assert resumed == baseline
        assert [v.to_dict() for v in resumed.verdicts] == [
            v.to_dict() for v in baseline.verdicts
        ]
        assert _nonhealth_counters(resumed_metrics.merged_registry()) == _nonhealth_counters(
            baseline_metrics.merged_registry()
        )
        assert resumed_metrics.merged_registry().counter("health.checkpoint.resumed") > 0

    def test_journal_pins_population_identity_not_domain_list(self, tmp_path):
        """A journal written for one streamed internet must not replay
        into a differently-seeded or differently-sized one."""
        _run(_population(seed=1), "serial", 1, checkpoint_dir=str(tmp_path))

        reseeded, metrics, _ = _run(
            _population(seed=2), "serial", 1, checkpoint_dir=str(tmp_path)
        )
        clean, _, _ = _run(_population(seed=2), "serial", 1)
        assert reseeded == clean
        assert metrics.merged_registry().counter("health.checkpoint.resumed") == 0

    def test_resume_works_on_sampled_scans(self, tmp_path):
        fresh, _, _ = _run(
            _population(sample=9), "serial", 1, checkpoint_dir=str(tmp_path)
        )
        resumed, metrics, _ = _run(
            _population(sample=9), "serial", 1, checkpoint_dir=str(tmp_path)
        )
        assert resumed == fresh
        assert metrics.merged_registry().counter("health.checkpoint.resumed") > 0


class TestStratifiedPrevalence:
    def test_per_stratum_rates_converge_on_configuration(self):
        """Observed signal prevalence per stratum tracks the configured
        rate within sampling tolerance — the stratified draw really does
        skew the streamed internet by rank."""
        population = _population("com", size=4000, strata_text="hot:400:0.4,cold:-:0.02")
        hits = {"hot": 0, "cold": 0}
        totals = {"hot": 0, "cold": 0}
        for site in population.iter_sites():
            totals[site.stratum] += 1
            if site.role != "clean":
                hits[site.stratum] += 1
        hot_rate = hits["hot"] / totals["hot"]
        cold_rate = hits["cold"] / totals["cold"]
        assert abs(hot_rate - 0.4) < 0.08
        assert abs(cold_rate - 0.02) < 0.012
        assert hot_rate > 5 * cold_rate

    def test_stratum_rows_extrapolate_sampled_scans(self):
        population = _population("com", size=2000, strata_text="hot:200:0.5,cold:-:0.0", sample=60)
        result, _, _ = _run(population, "serial", 1)
        rows = {row.stratum: row for row in result.stratum_rows}
        assert set(rows) == {"hot", "cold"}
        assert rows["hot"].probed == 60 and rows["cold"].probed == 60
        assert rows["hot"].population_size == 200
        assert rows["cold"].population_size == 1800
        # extrapolation: estimated domains scale the stratum, not the sample
        assert rows["hot"].estimated_domains == round(rows["hot"].prevalence * 200)
        assert rows["hot"].prevalence > 0.2
        assert rows["cold"].hits == 0 and rows["cold"].estimated_domains == 0

    def test_empty_stratum_yields_no_row(self):
        """Strata past the population's end simply never appear."""
        population = _population("net", size=30, strata_text="a:100:0.3,b:500:0.2,c:-:0.1")
        assert population.stratum_sizes() == {"a": 30, "b": 0, "c": 0}
        result, _, _ = _run(population, "serial", 1)
        assert [row.stratum for row in result.stratum_rows] == ["a"]

    def test_single_site_stratum(self):
        population = _population("net", size=5, strata_text="one:1:1.0,rest:-:0.0")
        result, _, _ = _run(population, "serial", 1)
        rows = {row.stratum: row for row in result.stratum_rows}
        assert rows["one"].probed == 1 and rows["one"].population_size == 1
        assert population.site(0).role != "clean"  # rate 1.0 forces a signal role
        assert all(site.role == "clean" for site in population.iter_sites(range(1, 5)))


class TestScorecardStrata:
    def test_stratum_labels_survive_to_scorecard_rows(self, tmp_path):
        from repro.cli import main
        from repro.obs.ledger import load_run
        from repro.obs.scorecard import build_scorecard, scorecard_rows

        run_dir = tmp_path / "run"
        main(
            [
                "--seed", str(SEED),
                "crawl",
                "--dataset", "alexa",
                "--population-size", str(SIZE),
                "--zgrab-only",
                "--strata", STRATA_TEXT,
                "--run-dir", str(run_dir),
            ]
        )
        card = build_scorecard(load_run(run_dir))
        names = [row[0] for row in scorecard_rows(card)]
        assert names[:4] == [
            "nocoin_static",
            "nocoin_static.top",
            "nocoin_static.mid",
            "nocoin_static.tail",
        ]
        # the per-stratum slices partition the base detector's matrix
        base = card.matrices["nocoin_static"]
        sliced = [card.matrices[f"nocoin_static.{s}"] for s in ("top", "mid", "tail")]
        assert sum(m.tp for m in sliced) == base.tp
        assert sum(m.fp + m.fn + m.tn for m in sliced) == base.fp + base.fn + base.tn
        assert card.truth_miners > 0  # lazy streaming truth found the miners
        # stratum metrics are addressable by --fail-on's grammar
        assert "detector.nocoin_static.top.recall" in card.metrics()
        # and the persisted verdicts carry the labels
        payloads = [
            json.loads(line)
            for line in (run_dir / "verdicts.jsonl").read_text().splitlines()
        ]
        records = [p for p in payloads if "subject" in p]  # skip schema header
        assert records
        assert {p.get("stratum") for p in records} == {"top", "mid", "tail"}

    def test_materialized_runs_emit_no_stratum_keys(self, tmp_path):
        from repro.cli import main

        run_dir = tmp_path / "legacy"
        main(
            [
                "--seed", str(SEED),
                "crawl",
                "--dataset", "com",
                "--scale", "0.05",
                "--run-dir", str(run_dir),
            ]
        )
        payloads = [
            json.loads(line)
            for line in (run_dir / "verdicts.jsonl").read_text().splitlines()
        ]
        records = [p for p in payloads if "subject" in p]
        assert records
        assert all("stratum" not in p for p in records)


class TestConstantMemoryAtScale:
    def test_10m_domain_sampled_campaign_is_memory_bounded(self):
        """The acceptance scenario: a 10M-domain internet, stratified
        sample, real sharded campaign — peak derivation memory must stay
        flat (it would be gigabytes if anything materialized)."""
        population = StreamingPopulation(
            "com", seed=SEED, size=10_000_000, sample_per_stratum=25
        )
        assert population.stratum_sizes() == {
            "top1k": 1_000,
            "top10k": 9_000,
            "top100k": 90_000,
            "top1m": 900_000,
            "tail": 9_000_000,
        }
        tracemalloc.start()
        try:
            result, metrics, _ = _run(population, "serial", 1)
            _current, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert result.domains_probed == 125  # 25 ranks per stratum
        assert {row.stratum for row in result.stratum_rows} == {
            "top1k", "top10k", "top100k", "top1m", "tail",
        }
        assert len(metrics.shards) == SHARDS
        # 10M sites at ~1KB apiece would be ~10GB materialized; the
        # streamed campaign must stay under a flat few-MB ceiling
        assert peak < 32 * 1024 * 1024, f"peak RSS {peak / 1e6:.1f} MB"

    def test_shard_population_state_does_not_grow_with_size(self):
        small = StreamingPopulation("com", seed=1, size=1_000, sample_per_stratum=10)
        huge = StreamingPopulation("com", seed=1, size=100_000_000, sample_per_stratum=10)
        # identity material is O(1) regardless of population size
        assert len(huge.checkpoint_identity(range(0, 10**7))) == len(
            small.checkpoint_identity(range(0, 500))
        )
        # deriving the same rank yields the same site either way: site i
        # depends on (seed, dataset, i) alone, never on the size
        assert huge.site(123).domain == small.site(123).domain


class TestReproduceRunner:
    def test_streaming_reproduction_reports_strata_and_skips_chrome(self, tmp_path):
        from repro.analysis.runner import ReproductionConfig, run_reproduction
        from repro.obs.ledger import load_run

        run_dir = tmp_path / "rrun"
        config = ReproductionConfig(
            seed=SEED,
            datasets=("alexa", "org"),
            population_size=120,
            strata="top:20:0.4,tail:-:0.1",
            network_days=2,
            shortlink_scale=0.002,
            run_dir=str(run_dir),
        )
        report = run_reproduction(config, log=lambda *args: None)
        assert "Per-stratum prevalence" in report.sections
        assert "alexa" in report.sections["Per-stratum prevalence"]
        # chrome plane skipped: no chrome rows for the chrome datasets
        assert report.sections["Tables 1–2 — Chrome crawls"].count("alexa") == 0
        artifacts = load_run(run_dir)
        assert artifacts.manifest.params["population_size"] == 120
        assert artifacts.manifest.params["strata"] == "top:20:0.4,tail:-:0.1"
        zgrab_verdicts = [v for v in artifacts.verdicts if v.pipeline.startswith("zgrab")]
        assert zgrab_verdicts and all(
            v.stratum in ("top", "tail") for v in zgrab_verdicts
        )
