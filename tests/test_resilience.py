"""Resilience layer: retries with seeded jitter, circuit breakers,
checkpoint journals — plus the fetcher-level regression tests riding on
this PR (narrowed exception handling, hang/timeout and redirect budgets).
"""

from __future__ import annotations

import threading

import pytest

from repro.faults.checkpoint import (
    CheckpointCorruptError,
    CheckpointJournal,
    shard_journal,
)
from repro.faults.ledger import FaultLedger
from repro.faults.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerPolicy,
    BreakerRegistry,
    CircuitBreaker,
    ResiliencePolicy,
    RetryPolicy,
    run_with_retry,
)
from repro.web.http import FetchError, Resource, SyntheticWeb
from repro.web.zgrab import ZgrabFetcher


class TestRetryPolicy:
    def test_zero_jitter_reproduces_legacy_schedule(self):
        policy = RetryPolicy(max_attempts=5, backoff_base=0.01)
        assert [policy.delay(a) for a in (1, 2, 3)] == [0.01, 0.02, 0.04]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base=1.0, jitter=0.5, seed=3)
        first = [policy.delay(a, key=("k",)) for a in (1, 2, 3)]
        second = [policy.delay(a, key=("k",)) for a in (1, 2, 3)]
        assert first == second
        for attempt, delay in zip((1, 2, 3), first):
            base = 2.0 ** (attempt - 1)
            assert base <= delay <= base * 1.5

    def test_jitter_scoped_by_key(self):
        policy = RetryPolicy(backoff_base=1.0, jitter=0.9, seed=3)
        assert policy.delay(1, key=("a",)) != policy.delay(1, key=("b",))

    def test_run_with_retry_counts_retries(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise RuntimeError("nope")
            return 42

        result, retries = run_with_retry(
            flaky, RetryPolicy(max_attempts=5, backoff_base=0), sleep=lambda _: None
        )
        assert (result, retries) == (42, 2)

    def test_run_with_retry_reraises(self):
        with pytest.raises(ValueError):
            run_with_retry(
                lambda: (_ for _ in ()).throw(ValueError("bad")),
                RetryPolicy(max_attempts=2, backoff_base=0),
                sleep=lambda _: None,
            )


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(policy=BreakerPolicy(failure_threshold=3))
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(policy=BreakerPolicy(failure_threshold=2))
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_probe_after_cooldown_rejections(self):
        ledger = FaultLedger()
        breaker = CircuitBreaker(
            policy=BreakerPolicy(failure_threshold=1, cooldown_rejections=2),
            ledger=ledger,
        )
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()  # rejection 1
        assert not breaker.allow()  # rejection 2
        assert breaker.allow()      # the half-open probe
        assert breaker.state == HALF_OPEN
        assert ledger.breaker_opened == 1
        assert ledger.breaker_half_open == 1

    def test_successful_probe_closes(self):
        breaker = CircuitBreaker(policy=BreakerPolicy(failure_threshold=1, cooldown_rejections=0))
        breaker.record_failure()
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker(policy=BreakerPolicy(failure_threshold=3, cooldown_rejections=0))
        for _ in range(3):
            breaker.record_failure()
        assert breaker.allow()
        breaker.record_failure()  # single failure re-opens from half-open
        assert breaker.state == OPEN

    def test_registry_keys_are_independent(self):
        registry = BreakerRegistry(policy=BreakerPolicy(failure_threshold=1))
        registry.get("a").record_failure()
        assert registry.get("a").state == OPEN
        assert registry.get("b").state == CLOSED
        assert registry.open_keys() == ["a"]


class TestHalfOpenConcurrency:
    """The half-open window must admit exactly one probe, even when the
    thread executor has many workers hammering the same breaker."""

    def test_exactly_one_probe_admitted_per_half_open_window(self):
        breaker = CircuitBreaker(
            policy=BreakerPolicy(failure_threshold=1, cooldown_rejections=0)
        )
        breaker.record_failure()
        assert breaker.state == OPEN

        workers = 16
        barrier = threading.Barrier(workers)
        admitted = []

        def contend() -> None:
            barrier.wait()
            if breaker.allow():
                admitted.append(threading.get_ident())

        threads = [threading.Thread(target=contend) for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(admitted) == 1
        assert breaker.state == HALF_OPEN

        # a failed probe re-opens; the next window again admits exactly one
        breaker.record_failure()
        assert breaker.state == OPEN
        assert [breaker.allow() for _ in range(8)].count(True) == 1

    def test_window_stays_occupied_until_probe_outcome_recorded(self):
        breaker = CircuitBreaker(
            policy=BreakerPolicy(failure_threshold=1, cooldown_rejections=0)
        )
        breaker.record_failure()
        assert breaker.allow()       # the probe
        assert not breaker.allow()   # window occupied: probe still in flight
        assert not breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow() and breaker.allow()  # closed: calls flow freely


class TestCheckpointJournal:
    def test_roundtrip(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "shard.journal")
        journal.record(3, {"x": 1})
        journal.record(7, ("a", "b"))
        journal.close()
        assert CheckpointJournal(tmp_path / "shard.journal").load() == {
            3: {"x": 1},
            7: ("a", "b"),
        }

    def test_torn_tail_is_dropped(self, tmp_path):
        path = tmp_path / "shard.journal"
        journal = CheckpointJournal(path)
        journal.record(1, "done")
        journal.close()
        with open(path, "a") as handle:
            handle.write('{"i": 2, "d": "truncat')  # the kill mid-write
        assert CheckpointJournal(path).load() == {1: "done"}

    def test_missing_file_loads_empty(self, tmp_path):
        assert CheckpointJournal(tmp_path / "absent.journal").load() == {}

    def test_fingerprint_mismatch_discards_journal(self, tmp_path):
        """A journal written under one configuration must not replay into
        a run with another: the stale file loads empty and is truncated
        under the new header by the next record."""
        path = tmp_path / "shard.journal"
        with CheckpointJournal(path, fingerprint="config-a") as journal:
            journal.record(1, "from config a")
        stale = CheckpointJournal(path, fingerprint="config-b")
        assert stale.load() == {}
        stale.record(2, "from config b")
        stale.close()
        assert CheckpointJournal(path, fingerprint="config-b").load() == {
            2: "from config b"
        }
        assert CheckpointJournal(path, fingerprint="config-a").load() == {}

    def test_headerless_file_is_stale_not_replayed(self, tmp_path):
        path = tmp_path / "shard.journal"
        path.write_text('{"i": 1, "d": "bm90IGEgcGlja2xl"}\n')
        assert CheckpointJournal(path).load() == {}

    def test_mid_file_corruption_raises(self, tmp_path):
        """Append-and-flush can only tear the tail; damage before the
        final line is genuine corruption and must surface, not be skipped
        (a skipped line would merge a partial replay as complete)."""
        path = tmp_path / "shard.journal"
        journal = CheckpointJournal(path)
        journal.record(1, "one")
        journal.record(2, "two")
        journal.close()
        lines = path.read_text().splitlines()
        lines[1] = '{"i": 1, "d": "gar'  # damage a non-final record
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointCorruptError):
            CheckpointJournal(path).load()

    def test_shard_journal_naming(self, tmp_path):
        journal = shard_journal(str(tmp_path), "alexa-zgrab0", 7, fingerprint="abc")
        assert journal.path.name == "alexa-zgrab0-shard0007.journal"
        assert journal.fingerprint == "abc"
        assert shard_journal(None, "alexa-zgrab0", 7) is None


# ---------------------------------------------------------------------------
# fetcher-level regressions


def _single_site_web(url: str, resource: Resource) -> SyntheticWeb:
    web = SyntheticWeb()
    web.register(url, resource)
    return web


class TestFetcherExceptionNarrowing:
    def test_simulation_bugs_propagate(self):
        """Only FetchError is a transfer failure; a ValueError out of a
        content provider is a bug and must not be booked as one."""

        def buggy_content() -> bytes:
            raise ValueError("broken content provider")

        web = _single_site_web(
            "https://www.bug.example/", Resource(content=buggy_content)
        )
        fetcher = ZgrabFetcher(web)
        with pytest.raises(ValueError, match="broken content provider"):
            fetcher.fetch_domain("bug.example")

    def test_fetch_errors_still_reported_not_raised(self):
        fetcher = ZgrabFetcher(SyntheticWeb())
        result = fetcher.fetch_domain("nowhere.example")
        assert not result.ok
        assert result.error_class == "dns"


class TestHangAndTimeout:
    def test_hanging_origin_times_out_with_budgeted_elapsed(self):
        web = _single_site_web("https://www.slow.example/", Resource(hang=True))
        with pytest.raises(FetchError) as info:
            web.fetch("https://www.slow.example/", timeout=4.0)
        assert info.value.error_class.value == "timeout"
        assert info.value.elapsed == 4.0

    def test_accumulated_latency_exceeding_timeout(self):
        web = SyntheticWeb()
        web.register(
            "https://www.a.example/",
            Resource(redirect_to="https://www.b.example/", latency=3.0),
        )
        web.register("https://www.b.example/", Resource(content=b"hi", latency=3.0))
        with pytest.raises(FetchError) as info:
            web.fetch("https://www.a.example/", timeout=5.0)
        assert info.value.error_class.value == "timeout"

    def test_fetcher_deadline_beats_hang(self):
        web = _single_site_web("https://www.hang.example/", Resource(hang=True))
        fetcher = ZgrabFetcher(
            web,
            timeout=10.0,
            resilience=ResiliencePolicy(
                retry=RetryPolicy(max_attempts=5, backoff_base=0.0),
                breaker=None,
                deadline=25.0,
            ),
        )
        result = fetcher.fetch_domain("hang.example")
        assert not result.ok
        assert result.error_class == "deadline"
        # 10 s + 10 s + (5 s remaining) — the deadline shrank attempt 3
        assert result.attempts == 3

    def test_backoff_past_deadline_is_not_a_ledger_retry(self):
        """A retry whose backoff wait already outlives the deadline never
        executes, so it must not be booked in the ledger."""
        web = _single_site_web("https://www.hang.example/", Resource(hang=True))
        ledger = FaultLedger()
        fetcher = ZgrabFetcher(
            web,
            timeout=10.0,
            resilience=ResiliencePolicy(
                retry=RetryPolicy(max_attempts=5, backoff_base=5.0),
                breaker=None,
                deadline=21.0,
            ),
        )
        result = fetcher.fetch_domain("hang.example", ledger=ledger)
        assert not result.ok
        assert result.error_class == "deadline"
        # attempt 1 (10 s) + backoff (5 s) + attempt 2 (6 s remaining);
        # the next backoff (10 s) blows the deadline, so only one retry ran
        assert result.attempts == 2
        assert ledger.retries == 1

    def test_deadline_smaller_than_minimum_backoff_books_no_retry(self):
        """When even the first backoff outlives the remaining deadline,
        the failure is reported as a deadline immediately: one attempt,
        no sleep booked, no ledger retry recorded."""
        web = _single_site_web("https://www.hang.example/", Resource(hang=True))
        ledger = FaultLedger()
        fetcher = ZgrabFetcher(
            web,
            timeout=10.0,
            resilience=ResiliencePolicy(
                retry=RetryPolicy(max_attempts=3, backoff_base=30.0),
                breaker=None,
                deadline=12.0,
            ),
        )
        result = fetcher.fetch_domain("hang.example", ledger=ledger)
        assert not result.ok
        assert result.error_class == "deadline"
        # attempt 1 (10 s) left 2 s of budget; the minimum backoff is 30 s
        assert result.attempts == 1
        assert ledger.retries == 0
        assert ledger.balanced()


class TestRedirectBudgets:
    def test_redirect_loop_hits_max_redirects(self):
        web = SyntheticWeb(max_redirects=3)
        web.register(
            "https://www.ping.example/", Resource(redirect_to="https://www.pong.example/")
        )
        web.register(
            "https://www.pong.example/", Resource(redirect_to="https://www.ping.example/")
        )
        with pytest.raises(FetchError) as info:
            web.fetch("https://www.ping.example/")
        assert info.value.error_class.value == "redirect-loop"

    def test_chain_at_the_limit_succeeds(self):
        web = SyntheticWeb(max_redirects=3)
        for i in range(3):
            web.register(
                f"https://www.r{i}.example/",
                Resource(redirect_to=f"https://www.r{i + 1}.example/"),
            )
        web.register("https://www.r3.example/", Resource(content=b"landed"))
        response = web.fetch("https://www.r0.example/")
        assert response.body == b"landed"
        assert len(response.redirects) == 3

    def test_byte_budget_applies_to_final_hop(self):
        web = SyntheticWeb()
        web.register(
            "https://www.start.example/", Resource(redirect_to="https://www.end.example/")
        )
        web.register("https://www.end.example/", Resource(content=b"x" * 1000))
        response = web.fetch("https://www.start.example/", max_bytes=64)
        assert len(response.body) == 64
        assert response.url == "https://www.end.example/"
