"""Tests for the HTML parser/serializer."""

from hypothesis import given, settings, strategies as st

from repro.web.html import HtmlElement, extract_scripts, parse_html


class TestBasicParsing:
    def test_simple_document(self):
        doc = parse_html("<html><head><title>Hi</title></head><body><p>text</p></body></html>")
        assert doc.title() == "Hi"
        assert "text" in doc.body_text()

    def test_attributes(self):
        doc = parse_html('<a href="https://x.com" class="big">link</a>')
        anchor = doc.find_all("a")[0]
        assert anchor.get("href") == "https://x.com"
        assert anchor.get("class") == "big"

    def test_unquoted_and_bare_attributes(self):
        doc = parse_html("<input type=text disabled>")
        el = doc.find_all("input")[0]
        assert el.get("type") == "text"
        assert el.get("disabled") is None
        assert "disabled" in el.attrs

    def test_case_insensitive_tags(self):
        doc = parse_html("<SCRIPT src='x.js'></SCRIPT>")
        assert doc.scripts() == [("x.js", "")]

    def test_void_elements_do_not_nest(self):
        doc = parse_html("<p><br><img src='x.png'>tail</p>")
        paragraph = doc.find_all("p")[0]
        assert "tail" in paragraph.text()

    def test_comments_skipped(self):
        doc = parse_html("<p>a<!-- hidden <script src='no.js'> -->b</p>")
        assert doc.scripts() == []
        assert "hidden" not in doc.root.text()

    def test_doctype_skipped(self):
        doc = parse_html("<!DOCTYPE html><html><body>x</body></html>")
        assert "x" in doc.body_text()

    def test_entities_unescaped(self):
        doc = parse_html("<p>a &amp; b &lt;tag&gt;</p>")
        assert doc.root.text() == "a & b <tag>"


class TestScriptExtraction:
    def test_src_and_inline(self):
        html = (
            '<script src="https://coinhive.com/lib/coinhive.min.js"></script>'
            "<script>var miner = new CoinHive.Anonymous('KEY');</script>"
        )
        scripts = extract_scripts(html)
        assert scripts[0] == ("https://coinhive.com/lib/coinhive.min.js", "")
        assert scripts[1][0] is None
        assert "CoinHive.Anonymous" in scripts[1][1]

    def test_script_body_not_parsed_as_html(self):
        html = "<script>if (a < b) { document.write('<p>x</p>'); }</script>"
        scripts = extract_scripts(html)
        assert len(scripts) == 1
        assert "document.write" in scripts[0][1]

    def test_script_inside_body(self):
        html = "<html><body><div><script src='deep.js'></script></div></body></html>"
        assert extract_scripts(html) == [("deep.js", "")]

    def test_unclosed_script_at_truncation(self):
        """zgrab cuts pages at 256 kB, often mid-script."""
        html = "<script src='x.js'></script><script>var a = 'trunca"
        scripts = extract_scripts(html)
        assert scripts[0] == ("x.js", "")
        assert "trunca" in scripts[1][1]


class TestMalformedInput:
    def test_unclosed_tags_close_at_eof(self):
        doc = parse_html("<div><p>deep")
        assert "deep" in doc.root.text()

    def test_stray_end_tags_dropped(self):
        doc = parse_html("</div><p>ok</p>")
        assert doc.find_all("p")

    def test_mismatched_nesting(self):
        doc = parse_html("<b><i>x</b></i>")
        assert "x" in doc.root.text()

    def test_truncated_mid_tag(self):
        doc = parse_html("<p>before</p><a href='x")
        assert "before" in doc.root.text()

    def test_angle_in_text(self):
        doc = parse_html("<p>1 < 2 and 3 > 2</p>")
        assert doc.find_all("p")

    def test_quoted_gt_inside_attribute(self):
        doc = parse_html('<img alt="a > b" src="x.png">next')
        assert doc.find_all("img")[0].get("alt") == "a > b"

    @given(st.text(max_size=300))
    @settings(max_examples=80, deadline=None)
    def test_never_raises(self, text):
        parse_html(text)


class TestSerialization:
    def test_roundtrip_preserves_structure(self):
        html = '<html><head><script src="x.js"></script></head><body><p>hi</p></body></html>'
        doc = parse_html(html)
        again = parse_html(doc.serialize())
        assert again.scripts() == doc.scripts()
        assert again.body_text() == doc.body_text()

    def test_mutated_dom_serializes_new_nodes(self):
        doc = parse_html("<html><body></body></html>")
        doc.find_all("body")[0].append(
            HtmlElement("script", {"src": "https://coinhive.com/lib/coinhive.min.js"})
        )
        assert "coinhive.com" in doc.serialize()

    def test_script_text_not_escaped(self):
        doc = parse_html("<script>a && b < c</script>")
        assert "a && b < c" in doc.serialize()

    def test_text_escaped_outside_raw_elements(self):
        doc = parse_html("<p>a &lt; b</p>")
        assert "&lt;" in doc.serialize()
