"""Shared fixtures.

Expensive artifacts (signature database, populations, Coinhive service)
are session-scoped: they are deterministic, read-only in the tests that
share them, and dominate collection time otherwise.
"""

from __future__ import annotations

import difflib
import pathlib

import pytest

from repro.blockchain.chain import Blockchain
from repro.blockchain.difficulty import DifficultyAdjuster
from repro.blockchain.hashing import FAST_PARAMS
from repro.coinhive.service import CoinhiveService
from repro.core.signatures import build_reference_database
from repro.wasm.builder import ModuleBlueprint, WasmCorpusBuilder


GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate the tests/golden/*.txt snapshot fixtures instead of comparing",
    )


@pytest.fixture()
def golden(request):
    """Snapshot comparator: ``golden("name", rendered_text)``.

    Compares against ``tests/golden/<name>.txt`` and fails with a unified
    diff on mismatch; ``pytest --update-golden`` rewrites the fixtures.
    """
    update = request.config.getoption("--update-golden")

    def check(name: str, text: str) -> None:
        path = GOLDEN_DIR / f"{name}.txt"
        if update:
            GOLDEN_DIR.mkdir(exist_ok=True)
            path.write_text(text)
            return
        if not path.exists():
            pytest.fail(
                f"golden fixture {path} is missing — "
                "run `pytest --update-golden` once to create it"
            )
        expected = path.read_text()
        if text != expected:
            diff = "\n".join(
                difflib.unified_diff(
                    expected.splitlines(),
                    text.splitlines(),
                    fromfile=f"golden/{name}.txt",
                    tofile="measured",
                    lineterm="",
                )
            )
            pytest.fail(
                f"golden snapshot mismatch for {name!r}:\n{diff}\n"
                "(if the change is intentional, refresh with `pytest --update-golden`)"
            )

    return check


@pytest.fixture(scope="session")
def corpus():
    return WasmCorpusBuilder()


@pytest.fixture(scope="session")
def signature_db(corpus):
    return build_reference_database(corpus)


@pytest.fixture(scope="session")
def coinhive_wasm(corpus):
    return corpus.build(ModuleBlueprint("coinhive", 0))


@pytest.fixture(scope="session")
def benign_wasm(corpus):
    return corpus.build(ModuleBlueprint("math-lib", 0))


@pytest.fixture()
def small_chain():
    """A fresh fast-PoW chain with quick retargeting."""
    return Blockchain(
        pow_params=FAST_PARAMS,
        adjuster=DifficultyAdjuster(window=20, cut=2, initial_difficulty=64),
        genesis_timestamp=1_525_000_000,
    )


@pytest.fixture()
def coinhive_service(small_chain):
    return CoinhiveService(chain=small_chain)


@pytest.fixture(scope="session")
def alexa_population():
    """A small but fully wired Alexa population (scale 0.08)."""
    from repro.internet.population import build_population

    return build_population("alexa", seed=77, scale=0.08)


@pytest.fixture(scope="session")
def shortlink_population():
    from repro.internet.shortlinks import build_shortlink_population

    return build_shortlink_population(seed=77, scale=0.002)
