"""Tests for the RuleSpace-like categorizer."""

from repro.rulespace.categories import BY_NAME, CATEGORIES
from repro.rulespace.engine import RuleSpaceEngine


class TestVocabulary:
    def test_paper_categories_present(self):
        for name in (
            "Gaming", "Educational Site", "Shopping", "Pornography",
            "Technology & Telecommunication", "Entertainment & Music",
            "Filesharing", "Business", "Religion", "Health Site",
            "Dynamic Site", "Finance and Investing", "Hosting",
            "Message Board", "Automotive",
        ):
            assert name in BY_NAME

    def test_all_categories_have_fragments(self):
        for category in CATEGORIES:
            assert category.domain_fragments
            assert category.content_keywords


class TestDomainClassification:
    def test_fragment_match(self):
        engine = RuleSpaceEngine()
        assert "Gaming" in engine.classify_domain("mygamehub.com")

    def test_www_stripped(self):
        engine = RuleSpaceEngine()
        assert engine.classify_domain("www.gamezone.org") == engine.classify_domain("gamezone.org")

    def test_opaque_domain_unclassified(self):
        assert RuleSpaceEngine().classify_domain("zorvexqua.com") == ()

    def test_multi_label(self):
        labels = RuleSpaceEngine().classify_domain("gameshop.com")
        assert "Gaming" in labels and "Shopping" in labels

    def test_curated_domains_from_table4(self):
        engine = RuleSpaceEngine()
        assert engine.classify_domain("youtu.be") == ("Entertainment & Music",)
        assert engine.classify_domain("zippyshare.com") == ("Filesharing",)
        assert engine.classify_domain("andyspeedracing.com") == ("Automotive",)
        assert engine.classify_domain("getcoinfree.com") == ("Finance and Investing",)
        assert engine.classify_domain("ftbucket.info") == ("Message Board",)

    def test_curated_beats_fragments(self):
        # youtu.be contains no fragments; curation supplies its category
        engine = RuleSpaceEngine()
        assert engine.classify_domain("www.youtu.be") == ("Entertainment & Music",)


class TestUrlClassification:
    def test_path_contributes(self):
        engine = RuleSpaceEngine()
        labels = engine.classify_url("https://zorvexqua.com/game/play")
        assert "Gaming" in labels

    def test_host_and_path_deduplicated(self):
        engine = RuleSpaceEngine()
        labels = engine.classify_url("https://gamehub.com/game/1")
        assert labels.count("Gaming") == 1


class TestTextClassification:
    def test_needs_two_keywords(self):
        engine = RuleSpaceEngine()
        assert engine.classify_text("our worship and prayer schedule") == ("Religion",)
        assert engine.classify_text("prayer only") == ()

    def test_classify_site_prefers_domain(self):
        engine = RuleSpaceEngine()
        labels = engine.classify_site("gamehub.com", "cart checkout price")
        assert labels == ("Gaming",)

    def test_classify_site_falls_back_to_text(self):
        engine = RuleSpaceEngine()
        labels = engine.classify_site("zorvexqua.com", "add to cart and checkout with price")
        assert "Shopping" in labels


class TestCoverage:
    def test_coverage_fraction(self):
        engine = RuleSpaceEngine()
        domains = ["gamehub.com", "zorvexqua.com", "healthclinic.org", "belryn.net"]
        assert engine.coverage(domains) == 0.5

    def test_coverage_empty(self):
        assert RuleSpaceEngine().coverage([]) == 0.0
