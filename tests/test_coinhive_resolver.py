"""Tests for the non-browser short-link resolver."""

import pytest

from repro.coinhive.resolver import LinkResolver, duration_seconds
from repro.coinhive.shortlink import ShortLinkService


@pytest.fixture()
def service_with_links():
    service = ShortLinkService()
    service.create("AAAA0000AAAA0000AAAA0000AAAA0000", "https://youtu.be/v1", 512)
    service.create("BBBB0000BBBB0000BBBB0000BBBB0000", "https://zippyshare.com/f", 1024)
    service.create("CCCC0000CCCC0000CCCC0000CCCC0000", "https://slow.example/x", 10**19)
    return service


class TestScan:
    def test_scan_reads_tokens_and_goals(self, service_with_links):
        resolver = LinkResolver(shortlinks=service_with_links)
        scanned = resolver.scan()
        assert len(scanned) == 3
        assert scanned[0].token.startswith("AAAA")
        assert scanned[0].required_hashes == 512
        assert scanned[2].required_hashes == 10**19

    def test_scan_needs_no_hashing(self, service_with_links):
        resolver = LinkResolver(shortlinks=service_with_links)
        resolver.scan()
        assert resolver.total_hashes_computed == 0

    def test_parse_landing_page_rejects_garbage(self):
        assert LinkResolver.parse_landing_page("x", "<html>nothing here</html>") is None


class TestResolve:
    def test_resolve_returns_target(self, service_with_links):
        resolver = LinkResolver(shortlinks=service_with_links, hash_scale=256)
        resolved = resolver.resolve("a")
        assert resolved.target_url == "https://youtu.be/v1"
        assert resolved.required_hashes == 512

    def test_resolve_actually_computes_hashes(self, service_with_links):
        resolver = LinkResolver(shortlinks=service_with_links, hash_scale=256)
        resolver.resolve("a")  # 512 required / 256 scale = 2 physical
        assert resolver.total_hashes_computed == 2

    def test_unknown_link_returns_none(self, service_with_links):
        resolver = LinkResolver(shortlinks=service_with_links)
        assert resolver.resolve("zzzz") is None

    def test_resolve_many(self, service_with_links):
        resolver = LinkResolver(shortlinks=service_with_links, hash_scale=1024)
        resolved = resolver.resolve_many(["a", "b", "nope"])
        assert [r.link_id for r in resolved] == ["a", "b"]

    def test_huge_goal_physical_work_capped(self, service_with_links):
        """Even 1e19-hash links terminate: the resolver chunks physical work."""
        resolver = LinkResolver(shortlinks=service_with_links, hash_scale=1024)
        resolved = resolver.resolve("c")
        assert resolved.hashes_computed <= 4096

    def test_resolver_uses_coinhive_pool_blob(self, coinhive_service):
        service = ShortLinkService()
        service.create("DDDD0000DDDD0000DDDD0000DDDD0000", "https://x.com/", 64)
        resolver = LinkResolver(
            shortlinks=service, coinhive=coinhive_service, hash_scale=64
        )
        resolved = resolver.resolve("a", now=5.0)
        assert resolved.target_url == "https://x.com/"


class TestDurations:
    def test_figure4_top_axis_anchors(self):
        # 1024 hashes at 20 H/s ≈ 51 s (the paper's "< 51 sec" bucket)
        assert duration_seconds(1024) == pytest.approx(51.2)
        # 2^8 = 256 hashes ≈ 13 s
        assert duration_seconds(256) == pytest.approx(12.8)
        # the 1e19 tail: billions of years
        years = duration_seconds(10**19) / (365.25 * 86400)
        assert years > 1e10

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            duration_seconds(100, 0)


class TestRepeatedResolution:
    def test_resolving_twice_is_idempotent(self, service_with_links):
        resolver = LinkResolver(shortlinks=service_with_links, hash_scale=512)
        first = resolver.resolve("a")
        second = resolver.resolve("a")  # must not submit negative hashes
        assert first.target_url == second.target_url
        link = service_with_links.get("a")
        assert link.hashes_done == link.required_hashes
