"""Tests for the CryptoNight stand-in and the difficulty test."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.blockchain.hashing import (
    CryptonightParams,
    DEFAULT_PARAMS,
    FAST_PARAMS,
    cryptonight,
    expected_hashes,
    hash_meets_difficulty,
)


class TestParams:
    def test_default_valid(self):
        assert DEFAULT_PARAMS.scratchpad_bytes == 4096

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            CryptonightParams(scratchpad_bytes=3000)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            CryptonightParams(scratchpad_bytes=64)

    def test_zero_iterations_rejected(self):
        with pytest.raises(ValueError):
            CryptonightParams(iterations=0)


class TestCryptonight:
    def test_deterministic(self):
        assert cryptonight(b"abc") == cryptonight(b"abc")

    def test_32_bytes(self):
        assert len(cryptonight(b"abc")) == 32

    def test_input_sensitivity(self):
        assert cryptonight(b"abc") != cryptonight(b"abd")

    def test_param_sensitivity(self):
        assert cryptonight(b"abc", FAST_PARAMS) != cryptonight(b"abc", DEFAULT_PARAMS)

    def test_empty_input_ok(self):
        assert len(cryptonight(b"")) == 32

    @given(st.binary(max_size=128))
    @settings(max_examples=50, deadline=None)
    def test_never_crashes_and_stays_32_bytes(self, data):
        assert len(cryptonight(data, FAST_PARAMS)) == 32

    def test_avalanche(self):
        """Single-bit input flip changes roughly half the output bits."""
        a = cryptonight(b"\x00" * 32, FAST_PARAMS)
        b = cryptonight(b"\x01" + b"\x00" * 31, FAST_PARAMS)
        differing = bin(int.from_bytes(a, "big") ^ int.from_bytes(b, "big")).count("1")
        assert 70 <= differing <= 190


class TestDifficultyCheck:
    def test_difficulty_one_accepts_everything(self):
        assert hash_meets_difficulty(b"\xff" * 32, 1)

    def test_zero_hash_meets_anything(self):
        assert hash_meets_difficulty(b"\x00" * 32, 10**30)

    def test_rejects_high_hash_at_high_difficulty(self):
        assert not hash_meets_difficulty(b"\xff" * 32, 2)

    def test_little_endian_interpretation(self):
        # high trailing bytes dominate under little-endian
        low_le = b"\xff" + b"\x00" * 31   # small as little-endian int
        high_le = b"\x00" * 31 + b"\xff"  # huge as little-endian int
        difficulty = 2**10
        assert hash_meets_difficulty(low_le, difficulty)
        assert not hash_meets_difficulty(high_le, difficulty)

    def test_exact_boundary(self):
        # hash value v passes iff v * d < 2^256
        d = 2**128
        boundary = (2**128).to_bytes(32, "little")
        just_below = (2**128 - 1).to_bytes(32, "little")
        assert not hash_meets_difficulty(boundary, d)
        assert hash_meets_difficulty(just_below, d)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            hash_meets_difficulty(b"\x00" * 16, 10)

    def test_nonpositive_difficulty_rejected(self):
        with pytest.raises(ValueError):
            hash_meets_difficulty(b"\x00" * 32, 0)

    def test_acceptance_rate_matches_difficulty(self):
        """Empirical acceptance ≈ 1/difficulty (the PoW's core property)."""
        difficulty = 16
        accepted = sum(
            1
            for i in range(2000)
            if hash_meets_difficulty(cryptonight(i.to_bytes(4, "little"), FAST_PARAMS), difficulty)
        )
        assert 80 <= accepted <= 180  # E=125, generous bounds

    def test_expected_hashes(self):
        assert expected_hashes(1000) == 1000.0
