"""Tests for the analysis campaigns (crawls, short-link study, reporting)."""

import pytest

from repro.analysis.crawl import ChromeCampaign, ZgrabCampaign
from repro.analysis.economics import EconomicsReport, user_count_bracket
from repro.analysis.reporting import (
    format_quantity,
    render_cdf_points,
    render_day_hour_heatmap,
    render_histogram,
    render_table,
)
from repro.analysis.shortlink import ShortLinkStudy


class TestZgrabCampaign:
    @pytest.fixture(scope="class")
    def scans(self, alexa_population):
        campaign = ZgrabCampaign(population=alexa_population)
        return campaign.both_scans()

    def test_detects_miners(self, scans):
        assert scans[0].nocoin_domains > 0

    def test_second_scan_smaller(self, scans):
        # churn removes ~12% of tagged sites
        assert scans[1].nocoin_domains < scans[0].nocoin_domains

    def test_coinhive_dominates_shares(self, scans):
        shares = scans[0].script_shares
        assert shares.get("coinhive", 0) > 0.5
        assert max(shares, key=shares.get) == "coinhive"

    def test_prevalence_is_low(self, scans):
        # the paper: < 0.08% of probed domains
        assert scans[0].prevalence < 0.0008

    def test_scan_dates_from_spec(self, scans, alexa_population):
        assert scans[0].scan_date == alexa_population.spec.scan_dates[0]


class TestChromeCampaign:
    @pytest.fixture(scope="class")
    def result(self, alexa_population):
        return ChromeCampaign(population=alexa_population).run()

    def test_finds_most_ground_truth_miners(self, result, alexa_population):
        truth = alexa_population.ground_truth_miners()
        assert result.miner_wasm_sites >= len(truth) * 0.95

    def test_no_false_positives_on_benign_wasm(self, result, alexa_population):
        miner_domains = {r.domain for r in result.reports if r.is_miner}
        benign = {s.domain for s in alexa_population.sites_by_role("benign-wasm")}
        assert not (miner_domains & benign)

    def test_nocoin_misses_majority(self, result):
        # the paper's headline: 82% of Alexa miners missed by NoCoin
        assert result.cross_tab.missed_fraction > 0.6

    def test_detection_factor_matches_magnitude(self, result):
        # "up to a factor of 5.7 more miners than block lists"
        assert result.cross_tab.detection_factor > 3.0

    def test_nocoin_false_positives_exist(self, result):
        # dead tags + cpmstar: NoCoin hits without mining Wasm
        assert result.cross_tab.nocoin_hits > result.cross_tab.nocoin_hits_with_miner_wasm

    def test_coinhive_top_signature(self, result):
        assert result.signature_counts.most_common(1)[0][0] == "coinhive"

    def test_most_wasm_is_mining(self, result):
        # paper: ~96% of Wasm-bearing sites are miners
        assert result.miner_wasm_sites / result.total_wasm_sites > 0.85

    def test_category_tables_have_coverage(self, result):
        assert 0.3 < result.nocoin_categorized_fraction <= 1.0
        assert 0.3 < result.signature_categorized_fraction <= 1.0
        assert result.nocoin_categories
        assert result.signature_categories


class TestShortLinkStudy:
    @pytest.fixture(scope="class")
    def study(self, shortlink_population):
        return ShortLinkStudy(
            population=shortlink_population, sample_per_top_user=40
        )

    def test_links_per_token_figure3(self, study):
        result = study.links_per_token()
        assert result.top1_share == pytest.approx(1 / 3, abs=0.02)
        assert result.topn_share(10) == pytest.approx(0.85, abs=0.02)
        cdf = result.cdf_points()
        assert cdf[-1][1] == pytest.approx(1.0)

    def test_hash_requirements_figure4(self, study):
        result = study.hash_requirements()
        # majority of links resolvable in <51 s (1024 hashes @20 H/s), both views
        assert result.share_resolvable_within(1024, unbiased=False) > 0.5
        assert result.share_resolvable_within(1024, unbiased=True) > 0.5
        # unbiased view: >2/3 under 1024 (the paper's statement)
        assert result.share_resolvable_within(1024, unbiased=True) > 2 / 3 - 0.05
        # the infeasible tail exists
        assert result.share_resolvable_within(10**18, unbiased=True) < 1.0

    def test_user_bias_removal_shrinks_dataset(self, study):
        result = study.hash_requirements()
        assert len(result.user_bias_removed) < len(result.all_links)

    def test_destinations_tables_4_and_5(self, study):
        result = study.destinations()
        # Table 4: top-10 destination hosts dominated by streaming/filesharing
        top_hosts = [host for host, _ in result.top_user_domains.most_common(10)]
        assert "youtu.be" in top_hosts
        coverage = sum(result.top_user_domains[h] for h in top_hosts) / result.top_user_sample_size
        assert coverage > 0.8  # paper: ~89%
        # Table 5: diverse categories, ~1/3 unclassified
        assert len(result.unbiased_categories) >= 5
        unclassified_share = result.unbiased_unclassified / result.unbiased_urls
        assert 0.2 < unclassified_share < 0.5

    def test_resolution_computed_hashes(self, study):
        result = study.destinations()
        assert result.hashes_computed > 0


class TestEconomics:
    def test_gross_usd(self):
        report = EconomicsReport(xmr_mined=1271.0)
        assert report.gross_usd == pytest.approx(152_520)

    def test_split(self):
        report = EconomicsReport(xmr_mined=1000.0)
        assert report.pool_cut_usd == pytest.approx(report.gross_usd * 0.3)
        assert report.users_cut_usd == pytest.approx(report.gross_usd * 0.7)

    def test_user_bracket_matches_paper(self):
        high, low = user_count_bracket(5.5e6)
        assert high == pytest.approx(275_000, rel=0.1)
        assert low == pytest.approx(55_000, rel=0.1)


class TestReporting:
    def test_render_table(self):
        text = render_table(["a", "bb"], [["1", "22"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "333" in text

    def test_render_histogram(self):
        text = render_histogram([256, 512], [5, 10], title="H", width=10)
        assert "##########" in text

    def test_render_cdf(self):
        text = render_cdf_points([1, 2, 3, 4, 5])
        assert "p50" in text

    def test_render_cdf_empty(self):
        assert render_cdf_points([]) == "(empty)"

    def test_format_quantity(self):
        assert format_quantity(55_400_000_000) == "55.4G"
        assert format_quantity(5_500_000) == "5.5M"
        assert format_quantity(42) == "42.0"

    def test_heatmap(self):
        matrix = {("2018-05-01", 3): 2, ("2018-05-01", 14): 11, ("2018-05-02", 0): 1}
        text = render_day_hour_heatmap(matrix, title="Fig5")
        assert "2018-05-01" in text
        assert "+" in text  # ≥10 marker
        assert "| 13" in text  # daily total
