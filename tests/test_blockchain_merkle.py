"""Tests for Monero's tree-hash algorithm."""

import hashlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.blockchain.merkle import tree_branch_covers, tree_hash, tree_hash_cnt


def leaves(n: int) -> list:
    return [hashlib.sha3_256(bytes([i])).digest() for i in range(n)]


class TestTreeHashCnt:
    def test_values(self):
        # pow < count <= 2*pow
        assert tree_hash_cnt(3) == 2
        assert tree_hash_cnt(4) == 2
        assert tree_hash_cnt(5) == 4
        assert tree_hash_cnt(8) == 4
        assert tree_hash_cnt(9) == 8
        assert tree_hash_cnt(16) == 8
        assert tree_hash_cnt(17) == 16

    def test_small_counts_rejected(self):
        with pytest.raises(ValueError):
            tree_hash_cnt(2)


class TestTreeHash:
    def test_single_leaf_is_identity(self):
        h = leaves(1)[0]
        assert tree_hash([h]) == h

    def test_two_leaves(self):
        a, b = leaves(2)
        assert tree_hash([a, b]) == hashlib.sha3_256(a + b).digest()

    def test_three_leaves_keeps_first_verbatim(self):
        a, b, c = leaves(3)
        # cnt=2; 2*cnt-n=1 leaf kept; (b,c) hashed; root = H(a || H(b||c))
        inner = hashlib.sha3_256(b + c).digest()
        assert tree_hash([a, b, c]) == hashlib.sha3_256(a + inner).digest()

    def test_power_of_two_full_reduction(self):
        a, b, c, d = leaves(4)
        left = hashlib.sha3_256(a + b).digest()
        right = hashlib.sha3_256(c + d).digest()
        assert tree_hash([a, b, c, d]) == hashlib.sha3_256(left + right).digest()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            tree_hash([])

    def test_non_32_byte_leaf_rejected(self):
        with pytest.raises(ValueError):
            tree_hash([b"short"])

    def test_order_sensitivity(self):
        a, b, c = leaves(3)
        assert tree_hash([a, b, c]) != tree_hash([c, b, a])

    def test_first_leaf_commits_uniquely(self):
        """The coinbase (first leaf) changes ⇒ the root changes — the
        property the pool-association method rests on."""
        base = leaves(5)
        other = [hashlib.sha3_256(b"other-coinbase").digest()] + base[1:]
        assert tree_hash(base) != tree_hash(other)

    @given(st.integers(min_value=1, max_value=40))
    @settings(max_examples=40, deadline=None)
    def test_deterministic_for_any_count(self, n):
        data = leaves(n)
        assert tree_hash(data) == tree_hash(list(data))
        assert len(tree_hash(data)) == 32

    def test_branch_covers(self):
        data = leaves(7)
        root = tree_hash(data)
        assert tree_branch_covers(root, data)
        assert not tree_branch_covers(root, data[:-1])

    def test_branch_covers_handles_invalid_input(self):
        assert not tree_branch_covers(b"\x00" * 32, [])
