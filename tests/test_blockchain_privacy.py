"""Tests for the simulated Monero privacy layer."""

import pytest

from repro.blockchain.privacy import (
    DoubleSpendError,
    KeyImageRegistry,
    PrivateTransferFactory,
    Wallet,
    key_image_for,
    make_stealth_output,
    output_belongs_to,
    sign_spend,
    verify_spend,
)
from repro.sim.rng import RngStream


@pytest.fixture()
def rng():
    return RngStream(42, "privacy")


@pytest.fixture()
def alice(rng):
    return Wallet.create("alice", rng.substream("alice"))


@pytest.fixture()
def bob(rng):
    return Wallet.create("bob", rng.substream("bob"))


class TestStealthOutputs:
    def test_recipient_recognizes_own_output(self, alice, rng):
        output = make_stealth_output(alice, 1000, rng)
        assert output_belongs_to(output, alice)

    def test_others_do_not(self, alice, bob, rng):
        output = make_stealth_output(alice, 1000, rng)
        assert not output_belongs_to(output, bob)

    def test_outputs_unlinkable(self, alice, rng):
        """Two payments to the same address share no visible key material."""
        a = make_stealth_output(alice, 1000, rng)
        b = make_stealth_output(alice, 1000, rng)
        assert a.one_time_key != b.one_time_key

    def test_address_derivation_stable(self, alice):
        assert alice.address == alice.address
        assert alice.address.startswith("4")  # Monero mainnet prefix


class TestRingSignatures:
    def test_sign_and_verify(self, alice, bob, rng):
        real = make_stealth_output(alice, 500, rng)
        decoys = [make_stealth_output(bob, 500, rng) for _ in range(10)]
        signature = sign_spend(real, alice, decoys, b"message", rng)
        assert verify_spend(signature, b"message")
        assert signature.ring_size() == 11

    def test_message_binding(self, alice, bob, rng):
        real = make_stealth_output(alice, 500, rng)
        decoys = [make_stealth_output(bob, 500, rng) for _ in range(4)]
        signature = sign_spend(real, alice, decoys, b"message", rng)
        assert not verify_spend(signature, b"other message")

    def test_real_member_position_hidden(self, alice, bob, rng):
        """The real output appears somewhere in the ring, position shuffled."""
        real = make_stealth_output(alice, 500, rng)
        decoys = [make_stealth_output(bob, 500, rng) for _ in range(6)]
        positions = set()
        for i in range(20):
            signature = sign_spend(real, alice, decoys, b"m", rng.substream(str(i)))
            positions.add(signature.ring.index(real.one_time_key))
        assert len(positions) > 1  # not always first

    def test_trivial_ring_rejected(self, alice, rng):
        real = make_stealth_output(alice, 500, rng)
        signature = sign_spend(real, alice, [], b"m", rng)
        assert not verify_spend(signature, b"m")


class TestKeyImages:
    def test_deterministic_per_output(self, alice, rng):
        output = make_stealth_output(alice, 500, rng)
        assert key_image_for(output, alice) == key_image_for(output, alice)

    def test_distinct_outputs_distinct_images(self, alice, rng):
        a = make_stealth_output(alice, 500, rng)
        b = make_stealth_output(alice, 500, rng)
        assert key_image_for(a, alice) != key_image_for(b, alice)

    def test_registry_catches_double_spend(self):
        registry = KeyImageRegistry()
        registry.register(b"\x01" * 32)
        assert registry.is_spent(b"\x01" * 32)
        with pytest.raises(DoubleSpendError):
            registry.register(b"\x01" * 32)


class TestPrivateTransfers:
    def test_transfer_produces_valid_transaction(self, alice, bob, rng):
        factory = PrivateTransferFactory(rng=rng)
        for _ in range(12):  # decoy pool
            factory.fund_wallet(bob, 100)
        funding = factory.fund_wallet(alice, 1000)
        tx = factory.transfer(alice, funding, bob)
        assert tx.inputs[0][0] == "key"
        assert tx.total_output() == 1000
        assert len(tx.hash()) == 32

    def test_double_spend_rejected(self, alice, bob, rng):
        factory = PrivateTransferFactory(rng=rng)
        for _ in range(12):
            factory.fund_wallet(bob, 100)
        funding = factory.fund_wallet(alice, 1000)
        factory.transfer(alice, funding, bob)
        with pytest.raises(DoubleSpendError):
            factory.transfer(alice, funding, bob)

    def test_observer_cannot_link_sender(self, alice, bob, rng):
        """The transaction reveals neither address: inputs are key images,
        outputs are one-time keys."""
        factory = PrivateTransferFactory(rng=rng)
        for _ in range(12):
            factory.fund_wallet(bob, 100)
        funding = factory.fund_wallet(alice, 1000)
        tx = factory.transfer(alice, funding, bob)
        serialized = tx.serialize()
        assert alice.address.encode() not in serialized
        assert bob.address.encode() not in serialized

    def test_private_txs_flow_through_chain_and_attribution(self, small_chain, rng):
        """Pool association works on a chain of private transactions —
        the method never needs to de-anonymize anyone."""
        from repro.blockchain.chain import Mempool
        from repro.core.pool_association import BlockAttributor
        from repro.pool.jobs import build_template

        factory = PrivateTransferFactory(rng=rng)
        wallets = [Wallet.create(f"w{i}", rng.substream(f"w{i}")) for i in range(4)]
        for wallet in wallets:
            for _ in range(4):
                factory.fund_wallet(wallet, 500)
        mempool = Mempool()
        outputs = [factory.fund_wallet(w, 1000) for w in wallets]
        for wallet, funding in zip(wallets, outputs):
            mempool.add(factory.transfer(wallet, funding, wallets[0]))

        template = build_template(
            small_chain, "coinhive", b"be0", timestamp=1_525_000_100, mempool=mempool
        )
        clusters = {template.header.prev_id: {template.merkle_root()}}
        small_chain.force_append(template.to_block(nonce=5))
        attributed = BlockAttributor(chain=small_chain).attribute(clusters)
        assert len(attributed) == 1
