"""Chaos campaigns: the pool observer under injected endpoint outages.

The paper's association method polls 32 endpoints every 500 ms and is a
lower bound by construction — it stays *correct* (attributed blocks are
really the pool's; recall only degrades) as long as some poll per template
window succeeds. These tests drive the observer against a Coinhive service
whose backends suffer deterministic outage windows, up to the acceptance
threshold of 20% failed polls, and audit the fault ledger throughout.
"""

from __future__ import annotations

import pytest

from repro.core.pool_association import BlockAttributor, PoolObserver
from repro.faults.ledger import FaultLedger
from repro.faults.plan import FaultKind, FaultPlan
from repro.faults.resilience import BreakerPolicy, RetryPolicy
from repro.pool.protocol import LoginMessage, encode_message
from repro.sim.events import EventLoop
from repro.web.websocket import WebSocketChannel

pytestmark = pytest.mark.chaos

SEED = 2018


def _observer(service, plan, ledger, endpoints=None, retry_attempts=3):
    return PoolObserver(
        fetch_input=service.pow_input_for_endpoint,
        endpoints=endpoints if endpoints is not None else service.endpoints(),
        detransform=service.obfuscator.revert,
        fault_plan=plan,
        retry=RetryPolicy(max_attempts=retry_attempts, backoff_base=0.0),
        breaker=BreakerPolicy(),
        ledger=ledger,
    )


class TestAssociationUnderOutages:
    def test_correct_with_20_percent_outages(self, coinhive_service):
        """Server-side outage windows at rate 0.20: association still
        proves the pool's blocks from the surviving polls."""
        plan = FaultPlan(seed=SEED, rates={FaultKind.POOL_OUTAGE: 0.20})
        coinhive_service.pool.fault_plan = plan
        ledger = FaultLedger()
        observer = _observer(coinhive_service, plan, ledger)
        loop = EventLoop()
        observer.run(loop, duration=60.0)

        assert observer.failures > 0  # the chaos plane really fired
        tip = coinhive_service.chain.tip.block_id()
        assert tip in observer.clusters  # polling survived the outages

        # mine the next block from a backend template the observer saw
        roots = observer.clusters[tip]
        template = next(
            backend.template
            for backend in coinhive_service.pool._backends
            if backend.template is not None and backend.template.merkle_root() in roots
        )
        coinhive_service.chain.force_append(template.to_block(nonce=99))
        attributed = BlockAttributor(chain=coinhive_service.chain).attribute(
            observer.clusters
        )
        assert [block.height for block in attributed] == [1]
        assert attributed[0].merkle_root in roots
        assert ledger.balanced()

    def test_client_side_blips_recover_under_retry(self, coinhive_service):
        """Client-side poll faults are keyed per attempt, so the in-tick
        retry budget masks most of them."""
        plan = FaultPlan(seed=SEED, rates={FaultKind.POOL_OUTAGE: 0.30})
        # plan drives only the observer's client side; the server is healthy
        ledger = FaultLedger()
        observer = _observer(
            coinhive_service, plan, ledger,
            endpoints=coinhive_service.endpoints()[:8],
            retry_attempts=4,
        )
        loop = EventLoop()
        observer.run(loop, duration=30.0)
        assert ledger.total_injected > 0
        assert ledger.recovered["pool-outage"] > 0
        assert ledger.retries > 0
        assert ledger.balanced()
        # a 30% per-attempt blip with 4 attempts leaves ~1% terminal loss
        assert observer.failures < observer.polls * 0.1

    def test_total_outage_never_crashes_and_breakers_open(self, coinhive_service):
        plan = FaultPlan(seed=SEED, rates={FaultKind.POOL_OUTAGE: 1.0})
        coinhive_service.pool.fault_plan = plan
        ledger = FaultLedger()
        observer = _observer(
            coinhive_service, plan, ledger, endpoints=coinhive_service.endpoints()[:4]
        )
        loop = EventLoop()
        observer.run(loop, duration=20.0)
        assert observer.observations == []
        assert observer.failures == observer.polls
        assert ledger.breaker_opened >= 4          # every endpoint tripped
        assert ledger.breaker_half_open > 0        # and kept probing
        assert ledger.observed["breaker-open"] > 0
        assert ledger.balanced()

    def test_poll_counters_stay_pinned(self, coinhive_service):
        """polls counts every endpoint tick regardless of chaos."""
        plan = FaultPlan(seed=SEED, rates={FaultKind.POOL_OUTAGE: 0.5})
        coinhive_service.pool.fault_plan = plan
        observer = _observer(
            coinhive_service, plan, FaultLedger(),
            endpoints=coinhive_service.endpoints()[:2],
        )
        loop = EventLoop()
        observer.run(loop, duration=5.0)
        assert observer.polls == 22  # 11 ticks × 2 endpoints, chaos or not


class TestMinerFacingOutage:
    def test_login_during_outage_drops_connection_not_loop(self, coinhive_service):
        """An injected backend outage mid-login closes the miner's channel
        (what a real outage looks like) instead of crashing the handler."""
        coinhive_service.pool.fault_plan = FaultPlan(
            seed=SEED, rates={FaultKind.POOL_OUTAGE: 1.0}
        )
        endpoint = coinhive_service.endpoints()[0]
        loop = EventLoop()
        channel = WebSocketChannel(
            url=endpoint,
            loop=loop,
            server_handler=coinhive_service.websocket_handler(endpoint),
        )
        channel.send(encode_message(LoginMessage(token="SITEKEY")))
        loop.run_until(2.0)
        assert channel.closed


class TestInjectedWsDrop:
    def test_channel_drops_after_frame_budget(self):
        loop = EventLoop()
        received = []
        channel = WebSocketChannel(
            url="wss://pool.example/proxy",
            loop=loop,
            server_handler=lambda ch, payload: ch.server_send("pong"),
            on_message=received.append,
        )
        channel.drop_after = 3
        drops = []
        channel.on_drop = drops.append
        channel.send("ping-1")  # 1 sent
        loop.run_until(1.0)     # +1 received = 2
        channel.send("ping-2")  # 3 → threshold crossed on send
        loop.run_until(2.0)
        assert channel.dropped and channel.closed
        assert drops == [channel]
        assert received == ["pong"]  # the reply to ping-2 never arrives
