"""Tests for zone-file generation and parsing."""

import pytest

from repro.internet.population import build_population
from repro.internet.zonefile import ZoneFile, crawl_list_from_zone, zone_from_population


class TestZoneFile:
    def test_dump_and_parse_roundtrip(self):
        zone = ZoneFile(origin="org.", domains=["gamehub", "church-of-zorvex", "filebox"])
        restored = ZoneFile.parse(zone.dump())
        assert restored.origin == "org."
        assert restored.domains == zone.domains

    def test_fqdns(self):
        zone = ZoneFile(origin="net.", domains=["a", "b"])
        assert zone.fqdns() == ["a.net", "b.net"]

    def test_relative_origin_rejected(self):
        with pytest.raises(ValueError):
            ZoneFile(origin="org", domains=[])

    def test_parse_ignores_comments_and_glue(self):
        text = (
            "$ORIGIN com.\n"
            "$TTL 86400\n"
            "; comment line\n"
            "example\tIN\tNS\tns1.host.\n"
            "ns1.host\tIN\tA\t192.0.2.1\n"     # glue, not a delegation
            "example\tIN\tNS\tns2.host.\n"     # duplicate name, second NS
            "other\tIN\tNS\tns1.host.\n"
        )
        zone = ZoneFile.parse(text)
        assert zone.domains == ["example", "other"]

    def test_parse_requires_origin(self):
        with pytest.raises(ValueError, match="ORIGIN"):
            ZoneFile.parse("example\tIN\tNS\tns1.\n")

    def test_malformed_origin(self):
        with pytest.raises(ValueError, match="ORIGIN"):
            ZoneFile.parse("$ORIGIN\n")

    def test_write_and_read(self, tmp_path):
        zone = ZoneFile(origin="org.", domains=["alpha", "beta"])
        path = tmp_path / "org.zone"
        zone.write(path)
        assert ZoneFile.read(path).domains == ["alpha", "beta"]


class TestPopulationIntegration:
    def test_zone_from_population_covers_all_sites(self):
        population = build_population("net", seed=8, scale=0.02)
        zone = zone_from_population(population)
        assert len(zone) == len(population.sites)
        assert set(zone.fqdns()) == set(population.domains())

    def test_crawl_list_pipeline(self):
        population = build_population("net", seed=8, scale=0.02)
        zone = zone_from_population(population)
        crawl_list = list(crawl_list_from_zone(zone))
        assert crawl_list == zone.fqdns()

    def test_resolver_filter(self):
        zone = ZoneFile(origin="com.", domains=["live", "dead"])
        resolved = list(crawl_list_from_zone(zone, resolver=lambda d: d.startswith("live")))
        assert resolved == ["live.com"]

    def test_zone_roundtrip_preserves_crawlability(self, tmp_path):
        """The paper's full path: population → zone dump → parse → zgrab."""
        from repro.web.zgrab import ZgrabFetcher

        population = build_population("net", seed=8, scale=0.02)
        path = tmp_path / "net.zone"
        zone_from_population(population).write(path)
        names = list(crawl_list_from_zone(ZoneFile.read(path)))
        fetcher = ZgrabFetcher(population.web)
        results = fetcher.fetch_many(names[:20])
        assert any(result.ok for result in results)
