"""Tests for the mining-pool substrate: jobs, protocol, shares, payouts, server."""

import pytest

from repro.blockchain.block import set_blob_nonce
from repro.blockchain.hashing import FAST_PARAMS, cryptonight, hash_meets_difficulty
from repro.blockchain.transactions import TransferFactory
from repro.pool.jobs import Job, build_template, parse_blob
from repro.pool.payout import PayoutLedger
from repro.pool.protocol import (
    JobMessage,
    LoginMessage,
    ProtocolError,
    SubmitMessage,
    SubmitResult,
    decode_message,
    difficulty_for_target_hex,
    encode_message,
    target_hex_for_difficulty,
)
from repro.pool.server import PoolServer
from repro.pool.shares import ShareLedger, ShareValidator
from repro.sim.rng import RngStream


class TestTemplates:
    def test_template_extends_tip(self, small_chain):
        template = build_template(small_chain, "pool", b"x", timestamp=1_525_000_100)
        assert template.header.prev_id == small_chain.tip.block_id()
        assert template.height == 1
        assert template.coinbase.is_coinbase

    def test_extra_nonce_changes_merkle_root(self, small_chain):
        a = build_template(small_chain, "pool", b"backend-a", timestamp=1_525_000_100)
        b = build_template(small_chain, "pool", b"backend-b", timestamp=1_525_000_100)
        assert a.merkle_root() != b.merkle_root()

    def test_blob_contains_merkle_root(self, small_chain):
        template = build_template(small_chain, "pool", b"x", timestamp=1_525_000_100)
        *_, merkle_root, num_txs = parse_blob(template.blob())
        assert merkle_root == template.merkle_root()
        assert num_txs == 1

    def test_mempool_txs_included(self, small_chain):
        from repro.blockchain.chain import Mempool

        mempool = Mempool()
        factory = TransferFactory(rng=RngStream(1, "t"))
        for _ in range(3):
            mempool.add(factory.make())
        template = build_template(
            small_chain, "pool", b"x", timestamp=1_525_000_100, mempool=mempool
        )
        assert len(template.transactions) == 4

    def test_to_block_carries_nonce(self, small_chain):
        template = build_template(small_chain, "pool", b"x", timestamp=1_525_000_100)
        block = template.to_block(1234)
        assert block.header.nonce == 1234


class TestProtocol:
    def test_login_roundtrip(self):
        msg = LoginMessage(token="SITEKEY123")
        assert decode_message(encode_message(msg)) == msg

    def test_job_roundtrip(self):
        msg = JobMessage(job_id="j1", blob_hex="aabb", target_hex="ffff0000")
        assert decode_message(encode_message(msg)) == msg

    def test_submit_roundtrip(self):
        msg = SubmitMessage(job_id="j1", nonce=0xDEADBEEF, result_hex="00" * 32)
        assert decode_message(encode_message(msg)) == msg

    def test_submit_result_roundtrip(self):
        msg = SubmitResult(accepted=False, reason="low difficulty share")
        assert decode_message(encode_message(msg)) == msg

    def test_not_json(self):
        with pytest.raises(ProtocolError):
            decode_message("{nope")

    def test_unknown_type(self):
        with pytest.raises(ProtocolError):
            decode_message('{"type": "mystery", "params": {}}')

    def test_missing_field(self):
        with pytest.raises(ProtocolError):
            decode_message('{"type": "job", "params": {"job_id": "x"}}')

    def test_no_type(self):
        with pytest.raises(ProtocolError):
            decode_message('{"params": {}}')

    def test_target_roundtrip(self):
        for difficulty in (1, 2, 16, 255, 4096, 100_000):
            hex_target = target_hex_for_difficulty(difficulty)
            assert len(hex_target) == 8
            recovered = difficulty_for_target_hex(hex_target)
            assert recovered == pytest.approx(difficulty, rel=0.01)

    def test_target_rejects_bad_difficulty(self):
        with pytest.raises(ValueError):
            target_hex_for_difficulty(0)


class TestShares:
    def make_job(self, chain, share_difficulty=8):
        template = build_template(chain, "pool", b"x", timestamp=1_525_000_100)
        return Job(job_id="j", blob=template.blob(), share_difficulty=share_difficulty, template=template)

    def find_nonce(self, job, difficulty):
        nonce = 0
        while True:
            blob = set_blob_nonce(job.blob, job.template.header, nonce)
            if hash_meets_difficulty(cryptonight(blob, FAST_PARAMS), difficulty):
                return nonce
            nonce += 1

    def test_valid_share_accepted(self, small_chain):
        job = self.make_job(small_chain)
        validator = ShareValidator(pow_params=FAST_PARAMS)
        nonce = self.find_nonce(job, 8)
        verdict = validator.validate(job, nonce)
        assert verdict.accepted

    def test_low_difficulty_rejected(self, small_chain):
        job = self.make_job(small_chain, share_difficulty=2**28)
        validator = ShareValidator(pow_params=FAST_PARAMS)
        verdict = validator.validate(job, 1)
        assert not verdict.accepted
        assert "low difficulty" in verdict.reason

    def test_nonce_range_checked(self, small_chain):
        job = self.make_job(small_chain)
        validator = ShareValidator(pow_params=FAST_PARAMS)
        assert not validator.validate(job, -1).accepted
        assert not validator.validate(job, 2**32).accepted

    def test_claimed_hash_must_match(self, small_chain):
        job = self.make_job(small_chain)
        validator = ShareValidator(pow_params=FAST_PARAMS)
        nonce = self.find_nonce(job, 8)
        verdict = validator.validate(job, nonce, claimed_hash=b"\x00" * 32)
        assert not verdict.accepted
        assert verdict.reason == "hash mismatch"

    def test_ledger_accumulates(self):
        ledger = ShareLedger()
        ledger.record("tokA", 16)
        ledger.record("tokA", 16)
        ledger.record("tokB", 16, is_block=True)
        assert ledger.shares == {"tokA": 2, "tokB": 1}
        assert ledger.total_hashes() == 48
        assert ledger.blocks_found == 1

    def test_ledger_snapshot_resets(self):
        ledger = ShareLedger()
        ledger.record("tokA", 10)
        snap = ledger.snapshot_and_reset()
        assert snap == {"tokA": 10}
        assert ledger.total_shares() == 0


class TestPayouts:
    def test_fee_split(self):
        ledger = PayoutLedger(pool_fee_percent=30)
        payouts = ledger.distribute_block(1000, {"a": 3, "b": 1})
        assert payouts == {"a": 525, "b": 175}  # 70% split 3:1
        assert ledger.pool_balance_atomic == 300
        assert ledger.grand_total_atomic() == 1000

    def test_no_credits_pool_keeps_all(self):
        ledger = PayoutLedger()
        assert ledger.distribute_block(1000, {}) == {}
        assert ledger.pool_balance_atomic == 1000

    def test_rounding_dust_stays_with_pool(self):
        ledger = PayoutLedger(pool_fee_percent=30)
        ledger.distribute_block(100, {"a": 1, "b": 1, "c": 1})
        # 70 atomic distributable; 23 each = 69; dust 1 + fee 30 → pool 31
        assert ledger.pool_balance_atomic == 31
        assert ledger.grand_total_atomic() == 100

    def test_invalid_fee_rejected(self):
        with pytest.raises(ValueError):
            PayoutLedger(pool_fee_percent=101)

    def test_negative_reward_rejected(self):
        with pytest.raises(ValueError):
            PayoutLedger().distribute_block(-1, {})


class TestPoolServer:
    @pytest.fixture()
    def pool(self, small_chain):
        return PoolServer(name="testpool", chain=small_chain, share_difficulty=4)

    def test_login_required(self, pool):
        with pytest.raises(KeyError):
            pool.get_job("nobody", 0, now=0.0)

    def test_empty_token_rejected(self, pool):
        with pytest.raises(ValueError):
            pool.handle_login("c1", "")

    def test_job_issuing(self, pool):
        pool.handle_login("c1", "tok")
        job = pool.get_job("c1", 0, now=10.0)
        assert job.share_difficulty == 4
        assert parse_blob(job.blob)

    def test_unknown_job_rejected(self, pool):
        pool.handle_login("c1", "tok")
        result = pool.handle_submit("c1", "bogus", 1, now=0.0)
        assert not result.accepted
        assert result.reason == "unknown job"

    def test_share_to_block_flow(self, pool, small_chain):
        pool.handle_login("c1", "tok")
        job = pool.get_job("c1", 0, now=10.0)
        difficulty = small_chain.current_difficulty()
        nonce = 0
        while True:
            blob = set_blob_nonce(job.blob, job.template.header, nonce)
            if hash_meets_difficulty(cryptonight(blob, FAST_PARAMS), difficulty):
                break
            nonce += 1
        result = pool.handle_submit("c1", job.job_id, nonce, now=11.0)
        assert result.accepted
        assert small_chain.height == 1
        assert pool.blocks_mined[0].miner_address() == "testpool"
        assert pool.payouts.blocks_paid == 1

    def test_duplicate_share_rejected(self, pool):
        pool.handle_login("c1", "tok")
        job = pool.get_job("c1", 0, now=10.0)
        nonce = 0
        while True:
            blob = set_blob_nonce(job.blob, job.template.header, nonce)
            if hash_meets_difficulty(cryptonight(blob, FAST_PARAMS), 4):
                break
            nonce += 1
        first = pool.handle_submit("c1", job.job_id, nonce, now=11.0)
        if not first.accepted:  # the nonce also found a block: chain advanced
            pytest.skip("share was a block")
        second = pool.handle_submit("c1", job.job_id, nonce, now=12.0)
        assert not second.accepted
        assert second.reason == "duplicate share"

    def test_template_cap_per_block(self, small_chain):
        pool = PoolServer(name="p", chain=small_chain, max_templates_per_block=8)
        roots = set()
        for i in range(30):
            template = pool.refresh_backend(0, now=float(i))
            roots.add(template.merkle_root())
        assert len(roots) == 8  # the paper's "never more than 8 PoW inputs"

    def test_backends_produce_distinct_templates(self, small_chain):
        pool = PoolServer(name="p", chain=small_chain, num_backends=4)
        pool.refresh_templates(now=0.0)
        roots = {pool._backends[i].template.merkle_root() for i in range(4)}
        assert len(roots) == 4

    def test_on_new_block_resets_cap(self, small_chain, monkeypatch):
        pool = PoolServer(name="p", chain=small_chain, max_templates_per_block=2)
        pool.refresh_backend(0, 0.0)
        pool.refresh_backend(0, 1.0)
        capped = pool.refresh_backend(0, 2.0)
        assert pool._backends[0].templates_this_block == 2
        pool.on_new_block(3.0)
        assert pool._backends[0].templates_this_block == 1

    def test_blob_transform_applied(self, small_chain):
        pool = PoolServer(
            name="p", chain=small_chain, blob_transform=lambda blob: blob[::-1]
        )
        pool.handle_login("c1", "tok")
        job = pool.get_job("c1", 0, now=0.0)
        assert job.blob == job.template.blob()[::-1]
