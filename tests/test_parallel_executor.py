"""Property tests for the sharded parallel campaign executor (zgrab path).

The contract under test: for any population and any shard/worker/mode
configuration, the sharded scan merges to results exactly equal to the
sequential :meth:`ZgrabCampaign.scan` output — counts, script shares, and
failure tallies included.
"""

from __future__ import annotations

import pytest

from repro.analysis.crawl import ZgrabCampaign
from repro.analysis.parallel import (
    ParallelConfig,
    RetryPolicy,
    ShardedZgrabCampaign,
    partition_indices,
    run_with_retry,
    stable_shard,
)
from repro.internet.population import build_population

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - dev extra not installed
    HAVE_HYPOTHESIS = False


# ---------------------------------------------------------------------------
# shard assignment


class TestStableShard:
    def test_in_range(self):
        for num_shards in range(1, 9):
            for domain in ("example.com", "a.org", "xn--caf-dma.net"):
                assert 0 <= stable_shard(domain, num_shards) < num_shards

    def test_deterministic_across_calls(self):
        assert stable_shard("example.com", 8) == stable_shard("example.com", 8)

    def test_pinned_values(self):
        # SHA-256 based: must never drift across Python versions/platforms,
        # or resumable campaigns would re-shard mid-flight.
        assert stable_shard("example.com", 8) == int.from_bytes(
            __import__("hashlib").sha256(b"example.com").digest()[:8], "big"
        ) % 8

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ValueError):
            stable_shard("example.com", 0)

    def test_spreads_domains(self):
        population = build_population("net", seed=11, scale=0.3)
        assignments = {stable_shard(s.domain, 8) for s in population.sites}
        assert len(assignments) == 8  # every shard gets work at this size

    if HAVE_HYPOTHESIS:

        @given(st.text(min_size=1, max_size=40), st.integers(min_value=1, max_value=64))
        @settings(max_examples=200, deadline=None)
        def test_property_in_range_and_stable(self, domain, num_shards):
            shard = stable_shard(domain, num_shards)
            assert 0 <= shard < num_shards
            assert shard == stable_shard(domain, num_shards)


class TestPartitionIndices:
    def test_exact_cover(self):
        population = build_population("net", seed=5, scale=0.2)
        shards = partition_indices(population.sites, 5)
        seen = sorted(i for shard in shards for i in shard)
        assert seen == list(range(len(population.sites)))

    def test_follows_domain_hash(self):
        population = build_population("net", seed=5, scale=0.2)
        shards = partition_indices(population.sites, 5)
        for shard_id, indices in enumerate(shards):
            for index in indices:
                assert stable_shard(population.sites[index].domain, 5) == shard_id

    def test_stable_under_site_reordering(self):
        population = build_population("net", seed=5, scale=0.2)
        by_domain = {}
        for shard_id, indices in enumerate(partition_indices(population.sites, 4)):
            for index in indices:
                by_domain[population.sites[index].domain] = shard_id
        reordered = list(reversed(population.sites))
        for shard_id, indices in enumerate(partition_indices(reordered, 4)):
            for index in indices:
                assert by_domain[reordered[index].domain] == shard_id


# ---------------------------------------------------------------------------
# sharded == sequential (seeded property loop)


class TestShardedEqualsSequential:
    # (dataset, seed, scale): three populations of different compositions,
    # including the zgrab-only .com/.net zones and a Chrome-enabled one.
    POPULATIONS = [
        ("net", 3, 0.25),
        ("com", 77, 0.15),
        ("alexa", 2018, 0.04),
    ]

    @pytest.fixture(scope="class")
    def cases(self):
        built = []
        for dataset, seed, scale in self.POPULATIONS:
            population = build_population(dataset, seed=seed, scale=scale)
            campaign = ZgrabCampaign(population=population)
            built.append((population, [campaign.scan(0), campaign.scan(1)]))
        return built

    def test_any_shard_count_serial(self, cases):
        for population, sequential in cases:
            for num_shards in range(1, 9):
                config = ParallelConfig(shards=num_shards, workers=1, mode="serial")
                sharded = ShardedZgrabCampaign(population=population, config=config)
                for scan_index in (0, 1):
                    assert sharded.scan(scan_index) == sequential[scan_index], (
                        population.spec.name, num_shards, scan_index,
                    )

    def test_thread_mode(self, cases):
        for population, sequential in cases:
            config = ParallelConfig(shards=6, workers=3, mode="thread")
            sharded = ShardedZgrabCampaign(population=population, config=config)
            assert sharded.scan(0) == sequential[0]
            assert sharded.scan(1) == sequential[1]

    def test_process_mode(self, cases):
        population, sequential = cases[0]
        config = ParallelConfig(shards=4, workers=2, mode="process")
        sharded = ShardedZgrabCampaign(population=population, config=config)
        assert sharded.scan(0) == sequential[0]

    def test_script_shares_survive_merge(self, cases):
        """Share dicts (label → fraction) must match exactly, not just keys."""
        for population, sequential in cases:
            config = ParallelConfig(shards=7, workers=2, mode="thread")
            result = ShardedZgrabCampaign(population=population, config=config).scan(0)
            assert result.script_shares == sequential[0].script_shares
            # ordered equality too: rendered share listings must not depend
            # on merge order (ties are canonicalized in finalize_scan)
            assert list(result.script_shares.items()) == list(sequential[0].script_shares.items())
            assert sum(result.script_shares.values()) == pytest.approx(
                sum(sequential[0].script_shares.values())
            )


# ---------------------------------------------------------------------------
# metrics


class TestShardMetrics:
    @pytest.fixture(scope="class")
    def campaign(self):
        population = build_population("net", seed=9, scale=0.3)
        campaign = ShardedZgrabCampaign(
            population=population,
            config=ParallelConfig(shards=4, workers=2, mode="thread"),
        )
        campaign.scan(0)
        return campaign

    def test_per_shard_coverage(self, campaign):
        metrics = campaign.metrics
        assert len(metrics.shards) == 4
        assert sorted(m.shard_id for m in metrics.shards) == [0, 1, 2, 3]
        assert metrics.total_sites == len(campaign.population.sites)

    def test_tallies_match_result(self, campaign):
        sequential = ZgrabCampaign(population=campaign.population).scan(0)
        assert campaign.metrics.total_probed == sequential.domains_probed
        assert campaign.metrics.total_fetch_failures == sequential.fetch_failures
        assert campaign.metrics.total_detector_hits == sequential.nocoin_domains

    def test_wall_clock_recorded(self, campaign):
        assert campaign.metrics.wall_seconds > 0
        assert all(m.wall_seconds >= 0 for m in campaign.metrics.shards)
        assert campaign.metrics.aggregate_rate > 0

    def test_summary_rows_render(self, campaign):
        from repro.analysis.metrics import CampaignMetrics
        from repro.analysis.reporting import render_table

        rows = campaign.metrics.summary_rows()
        assert len(rows) == 4
        text = render_table(CampaignMetrics.SUMMARY_HEADER, rows)
        assert "shard" in text and "ok" in text


# ---------------------------------------------------------------------------
# retry + graceful degradation


class TestRetry:
    def test_succeeds_after_transient_failures(self):
        calls = []
        delays = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise RuntimeError("transient")
            return "done"

        result, retries = run_with_retry(
            flaky, RetryPolicy(max_attempts=5, backoff_base=0.01), sleep=delays.append
        )
        assert result == "done"
        assert retries == 2
        assert delays == [0.01, 0.02]  # exponential backoff

    def test_raises_after_max_attempts(self):
        def poisoned():
            raise RuntimeError("poisoned shard")

        with pytest.raises(RuntimeError):
            run_with_retry(poisoned, RetryPolicy(max_attempts=3, backoff_base=0), sleep=lambda _: None)

    def test_poisoned_shard_degrades_gracefully(self, monkeypatch):
        import repro.analysis.parallel as parallel

        population = build_population("net", seed=9, scale=0.3)
        shard_indices = partition_indices(population.sites, 4)
        original = parallel._zgrab_shard_work

        def poisoned(pop, shard_id, indices, scan_index):
            if shard_id == 0:
                raise RuntimeError("poisoned")
            return original(pop, shard_id, indices, scan_index)

        monkeypatch.setattr(parallel, "_zgrab_shard_work", poisoned)
        config = ParallelConfig(
            shards=4, workers=2, mode="thread",
            retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
        )
        campaign = ShardedZgrabCampaign(population=population, config=config)
        result = campaign.scan(0)  # must not raise

        assert campaign.metrics.failed_shards == [0]
        failed = next(m for m in campaign.metrics.shards if m.shard_id == 0)
        assert failed.error and "poisoned" in failed.error
        # the surviving shards' sites are fully covered
        surviving = sum(len(shard_indices[s]) for s in (1, 2, 3))
        sequential_rest = ZgrabCampaign(population=population).scan_sites(
            (population.sites[i] for s in (1, 2, 3) for i in shard_indices[s]), 0
        )
        assert result.domains_probed == sequential_rest.domains_probed <= surviving

    def test_poisoned_shard_fail_fast(self, monkeypatch):
        import repro.analysis.parallel as parallel

        population = build_population("net", seed=9, scale=0.2)

        def poisoned(pop, shard_id, indices, scan_index):
            raise RuntimeError("poisoned")

        monkeypatch.setattr(parallel, "_zgrab_shard_work", poisoned)
        config = ParallelConfig(
            shards=2, workers=2, mode="thread", fail_fast=True,
            retry=RetryPolicy(max_attempts=1, backoff_base=0.0),
        )
        with pytest.raises(RuntimeError):
            ShardedZgrabCampaign(population=population, config=config).scan(0)

    def test_retries_counted_in_metrics(self, monkeypatch):
        import repro.analysis.parallel as parallel

        population = build_population("net", seed=9, scale=0.2)
        attempts: dict[int, int] = {}
        original = parallel._zgrab_shard_work

        def flaky(pop, shard_id, indices, scan_index):
            attempts[shard_id] = attempts.get(shard_id, 0) + 1
            if shard_id == 1 and attempts[shard_id] == 1:
                raise RuntimeError("transient")
            return original(pop, shard_id, indices, scan_index)

        monkeypatch.setattr(parallel, "_zgrab_shard_work", flaky)
        config = ParallelConfig(
            shards=3, workers=2, mode="thread",
            retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
        )
        campaign = ShardedZgrabCampaign(population=population, config=config)
        sequential = ZgrabCampaign(population=population).scan(0)
        assert campaign.scan(0) == sequential  # retry recovered the shard
        by_id = {m.shard_id: m for m in campaign.metrics.shards}
        assert by_id[1].retries == 1
        assert by_id[0].retries == 0


class TestConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ParallelConfig(shards=0)
        with pytest.raises(ValueError):
            ParallelConfig(workers=0)
        with pytest.raises(ValueError):
            ParallelConfig(mode="asyncio")
