"""CLI-level run ledger and ``repro obs`` toolkit tests.

Covers the acceptance criteria end to end: byte-identical artifacts for
the same seed + config under TickClock, report/diff exit codes, the
``--fail-on`` CI gate catching an injected fetch slowdown, torn-run
detection, and obs-flag plumbing across subcommands.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.clock import TickClock, get_clock, use_clock

CRAWL = [
    "--seed", "7", "crawl", "--dataset", "net", "--scale", "0.03",
    "--shards", "2", "--executor", "serial",
]


def _crawl_run(run_dir, extra=(), seed="7"):
    argv = list(CRAWL)
    argv[1] = seed
    with use_clock(TickClock()):
        return main([*argv, "--run-dir", str(run_dir), *extra])


class TestRunDirDeterminism:
    def test_same_seed_and_config_is_byte_identical(self, tmp_path, capsys):
        a, b = tmp_path / "a", tmp_path / "b"
        assert _crawl_run(a) == 0
        assert _crawl_run(b) == 0
        assert f"-> {a}" in capsys.readouterr().out
        for name in ("manifest.json", "metrics.json", "trace.jsonl",
                     "profile.json", "ledger.json", "COMPLETE"):
            assert (a / name).read_bytes() == (b / name).read_bytes(), name

    def test_run_id_is_wall_clock_free(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        _crawl_run(a)
        _crawl_run(b)
        manifest_a = json.loads((a / "manifest.json").read_text())
        manifest_b = json.loads((b / "manifest.json").read_text())
        assert manifest_a["run_id"] == manifest_b["run_id"]
        assert manifest_a["params"]["dataset"] == "net"

    def test_serial_and_thread_runs_share_span_ids_and_counters(self, tmp_path):
        from repro.obs.ledger import load_run

        serial, threaded = tmp_path / "s", tmp_path / "t"
        assert _crawl_run(serial) == 0
        assert _crawl_run(threaded, extra=["--executor", "thread", "--workers", "2"]) == 0
        a, b = load_run(serial), load_run(threaded)
        assert {s.span_id for s in a.spans} == {s.span_id for s in b.spans}
        assert a.registry.counters == b.registry.counters
        assert a.registry.histogram_counts() == b.registry.histogram_counts()


class TestObsReport:
    def test_report_renders_and_exports_chrome_trace(self, tmp_path, capsys):
        run = tmp_path / "run"
        _crawl_run(run)
        capsys.readouterr()
        chrome = tmp_path / "chrome.json"
        assert main(["obs", "report", str(run), "--chrome-trace", str(chrome)]) == 0
        out = capsys.readouterr().out
        assert "critical paths" in out
        assert "stage attribution" in out
        assert "slowest sites" in out
        payload = json.loads(chrome.read_text())
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert complete and payload["otherData"]["run_id"].startswith("run-")

    def test_report_missing_dir_fails_cleanly(self, tmp_path, capsys):
        assert main(["obs", "report", str(tmp_path / "nope")]) == 1
        assert "error:" in capsys.readouterr().out

    def test_torn_run_detection(self, tmp_path, capsys):
        run = tmp_path / "run"
        _crawl_run(run)
        (run / "COMPLETE").unlink()
        capsys.readouterr()
        assert main(["obs", "report", str(run)]) == 1
        assert "COMPLETE" in capsys.readouterr().out
        assert main(["obs", "report", str(run), "--allow-torn"]) == 0
        assert "WARNING" in capsys.readouterr().out

    def test_mixed_run_marker_detected(self, tmp_path, capsys):
        run = tmp_path / "run"
        _crawl_run(run)
        (run / "COMPLETE").write_text("run-deadbeefcafe\n")
        capsys.readouterr()
        assert main(["obs", "report", str(run)]) == 1
        assert "mixed runs" in capsys.readouterr().out


class TestObsDiff:
    def test_identical_seed_runs_diff_to_zero(self, tmp_path, capsys):
        a, b = tmp_path / "a", tmp_path / "b"
        _crawl_run(a)
        _crawl_run(b)
        capsys.readouterr()
        assert main(["obs", "diff", str(a), str(b)]) == 0
        assert "(no counter deltas)" in capsys.readouterr().out

    def test_refuses_incomparable_runs_unless_forced(self, tmp_path, capsys):
        a, b = tmp_path / "a", tmp_path / "b"
        _crawl_run(a)
        _crawl_run(b, seed="8")
        capsys.readouterr()
        assert main(["obs", "diff", str(a), str(b)]) == 2
        out = capsys.readouterr().out
        assert "not comparable" in out and "seed" in out
        assert main(["obs", "diff", str(a), str(b), "--force"]) == 0

    def test_execution_strategy_changes_stay_comparable(self, tmp_path, capsys):
        # shards/workers/executor are execution params, not workload identity
        a, b = tmp_path / "a", tmp_path / "b"
        _crawl_run(a)
        _crawl_run(b, extra=["--executor", "thread", "--workers", "2"])
        capsys.readouterr()
        assert main(["obs", "diff", str(a), str(b)]) == 0

    def test_fail_on_gate_catches_fetch_slowdown(self, tmp_path, capsys, monkeypatch):
        from repro.web.zgrab import ZgrabFetcher

        base, head = tmp_path / "base", tmp_path / "head"
        assert _crawl_run(base) == 0

        original = ZgrabFetcher._fetch_domain

        def slow_fetch(self, domain, ledger):
            for _ in range(10):  # extra clock reads inflate the fetch span
                get_clock().now()
            return original(self, domain, ledger)

        monkeypatch.setattr(ZgrabFetcher, "_fetch_domain", slow_fetch)
        assert _crawl_run(head) == 0
        capsys.readouterr()

        gate = ["--fail-on", "stage.fetch.p90>1.1x"]
        assert main(["obs", "diff", str(base), str(head), *gate]) == 1
        out = capsys.readouterr().out
        assert "VIOLATED" in out and "threshold(s) violated" in out
        # the same gate passes in the other direction (head is the fast run)
        assert main(["obs", "diff", str(head), str(base), *gate]) == 0

    def test_bad_fail_on_expression_exits_2(self, tmp_path, capsys):
        a, b = tmp_path / "a", tmp_path / "b"
        _crawl_run(a)
        _crawl_run(b)
        capsys.readouterr()
        assert main(["obs", "diff", str(a), str(b), "--fail-on", "stage.fetch>1x"]) == 2
        assert "stat suffix" in capsys.readouterr().out


class TestObsFlagPlumbing:
    def test_crawl_honors_all_obs_flags(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        run = tmp_path / "run"
        assert _crawl_run(
            run, extra=["--trace-out", str(trace), "--profile", "--heartbeat", "1"]
        ) == 0
        captured = capsys.readouterr()
        assert trace.exists()
        assert "stage profile" in captured.out
        assert (run / "COMPLETE").exists()
        assert "[hb]" in captured.err  # final heartbeat line on stderr

    def test_reproduce_honors_all_obs_flags(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        run = tmp_path / "run"
        assert main([
            "reproduce", "--crawl-scale", "0.02", "--shortlink-scale", "0.0005",
            "--days", "1", "--out", str(tmp_path / "report.md"),
            "--trace-out", str(trace), "--profile",
            "--run-dir", str(run), "--heartbeat", "1",
        ]) == 0
        captured = capsys.readouterr()
        assert trace.exists()
        assert (run / "COMPLETE").exists()
        assert "[hb]" in captured.err

    @pytest.mark.parametrize("command", ["fingerprint", "nocoin", "disasm"])
    @pytest.mark.parametrize(
        "flag", [("--trace-out", "x"), ("--profile",), ("--run-dir", "x"), ("--heartbeat", "1")]
    )
    def test_non_campaign_commands_reject_obs_flags(self, command, flag, tmp_path):
        target = tmp_path / "f"
        target.write_bytes(b"\x00asm")
        with pytest.raises(SystemExit) as excinfo:
            main([command, *flag, str(target)])
        assert excinfo.value.code == 2


# ---------------------------------------------------------------------------
# verdict provenance surfaces: `obs explain` and `obs scorecard`


ALEXA_CRAWL = [
    "--seed", "11", "crawl", "--dataset", "alexa", "--scale", "0.05",
    "--shards", "2", "--executor", "serial",
]


def _alexa_run(run_dir, extra=()):
    # alexa is the chrome-crawled dataset (spec.chrome_crawl), so its runs
    # carry chrome/wasm verdicts — what scorecards and explain exercise
    with use_clock(TickClock()):
        return main([*ALEXA_CRAWL, "--run-dir", str(run_dir), *extra])


@pytest.fixture(scope="module")
def verdict_run(tmp_path_factory):
    """One observed crawl whose verdicts all the explain/scorecard tests share."""
    run = tmp_path_factory.mktemp("verdicts") / "run"
    assert _alexa_run(run) == 0
    return run


class TestObsExplain:
    def test_explain_renders_every_crawled_domain(self, verdict_run, capsys):
        from repro.obs.evidence import read_verdicts_jsonl

        capsys.readouterr()
        subjects = {v.subject for v in read_verdicts_jsonl(verdict_run / "verdicts.jsonl")}
        assert subjects
        for subject in sorted(subjects):
            assert main(["obs", "explain", str(verdict_run), subject]) == 0
            out = capsys.readouterr().out
            assert subject in out
            assert "->" in out

    def test_chrome_miner_verdict_cites_concrete_evidence(self, verdict_run, capsys):
        from repro.obs.evidence import read_verdicts_jsonl

        verdicts = read_verdicts_jsonl(verdict_run / "verdicts.jsonl")
        miners = [v for v in verdicts if v.is_miner and v.pipeline == "chrome"]
        assert miners, "crawl found no miners — population too small for the test"
        capsys.readouterr()
        assert main(["obs", "explain", str(verdict_run), miners[0].subject]) == 0
        out = capsys.readouterr().out
        assert "MINER" in out
        assert f"confidence={miners[0].confidence:g}" in out
        assert "[" in out  # at least one [detector] evidence line

    def test_unknown_subject_hints_near_misses(self, verdict_run, capsys):
        from repro.obs.evidence import read_verdicts_jsonl

        some = sorted(
            {v.subject for v in read_verdicts_jsonl(verdict_run / "verdicts.jsonl")}
        )[0]
        capsys.readouterr()
        assert main(["obs", "explain", str(verdict_run), some[:4]]) == 1
        out = capsys.readouterr().out
        assert "no verdict for" in out
        assert "close:" in out

    def test_run_without_verdicts_fails_cleanly(self, tmp_path, capsys):
        run = tmp_path / "run"
        _crawl_run(run)
        (run / "verdicts.jsonl").unlink()
        capsys.readouterr()
        assert main(["obs", "explain", str(run), "anything"]) == 1
        assert "no verdicts.jsonl" in capsys.readouterr().out


class TestObsScorecard:
    def test_scorecard_renders_and_recall_gate_passes(self, verdict_run, capsys):
        capsys.readouterr()
        assert main([
            "obs", "scorecard", str(verdict_run),
            "--fail-on", "detector.wasm.recall<0.95",
        ]) == 0
        out = capsys.readouterr().out
        assert "per-detector scorecard" in out
        assert "detection factor" in out
        assert "nocoin_static" in out and "wasm" in out
        assert "detector.wasm.recall<0.95: measured" in out

    def test_scorecard_output_is_byte_identical_across_runs(self, verdict_run, tmp_path, capsys):
        twin = tmp_path / "twin"
        assert _alexa_run(twin) == 0
        assert (verdict_run / "verdicts.jsonl").read_bytes() == (
            twin / "verdicts.jsonl"
        ).read_bytes()
        capsys.readouterr()
        assert main(["obs", "scorecard", str(verdict_run)]) == 0
        first = capsys.readouterr().out
        assert main(["obs", "scorecard", str(twin)]) == 0
        assert capsys.readouterr().out == first

    def test_every_miner_verdict_carries_evidence(self, verdict_run):
        from repro.obs.evidence import read_verdicts_jsonl

        verdicts = read_verdicts_jsonl(verdict_run / "verdicts.jsonl")
        miners = [v for v in verdicts if v.is_miner]
        assert miners
        for verdict in miners:
            assert verdict.evidence, f"miner verdict without evidence: {verdict.subject}"

    def test_violated_gate_exits_1(self, verdict_run, capsys):
        capsys.readouterr()
        assert main([
            "obs", "scorecard", str(verdict_run),
            "--fail-on", "detector.wasm.precision<1.5",  # precision <= 1.0 always
        ]) == 1
        out = capsys.readouterr().out
        assert "VIOLATED" in out
        assert "1 threshold(s) violated" in out

    def test_unknown_metric_exits_2(self, verdict_run, capsys):
        capsys.readouterr()
        assert main([
            "obs", "scorecard", str(verdict_run), "--fail-on", "detector.nope.recall<0.5",
        ]) == 2
        assert "unknown scorecard metric" in capsys.readouterr().out

    def test_relative_gate_rejected(self, verdict_run, capsys):
        capsys.readouterr()
        assert main([
            "obs", "scorecard", str(verdict_run), "--fail-on", "detector.wasm.recall<0.9x",
        ]) == 2
        assert "drop the trailing 'x'" in capsys.readouterr().out

    def test_degraded_signature_db_trips_recall_gate(self, tmp_path, signature_db, capsys):
        """The CI canary: neutering the signature db must crater wasm recall."""
        degraded = tmp_path / "degraded.json"
        records = json.loads(signature_db.to_json())
        for record in records:
            record["is_miner"] = False
        degraded.write_text(json.dumps(records))

        run = tmp_path / "run"
        assert _alexa_run(run, extra=["--signature-db", str(degraded)]) == 0
        capsys.readouterr()
        assert main([
            "obs", "scorecard", str(run), "--fail-on", "detector.wasm.recall<0.95",
        ]) == 1
        out = capsys.readouterr().out
        assert "VIOLATED" in out


class TestResumeEvidenceIsolation:
    def test_observed_resume_discards_unobserved_journal(self, tmp_path):
        """A journal recorded without observability has no evidence to
        replay; an observed resume must re-run the sites rather than emit
        evidence-free verdicts."""
        from repro.obs.evidence import read_verdicts_jsonl

        ckpt = tmp_path / "ckpt"
        with use_clock(TickClock()):
            assert main([*CRAWL, "--resume-from", str(ckpt)]) == 0
        run = tmp_path / "run"
        assert _crawl_run(run, extra=["--resume-from", str(ckpt)]) == 0
        verdicts = read_verdicts_jsonl(run / "verdicts.jsonl")
        hits = [v for v in verdicts if v.nocoin_hit]
        assert hits
        for verdict in hits:
            assert verdict.evidence, f"evidence-free hit after resume: {verdict.subject}"
