"""End-to-end integration tests spanning the full pipelines."""

import pytest

from repro.analysis.crawl import ChromeCampaign, ZgrabCampaign
from repro.analysis.network import NetworkSimConfig, simulate_network
from repro.analysis.shortlink import ShortLinkStudy
from repro.blockchain.block import set_blob_nonce
from repro.blockchain.hashing import FAST_PARAMS, cryptonight, hash_meets_difficulty
from repro.coinhive.miner_script import CoinhiveMinerKit
from repro.coinhive.resolver import LinkResolver
from repro.coinhive.shortlink import ShortLinkService
from repro.core.detector import PageDetector
from repro.core.signatures import build_reference_database
from repro.internet.shortlinks import build_shortlink_population
from repro.pool.protocol import decode_message, JobMessage
from repro.sim.clock import utc_timestamp
from repro.web.browser import HeadlessBrowser
from repro.web.http import SyntheticWeb
from repro.web.scripts import inline_key


class TestMinerEndToEnd:
    """A Coinhive miner embedded on a page really mines into the chain."""

    def test_browser_miner_reaches_real_pool(self, coinhive_service):
        web = SyntheticWeb()
        kit = CoinhiveMinerKit(service=coinhive_service, web=web)
        kit.install()
        user = coinhive_service.register_user("miningsite.com")
        tags = kit.official_tags(user.token, endpoint_index=3)
        html = "<html><head>{}</head><body></body></html>".format(
            "".join(tag.to_element().serialize() for tag in tags)
        )
        web.register_page("http://www.miningsite.com/", html.encode())
        registry = {
            (tag.src if tag.src else inline_key(tag.inline)): tag.behavior
            for tag in tags
            if tag.behavior is not None
        }
        browser = HeadlessBrowser(web, behavior_registry=registry)
        result = browser.visit("http://www.miningsite.com/")

        # DevTools capture: wasm + pool frames including a job
        assert result.has_wasm()
        received = [
            decode_message(f.payload)
            for f in result.websocket_frames
            if f.direction == "received"
        ]
        assert any(isinstance(m, JobMessage) for m in received)

        # the observer-side detector classifies the page as a coinhive miner
        detector = PageDetector()
        detector.classifier.database = build_reference_database()
        report = detector.detect_page("miningsite.com", result)
        assert report.is_miner
        assert report.miner_family == "coinhive"
        assert report.nocoin_hit  # official embed is NoCoin-visible

    def test_shares_credited_to_site_token(self, coinhive_service):
        """Drive the pool directly as the page's miner would."""
        user = coinhive_service.register_user("paysite.com")
        pool = coinhive_service.pool
        pool.handle_login("conn", user.token)
        job = pool.get_job("conn", 0, now=5.0)
        true_blob = coinhive_service.obfuscator.revert(job.blob)
        assert true_blob == job.template.blob()
        nonce = 0
        while True:
            blob = set_blob_nonce(true_blob, job.template.header, nonce)
            if hash_meets_difficulty(cryptonight(blob, FAST_PARAMS), job.share_difficulty):
                break
            nonce += 1
        result = pool.handle_submit("conn", job.job_id, nonce, now=6.0)
        assert result.accepted
        assert pool.shares.hashes_credited.get(user.token, 0) > 0


class TestShortLinkEndToEnd:
    def test_enumerate_scan_resolve(self):
        population = build_shortlink_population(seed=9, scale=0.0005)
        resolver = LinkResolver(shortlinks=population.service, hash_scale=4096)
        scanned = resolver.scan(max_chars=4)
        assert len(scanned) == len(population.service)
        # resolve a handful and confirm the targets are the ground truth
        for record in scanned[:5]:
            resolved = resolver.resolve(record.link_id)
            truth = population.service.get(record.link_id)
            assert resolved.target_url == truth.target_url

    def test_study_pipeline_runs(self):
        population = build_shortlink_population(seed=9, scale=0.0005)
        study = ShortLinkStudy(population=population, sample_per_top_user=10)
        assert study.links_per_token().total_links == len(population.service)
        result = study.destinations()
        assert result.top_user_sample_size > 0


class TestCrawlConsistency:
    """zgrab and Chrome views of the same population must relate correctly."""

    def test_zgrab_subset_of_chrome_nocoin(self, alexa_population):
        zgrab = ZgrabCampaign(population=alexa_population).scan(0)
        chrome = ChromeCampaign(population=alexa_population).run()
        # Chrome (http + executed JS) always sees at least the TLS/static hits
        assert chrome.cross_tab.nocoin_hits >= zgrab.nocoin_domains

    def test_wasm_signatures_beat_nocoin(self, alexa_population):
        chrome = ChromeCampaign(population=alexa_population).run()
        tab = chrome.cross_tab
        assert tab.wasm_miner_hits > tab.miners_blocked_by_nocoin
        assert tab.miners_missed_by_nocoin + tab.miners_blocked_by_nocoin == tab.wasm_miner_hits


class TestNetworkEndToEnd:
    def test_two_day_run_attributes_blocks(self):
        config = NetworkSimConfig(
            start=utc_timestamp(2018, 6, 10), end=utc_timestamp(2018, 6, 12), seed=21
        )
        observation = simulate_network(config)
        assert observation.chain.height > 1200
        assert observation.attributed
        assert observation.attribution_recall() > 0.9
        # June share factor 1.14: ~9.7 blocks/day expected
        per_day = observation.blocks_per_day()
        assert sum(per_day.values()) == len(observation.attributed)
