"""Tests for the NoCoin filter-list engine."""

import pytest

from repro.core.nocoin import FilterList, FilterListError, default_nocoin_list, parse_rule


class TestParsing:
    def test_comment_skipped(self):
        assert parse_rule("! a comment") is None

    def test_header_skipped(self):
        assert parse_rule("[Adblock Plus 2.0]") is None

    def test_blank_skipped(self):
        assert parse_rule("   ") is None

    def test_domain_anchor(self):
        rule = parse_rule("||coinhive.com^")
        assert rule.domain_anchor
        assert rule.pattern == "coinhive.com^"

    def test_exception_rule(self):
        rule = parse_rule("@@||goodsite.com^")
        assert rule.is_exception

    def test_options_parsed(self):
        rule = parse_rule("||miner.com^$script,third-party")
        assert rule.options == ("script", "third-party")

    def test_regex_rule(self):
        rule = parse_rule(r"/cryptonight\.wasm/")
        assert rule.regex == r"cryptonight\.wasm"

    def test_empty_body_rejected(self):
        with pytest.raises(FilterListError):
            parse_rule("||")

    def test_uncompilable_regex_body_rejected_at_parse(self):
        # the error must surface as a FilterListError from parse_rule,
        # not as a raw re.error later when the list compiles the rule
        with pytest.raises(FilterListError, match="bad regex rule"):
            parse_rule("/*/")
        with pytest.raises(FilterListError):
            FilterList.from_lines(["||coinhive.com^", "/a{2,1}/"])


class TestUrlMatching:
    @pytest.fixture()
    def nocoin(self):
        return default_nocoin_list()

    def test_official_coinhive_url(self, nocoin):
        rule = nocoin.match_url("https://coinhive.com/lib/coinhive.min.js")
        assert rule is not None
        assert rule.label == "coinhive"

    def test_subdomain_matches_domain_anchor(self, nocoin):
        assert nocoin.match_url("https://cdn.coinhive.com/lib/x.js") is not None

    def test_domain_anchor_requires_label_boundary(self, nocoin):
        # notcoinhive.com must NOT match ||coinhive.com^
        assert nocoin.match_url("https://notcoinhive.com/x.js") is None

    def test_substring_rule(self, nocoin):
        assert nocoin.match_url("https://mirror.example/static/coinhive.min.js") is not None

    def test_cpmstar_overbroad_rule(self, nocoin):
        rule = nocoin.match_url("https://ssl.cpmstar.com/cached/js/cpmstar.js")
        assert rule is not None
        assert rule.label == "cpmstar"

    def test_clean_url_unmatched(self, nocoin):
        assert nocoin.match_url("https://example.com/js/app.js") is None

    def test_self_hosted_miner_unmatched(self, nocoin):
        """The false-negative mechanism: first-party loader URLs are clean."""
        assert nocoin.match_url("https://www.somesite.org/assets/app-support.js") is None

    def test_regex_rule_matches(self, nocoin):
        assert nocoin.match_url("https://cdn.x.com/cryptonight.wasm") is not None

    def test_exception_rules_suppress(self):
        filter_list = FilterList.from_lines(["||ads.com^", "@@||ads.com/safe.js"])
        assert filter_list.match_url("https://ads.com/track.js") is not None
        assert filter_list.match_url("https://ads.com/safe.js") is None

    def test_wildcard_pattern(self):
        filter_list = FilterList.from_lines(["wp-monero-miner*.js"])
        assert filter_list.match_url("https://x.com/wp-monero-miner-v2.js") is not None
        assert filter_list.match_url("https://x.com/wp-monero-thing.css") is None


class TestTextMatching:
    def test_inline_script_with_listed_host(self):
        nocoin = default_nocoin_list()
        text = "var s=document.createElement('script');s.src='https://coinhive.com/lib/x';"
        assert nocoin.match_text(text) is not None

    def test_clean_inline(self):
        nocoin = default_nocoin_list()
        assert nocoin.match_text("function add(a, b) { return a + b; }") is None

    def test_empty_text(self):
        assert default_nocoin_list().match_text("") is None


class TestScriptsMatching:
    def test_match_scripts_mixed(self):
        nocoin = default_nocoin_list()
        scripts = [
            ("https://example.com/app.js", ""),
            ("https://coinhive.com/lib/coinhive.min.js", ""),
            (None, "var miner = new CoinHive.Anonymous('K'); // coinhive.com/lib"),
        ]
        hits = nocoin.match_scripts(scripts)
        assert len(hits) == 2

    def test_default_list_has_many_rules(self):
        assert len(default_nocoin_list()) >= 15


class TestParsingEdgeCases:
    def test_regex_rule_containing_dollar(self):
        # "$" inside a /regex/ body is an end-of-string anchor, not an
        # option separator — the options split must not fire
        rule = parse_rule(r"/miner\.js$/")
        assert rule.regex == r"miner\.js$"
        assert rule.options == ()

    def test_regex_rule_with_alternation_and_dollar(self):
        rule = parse_rule(r"/(?:coin|mine)r?$/")
        assert rule.regex == r"(?:coin|mine)r?$"

    def test_empty_body_with_options_rejected(self):
        with pytest.raises(FilterListError):
            parse_rule("||$script")

    def test_empty_exception_body_rejected(self):
        with pytest.raises(FilterListError):
            parse_rule("@@||")

    def test_exception_rule_with_options(self):
        rule = parse_rule("@@||goodsite.com^$script,domain=partner.example")
        assert rule.is_exception
        assert rule.domain_anchor
        assert rule.options == ("script", "domain=partner.example")

    def test_round_trip_stability(self):
        lines = [
            "||coinhive.com^",
            "@@||goodsite.com^/opt-in",
            "coinhive.min.js",
            r"/cryptonight.*\.wasm/",
            r"/miner\.js$/",
            "||miner.com^$script,third-party",
            "@@||partner.example^$domain=a.example",
        ]
        for line in lines:
            rule = parse_rule(line)
            assert rule.to_line() == line
            assert parse_rule(rule.to_line()) == rule


class TestTextCaseHandling:
    def test_mixed_case_domain_anchor_hits_inline_text(self):
        # regression: domain-anchored needles are lowercase; the scan must
        # lowercase the subject (once), not miss mixed-case inline text
        nocoin = default_nocoin_list()
        text = "var s = 'https://CoinHive.COM/lib/x.js';"
        rule = nocoin.match_text(text)
        assert rule is not None and rule.label == "coinhive"
        match = nocoin.explain_text(text)
        assert match.matched.lower() == "coinhive.com"
        assert match.where == "text"

    def test_text_lowered_exactly_once_per_scan(self):
        from repro.core import fastpath

        class CountingStr(str):
            def lower(self):
                lower_calls.append(1)
                return str.lower(self)

        nocoin = default_nocoin_list()
        for mode in (True, False):  # automaton and rule-by-rule reference
            lower_calls = []
            with fastpath.configure(mode):
                nocoin.match_text(CountingStr("no miners in THIS inline block"))
            assert sum(lower_calls) == 1, mode
