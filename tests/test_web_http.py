"""Tests for the simulated HTTP layer and zgrab fetcher."""

import pytest

from repro.web.http import FetchError, Resource, SyntheticWeb, split_url
from repro.web.zgrab import ZgrabFetcher


class TestSplitUrl:
    def test_basic(self):
        assert split_url("https://www.example.com/a/b") == ("https", "www.example.com", "/a/b")

    def test_no_path(self):
        assert split_url("http://example.com") == ("http", "example.com", "/")

    def test_host_lowercased(self):
        assert split_url("https://WWW.Example.COM/")[1] == "www.example.com"

    def test_websocket_scheme(self):
        assert split_url("wss://ws1.coinhive.com/proxy")[0] == "wss"

    def test_rejects_schemeless(self):
        with pytest.raises(ValueError):
            split_url("example.com/x")

    def test_rejects_unknown_scheme(self):
        with pytest.raises(ValueError):
            split_url("ftp://example.com/")

    def test_rejects_empty_host(self):
        with pytest.raises(ValueError):
            split_url("https:///path")


class TestSyntheticWeb:
    def test_register_and_fetch(self):
        web = SyntheticWeb()
        web.register_page("https://www.a.com/", b"<html>A</html>")
        response = web.fetch("https://www.a.com/")
        assert response.body == b"<html>A</html>"
        assert response.status == 200

    def test_unknown_host_is_dns_failure(self):
        web = SyntheticWeb()
        with pytest.raises(FetchError, match="name not resolved"):
            web.fetch("https://www.ghost.com/")

    def test_http_only_host_fails_tls(self):
        web = SyntheticWeb()
        web.register_page("http://www.plain.com/", b"x")
        with pytest.raises(FetchError, match="TLS"):
            web.fetch("https://www.plain.com/")

    def test_missing_path_is_404(self):
        web = SyntheticWeb()
        web.register_page("https://www.a.com/", b"x")
        with pytest.raises(FetchError, match="404"):
            web.fetch("https://www.a.com/missing")

    def test_redirect_followed(self):
        web = SyntheticWeb()
        web.register("http://www.a.com/", Resource(redirect_to="https://www.a.com/"))
        web.register_page("https://www.a.com/", b"secure")
        response = web.fetch("http://www.a.com/")
        assert response.body == b"secure"
        assert response.url == "https://www.a.com/"
        assert response.redirects == ("http://www.a.com/",)

    def test_redirect_loop_detected(self):
        web = SyntheticWeb()
        web.register("https://www.a.com/", Resource(redirect_to="https://www.b.com/"))
        web.register("https://www.b.com/", Resource(redirect_to="https://www.a.com/"))
        with pytest.raises(FetchError, match="redirects"):
            web.fetch("https://www.a.com/")

    def test_truncation(self):
        web = SyntheticWeb()
        web.register_page("https://www.big.com/", b"x" * 1000)
        response = web.fetch("https://www.big.com/", max_bytes=100)
        assert len(response.body) == 100

    def test_hang_times_out(self):
        web = SyntheticWeb()
        web.register("https://www.slow.com/", Resource(content=b"x", hang=True))
        with pytest.raises(FetchError, match="timed out"):
            web.fetch("https://www.slow.com/")

    def test_latency_accumulates_over_redirects(self):
        web = SyntheticWeb()
        web.register("http://www.a.com/", Resource(redirect_to="https://www.a.com/", latency=0.2))
        web.register("https://www.a.com/", Resource(content=b"x", latency=0.3))
        response = web.fetch("http://www.a.com/")
        assert response.elapsed == pytest.approx(0.5)

    def test_callable_content(self):
        web = SyntheticWeb()
        calls = []
        web.register(
            "https://www.dyn.com/",
            Resource(content=lambda: calls.append(1) or b"dynamic"),
        )
        assert web.fetch("https://www.dyn.com/").body == b"dynamic"
        assert calls == [1]

    def test_ws_registration_and_lookup(self):
        web = SyntheticWeb()
        handler = lambda channel, payload: None
        web.register_ws("wss://ws1.pool.com/proxy", handler)
        assert web.lookup_ws("wss://ws1.pool.com/proxy") is handler

    def test_ws_requires_ws_scheme(self):
        web = SyntheticWeb()
        with pytest.raises(ValueError):
            web.register_ws("https://pool.com/", lambda c, p: None)

    def test_ws_unknown_endpoint(self):
        web = SyntheticWeb()
        with pytest.raises(FetchError):
            web.lookup_ws("wss://nowhere.com/x")


class TestZgrab:
    def test_fetches_www_over_tls(self):
        web = SyntheticWeb()
        web.register_page("https://www.site.org/", b"<html>hello</html>")
        result = ZgrabFetcher(web).fetch_domain("site.org")
        assert result.ok
        assert "hello" in result.body

    def test_http_only_site_fails(self):
        web = SyntheticWeb()
        web.register_page("http://www.plain.org/", b"<html>x</html>")
        result = ZgrabFetcher(web).fetch_domain("plain.org")
        assert not result.ok
        assert "TLS" in result.error

    def test_truncates_at_256k(self):
        web = SyntheticWeb()
        web.register_page("https://www.big.org/", b"y" * (300 * 1024))
        result = ZgrabFetcher(web).fetch_domain("big.org")
        assert result.ok
        assert result.truncated
        assert len(result.body) == 256 * 1024

    def test_fetch_many_preserves_order(self):
        web = SyntheticWeb()
        web.register_page("https://www.a.org/", b"a")
        web.register_page("https://www.b.org/", b"b")
        results = ZgrabFetcher(web).fetch_many(["a.org", "missing.org", "b.org"])
        assert [r.ok for r in results] == [True, False, True]
