"""Tests for the evasion-transform toolkit."""

import pytest

from repro.core.features import extract_features
from repro.core.signatures import unordered_signature, wasm_signature
from repro.sim.rng import RngStream
from repro.wasm.builder import ModuleBlueprint
from repro.wasm.decoder import decode_module
from repro.wasm.interp import Instance
from repro.wasm.obfuscate import (
    pad_dead_code,
    reorder_functions,
    rewrite_constants,
    strip_names,
)
from repro.wasm.validator import validate_module


def _first_export(wasm: bytes) -> str:
    module = decode_module(wasm)
    return next(e.name for e in module.exports if e.kind == 0)


def _run(wasm: bytes, *args):
    module = decode_module(wasm)
    return Instance(module).invoke(_first_export(wasm), *args)


class TestStripNames:
    def test_names_gone(self, coinhive_wasm):
        stripped = strip_names(coinhive_wasm)
        module = decode_module(stripped)
        assert module.func_names == {}
        assert all(not e.name.startswith("_crypto") for e in module.exports if e.kind == 0)

    def test_signature_preserved(self, coinhive_wasm):
        assert wasm_signature(strip_names(coinhive_wasm)) == wasm_signature(coinhive_wasm)

    def test_still_valid_and_executable(self, coinhive_wasm):
        stripped = strip_names(coinhive_wasm)
        validate_module(decode_module(stripped))
        assert _run(stripped, 3, 7)


class TestReorderFunctions:
    def test_breaks_ordered_signature_only(self, coinhive_wasm):
        reordered = reorder_functions(coinhive_wasm)
        assert wasm_signature(reordered) != wasm_signature(coinhive_wasm)
        assert unordered_signature(reordered) == unordered_signature(coinhive_wasm)

    def test_call_sites_remapped(self, coinhive_wasm):
        reordered = reorder_functions(coinhive_wasm)
        validate_module(decode_module(reordered))
        assert _run(reordered, 3, 7)

    def test_seeded_shuffle(self, coinhive_wasm):
        a = reorder_functions(coinhive_wasm, RngStream(1, "r"))
        b = reorder_functions(coinhive_wasm, RngStream(1, "r"))
        assert a == b

    def test_exports_track_real_functions(self, coinhive_wasm):
        """The export must reach the same code as before the permutation."""
        before = _run(coinhive_wasm, 5, 9)
        after = _run(reorder_functions(coinhive_wasm), 5, 9)
        assert before == after


class TestPadDeadCode:
    def test_static_mix_poisoned_execution_unchanged(self, coinhive_wasm):
        padded = pad_dead_code(coinhive_wasm)
        assert extract_features(padded).float_density > 0.3
        assert _run(padded, 3, 7) == _run(coinhive_wasm, 3, 7)

    def test_valid(self, coinhive_wasm):
        validate_module(decode_module(pad_dead_code(coinhive_wasm)))


class TestRewriteConstants:
    def test_new_signature_same_mix(self, coinhive_wasm):
        rewritten = rewrite_constants(coinhive_wasm, RngStream(2, "rw"))
        assert wasm_signature(rewritten) != wasm_signature(coinhive_wasm)
        before = extract_features(coinhive_wasm)
        after = extract_features(rewritten)
        assert before.xor_count == after.xor_count
        assert before.total_instructions == after.total_instructions

    def test_still_executes(self, coinhive_wasm):
        rewritten = rewrite_constants(coinhive_wasm, RngStream(2, "rw"))
        validate_module(decode_module(rewritten))
        assert _run(rewritten, 3, 7)

    def test_classifier_mix_path_survives_rewrite(self, coinhive_wasm, signature_db):
        """The paper's layered design in one test: constants change ⇒
        signature misses, but name hints / instruction mix still catch it."""
        from repro.core.classifier import MinerClassifier

        rewritten = rewrite_constants(coinhive_wasm, RngStream(3, "rw"))
        classifier = MinerClassifier(database=signature_db)
        verdict = classifier.classify_wasm(rewritten)
        assert verdict.is_miner
        assert verdict.method != "signature"
