"""CLI surface of the telemetry layer: serve --duration, loadgen
--timeseries-interval, and the obs timeline/top/export views.

The service runs entirely on seeded simulated time, so every assertion
here — including byte-identical twin artifacts — holds under the real
clock; no TickClock required. The exit-2 validations pin the flag
contract so a nonsensical combination fails before any work happens.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main

OVERLOAD = [
    "--seed", "11", "loadgen", "--scale", "0.1", "--rate", "48",
    "--duration", "20", "--tenants", "4", "--fault-profile", "heavy",
    "--timeseries-interval", "0.5", "--cooldown", "10",
]

QUARTER = [
    "--seed", "11", "loadgen", "--scale", "0.1", "--rate", "6",
    "--duration", "20", "--tenants", "4",
    "--timeseries-interval", "0.5", "--cooldown", "10",
]


@pytest.fixture(scope="module")
def overload_run(tmp_path_factory):
    run = tmp_path_factory.mktemp("ts") / "overload"
    assert main([*OVERLOAD, "--run-dir", str(run)]) == 0
    return run


@pytest.fixture(scope="module")
def quarter_run(tmp_path_factory):
    run = tmp_path_factory.mktemp("ts") / "quarter"
    assert main([*QUARTER, "--run-dir", str(run)]) == 0
    return run


class TestServeValidation:
    def test_interval_without_duration_is_exit_2(self, capsys):
        assert main(["serve", "--timeseries-interval", "0.5"]) == 2
        assert "--duration" in capsys.readouterr().err

    def test_interval_not_smaller_than_duration_is_exit_2(self, capsys):
        assert main(["serve", "--duration", "5", "--timeseries-interval", "5"]) == 2
        assert "smaller than" in capsys.readouterr().err

    def test_negative_interval_is_exit_2(self, capsys):
        assert main(["serve", "--duration", "5", "--timeseries-interval", "-1"]) == 2
        assert ">= 0" in capsys.readouterr().err

    def test_duration_with_domains_is_exit_2(self, capsys):
        assert main(["serve", "--duration", "5", "example.com"]) == 2
        assert "cannot be combined" in capsys.readouterr().err


class TestServeDuration:
    def test_duration_run_records_multiple_ticks(self, tmp_path, capsys):
        run = tmp_path / "serve"
        assert main([
            "--seed", "11", "serve", "--duration", "8", "--rate", "30",
            "--timeseries-interval", "0.5", "--run-dir", str(run),
        ]) == 0
        out = capsys.readouterr().out
        assert "timeseries:" in out
        assert (run / "timeseries.jsonl").exists()
        manifest = json.loads((run / "manifest.json").read_text())
        assert manifest["command"] == "serve"
        assert manifest["params"]["timeseries_interval"] == 0.5
        assert "timeseries.jsonl" in manifest["artifacts"]
        from repro.obs.timeseries import read_timeseries_jsonl

        series = read_timeseries_jsonl(run / "timeseries.jsonl")
        assert len(series.records) > 1

    def test_duration_run_skips_per_domain_table(self, capsys):
        assert main([
            "--seed", "11", "serve", "--duration", "4", "--rate", "10",
        ]) == 0
        out = capsys.readouterr().out
        assert "verdicts" not in out  # the demo table would be huge here
        assert "offered=" in out

    def test_heartbeat_reports_service_health(self, capsys):
        assert main([
            "--seed", "11", "serve", "--duration", "8", "--rate", "48",
            "--heartbeat", "2",
        ]) == 0
        err = capsys.readouterr().err
        assert "[hb] serve" in err
        assert "queue=" in err
        assert "shed=" in err
        assert "tier=" in err


class TestLoadgenTimeseries:
    def test_artifact_lands_in_run_dir(self, overload_run):
        assert (overload_run / "timeseries.jsonl").exists()
        manifest = json.loads((overload_run / "manifest.json").read_text())
        assert manifest["params"]["timeseries_interval"] == 0.5
        assert manifest["params"]["cooldown"] == 10.0
        assert "timeseries.jsonl" in manifest["artifacts"]

    def test_twin_runs_are_byte_identical(self, overload_run, tmp_path):
        twin = tmp_path / "twin"
        assert main([*OVERLOAD, "--run-dir", str(twin)]) == 0
        assert (
            (overload_run / "timeseries.jsonl").read_bytes()
            == (twin / "timeseries.jsonl").read_bytes()
        )

    def test_negative_interval_is_exit_2(self, capsys):
        assert main(["loadgen", "--timeseries-interval", "-0.5"]) == 2
        assert ">= 0" in capsys.readouterr().err

    def test_heartbeat_reports_service_health(self, capsys):
        assert main([
            "--seed", "11", "loadgen", "--rate", "30", "--duration", "6",
            "--heartbeat", "2",
        ]) == 0
        err = capsys.readouterr().err
        assert "[hb] loadgen" in err
        assert "queue=" in err and "shed=" in err and "tier=" in err


class TestObsTimeline:
    def test_renders_sparklines_and_alerts(self, overload_run, capsys):
        assert main(["obs", "timeline", str(overload_run)]) == 0
        out = capsys.readouterr().out
        assert "ticks at 0.5s" in out
        assert "service.requests.offered" in out
        assert "shed-burn firing" in out
        assert "shed-burn resolved" in out

    def test_metric_glob_filters_series(self, overload_run, capsys):
        assert main([
            "obs", "timeline", str(overload_run), "--metric", "service.rejected.*",
        ]) == 0
        out = capsys.readouterr().out
        assert "service.rejected.queue_full" in out
        assert "service.requests.offered" not in out

    def test_assert_fired_gate_passes_on_overload(self, overload_run):
        assert main([
            "obs", "timeline", str(overload_run),
            "--assert-fired", "shed-burn",
            "--assert-fired", "latency-burn",
        ]) == 0

    def test_assert_fired_gate_trips_on_quarter_capacity(self, quarter_run, capsys):
        assert main([
            "obs", "timeline", str(quarter_run), "--assert-fired", "shed-burn",
        ]) == 1
        assert "never did" in capsys.readouterr().err

    def test_assert_not_fired_gate_passes_on_quarter_capacity(self, quarter_run):
        assert main([
            "obs", "timeline", str(quarter_run),
            "--assert-not-fired", "shed-burn",
            "--assert-not-fired", "latency-burn",
            "--assert-not-fired", "error-burn",
        ]) == 0

    def test_assert_not_fired_gate_trips_on_overload(self, overload_run, capsys):
        assert main([
            "obs", "timeline", str(overload_run), "--assert-not-fired", "shed-burn",
        ]) == 1
        assert "stay silent" in capsys.readouterr().err

    def test_run_without_timeseries_fails_cleanly(self, tmp_path, capsys):
        run = tmp_path / "plain"
        assert main([
            "--seed", "11", "loadgen", "--rate", "10", "--duration", "4",
            "--run-dir", str(run),
        ]) == 0
        capsys.readouterr()
        assert main(["obs", "timeline", str(run)]) == 1
        assert "no timeseries.jsonl" in capsys.readouterr().out


class TestObsTop:
    def test_reads_run_dir_without_complete_marker(self, overload_run, tmp_path, capsys):
        # obs top tails the tick-flushed artifact directly: a COMPLETE
        # marker (or even a manifest) is not required
        partial = tmp_path / "partial"
        partial.mkdir()
        (partial / "timeseries.jsonl").write_bytes(
            (overload_run / "timeseries.jsonl").read_bytes()
        )
        assert main(["obs", "top", str(partial)]) == 0
        out = capsys.readouterr().out
        assert "ticks retained" in out

    def test_windowed_service_line_over_busy_window(self, overload_run, capsys):
        # a window wide enough to reach back into the loaded phase
        assert main(["obs", "top", str(overload_run), "--window", "80"]) == 0
        out = capsys.readouterr().out
        assert "service: offered=" in out
        assert "shed=" in out
        assert "alerts firing: none" in out  # resolved during cooldown

    def test_missing_artifact_fails_cleanly(self, tmp_path, capsys):
        assert main(["obs", "top", str(tmp_path)]) == 1
        assert "does not exist" in capsys.readouterr().out

    def test_watch_iterations_bound_the_loop(self, overload_run, capsys):
        assert main([
            "obs", "top", str(overload_run), "--watch", "0.01", "--iterations", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert out.count("ticks retained") == 2

    def test_watch_terminates_on_header_only_artifact(self, tmp_path, capsys):
        # a run that registered its flush path but never completed a tick:
        # a bounded watch must wait, not render — and must still terminate
        run = tmp_path / "young"
        run.mkdir()
        (run / "timeseries.jsonl").write_text(
            '{"interval":0.5,"schema_version":1}\n'
        )
        assert main([
            "obs", "top", str(run), "--watch", "0.01", "--iterations", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert out.count("no tick records yet") == 2
        assert "ticks retained" not in out

    def test_watch_treats_torn_artifact_as_transient(self, overload_run, tmp_path, capsys):
        # a tail can catch the flusher mid-write; watch keeps polling
        # instead of dying on the truncated line
        run = tmp_path / "torn"
        run.mkdir()
        intact = (overload_run / "timeseries.jsonl").read_text()
        (run / "timeseries.jsonl").write_text(intact.rstrip("\n")[:-5])
        assert main([
            "obs", "top", str(run), "--watch", "0.01", "--iterations", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert out.count("(waiting) malformed timeseries line") == 2

    def test_torn_artifact_without_watch_is_exit_1(self, overload_run, tmp_path, capsys):
        run = tmp_path / "torn"
        run.mkdir()
        intact = (overload_run / "timeseries.jsonl").read_text()
        (run / "timeseries.jsonl").write_text(intact.rstrip("\n")[:-5])
        assert main(["obs", "top", str(run)]) == 1
        assert "malformed timeseries line" in capsys.readouterr().out


class TestObsExport:
    def test_prom_exposition_renders_dimensions_as_labels(self, overload_run, capsys):
        assert main(["obs", "export", str(overload_run), "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_service_requests_offered_total counter" in out
        assert 'repro_service_tenant_offered_total{tenant="tenant-0"}' in out
        assert "# TYPE repro_service_latency_seconds histogram" in out
        assert 'le="+Inf"' in out

    def test_out_writes_file_deterministically(self, overload_run, tmp_path, capsys):
        a, b = tmp_path / "a.prom", tmp_path / "b.prom"
        assert main(["obs", "export", str(overload_run), "--out", str(a)]) == 0
        assert main(["obs", "export", str(overload_run), "--out", str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()
        assert "exposition lines" in capsys.readouterr().out

    def test_missing_run_fails_cleanly(self, tmp_path, capsys):
        assert main(["obs", "export", str(tmp_path / "nope")]) == 1
        assert "error" in capsys.readouterr().out

    def test_escape_label_round_trips_specials(self):
        # the three characters the exposition format escapes inside label
        # values; a scraper's unescape must recover the original exactly
        from repro.obs.prom import _escape_label

        def unescape(text):
            out, chars = [], iter(text)
            for char in chars:
                if char != "\\":
                    out.append(char)
                    continue
                follower = next(chars)
                out.append({"n": "\n", "\\": "\\", '"': '"'}[follower])
            return "".join(out)

        cases = [
            "plain", "back\\slash", 'quo"te', "new\nline",
            "\\", '\\"', "\\n",  # literal backslash-n must not become newline
            'all\\three\n"at once"\\\n',
        ]
        for value in cases:
            escaped = _escape_label(value)
            assert "\n" not in escaped  # stays on one exposition line
            assert unescape(escaped) == value


class TestCrawlTimeseries:
    def test_crawl_records_ticks_under_tick_clock(self, tmp_path, capsys):
        from repro.obs.clock import TickClock, use_clock
        from repro.obs.timeseries import read_timeseries_jsonl

        run = tmp_path / "crawl"
        with use_clock(TickClock()):
            assert main([
                "--seed", "7", "crawl", "--dataset", "net", "--scale", "0.03",
                "--timeseries-interval", "0.05", "--executor", "serial",
                "--run-dir", str(run),
            ]) == 0
        out = capsys.readouterr().out
        assert "timeseries:" in out
        series = read_timeseries_jsonl(run / "timeseries.jsonl")
        assert series.records
        assert any(record.counters for record in series.records)
        manifest = json.loads((run / "manifest.json").read_text())
        assert manifest["params"]["timeseries_interval"] == 0.05

    def test_crawl_timeseries_is_deterministic_under_tick_clock(self, tmp_path):
        from repro.obs.clock import TickClock, use_clock

        runs = []
        for name in ("a", "b"):
            run = tmp_path / name
            with use_clock(TickClock()):
                assert main([
                    "--seed", "7", "crawl", "--dataset", "net", "--scale", "0.03",
                    "--timeseries-interval", "0.05", "--executor", "serial",
                    "--run-dir", str(run),
                ]) == 0
            runs.append(run)
        a, b = runs
        assert (a / "timeseries.jsonl").read_bytes() == (b / "timeseries.jsonl").read_bytes()
