"""Golden-snapshot tests for the paper's headline tables.

Small-scale, seeded versions of the benchmark-suite artifacts behind
Figure 2 and Tables 1, 2, and 6 are rendered and compared byte-for-byte
against ``tests/golden/*.txt``. The pipelines are deterministic given
``(seed, scale)``, so any drift in these tables is a real behaviour
change — the failure shows a unified diff; refresh intentionally changed
snapshots with ``pytest --update-golden``.
"""

from __future__ import annotations

import pytest

from repro.analysis.crawl import ChromeCampaign, ZgrabCampaign
from repro.analysis.network import NetworkSimConfig, simulate_network
from repro.analysis.reporting import render_table
from repro.core.detector import cross_tabulate
from repro.internet.population import build_population
from repro.sim.clock import utc_timestamp

SEED = 2018
SCALE = 0.05
DATASETS = ("alexa", "com", "net", "org")


@pytest.fixture(scope="session")
def golden_populations():
    return {name: build_population(name, seed=SEED, scale=SCALE) for name in DATASETS}


@pytest.fixture(scope="session")
def golden_zgrab_scans(golden_populations):
    return {
        name: ZgrabCampaign(population=golden_populations[name]).both_scans()
        for name in DATASETS
    }


@pytest.fixture(scope="session")
def golden_chrome_results(golden_populations):
    return {
        name: ChromeCampaign(population=golden_populations[name]).run()
        for name in ("alexa", "org")
    }


@pytest.fixture(scope="session")
def golden_network_observation():
    # April 26 through June 1: covers all of May for the monthly rows
    start = utc_timestamp(2018, 4, 26)
    end = utc_timestamp(2018, 6, 1)
    return simulate_network(NetworkSimConfig(seed=SEED, start=start, end=end))


def test_golden_fig2_nocoin_prevalence(golden, golden_zgrab_scans):
    rows = []
    for name, scans in golden_zgrab_scans.items():
        for scan in scans:
            top = ", ".join(
                f"{label} {share:.0%}"
                for label, share in list(scan.script_shares.items())[:5]
            )
            rows.append(
                [name, scan.scan_date, scan.nocoin_domains, f"{scan.prevalence:.4%}", top]
            )
    golden(
        "fig2_nocoin_prevalence",
        render_table(
            ["dataset", "scan", "NoCoin domains", "prevalence", "top-5 script shares"],
            rows,
        ),
    )


def test_golden_table1_wasm_signatures(golden, golden_chrome_results):
    blocks = []
    for name, result in golden_chrome_results.items():
        rows = [
            [rank, family, count]
            for rank, (family, count) in enumerate(
                result.signature_counts.most_common(5), start=1
            )
        ]
        rows.append(["", "Total WebAssembly", result.total_wasm_sites])
        rows.append(["", "of which miners", result.miner_wasm_sites])
        blocks.append(
            render_table(
                ["rank", "classification", "sites"],
                rows,
                title=f"{name} top WebAssembly signatures",
            )
        )
    golden("table1_wasm_signatures", "\n\n".join(blocks) + "\n")


def test_golden_table2_detector_overlap(golden, golden_chrome_results):
    rows = []
    for name, result in golden_chrome_results.items():
        tab = cross_tabulate(result.reports)
        rows.append(
            [
                name,
                tab.nocoin_hits,
                tab.nocoin_hits_with_miner_wasm,
                tab.wasm_miner_hits,
                tab.miners_blocked_by_nocoin,
                tab.miners_missed_by_nocoin,
                f"{tab.missed_fraction:.0%}",
                f"{tab.detection_factor:.1f}x",
            ]
        )
    golden(
        "table2_detector_overlap",
        render_table(
            [
                "dataset", "NoCoin hits", "having Wasm miner", "Wasm hits",
                "blocked by NoCoin", "missed by NoCoin", "missed %", "factor",
            ],
            rows,
        ),
    )


def test_golden_table6_monthly_stats(golden, golden_network_observation):
    observation = golden_network_observation
    rows = []
    for row in observation.monthly_stats(months=((2018, 5),)):
        rows.append(
            [
                row["month"],
                f"{row['median_blocks_per_day']:.1f}",
                f"{row['avg_blocks_per_day']:.1f}",
                f"{row['pool_hashrate_mhs']:.2f}",
                f"{row['network_hashrate_mhs']:.1f}",
                f"{row['xmr']:.1f}",
                f"{row['share']:.2%}",
            ]
        )
    rows.append(
        [
            "overall",
            "",
            "",
            "",
            "",
            f"{len(observation.attributed)} blocks",
            f"{observation.overall_share():.2%}",
        ]
    )
    golden(
        "table6_monthly_stats",
        render_table(
            ["month", "med blocks/day", "avg", "pool MH/s", "net MH/s", "XMR", "share"],
            rows,
        ),
    )
