"""Tests for the discrete-event loop."""

import pytest

from repro.sim.events import EventLoop


class TestScheduling:
    def test_call_later_runs_in_order(self):
        loop = EventLoop()
        order = []
        loop.call_later(2.0, order.append, "b")
        loop.call_later(1.0, order.append, "a")
        loop.call_later(3.0, order.append, "c")
        loop.run_all()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_scheduling_order(self):
        loop = EventLoop()
        order = []
        loop.call_later(1.0, order.append, 1)
        loop.call_later(1.0, order.append, 2)
        loop.call_later(1.0, order.append, 3)
        loop.run_all()
        assert order == [1, 2, 3]

    def test_clock_advances_to_event_time(self):
        loop = EventLoop()
        seen = []
        loop.call_later(5.0, lambda: seen.append(loop.now))
        loop.run_all()
        assert seen == [5.0]

    def test_cannot_schedule_in_past(self):
        loop = EventLoop()
        loop.call_later(1.0, lambda: None)
        loop.run_all()
        with pytest.raises(ValueError):
            loop.call_at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventLoop().call_later(-0.1, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        loop = EventLoop()
        ran = []
        event = loop.call_later(1.0, ran.append, "x")
        event.cancel()
        loop.run_all()
        assert ran == []

    def test_pending_ignores_cancelled(self):
        loop = EventLoop()
        event = loop.call_later(1.0, lambda: None)
        loop.call_later(2.0, lambda: None)
        assert loop.pending() == 2
        event.cancel()
        assert loop.pending() == 1

    def test_peek_time_skips_cancelled(self):
        loop = EventLoop()
        first = loop.call_later(1.0, lambda: None)
        loop.call_later(2.0, lambda: None)
        first.cancel()
        assert loop.peek_time() == 2.0


class TestRunUntil:
    def test_stops_at_deadline(self):
        loop = EventLoop()
        ran = []
        loop.call_later(1.0, ran.append, "early")
        loop.call_later(10.0, ran.append, "late")
        executed = loop.run_until(5.0)
        assert executed == 1
        assert ran == ["early"]
        assert loop.now == 5.0

    def test_deadline_inclusive(self):
        loop = EventLoop()
        ran = []
        loop.call_later(5.0, ran.append, "edge")
        loop.run_until(5.0)
        assert ran == ["edge"]

    def test_advances_clock_even_when_idle(self):
        loop = EventLoop()
        loop.run_until(42.0)
        assert loop.now == 42.0

    def test_rescheduling_event_chain(self):
        loop = EventLoop()
        ticks = []

        def tick():
            ticks.append(loop.now)
            if loop.now < 4.5:
                loop.call_later(1.0, tick)

        loop.call_later(1.0, tick)
        loop.run_until(10.0)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_max_events_guard(self):
        loop = EventLoop()

        def forever():
            loop.call_later(0.001, forever)

        loop.call_later(0.001, forever)
        executed = loop.run_until(1000.0, max_events=50)
        assert executed == 50

    def test_step_returns_false_when_empty(self):
        assert EventLoop().step() is False
