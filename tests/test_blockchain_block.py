"""Tests for transactions, headers, blocks, and the hashing blob."""

import pytest

from repro.blockchain import varint
from repro.blockchain.block import (
    Block,
    BlockHeader,
    NONCE_OFFSET,
    hashing_blob,
    set_blob_nonce,
)
from repro.blockchain.transactions import (
    ATOMIC_PER_XMR,
    Transaction,
    TransferFactory,
    coinbase_transaction,
)
from repro.pool.jobs import parse_blob
from repro.sim.rng import RngStream


class TestVarint:
    def test_small_values(self):
        assert varint.encode(0) == b"\x00"
        assert varint.encode(127) == b"\x7f"
        assert varint.encode(128) == b"\x80\x01"

    def test_roundtrip(self):
        for value in (0, 1, 127, 128, 300, 2**20, 2**40):
            assert varint.decode(varint.encode(value))[0] == value

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            varint.encode(-5)

    def test_truncated(self):
        with pytest.raises(ValueError):
            varint.decode(b"\x80")


class TestTransactions:
    def test_coinbase_structure(self):
        tx = coinbase_transaction(10, 5 * ATOMIC_PER_XMR, "pool", b"extra")
        assert tx.is_coinbase
        assert tx.inputs == (("gen", 10),)
        assert tx.total_output() == 5 * ATOMIC_PER_XMR
        assert tx.unlock_time == 70  # height + 60

    def test_coinbase_rejects_zero_reward(self):
        with pytest.raises(ValueError):
            coinbase_transaction(1, 0, "pool")

    def test_hash_is_stable_and_32_bytes(self):
        tx = coinbase_transaction(1, 100, "pool")
        assert tx.hash() == tx.hash()
        assert len(tx.hash()) == 32

    def test_extra_nonce_changes_hash(self):
        a = coinbase_transaction(1, 100, "pool", b"nonce-a")
        b = coinbase_transaction(1, 100, "pool", b"nonce-b")
        assert a.hash() != b.hash()

    def test_transfer_factory_unique_hashes(self):
        factory = TransferFactory(rng=RngStream(1, "tx"))
        hashes = {factory.make().hash() for _ in range(50)}
        assert len(hashes) == 50


class TestBlockHeader:
    def header(self, **kwargs):
        defaults = dict(major=7, minor=7, timestamp=1_526_000_000, prev_id=b"\x11" * 32, nonce=0)
        defaults.update(kwargs)
        return BlockHeader(**defaults)

    def test_serialization_layout(self):
        header = self.header(nonce=0x01020304)
        raw = header.serialize()
        assert raw[0] == 7 and raw[1] == 7
        assert raw[-4:] == bytes([0x04, 0x03, 0x02, 0x01])  # little-endian nonce

    def test_nonce_offset_matches_constant_for_2018_timestamps(self):
        assert self.header().nonce_offset() == NONCE_OFFSET == 39

    def test_bad_prev_id_rejected(self):
        with pytest.raises(ValueError):
            self.header(prev_id=b"short")

    def test_nonce_range_checked(self):
        with pytest.raises(ValueError):
            self.header(nonce=2**32)

    def test_with_nonce_returns_new_header(self):
        header = self.header()
        other = header.with_nonce(99)
        assert other.nonce == 99 and header.nonce == 0


class TestHashingBlob:
    def header(self):
        return BlockHeader(7, 7, 1_526_000_000, b"\x22" * 32, nonce=7)

    def test_blob_parses_back(self):
        root = b"\x33" * 32
        blob = hashing_blob(self.header(), root, 5)
        fields, prev_id, nonce, merkle_root, num_txs = parse_blob(blob)
        assert fields == (7, 7, 1_526_000_000)
        assert prev_id == b"\x22" * 32
        assert nonce == 7
        assert merkle_root == root
        assert num_txs == 5

    def test_set_blob_nonce(self):
        header = self.header()
        blob = hashing_blob(header, b"\x33" * 32, 1)
        patched = set_blob_nonce(blob, header, 0xDEADBEEF)
        _, _, nonce, root, _ = parse_blob(patched)
        assert nonce == 0xDEADBEEF
        assert root == b"\x33" * 32

    def test_zero_txs_rejected(self):
        with pytest.raises(ValueError):
            hashing_blob(self.header(), b"\x33" * 32, 0)

    def test_bad_merkle_root_rejected(self):
        with pytest.raises(ValueError):
            hashing_blob(self.header(), b"short", 1)

    def test_trailing_bytes_rejected_by_parser(self):
        blob = hashing_blob(self.header(), b"\x33" * 32, 1) + b"\x00"
        with pytest.raises(ValueError):
            parse_blob(blob)


class TestBlock:
    def make_block(self, n_txs: int = 3) -> Block:
        factory = TransferFactory(rng=RngStream(5, "txs"))
        coinbase = coinbase_transaction(1, 100, "pool", b"en")
        txs = [coinbase] + [factory.make() for _ in range(n_txs - 1)]
        header = BlockHeader(7, 7, 1_526_000_000, b"\x01" * 32)
        return Block(header=header, transactions=txs)

    def test_requires_coinbase_first(self):
        factory = TransferFactory(rng=RngStream(6, "txs"))
        header = BlockHeader(7, 7, 1_526_000_000, b"\x01" * 32)
        with pytest.raises(ValueError):
            Block(header=header, transactions=[factory.make()])

    def test_requires_nonempty(self):
        header = BlockHeader(7, 7, 1_526_000_000, b"\x01" * 32)
        with pytest.raises(ValueError):
            Block(header=header, transactions=[])

    def test_merkle_root_commits_to_coinbase(self):
        a = self.make_block()
        b = self.make_block()
        object.__setattr__(a.transactions[0], "extra", b"different")
        assert a.merkle_root() != b.merkle_root() or a.transactions[0].extra == b.transactions[0].extra

    def test_block_id_differs_from_pow_hash_domain(self):
        block = self.make_block()
        assert block.block_id() != block.pow_hash()

    def test_reward_and_miner(self):
        block = self.make_block()
        assert block.reward() == 100
        assert block.miner_address() == "pool"

    def test_blob_num_txs(self):
        block = self.make_block(n_txs=4)
        *_, num_txs = parse_blob(block.hashing_blob())
        assert num_txs == 4
