"""Tests for LEB128 coding."""

import pytest
from hypothesis import given, strategies as st

from repro.wasm import leb128


class TestUnsigned:
    def test_zero(self):
        assert leb128.encode_u(0) == b"\x00"

    def test_single_byte_max(self):
        assert leb128.encode_u(127) == b"\x7f"

    def test_two_bytes(self):
        # 624485 is the spec's worked example
        assert leb128.encode_u(624485) == b"\xe5\x8e\x26"

    def test_negative_rejected(self):
        with pytest.raises(leb128.LEBError):
            leb128.encode_u(-1)

    def test_decode_spec_example(self):
        value, offset = leb128.decode_u(b"\xe5\x8e\x26", 0)
        assert value == 624485
        assert offset == 3

    def test_decode_with_offset(self):
        data = b"\xff" + leb128.encode_u(300)
        value, offset = leb128.decode_u(data, 1)
        assert value == 300

    def test_truncated_raises(self):
        with pytest.raises(leb128.LEBError):
            leb128.decode_u(b"\x80", 0)

    def test_oversized_raises(self):
        with pytest.raises(leb128.LEBError):
            leb128.decode_u(b"\x80" * 11 + b"\x01", 0, max_bits=64)

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_roundtrip(self, value):
        encoded = leb128.encode_u(value)
        decoded, offset = leb128.decode_u(encoded, 0)
        assert decoded == value
        assert offset == len(encoded)


class TestSigned:
    def test_zero(self):
        assert leb128.encode_s(0) == b"\x00"

    def test_minus_one(self):
        assert leb128.encode_s(-1) == b"\x7f"

    def test_spec_example(self):
        assert leb128.encode_s(-123456) == b"\xc0\xbb\x78"

    def test_decode_spec_example(self):
        value, _ = leb128.decode_s(b"\xc0\xbb\x78", 0)
        assert value == -123456

    def test_sign_boundary_63_and_64(self):
        assert leb128.encode_s(63) == b"\x3f"
        assert leb128.encode_s(64) == b"\xc0\x00"
        assert leb128.encode_s(-64) == b"\x40"
        assert leb128.encode_s(-65) == b"\xbf\x7f"

    def test_truncated_raises(self):
        with pytest.raises(leb128.LEBError):
            leb128.decode_s(b"\x80\x80", 0)

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_roundtrip(self, value):
        encoded = leb128.encode_s(value)
        decoded, offset = leb128.decode_s(encoded, 0)
        assert decoded == value
        assert offset == len(encoded)
