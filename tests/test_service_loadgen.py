"""Load generation, overload invariants, SLO gates, and the service CLI
surfaces (`serve`, `loadgen`, `obs slo`).
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.detector import TIER_FULL, TIER_STATIC_ONLY
from repro.service.admission import ServicePolicy
from repro.service.loadgen import LoadgenConfig, build_requests, run_loadgen
from repro.service.slo import evaluate_slo, parse_slo, slo_value

SEED = 2018

#: rate ≈ 2× the default policy's nominal_capacity (~23.8 r/s)
OVERLOAD = LoadgenConfig(
    seed=SEED,
    dataset="alexa",
    scale=0.05,
    rate=48.0,
    duration=15.0,
    tenants=4,
    fault_profile="heavy",
    reload_at=(5.0,),
    bad_reload_at=(9.0,),
)


@pytest.fixture(scope="module")
def overload_report():
    return run_loadgen(OVERLOAD)


class TestRequestSynthesis:
    def test_schedule_is_seeded_and_sorted(self):
        from repro.internet.population import build_population

        population = build_population("alexa", seed=SEED, scale=0.05)
        first = build_requests(OVERLOAD, population)
        second = build_requests(OVERLOAD, population)
        assert first == second
        arrivals = [r.arrival for r in first]
        assert arrivals == sorted(arrivals)
        assert {r.tenant for r in first} == {f"tenant-{i}" for i in range(4)}

    def test_miner_sites_carry_their_corpus_capture(self):
        from repro.internet.population import build_population

        population = build_population("alexa", seed=SEED, scale=0.05)
        miners = population.ground_truth_miners()
        requests = build_requests(OVERLOAD, population)
        with_capture = [r for r in requests if r.domain in miners]
        assert with_capture
        assert all(r.wasm_dumps and r.websocket_urls for r in with_capture)


class TestOverloadInvariants:
    """The acceptance-criteria run: heavy faults at 2× capacity."""

    def test_run_completes_with_bounded_queue(self, overload_report):
        report = overload_report
        assert report.offered > 0
        depth = report.server.metrics.gauges["service.queue.depth"]
        assert depth <= report.config.policy.queue_capacity
        assert report.server.queue_depth == 0  # fully drained, no deadlock

    def test_every_offer_is_accounted(self, overload_report):
        report = overload_report
        counter = report.counter
        assert report.offered == (
            counter("service.requests.admitted")
            + counter("service.rejected.rate_limit")
            + counter("service.rejected.queue_full")
        )
        assert counter("service.requests.admitted") == (
            report.completed + counter("service.rejected.deadline")
        )
        assert len(report.responses) == report.offered

    def test_fault_ledger_balances(self, overload_report):
        ledger = overload_report.server.ledger
        assert ledger.has_events()
        assert ledger.balanced()  # injected == recovered + unrecovered

    def test_overload_actually_sheds_and_degrades(self, overload_report):
        report = overload_report
        assert report.shed_rate > 0.1
        degraded = sum(
            report.server.metrics.counters_with_prefix("service.degraded.").values()
        )
        assert degraded > 0
        assert report.counter("service.reload.applied") == 1
        assert report.counter("service.reload.rejected") == 1
        assert report.counter("service.reload.mixed_bundle") == 0

    def test_metrics_are_byte_identical_across_twin_runs(self, overload_report):
        twin = run_loadgen(OVERLOAD)
        first = json.dumps(overload_report.server.metrics.to_dict(), sort_keys=True)
        second = json.dumps(twin.server.metrics.to_dict(), sort_keys=True)
        assert first == second

    def test_chaos_reaches_the_signature_path(self, overload_report):
        assert overload_report.counter("service.signature.stalls") > 0


class TestRecallByTier:
    def test_full_tier_recall_is_total_at_low_load(self):
        report = run_loadgen(
            LoadgenConfig(seed=SEED, dataset="alexa", scale=0.05, rate=6.0, duration=20.0)
        )
        assert report.recall(TIER_FULL) == 1.0
        assert report.shed_rate == 0.0

    def test_static_only_recall_drops_to_the_nocoin_listed_share(self, overload_report):
        static = overload_report.recall(TIER_STATIC_ONLY)
        full = overload_report.recall(TIER_FULL)
        if static is None or full is None:
            pytest.skip("tier not exercised at this seed")
        # static-only keeps only the NoCoin match: strictly blinder
        assert static < full


class TestSloGates:
    def test_parse_latency_shorthand(self):
        threshold = parse_slo("p99>0.5")
        assert (threshold.target, threshold.op, threshold.value) == ("p99", ">", 0.5)

    def test_parse_rejects_relative_expressions(self):
        with pytest.raises(ValueError, match="absolute"):
            parse_slo("p99>1.2x")

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="bad SLO expression"):
            parse_slo("p99 is too high")

    def test_values_resolve_against_run_metrics(self, overload_report):
        registry = overload_report.server.metrics
        assert slo_value(registry, "p99") == overload_report.latency_quantile(0.99)
        assert slo_value(registry, "shed_rate") == pytest.approx(
            overload_report.shed_rate
        )
        assert slo_value(registry, "service.reload.mixed_bundle") == 0
        assert slo_value(registry, "service.latency.count") == overload_report.completed
        assert slo_value(registry, "degraded_rate") > 0

    def test_evaluate_flags_violations_only(self, overload_report):
        registry = overload_report.server.metrics
        violated, detail = evaluate_slo(parse_slo("p99>100"), registry)
        assert not violated and "ok" in detail
        violated, detail = evaluate_slo(
            parse_slo("service.requests.offered<1"), registry
        )
        assert not violated
        violated, detail = evaluate_slo(parse_slo("p99>0.000001"), registry)
        assert violated and "VIOLATED" in detail


class TestServiceCli:
    def test_loadgen_then_obs_slo_gate_passes(self, tmp_path, capsys):
        run_dir = tmp_path / "svc"
        assert main(
            [
                "--seed", "11", "loadgen", "--dataset", "alexa", "--scale", "0.05",
                "--rate", "30", "--duration", "8", "--tenants", "3",
                "--fault-profile", "heavy", "--reload-at", "3",
                "--bad-reload-at", "5", "--run-dir", str(run_dir),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "load report" in out
        assert "shed rate" in out
        assert (run_dir / "metrics.json").exists()
        assert main(
            [
                "obs", "slo", str(run_dir),
                "--fail-on", "p99>10",
                "--fail-on", "service.reload.mixed_bundle>0",
            ]
        ) == 0
        assert "service SLOs" in capsys.readouterr().out

    def test_obs_slo_gate_violation_exits_1(self, tmp_path, capsys):
        run_dir = tmp_path / "svc"
        main(
            [
                "--seed", "11", "loadgen", "--dataset", "alexa", "--scale", "0.05",
                "--rate", "30", "--duration", "5", "--run-dir", str(run_dir),
            ]
        )
        capsys.readouterr()
        assert main(["obs", "slo", str(run_dir), "--fail-on", "p99>0.000001"]) == 1
        assert "VIOLATED" in capsys.readouterr().out

    def test_obs_slo_bad_expression_exits_2(self, tmp_path, capsys):
        run_dir = tmp_path / "svc"
        main(
            [
                "--seed", "11", "loadgen", "--dataset", "alexa", "--scale", "0.05",
                "--rate", "20", "--duration", "4", "--run-dir", str(run_dir),
            ]
        )
        capsys.readouterr()
        assert main(["obs", "slo", str(run_dir), "--fail-on", "p99>1.2x"]) == 2

    def test_obs_slo_rejects_non_service_runs(self, tmp_path, capsys):
        run_dir = tmp_path / "crawl"
        main(
            [
                "--seed", "11", "crawl", "--dataset", "net", "--scale", "0.03",
                "--run-dir", str(run_dir),
            ]
        )
        capsys.readouterr()
        assert main(["obs", "slo", str(run_dir)]) == 1
        assert "no service.* metrics" in capsys.readouterr().out

    def test_obs_explain_renders_service_verdicts(self, tmp_path, capsys):
        run_dir = tmp_path / "svc"
        main(
            [
                "--seed", "11", "loadgen", "--dataset", "alexa", "--scale", "0.05",
                "--rate", "20", "--duration", "5", "--run-dir", str(run_dir),
            ]
        )
        capsys.readouterr()
        payloads = [
            json.loads(line)
            for line in (run_dir / "verdicts.jsonl").read_text().splitlines()
        ]
        subject = next(p["subject"] for p in payloads if "subject" in p)
        assert main(["obs", "explain", str(run_dir), subject]) == 0
        assert "[alexa/service]" in capsys.readouterr().out

    def test_serve_named_domains(self, capsys):
        assert main(
            ["--seed", "3", "serve", "--dataset", "alexa", "--scale", "0.05"]
        ) == 0
        out = capsys.readouterr().out
        assert "verdicts" in out
        assert "offered=12" in out

    def test_serve_unknown_domain_exits_2(self, capsys):
        assert main(
            [
                "--seed", "3", "serve", "--dataset", "alexa", "--scale", "0.05",
                "not-a-site.example",
            ]
        ) == 2
        assert "not in the alexa population" in capsys.readouterr().err


class TestPolicyCapacity:
    def test_overload_rate_is_twice_capacity(self):
        # guards the acceptance criterion: the canned overload profile
        # really offers ~2x what the default policy can serve
        capacity = ServicePolicy().nominal_capacity
        assert OVERLOAD.rate == pytest.approx(2 * capacity, rel=0.05)
