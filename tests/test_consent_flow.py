"""Tests for the Authedmine consent flow."""

import pytest

from repro.wasm.builder import ModuleBlueprint
from repro.web.browser import HeadlessBrowser
from repro.web.http import Resource, SyntheticWeb
from repro.web.scripts import ConsentMinerBehavior, MinerBehavior, inline_key


def consent_site(corpus, accept_rate: float):
    web = SyntheticWeb()
    wasm = corpus.build(ModuleBlueprint("authedmine", 0))
    web.register("https://authedmine.com/lib/cn.wasm",
                 Resource(content=wasm, content_type="application/wasm"))

    from repro.pool.protocol import (
        JobMessage, LoginMessage, encode_message, decode_message,
    )

    def handler(channel, payload):
        if isinstance(decode_message(payload), LoginMessage):
            channel.server_send(
                encode_message(JobMessage(job_id="j", blob_hex="00" * 76, target_hex="ffffff00"))
            )

    web.register_ws("wss://ws1.authedmine.com/proxy", handler)

    inline = "am.askAndStart('TOK');"
    behavior = ConsentMinerBehavior(
        miner=MinerBehavior(
            wasm_url="https://authedmine.com/lib/cn.wasm",
            socket_url="wss://ws1.authedmine.com/proxy",
            token="TOK",
        ),
        accept_rate=accept_rate,
    )
    web.register_page(
        "http://www.consent.com/",
        f"<html><head><script>{inline}</script></head><body></body></html>".encode(),
    )
    return web, {inline_key(inline): behavior}


class TestConsentFlow:
    def test_decline_leaves_nocoin_only_signature(self, corpus):
        web, registry = consent_site(corpus, accept_rate=0.0)
        browser = HeadlessBrowser(web, behavior_registry=registry)
        result = browser.visit("http://www.consent.com/")
        assert 'data-state="declined"' in result.final_html
        assert not result.has_wasm()
        assert not result.websocket_frames

    def test_accept_starts_mining(self, corpus):
        web, registry = consent_site(corpus, accept_rate=1.0)
        browser = HeadlessBrowser(web, behavior_registry=registry)
        result = browser.visit("http://www.consent.com/")
        assert 'data-state="accepted"' in result.final_html
        assert result.has_wasm()
        assert result.websocket_frames

    def test_dialog_always_rendered(self, corpus):
        web, registry = consent_site(corpus, accept_rate=0.0)
        browser = HeadlessBrowser(web, behavior_registry=registry)
        result = browser.visit("http://www.consent.com/")
        assert "authedmine-consent" in result.final_html
        assert result.dom_mutations >= 2  # dialog + decision update

    def test_accept_rate_statistics(self, corpus):
        """Across many visits, the accept rate is honored."""
        web, registry = consent_site(corpus, accept_rate=0.3)
        browser = HeadlessBrowser(web, behavior_registry=registry)
        mined = sum(
            1 for _ in range(60) if browser.visit("http://www.consent.com/").has_wasm()
        )
        assert 8 <= mined <= 30  # E=18
