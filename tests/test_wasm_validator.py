"""Tests for structural module validation."""

import pytest

from repro.wasm.types import CodeEntry, Export, FuncType, Import, Instr, Limits, Module, ValType
from repro.wasm.validator import WasmValidationError, validate_module


def base_module() -> Module:
    module = Module()
    module.types = [FuncType((), (ValType.I32,))]
    module.func_type_indices = [0]
    module.memories = [Limits(1)]
    module.codes = [CodeEntry(body=[Instr("i32.const", (1,)), Instr("end")])]
    return module


class TestIndexSpaces:
    def test_valid_module_passes(self):
        validate_module(base_module())

    def test_bad_type_index(self):
        module = base_module()
        module.func_type_indices = [5]
        with pytest.raises(WasmValidationError, match="type"):
            validate_module(module)

    def test_bad_import_type_index(self):
        module = base_module()
        module.imports = [Import("env", "f", 0, 9)]
        with pytest.raises(WasmValidationError):
            validate_module(module)

    def test_export_of_missing_function(self):
        module = base_module()
        module.exports = [Export("f", 0, 3)]
        with pytest.raises(WasmValidationError, match="export"):
            validate_module(module)

    def test_export_of_imported_function_ok(self):
        module = base_module()
        module.imports = [Import("env", "f", 0, 0)]
        module.exports = [Export("g", 0, 0)]  # index 0 = the import
        validate_module(module)

    def test_two_memories_rejected(self):
        module = base_module()
        module.memories = [Limits(1), Limits(1)]
        with pytest.raises(WasmValidationError, match="memory"):
            validate_module(module)

    def test_name_section_out_of_range(self):
        module = base_module()
        module.func_names = {7: "ghost"}
        with pytest.raises(WasmValidationError, match="name section"):
            validate_module(module)


class TestBodies:
    def test_missing_end(self):
        module = base_module()
        module.codes[0].body = [Instr("i32.const", (1,))]
        with pytest.raises(WasmValidationError, match="end"):
            validate_module(module)

    def test_code_after_final_end(self):
        module = base_module()
        module.codes[0].body = [Instr("end"), Instr("nop")]
        with pytest.raises(WasmValidationError, match="after final end"):
            validate_module(module)

    def test_branch_depth_checked(self):
        module = base_module()
        module.codes[0].body = [
            Instr("block", (None,)),
            Instr("br", (5,)),
            Instr("end"),
            Instr("i32.const", (1,)),
            Instr("end"),
        ]
        with pytest.raises(WasmValidationError, match="branch depth"):
            validate_module(module)

    def test_valid_nested_branching(self):
        module = base_module()
        module.codes[0].body = [
            Instr("block", (None,)),
            Instr("loop", (None,)),
            Instr("i32.const", (0,)),
            Instr("br_if", (1,)),
            Instr("end"),
            Instr("end"),
            Instr("i32.const", (1,)),
            Instr("end"),
        ]
        validate_module(module)

    def test_local_out_of_range(self):
        module = base_module()
        module.codes[0].body = [Instr("local.get", (3,)), Instr("end")]
        with pytest.raises(WasmValidationError, match="local"):
            validate_module(module)

    def test_locals_include_params(self):
        module = base_module()
        module.types = [FuncType((ValType.I32, ValType.I32), (ValType.I32,))]
        module.codes[0].body = [Instr("local.get", (1,)), Instr("end")]
        validate_module(module)

    def test_call_target_checked(self):
        module = base_module()
        module.codes[0].body = [Instr("call", (4,)), Instr("i32.const", (0,)), Instr("end")]
        with pytest.raises(WasmValidationError, match="call target"):
            validate_module(module)

    def test_else_outside_if(self):
        module = base_module()
        module.codes[0].body = [Instr("else"), Instr("end")]
        with pytest.raises(WasmValidationError, match="else"):
            validate_module(module)

    def test_global_reference_checked(self):
        module = base_module()
        module.codes[0].body = [Instr("global.get", (0,)), Instr("end")]
        with pytest.raises(WasmValidationError, match="global"):
            validate_module(module)
