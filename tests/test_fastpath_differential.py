"""Differential battery: fastpath vs reference must be byte-identical.

The optimized paths in :mod:`repro.core.fastpath` (combined filter-list
automaton, wasm memo cache, single-pass script scanner) exist only under
the contract that they change *nothing observable*. This suite enforces
the contract three ways:

1. Hypothesis-generated filter rules (plain, ``||`` anchored, ``/regex/``,
   ``@@`` exceptions, ``$options``) crossed with generated URLs and inline
   text: the automaton and the rule-by-rule reference loops must return
   identical :class:`~repro.core.nocoin.FilterMatch` tuples — same rule
   identity, same ``where``, same matched span.
2. Generated/adversarial HTML: :func:`~repro.web.html.scan_scripts` must
   equal :func:`~repro.web.html.extract_scripts` exactly.
3. Same-seed campaigns run with fastpath on and off must produce
   byte-identical ``verdicts.jsonl`` payloads and identical metric
   registries (counters *and* tick-clock histograms).
"""

from __future__ import annotations

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.crawl import ChromeCampaign, ZgrabCampaign
from repro.analysis.parallel import ParallelConfig, ShardedZgrabCampaign
from repro.core import fastpath
from repro.core.detector import PageDetector
from repro.core.fastpath import AhoCorasick, CompiledFilterSet
from repro.core.nocoin import FilterList, default_nocoin_list, parse_rule
from repro.internet.population import build_population
from repro.internet.streaming import StreamingPopulation
from repro.obs.clock import TickClock, use_clock
from repro.obs.evidence import verdicts_to_jsonl
from repro.obs.profile import make_obs
from repro.web.html import extract_scripts, scan_scripts

# ---------------------------------------------------------------------------
# rule / subject strategies — deliberately tiny alphabets so patterns and
# subjects collide often (a differential test that never matches anything
# proves nothing)
# ---------------------------------------------------------------------------

_BODY_ALPHABET = "abco.-*^/"
_REGEX_FRAGMENTS = (
    "a", "b", "co", r"\.", "x", "[abo]", ".", r"\w", "o+", "b*", "(?:ab)",
    "a|o", "$", "^", "(a)", "(?i)a", "a{1,2}",
)


def _parses(line: str):
    try:
        return parse_rule(line)
    except Exception:
        return None


_plain_lines = st.builds(
    lambda anchor, body, exception, opts: (
        ("@@" if exception else "") + ("||" if anchor else "") + body + opts
    ),
    st.booleans(),
    st.text(alphabet=_BODY_ALPHABET, min_size=1, max_size=10),
    st.booleans(),
    st.sampled_from(["", "$script", "$script,third-party", "$domain=a.co"]),
)

_regex_lines = st.builds(
    lambda parts, exception: ("@@" if exception else "") + "/" + "".join(parts) + "/",
    st.lists(st.sampled_from(_REGEX_FRAGMENTS), min_size=1, max_size=4),
    st.booleans(),
).filter(
    lambda line: _compiles(line.lstrip("@").strip("/"))
)


def _compiles(source: str) -> bool:
    try:
        re.compile(source, re.IGNORECASE)
    except re.error:
        return False
    return True


_rule_lines = st.one_of(_plain_lines, _regex_lines).filter(
    lambda line: _parses(line) is not None
)

_filter_lists = st.lists(_rule_lines, min_size=1, max_size=15).map(
    lambda lines: FilterList.from_lines(lines, source="gen")
)

_urls = st.builds(
    lambda scheme, host, path: f"{scheme}://{host}/{path}",
    st.sampled_from(["http", "https", "wss"]),
    st.text(alphabet="abco.-", min_size=1, max_size=12),
    st.text(alphabet="abco./-", max_size=12),
)

# mixed-case plus the unicode case-folding troublemakers (Kelvin sign,
# long s, dotted İ, final sigma) that distinguish str.lower() containment
# from re.IGNORECASE matching — the fast path must replicate the
# reference's exact semantics for both
_texts = st.text(alphabet="aAbBcCoO .-/*^<>ſKİςΣ", max_size=40)


def _assert_url_equivalent(filter_list: FilterList, url: str) -> None:
    with fastpath.configure(False):
        reference = (filter_list.match_url(url), filter_list.explain_url(url))
    with fastpath.configure(True):
        fast = (filter_list.match_url(url), filter_list.explain_url(url))
    assert fast == reference, (url, fast, reference)


def _assert_text_equivalent(filter_list: FilterList, text: str) -> None:
    with fastpath.configure(False):
        reference = (filter_list.match_text(text), filter_list.explain_text(text))
    with fastpath.configure(True):
        fast = (filter_list.match_text(text), filter_list.explain_text(text))
    assert fast == reference, (text, fast, reference)


class TestFilterDifferential:
    @settings(max_examples=120, deadline=None)
    @given(filter_list=_filter_lists, url=_urls)
    def test_generated_rules_vs_urls(self, filter_list, url):
        _assert_url_equivalent(filter_list, url)

    @settings(max_examples=120, deadline=None)
    @given(filter_list=_filter_lists, text=_texts)
    def test_generated_rules_vs_inline_text(self, filter_list, text):
        _assert_text_equivalent(filter_list, text)

    @settings(max_examples=60, deadline=None)
    @given(
        filter_list=_filter_lists,
        scripts=st.lists(
            st.tuples(st.one_of(st.none(), _urls), _texts), max_size=5
        ),
    )
    def test_generated_script_batches(self, filter_list, scripts):
        with fastpath.configure(False):
            reference = (
                filter_list.match_scripts(scripts),
                filter_list.explain_scripts(scripts),
            )
        with fastpath.configure(True):
            fast = (
                filter_list.match_scripts(scripts),
                filter_list.explain_scripts(scripts),
            )
        assert fast == reference

    @settings(max_examples=100, deadline=None)
    @given(url=_urls, text=_texts)
    def test_default_list(self, url, text):
        _assert_url_equivalent(default_nocoin_list(), url)
        _assert_text_equivalent(default_nocoin_list(), text)

    def test_urls_built_from_rule_patterns_hit(self):
        # determinstic hot cases: every default rule fired through both paths
        filter_list = default_nocoin_list()
        for rule in filter_list.rules:
            needle = rule.pattern.split("^")[0] if rule.regex is None else "cryptonight.wasm"
            for url in (
                f"https://{needle}/x.js",
                f"https://cdn.example/{needle}",
                f"https://{needle.upper()}/Y.JS",
            ):
                _assert_url_equivalent(filter_list, url)
            _assert_text_equivalent(filter_list, f"fetch('{needle}')")
            _assert_text_equivalent(filter_list, needle.upper())

    def test_exception_suppression_identical(self):
        filter_list = FilterList.from_lines(
            ["||coinhive.com^", "@@||coinhive.com^/opt-in", "miner.js"],
            source="gen",
        )
        for url in (
            "https://coinhive.com/lib.js",
            "https://coinhive.com/opt-in/x.js",
            "https://a.co/miner.js",
        ):
            _assert_url_equivalent(filter_list, url)

    def test_list_order_beats_leftmost_position(self):
        # rule 0 matches late in the URL, rule 1 matches at position 0;
        # the reference returns rule 0 — the automaton must too, even
        # though the combined regex finds rule 1's match first
        filter_list = FilterList.from_lines(["tail-bit", "http"], source="gen")
        with fastpath.configure(True):
            hit = filter_list.match_url("http://x.co/tail-bit")
        assert hit is filter_list.rules[0]
        _assert_url_equivalent(filter_list, "http://x.co/tail-bit")

    def test_residual_regex_rules_keep_provenance(self):
        # capturing groups and inline flags cannot be embedded in the
        # combined alternation; they must still match via the residual path
        filter_list = FilterList.from_lines(
            ["/(coin)hive/", "/(?i)miner/", "plain.js"], source="gen"
        )
        fast_set = filter_list._fast()
        assert fast_set._url_residual  # the first two rules
        for url in (
            "https://coinhive.co/x",
            "https://MINER.example/y",
            "https://a.co/plain.js",
            "https://clean.example/z",
        ):
            _assert_url_equivalent(filter_list, url)

    def test_mutation_after_warm_invalidates_automaton(self):
        filter_list = FilterList.from_lines(["aminer.js"], source="gen")
        filter_list.warm()
        filter_list.add(parse_rule("||late.co^"))
        _assert_url_equivalent(filter_list, "https://late.co/x.js")
        with fastpath.configure(True):
            assert filter_list.match_url("https://late.co/x.js") is not None


class TestAhoCorasick:
    @settings(max_examples=150, deadline=None)
    @given(
        needles=st.lists(
            st.text(alphabet="abco", min_size=1, max_size=5), min_size=1, max_size=8
        ),
        text=st.text(alphabet="abco", max_size=30),
    )
    def test_occurrence_matches_bruteforce(self, needles, text):
        automaton = AhoCorasick(needles)
        expected = {i for i, needle in enumerate(needles) if needle in text}
        assert automaton.occurring(text) == expected

    def test_overlapping_and_nested_needles(self):
        automaton = AhoCorasick(["ab", "babc", "abc", "c"])
        assert automaton.occurring("babc") == {0, 1, 2, 3}


_HTML_FRAGMENTS = (
    "<script>", "</script>", "<script src='x.js'>",
    '<script src="coinhive.min.js" defer>', "<SCRIPT>", "</SCRIPT >",
    "<ScRiPt TYPE=text/javascript>", "<style>", "</style>",
    "<!-- <script>hidden()</script> -->", "<!doctype html>", "<?xml?>",
    "<div class='a>b'>", "text < more", "var CoinHive;", "<script/>",
    "<script src=bare attr>", "</div>", "<p>", "&amp;", "<", ">", "-->",
    "<script src='unterminated", "\n", "COINHIVE.MIN.JS", "<br/>",
    "<script src=\"a&amp;b\">", "x</scrip>y", "<b", "<img src=x>",
)


class TestScannerDifferential:
    @settings(max_examples=200, deadline=None)
    @given(
        html=st.lists(
            st.one_of(
                st.sampled_from(_HTML_FRAGMENTS),
                st.text(alphabet="abc<>/!-= '\"\n", max_size=12),
            ),
            max_size=25,
        ).map("".join)
    )
    def test_scan_equals_extract(self, html):
        assert scan_scripts(html) == extract_scripts(html)

    @settings(max_examples=80, deadline=None)
    @given(
        html=st.lists(st.sampled_from(_HTML_FRAGMENTS), max_size=25).map("".join)
    )
    def test_static_detection_identical(self, html):
        detector = PageDetector(collect_evidence=True)
        with fastpath.configure(False):
            reference = detector.detect_static("site.example", html)
        with fastpath.configure(True):
            fast = detector.detect_static("site.example", html)
        assert fast == reference


# ---------------------------------------------------------------------------
# whole campaigns: byte-identical verdicts and metrics across the flag
# ---------------------------------------------------------------------------


def _materialized_campaign(enabled: bool):
    with fastpath.configure(enabled), use_clock(TickClock()):
        fastpath.reset_shared_cache()
        population = build_population("alexa", seed=11, scale=0.05)
        obs = make_obs(prefix="crawl")
        scans = ZgrabCampaign(population=population, obs=obs).both_scans()
        chrome = ChromeCampaign(population=population, obs=obs).run()
        verdicts = [v for scan in scans for v in scan.verdicts]
        verdicts.extend(chrome.verdicts)
        return verdicts_to_jsonl(verdicts), obs.registry.to_dict()


def _streaming_campaign(enabled: bool):
    with fastpath.configure(enabled), use_clock(TickClock()):
        fastpath.reset_shared_cache()
        population = StreamingPopulation(
            "com", seed=11, size=20_000, sample_per_stratum=100
        )
        obs = make_obs(prefix="crawl")
        campaign = ShardedZgrabCampaign(
            population=population,
            config=ParallelConfig(shards=2, workers=1, mode="serial"),
            obs=obs,
        )
        result = campaign.scan(0)
        return verdicts_to_jsonl(result.verdicts), obs.registry.to_dict()


class TestCampaignByteIdentity:
    def test_same_seed_campaign_verdicts_and_metrics(self):
        fast_verdicts, fast_metrics = _materialized_campaign(True)
        ref_verdicts, ref_metrics = _materialized_campaign(False)
        assert fast_verdicts.encode() == ref_verdicts.encode()
        assert fast_metrics == ref_metrics
        assert fast_verdicts.count("\n") > 1  # non-degenerate run

    def test_streaming_campaign_verdicts_and_counters(self):
        fast_verdicts, fast_metrics = _streaming_campaign(True)
        ref_verdicts, ref_metrics = _streaming_campaign(False)
        assert fast_verdicts.encode() == ref_verdicts.encode()
        assert fast_metrics == ref_metrics


class TestCompiledFilterSetInternals:
    def test_default_list_is_fully_automaton_backed(self):
        fast_set = default_nocoin_list()._fast()
        assert isinstance(fast_set, CompiledFilterSet)
        assert fast_set._url_combined is not None
        assert fast_set._url_residual == ()

    def test_clean_url_needs_no_per_rule_search(self):
        # the combined regex alone must settle the dominant clean case
        filter_list = default_nocoin_list()
        fast_set = filter_list._fast()
        assert fast_set.find_url("https://clean.example/app.js") is None
        assert not fast_set.any_exception_url("https://clean.example/app.js")
