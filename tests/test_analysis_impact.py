"""Tests for the visitor-impact extension (the paper's future work)."""

import pytest

from repro.analysis.impact import (
    DESKTOP_2013,
    DESKTOP_2018,
    PHONE_2018,
    XMR_PER_HASH,
    ad_revenue_equivalent_minutes,
    battery_lifetime_hours,
    visit_impact,
)


class TestXmrPerHash:
    def test_consistent_with_paper_numbers(self):
        # the pool at 5.5 MH/s should earn ≈40 XMR/day (1271 per 4 weeks)
        per_day = 5.5e6 * 86400 * XMR_PER_HASH
        assert per_day == pytest.approx(1271 / 28, rel=0.15)


class TestVisitImpact:
    def test_five_minute_visit_earns_almost_nothing(self):
        impact = visit_impact(DESKTOP_2013, duration_s=300)
        # 20 H/s × 300 s = 6000 hashes: a fraction of a US cent
        assert impact.operator_revenue_usd < 0.001
        assert impact.hashes == 6000

    def test_transfer_efficiency_below_one(self):
        """The visitor pays more in electricity than the operator earns —
        the quantified 'huge hurdle'."""
        for device in (DESKTOP_2013, DESKTOP_2018):
            impact = visit_impact(device, duration_s=3600)
            assert impact.transfer_efficiency < 1.0, device.name

    def test_throttle_scales_both_sides(self):
        full = visit_impact(DESKTOP_2018, duration_s=600, throttle=0.0)
        half = visit_impact(DESKTOP_2018, duration_s=600, throttle=0.5)
        assert half.hashes == pytest.approx(full.hashes / 2)
        assert half.energy_wh == pytest.approx(full.energy_wh / 2)

    def test_full_throttle_is_free(self):
        impact = visit_impact(PHONE_2018, duration_s=600, throttle=1.0)
        assert impact.hashes == 0
        assert impact.energy_wh == 0
        assert impact.visitor_cost_usd == 0

    def test_phone_battery_fraction(self):
        impact = visit_impact(PHONE_2018, duration_s=3600)
        assert 0.1 < impact.battery_fraction < 0.6

    def test_mains_device_has_no_battery_fraction(self):
        assert visit_impact(DESKTOP_2018, duration_s=3600).battery_fraction == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            visit_impact(PHONE_2018, duration_s=-1)
        with pytest.raises(ValueError):
            visit_impact(PHONE_2018, duration_s=10, throttle=1.5)


class TestBatteryLifetime:
    def test_mining_shortens_lifetime(self):
        mining = battery_lifetime_hours(PHONE_2018, throttle=0.0)
        idle = PHONE_2018.battery_wh / PHONE_2018.idle_power_watts
        assert mining < idle / 2

    def test_throttle_extends_lifetime(self):
        assert battery_lifetime_hours(PHONE_2018, 0.7) > battery_lifetime_hours(PHONE_2018, 0.0)

    def test_mains_device_rejected(self):
        with pytest.raises(ValueError):
            battery_lifetime_hours(DESKTOP_2018)


class TestAdComparison:
    def test_minutes_to_match_one_ad(self):
        # at 2 USD CPM and 90 H/s, matching one impression takes minutes,
        # not seconds — mining loses against ads for normal dwell times
        minutes = ad_revenue_equivalent_minutes(DESKTOP_2018, cpm_usd=2.0)
        assert 1.0 < minutes < 120.0

    def test_slow_device_needs_longer(self):
        assert ad_revenue_equivalent_minutes(DESKTOP_2013) > ad_revenue_equivalent_minutes(
            DESKTOP_2018
        )

    def test_invalid_cpm(self):
        with pytest.raises(ValueError):
            ad_revenue_equivalent_minutes(DESKTOP_2018, cpm_usd=0)
