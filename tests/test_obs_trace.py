"""Unit tests for the observability layer (clock, tracer, registry, facade)."""

from __future__ import annotations

import pytest

from repro.obs.clock import PerfClock, TickClock, get_clock, set_clock, use_clock
from repro.obs.metrics import DEFAULT_BOUNDS, Histogram, MetricsRegistry
from repro.obs.profile import NULL_OBS, make_obs, profile_rows, render_profile
from repro.obs.trace import Span, Tracer, parse_jsonl, read_jsonl


# ---------------------------------------------------------------------------
# clock


def test_tick_clock_is_deterministic():
    clock = TickClock(start=0.0, tick=0.5)
    assert clock.now() == 0.5
    assert clock.now() == 1.0
    assert clock.reads == 2


def test_tick_clock_rejects_nonpositive_tick():
    with pytest.raises(ValueError):
        TickClock(tick=0.0)


def test_perf_clock_is_monotonic():
    clock = PerfClock()
    a, b = clock.now(), clock.now()
    assert b >= a


def test_use_clock_installs_and_restores():
    before = get_clock()
    tick = TickClock()
    with use_clock(tick):
        assert get_clock() is tick
    assert get_clock() is before


def test_set_clock_returns_previous():
    before = get_clock()
    tick = TickClock()
    assert set_clock(tick) is before
    assert set_clock(before) is tick


# ---------------------------------------------------------------------------
# tracer


def test_spans_nest_and_auto_parent():
    tracer = Tracer(prefix="x", clock=TickClock())
    with tracer.span("campaign") as campaign:
        with tracer.span("site", domain="a.org") as site:
            with tracer.span("fetch") as fetch:
                pass
    assert campaign.parent_id == ""
    assert site.parent_id == campaign.span_id
    assert fetch.parent_id == site.span_id
    assert [s.span_id for s in tracer.spans] == ["x-3", "x-2", "x-1"]  # finish order
    assert site.tags == {"domain": "a.org"}
    assert all(s.duration > 0 for s in tracer.spans)


def test_span_tags_error_class_on_exception():
    tracer = Tracer(prefix="x", clock=TickClock())
    with pytest.raises(RuntimeError):
        with tracer.span("site"):
            raise RuntimeError("boom")
    assert tracer.spans[0].tags["error"] == "RuntimeError"


def test_trace_jsonl_round_trip_is_lossless():
    tracer = Tracer(prefix="rt", clock=TickClock(tick=0.0007))
    with tracer.span("campaign", mode="serial"):
        with tracer.span("site", domain="x.com"):
            pass
    restored = parse_jsonl(tracer.to_jsonl())
    assert [s.to_dict() for s in restored] == [s.to_dict() for s in tracer.spans]


def test_trace_file_round_trip(tmp_path):
    tracer = Tracer(prefix="f", clock=TickClock())
    with tracer.span("site"):
        pass
    path = tmp_path / "trace.jsonl"
    assert tracer.write_jsonl(path) == 1
    restored = read_jsonl(path)
    assert [s.to_dict() for s in restored] == [s.to_dict() for s in tracer.spans]


def test_span_from_dict_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown span fields"):
        Span.from_dict({"span_id": "a", "name": "x", "start": 0.0, "bogus": 1})


def test_adopt_reroots_orphans_only():
    shard = Tracer(prefix="s0", clock=TickClock())
    with shard.span("shard"):
        with shard.span("site"):
            pass
    campaign = Tracer(prefix="c", clock=TickClock())
    with campaign.span("campaign") as root:
        pass
    campaign.adopt(shard.spans, parent_id=root.span_id)
    by_name = {s.name: s for s in campaign.spans}
    assert by_name["shard"].parent_id == root.span_id  # orphan re-rooted
    assert by_name["site"].parent_id == by_name["shard"].span_id  # untouched
    assert campaign.counts_by_name() == {"campaign": 1, "shard": 1, "site": 1}


# ---------------------------------------------------------------------------
# the Obs facade


def test_null_obs_reads_no_clock_and_reuses_context():
    clock = TickClock()
    with use_clock(clock):
        ctx1 = NULL_OBS.span("fetch", domain="a.org")
        with ctx1 as span:
            span.set_tag("anything", 1)
        ctx2 = NULL_OBS.span("parse")
    assert ctx1 is ctx2  # one shared pre-built no-op context
    assert clock.reads == 0
    assert NULL_OBS.tracer.spans == []
    NULL_OBS.inc("never")
    assert NULL_OBS.registry.counters == {}


def test_enabled_obs_records_stage_histograms():
    with use_clock(TickClock(tick=0.01)):
        obs = make_obs(prefix="u")
        with obs.span("fetch", domain="a.org"):
            pass
        with obs.span("fetch"):
            pass
        with pytest.raises(ValueError):
            with obs.span("detect"):
                raise ValueError("bad")
    assert obs.registry.histograms["stage.fetch"].count == 2
    assert obs.registry.histograms["stage.detect"].count == 1
    assert obs.registry.counter("stage.detect.errors") == 1
    assert obs.registry.counter("stage.fetch.errors") == 0
    assert obs.tracer.counts_by_name() == {"fetch": 2, "detect": 1}


def test_profile_rows_sorted_by_total_time():
    registry = MetricsRegistry()
    registry.observe("stage.fetch", 0.002)
    registry.observe("stage.detect", 5.0)
    registry.observe("stage.detect", 5.0)
    rows = profile_rows(registry)
    assert [row[0] for row in rows] == ["detect", "fetch"]
    detect = rows[0]
    assert detect[1] == 2  # count
    assert detect[2] == 0  # errors
    rendered = render_profile(registry)
    assert "detect" in rendered and "fetch" in rendered


def test_render_profile_empty_registry():
    assert "no stages" in render_profile(MetricsRegistry())


# ---------------------------------------------------------------------------
# histogram / registry basics


def test_histogram_buckets_and_stats():
    histogram = Histogram()
    histogram.observe(0.0005)  # first bucket (≤1ms)
    histogram.observe(0.3)     # ≤0.5s bucket
    histogram.observe(120.0)   # overflow
    assert histogram.count == 3
    assert histogram.counts[0] == 1
    assert histogram.counts[DEFAULT_BOUNDS.index(0.5)] == 1
    assert histogram.counts[-1] == 1
    assert histogram.max_seconds == pytest.approx(120.0)
    assert histogram.mean_seconds == pytest.approx((0.0005 + 0.3 + 120.0) / 3)
    assert histogram.quantile(0.0) == pytest.approx(0.0005)
    assert histogram.quantile(1.0) == pytest.approx(120.0)
    assert 0.0005 <= histogram.quantile(0.5) <= 120.0


def test_histogram_merge_rejects_mismatched_bounds():
    with pytest.raises(ValueError, match="bucket bounds differ"):
        Histogram(bounds=(1.0,)).merge(Histogram(bounds=(2.0,)))


def test_registry_round_trip_and_merge():
    a = MetricsRegistry()
    a.inc("sites", 3)
    a.gauge_max("peak", 2.0)
    a.observe("stage.fetch", 0.01)
    restored = MetricsRegistry.from_dict(a.to_dict())
    assert restored == a

    b = MetricsRegistry()
    b.inc("sites", 4)
    b.gauge_max("peak", 1.0)
    b.observe("stage.fetch", 0.02)
    a.merge(b)
    assert a.counter("sites") == 7
    assert a.gauges["peak"] == 2.0
    assert a.histograms["stage.fetch"].count == 2
    # merging a restored copy must not alias the source histograms
    c = MetricsRegistry()
    c.merge(b)
    c.observe("stage.fetch", 0.5)
    assert b.histograms["stage.fetch"].count == 1


def test_registry_views():
    registry = MetricsRegistry()
    registry.inc("shard.sites", 5)
    registry.inc("poll.ticks", 2)
    registry.observe("stage.fetch", 0.01)
    registry.observe("stage.detect", 0.01)
    assert registry.counters_with_prefix("shard.") == {"shard.sites": 5}
    assert registry.histogram_counts() == {"stage.fetch": 1, "stage.detect": 1}
    assert registry.stage_names() == ["detect", "fetch"]
    assert registry.counter("missing") == 0
