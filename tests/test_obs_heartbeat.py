"""Live heartbeat lines: clock-driven rate limiting, TickClock reproducibility."""

from __future__ import annotations

import pytest

from repro.obs.clock import TickClock, use_clock
from repro.obs.heartbeat import ProgressReporter


def _run_leg(reporter, advances):
    reporter.begin(total=sum(n for n, *_ in advances), label="leg")
    for n, failed, faults in advances:
        reporter.advance(n, failed=failed, faults=faults)
    reporter.finish()


class TestLifecycle:
    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError):
            ProgressReporter(0)
        with pytest.raises(ValueError):
            ProgressReporter(-1.5)

    def test_advance_before_begin_is_a_noop(self):
        lines = []
        reporter = ProgressReporter(0.001, emit=lines.append)
        reporter.advance(5)
        reporter.finish()
        assert lines == []
        assert reporter.done == 0

    def test_finish_is_idempotent(self):
        lines = []
        reporter = ProgressReporter(1.0, emit=lines.append)
        with use_clock(TickClock()):
            reporter.begin(total=1)
            reporter.advance(1)
            reporter.finish()
            reporter.finish()
        assert len(lines) == 1
        assert "done" in lines[0]

    def test_begin_resets_counters_between_legs(self):
        lines = []
        reporter = ProgressReporter(100.0, emit=lines.append)
        with use_clock(TickClock()):
            _run_leg(reporter, [(3, 1, 2)])
            _run_leg(reporter, [(2, 0, 0)])
        assert lines[-1].startswith("[hb] leg 2/2")
        assert "failed=0" in lines[-1] and "faults=0" in lines[-1]


class TestClockDrivenEmission:
    def test_interval_rate_limits_lines(self):
        # one clock read per advance (tick=0.001): interval 0.0025 emits
        # on roughly every third advance, never on every one
        lines = []
        reporter = ProgressReporter(0.0025, emit=lines.append)
        with use_clock(TickClock()):
            reporter.begin(total=10)
            for _ in range(10):
                reporter.advance(1)
            reporter.finish()
        assert 1 < len(lines) < 11

    def test_lines_reproduce_exactly_under_tick_clock(self):
        runs = []
        advances = [(1, 0, 0), (2, 1, 0), (1, 0, 3), (4, 0, 0)]
        for _ in range(2):
            lines = []
            reporter = ProgressReporter(0.002, emit=lines.append)
            with use_clock(TickClock()):
                _run_leg(reporter, advances)
            runs.append(lines)
        assert runs[0] == runs[1]
        assert runs[0]  # something was emitted
        final = runs[0][-1]
        assert final.startswith("[hb] leg 8/8 rate=")
        assert "elapsed=" in final and final.count("failed=1") == 1

    def test_breakers_open_is_opened_minus_closed(self):
        lines = []
        reporter = ProgressReporter(100.0, emit=lines.append)
        with use_clock(TickClock()):
            reporter.begin(total=2)
            reporter.advance(1, breakers_opened=3, breakers_closed=1)
            reporter.advance(1, breakers_closed=5)
            reporter.finish()
        assert "breakers_open=0" in lines[-1]  # floored at zero

    def test_eta_appears_on_interim_lines_only(self):
        lines = []
        reporter = ProgressReporter(0.001, emit=lines.append)
        with use_clock(TickClock()):
            reporter.begin(total=4)
            for _ in range(4):
                reporter.advance(1)
            reporter.finish()
        assert all("eta=" in line for line in lines[:-1])
        assert "eta=" not in lines[-1] and "done" in lines[-1]
