"""Trace analysis: critical paths, Chrome export, diffs, --fail-on gates."""

from __future__ import annotations

import pytest

from repro.analysis.parallel import ParallelConfig, ShardedZgrabCampaign
from repro.internet.population import build_population
from repro.obs.analyze import (
    CriticalPath,
    build_tree,
    chrome_trace,
    critical_paths,
    diff_runs,
    error_breakdown,
    evaluate_threshold,
    parse_fail_on,
    slowest_spans,
    span_ns,
    stage_attribution,
    subtree_stage_ns,
)
from repro.obs.clock import TickClock, use_clock
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import make_obs
from repro.obs.trace import Span


def _span(span_id, name, start, end, parent_id="", **tags):
    return Span(
        span_id=span_id,
        name=name,
        start=start,
        end=end,
        parent_id=parent_id,
        tags={k: str(v) for k, v in tags.items()},
    )


@pytest.fixture(scope="module")
def campaign_spans():
    """A real sharded campaign trace under TickClock."""
    population = build_population("net", seed=7, scale=0.03)
    obs = make_obs(prefix="az")
    with use_clock(TickClock()):
        ShardedZgrabCampaign(
            population=population,
            config=ParallelConfig(shards=2, workers=1, mode="serial"),
            obs=obs,
        ).scan(0)
    return obs.tracer.spans


class TestCriticalPath:
    def test_stage_totals_telescope_exactly(self, campaign_spans):
        # the acceptance identity: per-stage self-times sum to the
        # analyzed subtree's duration, to the nanosecond
        for path in critical_paths(campaign_spans):
            target = path.bounding if path.bounding is not None else path.root
            assert sum(path.stage_ns.values()) == span_ns(target)

    def test_whole_trace_attribution_telescopes(self, campaign_spans):
        roots, _children = build_tree(campaign_spans)
        assert sum(stage_attribution(campaign_spans).values()) == sum(
            span_ns(root) for root in roots
        )

    def test_bounding_is_slowest_shard(self, campaign_spans):
        (path,) = critical_paths(campaign_spans)
        assert path.root.name == "campaign"
        assert path.bounding is not None and path.bounding.name == "shard"
        _roots, children = build_tree(campaign_spans)
        shard_ns = [
            span_ns(kid)
            for kid in children[path.root.span_id]
            if kid.name == "shard"
        ]
        assert path.path_ns == max(shard_ns)
        assert path.bounding_stage in path.stage_ns

    def test_unsharded_root_attributes_itself(self):
        spans = [
            _span("a-2", "fetch", 1.0, 2.0, parent_id="a-1"),
            _span("a-1", "site", 0.0, 3.0),
        ]
        (path,) = critical_paths(spans)
        assert path.bounding is None
        assert path.path_ns == path.wall_ns == span_ns(spans[1])
        assert path.stage_ns == {"site": 2_000_000_000, "fetch": 1_000_000_000}

    def test_orphan_spans_count_as_roots(self):
        spans = [_span("x-1", "site", 0.0, 1.0, parent_id="gone")]
        roots, _ = build_tree(spans)
        assert roots == spans

    def test_duplicate_span_ids_terminate(self):
        # a hand-merged trace can repeat ids; naive traversal would
        # re-expand shared subtrees 2^depth times
        spans = []
        for layer in range(40):
            parent = f"L{layer - 1}" if layer else ""
            for _ in range(2):
                spans.append(_span(f"L{layer}", "site", 0.0, 1.0, parent_id=parent))
        roots, children = build_tree(spans)
        for root in roots:
            # each distinct span object is visited at most once, so this
            # returns (in linear time) instead of exploding; with shared
            # children the self-time bucket can go negative — only the
            # termination matters here
            totals = subtree_stage_ns(root, children)
            assert "site" in totals


class TestSlowestAndErrors:
    def test_slowest_spans_order_and_tiebreak(self):
        spans = [
            _span("s-3", "site", 0.0, 1.0),
            _span("s-1", "site", 0.0, 2.0),
            _span("s-2", "site", 0.0, 1.0),
            _span("s-4", "fetch", 0.0, 9.0),
        ]
        picked = slowest_spans(spans, k=2)
        assert [s.span_id for s in picked] == ["s-1", "s-2"]

    def test_error_breakdown_joins_spans_and_fault_counters(self):
        spans = [
            _span("e-1", "fetch", 0.0, 1.0, error_class="timeout"),
            _span("e-2", "fetch", 0.0, 1.0, error_class="timeout"),
            _span("e-3", "site", 0.0, 1.0, error="ValueError"),
        ]
        registry = MetricsRegistry()
        registry.inc("fault.observed.timeout", 2)
        registry.inc("fault.injected.timeout", 1)
        registry.inc("fault.observed.dns", 4)
        rows = error_breakdown(spans, registry)
        assert rows[0] == ["timeout", 2, 2, 1, 0]
        assert ["ValueError", 1, 0, 0, 0] in rows
        assert ["dns", 0, 4, 0, 0] in rows  # counter-only class still listed


class TestChromeTrace:
    def test_export_shape(self, campaign_spans):
        payload = chrome_trace(campaign_spans, run_id="run-abc")
        events = payload["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert len(complete) == len(campaign_spans)
        prefixes = {s.span_id.rsplit("-", 1)[0] for s in campaign_spans}
        assert {e["args"]["name"] for e in meta} == prefixes
        assert payload["otherData"]["run_id"] == "run-abc"
        # microseconds per the trace_event spec
        by_id = {e["args"]["span_id"]: e for e in complete}
        span = campaign_spans[0]
        assert by_id[span.span_id]["dur"] == pytest.approx(span_ns(span) / 1000.0)


class TestDiff:
    def test_identical_registries_diff_to_zero(self):
        a = MetricsRegistry()
        a.inc("crawl.zgrab0.domains_probed", 5)
        a.observe_ns("stage.fetch", 2_000_000)
        b = MetricsRegistry.from_dict(a.to_dict())
        diff = diff_runs(a, b)
        assert diff.is_zero
        assert diff.counter_deltas == []
        assert diff.histogram_count_deltas == []

    def test_counter_and_histogram_deltas(self):
        base, head = MetricsRegistry(), MetricsRegistry()
        base.inc("crawl.zgrab0.fetch_failures", 2)
        head.inc("crawl.zgrab0.fetch_failures", 5)
        head.observe_ns("stage.fetch", 1_000_000)
        diff = diff_runs(base, head)
        assert not diff.is_zero
        assert ["crawl.zgrab0.fetch_failures", 2, 5] in diff.counter_deltas
        assert ["stage.fetch", 0, 1] in diff.histogram_count_deltas
        (shift,) = [s for s in diff.stage_shifts if s.stage == "fetch"]
        assert (shift.base_count, shift.head_count) == (0, 1)

    def test_error_class_churn(self):
        base, head = MetricsRegistry(), MetricsRegistry()
        base.inc("fault.observed.dns", 1)
        head.inc("fault.observed.tls", 1)
        diff = diff_runs(base, head)
        assert diff.new_error_classes == ["tls"]
        assert diff.vanished_error_classes == ["dns"]

    def test_duration_shift_alone_is_still_zero(self):
        # durations are schedule-dependent; is_zero deliberately ignores them
        base, head = MetricsRegistry(), MetricsRegistry()
        base.observe_ns("stage.fetch", 1_000_000)
        head.observe_ns("stage.fetch", 900_000_000)
        assert diff_runs(base, head).is_zero


class TestFailOn:
    def test_parse_relative_stage_expression(self):
        t = parse_fail_on("stage.fetch.p90>1.2x")
        assert (t.metric, t.stat, t.op, t.value, t.relative) == (
            "stage.fetch", "p90", ">", 1.2, True
        )

    def test_parse_absolute_counter_expression(self):
        t = parse_fail_on("fault.observed.timeout>=10")
        assert (t.metric, t.stat, t.relative) == ("fault.observed.timeout", None, False)

    @pytest.mark.parametrize(
        "expression",
        ["stage.fetch>1.2x", "stage.fetch.p99>1x", "nonsense", ">1.2x"],
    )
    def test_parse_rejects_malformed(self, expression):
        with pytest.raises(ValueError):
            parse_fail_on(expression)

    def test_relative_threshold_fires_on_regression(self):
        base, head = MetricsRegistry(), MetricsRegistry()
        base.observe_ns("stage.fetch", 1_000_000)
        head.observe_ns("stage.fetch", 40_000_000)
        violated, detail = evaluate_threshold(
            parse_fail_on("stage.fetch.p90>1.1x"), base, head
        )
        assert violated and "VIOLATED" in detail

    def test_relative_threshold_passes_on_identical_runs(self):
        base = MetricsRegistry()
        base.observe_ns("stage.fetch", 1_000_000)
        head = MetricsRegistry.from_dict(base.to_dict())
        violated, detail = evaluate_threshold(
            parse_fail_on("stage.fetch.p90>1.1x"), base, head
        )
        assert not violated and "ok" in detail

    def test_zero_base_ratio_is_infinite(self):
        base, head = MetricsRegistry(), MetricsRegistry()
        head.observe_ns("stage.fetch", 1_000_000)
        violated, _ = evaluate_threshold(parse_fail_on("stage.fetch.count>1x"), base, head)
        assert violated

    def test_absolute_counter_threshold(self):
        head = MetricsRegistry()
        head.inc("crawl.zgrab0.fetch_failures", 7)
        violated, _ = evaluate_threshold(
            parse_fail_on("crawl.zgrab0.fetch_failures>5"), MetricsRegistry(), head
        )
        assert violated
