"""Run-ledger persistence: manifests, fingerprints, torn-run detection."""

from __future__ import annotations

import json

import pytest

from repro.faults.ledger import FaultLedger
from repro.obs.clock import TickClock, use_clock
from repro.obs.ledger import (
    COMPLETE_MARKER,
    EXECUTION_PARAMS,
    OBS_SCHEMA_VERSION,
    RunManifest,
    RunSchemaError,
    TornRunError,
    campaign_fingerprint,
    load_run,
    write_run,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import make_obs

PARAMS = {
    "dataset": "net",
    "seed": 7,
    "scale": 0.03,
    "shards": 2,
    "workers": 1,
    "executor": "serial",
    "fault_profile": "",
    "heartbeat": 0.0,
}


def _registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.inc("crawl.zgrab0.domains_probed", 42)
    registry.observe_ns("stage.fetch", 1_000_000)
    registry.observe_ns("stage.fetch", 7_000_000)
    registry.gauge_max("shard.max_sites", 21.0)
    return registry


def _spans():
    obs = make_obs(prefix="led")
    with use_clock(TickClock()):
        with obs.span("campaign", kind="zgrab"):
            with obs.span("shard", shard=0):
                with obs.span("site", domain="example.net"):
                    with obs.span("fetch"):
                        pass
    return obs.tracer.spans


class TestFingerprint:
    def test_deterministic_and_order_insensitive(self):
        a = campaign_fingerprint({"seed": 7, "dataset": "net"})
        b = campaign_fingerprint({"dataset": "net", "seed": 7})
        assert a == b
        assert a == campaign_fingerprint({"seed": 7, "dataset": "net"})

    def test_sensitive_to_every_param(self):
        base = campaign_fingerprint(PARAMS)
        for key in PARAMS:
            bumped = dict(PARAMS)
            bumped[key] = "changed"
            assert campaign_fingerprint(bumped) != base, key

    def test_run_id_derives_from_fingerprint_alone(self):
        m1 = RunManifest.build("crawl", PARAMS, git_describe="g1")
        m2 = RunManifest.build("crawl", PARAMS, git_describe="g2")
        assert m1.run_id == m2.run_id
        assert m1.run_id == "run-" + m1.fingerprint[:12]


class TestManifest:
    def test_identity_excludes_execution_params(self):
        base = RunManifest.build("crawl", PARAMS, git_describe="g")
        identity = base.identity()
        assert EXECUTION_PARAMS.isdisjoint(identity)
        heavy = dict(PARAMS, shards=8, workers=4, executor="process",
                     fault_profile="heavy", heartbeat=2.0)
        assert RunManifest.build("crawl", heavy, git_describe="g").identity() == identity

    def test_identity_differs_on_workload_params(self):
        base = RunManifest.build("crawl", PARAMS, git_describe="g")
        other = RunManifest.build("crawl", dict(PARAMS, seed=8), git_describe="g")
        assert other.identity() != base.identity()

    def test_round_trip(self):
        manifest = RunManifest.build("crawl", PARAMS, git_describe="g")
        assert RunManifest.from_dict(manifest.to_dict()) == manifest

    def test_future_schema_version_rejected(self):
        payload = RunManifest.build("crawl", PARAMS, git_describe="g").to_dict()
        payload["schema_version"] = OBS_SCHEMA_VERSION + 1
        with pytest.raises(RunSchemaError, match="upgrade repro"):
            RunManifest.from_dict(payload)


class TestWriteLoad:
    def _write(self, run_dir):
        manifest = RunManifest.build("crawl", PARAMS, git_describe="g")
        ledger = FaultLedger()
        ledger.retries = 3
        write_run(run_dir, manifest, _registry(), _spans(), ledger)
        return manifest

    def test_round_trip(self, tmp_path):
        run = tmp_path / "run"
        manifest = self._write(run)
        artifacts = load_run(run)
        assert artifacts.complete
        assert artifacts.manifest == manifest
        assert artifacts.registry == _registry()
        assert [s.to_dict() for s in artifacts.spans] == [s.to_dict() for s in _spans()]
        assert artifacts.fault_ledger.retries == 3
        assert artifacts.profile  # per-stage rows persisted
        assert (run / COMPLETE_MARKER).read_text().strip() == manifest.run_id

    def test_same_inputs_write_identical_bytes(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        self._write(a)
        self._write(b)
        for name in ("manifest.json", "metrics.json", "trace.jsonl",
                     "profile.json", "ledger.json", COMPLETE_MARKER):
            assert (a / name).read_bytes() == (b / name).read_bytes(), name

    def test_missing_marker_is_torn(self, tmp_path):
        run = tmp_path / "run"
        self._write(run)
        (run / COMPLETE_MARKER).unlink()
        with pytest.raises(TornRunError, match="no COMPLETE marker"):
            load_run(run)
        artifacts = load_run(run, allow_torn=True)
        assert not artifacts.complete

    def test_mismatched_marker_is_torn(self, tmp_path):
        run = tmp_path / "run"
        self._write(run)
        (run / COMPLETE_MARKER).write_text("run-deadbeefcafe\n")
        with pytest.raises(TornRunError, match="mixed runs"):
            load_run(run)
        assert not load_run(run, allow_torn=True).complete

    def test_rewrite_replaces_stale_marker(self, tmp_path):
        run = tmp_path / "run"
        self._write(run)
        manifest = RunManifest.build("crawl", dict(PARAMS, seed=8), git_describe="g")
        write_run(run, manifest, _registry(), _spans())
        assert load_run(run).manifest.run_id == manifest.run_id

    def test_not_a_run_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no manifest.json"):
            load_run(tmp_path / "nope")

    def test_future_manifest_on_disk_rejected(self, tmp_path):
        run = tmp_path / "run"
        self._write(run)
        payload = json.loads((run / "manifest.json").read_text())
        payload["schema_version"] = OBS_SCHEMA_VERSION + 1
        (run / "manifest.json").write_text(json.dumps(payload))
        with pytest.raises(RunSchemaError):
            load_run(run)
