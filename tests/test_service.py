"""The verdict-server tentpole: bundle hot-reload atomicity, admission
control, tier-aware cascade entry, and the serving loop's semantics.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.detector import (
    DEGRADATION_TIERS,
    TIER_FULL,
    TIER_NO_CLASSIFIER,
    TIER_NO_DYNAMIC,
    TIER_STATIC_ONLY,
    PageDetector,
)
from repro.core.nocoin import FilterList, default_nocoin_list
from repro.core.signatures import SignatureDatabase
from repro.internet.population import build_population
from repro.service.admission import AdmissionQueue, ServicePolicy, TokenBucket
from repro.service.bundles import (
    BundleStore,
    BundleValidationError,
    DetectionBundle,
    validate_bundle,
)
from repro.service.server import ServiceRequest, VerdictServer
from repro.wasm.builder import ModuleBlueprint, WasmCorpusBuilder

SEED = 2018


# ---------------------------------------------------------------------------
# bundles: validation, rollback, atomic swap


class TestDetectionBundle:
    def test_build_stamps_consistent_versions(self):
        bundle = DetectionBundle.build("v1")
        assert bundle.consistent()
        assert bundle.filter_version == bundle.db_version == "v1"
        validate_bundle(bundle)  # does not raise

    def test_torn_stamps_rejected(self):
        good = DetectionBundle.build("v1")
        torn = DetectionBundle(
            version="v1",
            filters=good.filters,
            signatures=good.signatures,
            filter_version="v1",
            db_version="v0",  # the half-swapped state validation must catch
        )
        assert not torn.consistent()
        with pytest.raises(BundleValidationError, match="torn"):
            validate_bundle(torn)

    def test_empty_version_rejected(self):
        bundle = DetectionBundle.build("")
        with pytest.raises(BundleValidationError, match="no version"):
            validate_bundle(bundle)

    def test_empty_filter_list_rejected(self):
        bundle = DetectionBundle.build("v1", filters=FilterList())
        with pytest.raises(BundleValidationError, match="empty filter list"):
            validate_bundle(bundle)

    def test_minerless_signature_db_rejected(self):
        bundle = DetectionBundle.build("v1", signatures=SignatureDatabase())
        with pytest.raises(BundleValidationError, match="no miner records"):
            validate_bundle(bundle)


class TestBundleStore:
    def test_defaults_to_seed_bundle(self):
        store = BundleStore()
        assert store.active().version == "seed"
        assert store.generation == 0
        assert store.history == ["seed"]

    def test_applied_reload_swaps_and_counts(self):
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        store = BundleStore(metrics=metrics)
        assert store.reload(DetectionBundle.build("v2"))
        assert store.active().version == "v2"
        assert store.generation == 1
        assert store.history == ["seed", "v2"]
        assert metrics.counter("service.reload.requests") == 1
        assert metrics.counter("service.reload.applied") == 1
        assert metrics.counter("service.reload.rejected") == 0

    def test_rejected_reload_rolls_back(self):
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        store = BundleStore(metrics=metrics)
        assert not store.reload(DetectionBundle.build("bad", filters=FilterList()))
        assert store.active().version == "seed"  # rollback: active unchanged
        assert store.generation == 0
        assert metrics.counter("service.reload.rejected") == 1
        assert metrics.counter("service.reload.applied") == 0

    def test_concurrent_reloads_never_expose_a_torn_bundle(self):
        """Reader threads hammer ``active()`` while writers hot-swap: every
        observed bundle must be internally consistent and a known version —
        the no-mixed-bundle guarantee the service counters assert."""
        store = BundleStore()
        versions = [f"v{i}" for i in range(1, 9)]
        bundles = [DetectionBundle.build(v) for v in versions]
        known = {"seed", *versions}
        stop = threading.Event()
        torn = []
        observed = set()

        def read() -> None:
            while not stop.is_set():
                bundle = store.active()
                if not bundle.consistent() or bundle.version not in known:
                    torn.append(bundle.version)
                observed.add(bundle.version)

        def write() -> None:
            for bundle in bundles:
                assert store.reload(bundle)

        readers = [threading.Thread(target=read) for _ in range(4)]
        for thread in readers:
            thread.start()
        writers = [threading.Thread(target=write) for _ in range(2)]
        for thread in writers:
            thread.start()
        for thread in writers:
            thread.join()
        stop.set()
        for thread in readers:
            thread.join()
        assert torn == []
        assert observed <= known
        # both writers applied every version: 16 swaps, order interleaved
        assert store.generation == 2 * len(versions)


# ---------------------------------------------------------------------------
# admission: policy, buckets, queue


class TestServicePolicy:
    def test_tier_ladder_matches_thresholds(self):
        policy = ServicePolicy(degrade_thresholds=(4, 12, 24))
        assert policy.tier_for_depth(0) == TIER_FULL
        assert policy.tier_for_depth(3) == TIER_FULL
        assert policy.tier_for_depth(4) == TIER_NO_DYNAMIC
        assert policy.tier_for_depth(11) == TIER_NO_DYNAMIC
        assert policy.tier_for_depth(12) == TIER_NO_CLASSIFIER
        assert policy.tier_for_depth(24) == TIER_STATIC_ONLY
        assert policy.tier_for_depth(1000) == TIER_STATIC_ONLY

    def test_thresholds_must_be_three_and_sorted(self):
        with pytest.raises(ValueError, match="3 depths"):
            ServicePolicy(degrade_thresholds=(4, 12))
        with pytest.raises(ValueError, match="non-decreasing"):
            ServicePolicy(degrade_thresholds=(12, 4, 24))

    def test_nominal_capacity_is_clean_page_throughput(self):
        policy = ServicePolicy(fetch_cost=0.04, static_cost=0.01)
        assert policy.nominal_capacity == pytest.approx(20.0)


class TestTokenBucket:
    def test_burst_then_paced_refill(self):
        bucket = TokenBucket(rate=1.0, burst=2.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)  # burst spent
        assert not bucket.try_take(0.5)  # half a token refilled
        assert bucket.try_take(1.5)      # 1.5 tokens refilled by now

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(1000.0)
        assert bucket.try_take(1000.0)
        assert not bucket.try_take(1000.0)  # capped at burst, not rate*elapsed

    def test_identical_timelines_admit_identically(self):
        times = [0.0, 0.1, 0.15, 0.9, 2.0, 2.05, 2.1]
        a = TokenBucket(rate=2.0, burst=2.0)
        b = TokenBucket(rate=2.0, burst=2.0)
        assert [a.try_take(t) for t in times] == [b.try_take(t) for t in times]


class TestAdmissionQueue:
    def test_bounded_offer(self):
        queue = AdmissionQueue(capacity=2)
        assert queue.offer("a") and queue.offer("b")
        assert not queue.offer("c")  # shed, never queued
        assert queue.depth == 2
        assert queue.take() == "a"  # FIFO


# ---------------------------------------------------------------------------
# tier-aware cascade entry point


def _miner_capture(seed: int = SEED) -> bytes:
    return WasmCorpusBuilder(root_seed=seed).build(ModuleBlueprint("coinhive", 0))


def _benign_capture(seed: int = SEED) -> bytes:
    return WasmCorpusBuilder(root_seed=seed).build(ModuleBlueprint("game-engine", 0))


class _AlwaysMinerDynamic:
    """A stub execution profiler that flags everything — lets the tests
    observe exactly which tiers still consult the dynamic stage."""

    calls = 0

    def is_miner(self, data: bytes) -> bool:
        type(self).calls += 1
        return True

    def explain(self, data: bytes):
        from repro.obs.evidence import Evidence

        return True, Evidence(detector="dynamic", verdict="miner", summary="stub")


class TestDetectRequest:
    def test_unknown_tier_raises(self):
        with pytest.raises(ValueError, match="unknown degradation tier"):
            PageDetector().detect_request("x.example", "", tier="turbo")

    def test_tier_ladder_is_ordered(self):
        assert DEGRADATION_TIERS == (
            TIER_FULL, TIER_NO_DYNAMIC, TIER_NO_CLASSIFIER, TIER_STATIC_ONLY,
        )

    def test_static_only_ignores_submitted_wasm(self):
        report = PageDetector().detect_request(
            "x.example", "<html></html>",
            wasm_dumps=(_miner_capture(),),
            tier=TIER_STATIC_ONLY,
        )
        assert not report.wasm_present
        assert not report.is_miner

    def test_static_only_still_matches_nocoin(self):
        html = '<script src="https://coinhive.com/lib/coinhive.min.js"></script>'
        report = PageDetector().detect_request(
            "x.example", html, tier=TIER_STATIC_ONLY
        )
        assert report.nocoin_hit

    def test_no_classifier_is_signature_lookup_only(self):
        from repro.core.classifier import MinerClassifier
        from repro.core.signatures import build_reference_database

        detector = PageDetector(
            classifier=MinerClassifier(database=build_reference_database())
        )
        flagged = detector.detect_request(
            "x.example", "", wasm_dumps=(_miner_capture(),), tier=TIER_NO_CLASSIFIER
        )
        assert flagged.is_miner
        assert flagged.miner.method == "signature"
        # a module outside the signature db stays unclassified at this tier
        mutated = _miner_capture() + b"\x00"
        missed = detector.detect_request(
            "x.example", "", wasm_dumps=(mutated,), tier=TIER_NO_CLASSIFIER
        )
        assert missed.wasm_present and not missed.is_miner

    def test_full_tier_consults_dynamic_on_static_miss(self):
        dynamic = _AlwaysMinerDynamic()
        report = PageDetector().detect_request(
            "x.example", "",
            wasm_dumps=(_benign_capture(),),
            tier=TIER_FULL,
            dynamic=dynamic,
        )
        assert report.is_miner
        assert report.miner.method == "dynamic"
        assert report.miner.family == "unknown-miner"

    def test_no_dynamic_tier_sheds_the_dynamic_stage(self):
        _AlwaysMinerDynamic.calls = 0
        dynamic = _AlwaysMinerDynamic()
        report = PageDetector().detect_request(
            "x.example", "",
            wasm_dumps=(_benign_capture(),),
            tier=TIER_NO_DYNAMIC,
            dynamic=dynamic,
        )
        assert not report.is_miner
        assert _AlwaysMinerDynamic.calls == 0  # stage shed, never consulted

    def test_static_hit_skips_dynamic(self):
        _AlwaysMinerDynamic.calls = 0
        report = PageDetector().detect_request(
            "x.example", "",
            wasm_dumps=(_miner_capture(),),
            tier=TIER_FULL,
            dynamic=_AlwaysMinerDynamic(),
        )
        assert report.is_miner and report.miner.method != "dynamic"
        assert _AlwaysMinerDynamic.calls == 0


# ---------------------------------------------------------------------------
# the serving loop


def _population():
    return build_population("alexa", seed=SEED, scale=0.05)


def _request(domain, arrival, tenant="t0", deadline=None, sequence=0, wasm=()):
    return ServiceRequest(
        tenant=tenant,
        domain=domain,
        arrival=arrival,
        deadline=deadline if deadline is not None else arrival + 2.0,
        wasm_dumps=wasm,
        sequence=sequence,
    )


class TestVerdictServer:
    def test_rate_limit_rejects_over_bucket_arrivals(self):
        population = _population()
        server = VerdictServer(
            population=population,
            policy=ServicePolicy(tenant_rate=1.0, tenant_burst=2.0),
        )
        domain = population.sites[0].domain
        responses = [
            server.submit(_request(domain, 0.0, sequence=i)) for i in range(4)
        ]
        rejected = [r for r in responses if r is not None]
        assert len(rejected) == 2
        assert {r.reason for r in rejected} == {"rate-limit"}
        assert server.metrics.counter("service.rejected.rate_limit") == 2
        assert server.metrics.counter("service.requests.admitted") == 2

    def test_queue_full_sheds_instead_of_growing(self):
        population = _population()
        server = VerdictServer(
            population=population,
            policy=ServicePolicy(
                queue_capacity=3, tenant_rate=1000.0, tenant_burst=1000.0
            ),
        )
        domain = population.sites[0].domain
        responses = [
            server.submit(_request(domain, 0.0, sequence=i)) for i in range(10)
        ]
        shed = [r for r in responses if r is not None and r.reason == "queue-full"]
        assert len(shed) == 7
        assert server.queue_depth == 3  # the bound held

    def test_deadline_passed_in_queue_rejected_at_dequeue(self):
        population = _population()
        server = VerdictServer(population=population)
        domain = population.sites[0].domain
        assert server.submit(_request(domain, 0.0, deadline=10.0)) is None
        # the second request's deadline expires while the first is served
        assert server.submit(_request(domain, 0.0, deadline=0.01, sequence=1)) is None
        server.drain()
        statuses = [(r.status, r.reason) for r in server.responses]
        assert ("rejected", "deadline") in statuses
        assert server.metrics.counter("service.rejected.deadline") == 1
        # the expired request never touched the cascade
        assert server.metrics.counter("service.requests.completed") == 1

    def test_mid_run_swap_changes_verdicts_only_after_the_swap_point(self):
        """An atomic bundle swap flips NoCoin verdicts for the same domain
        exactly at the reload event — never before, never mixed."""
        population = _population()
        miners = population.ground_truth_miners()
        covert = next(
            s.domain for s in population.sites
            if s.role == "miner" and not s.official_url
        )
        assert covert in miners
        server = VerdictServer(population=population, collect_evidence=False)
        # v2 additionally lists the first-party loader path covert miners use
        extra_rules = [rule.raw for rule in default_nocoin_list().rules]
        extra_rules.append("/js/app-")
        v2 = DetectionBundle.build("v2", filters=FilterList.from_lines(extra_rules))

        requests = [
            _request(covert, round(0.25 * i, 2), sequence=i) for i in range(12)
        ]
        swap_at = 1.5
        responses = server.run(requests, reloads=[(swap_at, v2)])
        served = [r for r in responses if r.status == "ok"]
        assert len(served) == 12
        for response in served:
            if response.started < swap_at:
                assert response.bundle_version == "seed"
                assert not response.nocoin_hit
            else:
                assert response.bundle_version == "v2"
                assert response.nocoin_hit
        versions = [r.bundle_version for r in served]
        flip = versions.index("v2")
        assert 0 < flip < 12  # the swap landed mid-run
        assert versions == ["seed"] * flip + ["v2"] * (12 - flip)
        assert server.metrics.counter("service.reload.mixed_bundle") == 0
        assert server.metrics.counter("service.reload.applied") == 1

    def test_rejected_reload_leaves_service_on_active_bundle(self):
        population = _population()
        server = VerdictServer(population=population, collect_evidence=False)
        domain = population.sites[0].domain
        broken = DetectionBundle.build("broken", filters=FilterList())
        responses = server.run(
            [_request(domain, 0.25 * i, sequence=i) for i in range(4)],
            reloads=[(0.6, broken)],
        )
        assert {r.bundle_version for r in responses if r.status == "ok"} == {"seed"}
        assert server.metrics.counter("service.reload.rejected") == 1
        assert server.store.active().version == "seed"

    def test_degraded_response_carries_the_reason_in_evidence(self):
        population = _population()
        server = VerdictServer(
            population=population,
            policy=ServicePolicy(
                degrade_thresholds=(1, 2, 3),
                queue_capacity=8,
                tenant_rate=1000.0,
                tenant_burst=1000.0,
            ),
        )
        domain = population.sites[0].domain
        server.run([_request(domain, 0.0, sequence=i) for i in range(6)])
        degraded = [
            v for v in server.verdicts
            if any("degraded to" in e.summary for e in v.evidence)
        ]
        assert degraded
        evidence = next(
            e for e in degraded[0].evidence if e.detector == "service"
        )
        details = dict(evidence.details)
        assert details["tier"] in (
            TIER_NO_DYNAMIC, TIER_NO_CLASSIFIER, TIER_STATIC_ONLY
        )
        assert "queue depth" in evidence.summary
        assert "bundle_version" in details

    def test_unsorted_arrivals_cannot_rewind_the_clock(self):
        population = _population()
        server = VerdictServer(population=population, collect_evidence=False)
        domain = population.sites[0].domain
        # burst at t=0: serving runs past later arrival instants
        responses = server.run(
            [_request(domain, 0.0, sequence=i) for i in range(3)]
            + [_request(domain, 0.05, sequence=3)]
        )
        assert len([r for r in responses if r.status == "ok"]) == 4
