"""Tests for the repro-mining CLI."""

import pathlib

import pytest

from repro.cli import main
from repro.wasm.builder import ModuleBlueprint, WasmCorpusBuilder


@pytest.fixture()
def wasm_file(tmp_path, corpus):
    path = tmp_path / "miner.wasm"
    path.write_bytes(corpus.build(ModuleBlueprint("coinhive", 0)))
    return path


@pytest.fixture()
def benign_file(tmp_path, corpus):
    path = tmp_path / "game.wasm"
    path.write_bytes(corpus.build(ModuleBlueprint("game-engine", 0)))
    return path


class TestFingerprint:
    def test_miner_detected(self, wasm_file, capsys):
        assert main(["fingerprint", str(wasm_file)]) == 0
        out = capsys.readouterr().out
        assert "MINER" in out
        assert "family=coinhive" in out
        assert "signature" in out

    def test_benign_detected(self, benign_file, capsys):
        assert main(["fingerprint", str(benign_file)]) == 0
        assert "benign" in capsys.readouterr().out

    def test_garbage_file(self, tmp_path, capsys):
        path = tmp_path / "junk.wasm"
        path.write_bytes(b"junkjunkjunk")
        assert main(["fingerprint", str(path)]) == 1
        assert "not a decodable" in capsys.readouterr().out


class TestNoCoin:
    def test_hit_exits_2(self, tmp_path, capsys):
        page = tmp_path / "page.html"
        page.write_text('<script src="https://coinhive.com/lib/coinhive.min.js"></script>')
        assert main(["nocoin", str(page)]) == 2
        assert "HIT" in capsys.readouterr().out

    def test_clean_exits_0(self, tmp_path, capsys):
        page = tmp_path / "page.html"
        page.write_text("<html><body>hello</body></html>")
        assert main(["nocoin", str(page)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_custom_list(self, tmp_path, capsys):
        page = tmp_path / "page.html"
        page.write_text('<script src="https://evil.example/m.js"></script>')
        rules = tmp_path / "rules.txt"
        rules.write_text("! comment\n||evil.example^\n")
        assert main(["nocoin", "--list", str(rules), str(page)]) == 2


class TestCampaignCommands:
    def test_crawl_net(self, capsys):
        assert main(["--seed", "3", "crawl", "--dataset", "net", "--scale", "0.03"]) == 0
        out = capsys.readouterr().out
        assert "zgrab pass" in out
        assert "dataset=net" in out

    def test_crawl_alexa_includes_chrome(self, capsys):
        assert main(["--seed", "3", "crawl", "--dataset", "alexa", "--scale", "0.03"]) == 0
        out = capsys.readouterr().out
        assert "Chrome pass" in out
        assert "detection factor" in out

    def test_crawl_population_size_on_chrome_dataset_is_a_hard_error(self, capsys):
        # streaming serves the zgrab plane only; silently skipping the Chrome
        # pass would drop half the paper's tables, so it must refuse loudly
        assert main(
            ["crawl", "--dataset", "alexa", "--population-size", "100"]
        ) == 2
        captured = capsys.readouterr()
        assert "zgrab plane only" in captured.err
        assert "--zgrab-only" in captured.err
        assert "zgrab pass" not in captured.out  # nothing ran

    def test_crawl_population_size_chrome_dataset_allowed_with_zgrab_only(self, capsys):
        assert main(
            [
                "--seed", "3", "crawl", "--dataset", "alexa",
                "--population-size", "60", "--zgrab-only",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "zgrab pass" in out
        assert "Chrome pass" not in out

    def test_shortlinks(self, capsys):
        assert main(["--seed", "3", "shortlinks", "--scale", "0.0005"]) == 0
        out = capsys.readouterr().out
        assert "top-1 share" in out

    def test_attribute(self, capsys):
        assert main(["--seed", "3", "attribute", "--days", "1"]) == 0
        out = capsys.readouterr().out
        assert "attributed to Coinhive" in out

    def test_crawl_profile_prints_stage_table(self, capsys):
        assert main(
            ["--seed", "3", "crawl", "--dataset", "alexa", "--scale", "0.03", "--profile"]
        ) == 0
        out = capsys.readouterr().out
        assert "stage profile" in out
        for stage in ("site", "fetch", "detect"):
            assert stage in out

    def test_crawl_trace_out_writes_jsonl(self, tmp_path, capsys):
        from repro.obs.trace import read_jsonl

        trace = tmp_path / "trace.jsonl"
        assert main(
            [
                "--seed", "3", "crawl", "--dataset", "net", "--scale", "0.03",
                "--shards", "2", "--executor", "serial", "--trace-out", str(trace),
            ]
        ) == 0
        assert f"-> {trace}" in capsys.readouterr().out
        spans = read_jsonl(trace)
        names = {span.name for span in spans}
        assert {"campaign", "shard", "site", "fetch"} <= names
        # every non-root span links to a span in the same file
        ids = {span.span_id for span in spans}
        assert all(span.parent_id in ids for span in spans if span.parent_id)

    def test_reproduce_profile_section(self, tmp_path, capsys):
        trace = tmp_path / "r.jsonl"
        out_file = tmp_path / "report.md"
        assert main(
            [
                "reproduce", "--crawl-scale", "0.02", "--shortlink-scale", "0.0005",
                "--days", "1", "--profile", "--trace-out", str(trace),
                "--out", str(out_file),
            ]
        ) == 0
        report = out_file.read_text()
        assert "## Stage profile" in report
        assert "network-sim" in report
        assert trace.exists()


class TestCorpus:
    def test_dump_family(self, tmp_path, capsys):
        assert main(["corpus", "--out", str(tmp_path / "c"), "--family", "jsminer"]) == 0
        files = list((tmp_path / "c").glob("*.wasm"))
        assert len(files) == 4  # jsminer has 4 variants
        assert files[0].read_bytes()[:4] == b"\x00asm"

    def test_roundtrip_with_fingerprint(self, tmp_path, capsys):
        main(["corpus", "--out", str(tmp_path / "c"), "--family", "cryptoloot"])
        sample = sorted((tmp_path / "c").glob("*.wasm"))[0]
        assert main(["fingerprint", str(sample)]) == 0
        assert "cryptoloot" in capsys.readouterr().out


class TestDisasm:
    def test_disasm_prints_wat(self, wasm_file, capsys):
        assert main(["disasm", str(wasm_file)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("(module")
        assert "i32.xor" in out

    def test_disasm_truncates(self, wasm_file, capsys):
        assert main(["disasm", "--max-functions", "1", str(wasm_file)]) == 0
        assert "more functions" in capsys.readouterr().out

    def test_disasm_bad_file(self, tmp_path, capsys):
        path = tmp_path / "bad.wasm"
        path.write_bytes(b"nope")
        assert main(["disasm", str(path)]) == 1


class TestReproduce:
    def test_reproduce_writes_report(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main([
            "--seed", "5", "reproduce", "--out", str(out),
            "--crawl-scale", "0.02", "--shortlink-scale", "0.0005", "--days", "1",
        ]) == 0
        text = out.read_text()
        assert "# Reproduction report" in text
        assert "Figure 2" in text
        assert "Table 6" in text
        assert "blocks attributed" in text
