"""Tests for the WebAssembly interpreter."""

import pytest

from repro.wasm.builder import ModuleBlueprint, all_blueprints
from repro.wasm.decoder import decode_module
from repro.wasm.encoder import encode_module
from repro.wasm.interp import FuelExhausted, Instance, WasmTrap, execute_exported
from repro.wasm.types import CodeEntry, Export, FuncType, Import, Instr, Limits, Module, ValType


def make_module(body, params=(ValType.I32, ValType.I32), results=(ValType.I32,),
                locals_=None, memory_pages=1, imports=()):
    module = Module()
    module.types = [FuncType(tuple(params), tuple(results))]
    module.imports = list(imports)
    module.func_type_indices = [0]
    module.memories = [Limits(memory_pages, memory_pages * 2)]
    module.exports = [Export("f", 0, module.num_imported_funcs())]
    module.codes = [CodeEntry(locals_=locals_ or [], body=list(body) + [Instr("end")])]
    return module


def run(body, *args, **kwargs):
    module = make_module(body, **kwargs)
    return Instance(module).invoke("f", *args)


class TestArithmetic:
    def test_add(self):
        assert run([Instr("local.get", (0,)), Instr("local.get", (1,)), Instr("i32.add")], 2, 3) == [5]

    def test_wrapping_add(self):
        assert run(
            [Instr("local.get", (0,)), Instr("i32.const", (1,)), Instr("i32.add")],
            0xFFFFFFFF,
        ) == [0]

    def test_sub_wraps_negative(self):
        assert run(
            [Instr("i32.const", (1,)), Instr("i32.const", (2,)), Instr("i32.sub")], 0, 0
        ) == [0xFFFFFFFF]

    def test_xor_shift_rotate(self):
        body = [
            Instr("i32.const", (0b1010,)),
            Instr("i32.const", (0b0110,)),
            Instr("i32.xor"),          # 0b1100
            Instr("i32.const", (2,)),
            Instr("i32.shl"),          # 0b110000
        ]
        assert run(body, 0, 0) == [0b110000]

    def test_rotl(self):
        assert run([Instr("i32.const", (0x80000001,)), Instr("i32.const", (1,)), Instr("i32.rotl")], 0, 0) == [3]

    def test_rotr(self):
        assert run([Instr("i32.const", (3,)), Instr("i32.const", (1,)), Instr("i32.rotr")], 0, 0) == [0x80000001]

    def test_div_u_vs_div_s(self):
        minus_ten = (-10) & 0xFFFFFFFF
        assert run([Instr("i32.const", (minus_ten,)), Instr("i32.const", (3,)), Instr("i32.div_s")], 0, 0) == [(-3) & 0xFFFFFFFF]
        assert run([Instr("i32.const", (minus_ten,)), Instr("i32.const", (3,)), Instr("i32.div_u")], 0, 0) == [(0xFFFFFFF6) // 3]

    def test_div_by_zero_traps(self):
        with pytest.raises(WasmTrap, match="divide by zero"):
            run([Instr("i32.const", (1,)), Instr("i32.const", (0,)), Instr("i32.div_u")], 0, 0)

    def test_clz_ctz_popcnt(self):
        assert run([Instr("i32.const", (1,)), Instr("i32.clz")], 0, 0) == [31]
        assert run([Instr("i32.const", (8,)), Instr("i32.ctz")], 0, 0) == [3]
        assert run([Instr("i32.const", (0xFF,)), Instr("i32.popcnt")], 0, 0) == [8]
        assert run([Instr("i32.const", (0,)), Instr("i32.clz")], 0, 0) == [32]

    def test_signed_comparison(self):
        minus_one = (-1) & 0xFFFFFFFF
        assert run([Instr("i32.const", (minus_one,)), Instr("i32.const", (1,)), Instr("i32.lt_s")], 0, 0) == [1]
        assert run([Instr("i32.const", (minus_one,)), Instr("i32.const", (1,)), Instr("i32.lt_u")], 0, 0) == [0]

    def test_i64_ops(self):
        body = [
            Instr("i64.const", (1 << 40,)),
            Instr("i64.const", (3,)),
            Instr("i64.mul"),
            Instr("i32.wrap_i64"),
        ]
        assert run(body, 0, 0) == [((3 << 40) & 0xFFFFFFFF)]

    def test_float_math(self):
        body = [
            Instr("f64.const", (2.0,)),
            Instr("f64.sqrt"),
            Instr("f64.const", (2.0,)),
            Instr("f64.mul"),
            Instr("i64.reinterpret_f64"),
            Instr("i32.wrap_i64"),
        ]
        result = run(body, 0, 0)
        assert isinstance(result[0], int)


class TestLocalsAndControl:
    def test_local_set_tee(self):
        body = [
            Instr("i32.const", (7,)),
            Instr("local.tee", (0,)),
            Instr("local.get", (0,)),
            Instr("i32.add"),
        ]
        assert run(body, 0, 0) == [14]

    def test_select(self):
        body = [
            Instr("i32.const", (10,)),
            Instr("i32.const", (20,)),
            Instr("local.get", (0,)),
            Instr("select"),
        ]
        assert run(body, 1, 0) == [10]
        assert run(body, 0, 0) == [20]

    def test_if_else(self):
        body = [
            Instr("local.get", (0,)),
            Instr("if", (None,)),
            Instr("i32.const", (111,)),
            Instr("local.set", (1,)),
            Instr("else"),
            Instr("i32.const", (222,)),
            Instr("local.set", (1,)),
            Instr("end"),
            Instr("local.get", (1,)),
        ]
        assert run(body, 1, 0) == [111]
        assert run(body, 0, 0) == [222]

    def test_if_without_else(self):
        body = [
            Instr("local.get", (0,)),
            Instr("if", (None,)),
            Instr("i32.const", (5,)),
            Instr("local.set", (1,)),
            Instr("end"),
            Instr("local.get", (1,)),
        ]
        assert run(body, 0, 7) == [7]
        assert run(body, 1, 7) == [5]

    def test_countdown_loop(self):
        # sum 1..n via loop: local0 = n, local1 = acc
        body = [
            Instr("block", (None,)),
            Instr("loop", (None,)),
            Instr("local.get", (0,)),
            Instr("i32.eqz"),
            Instr("br_if", (1,)),
            Instr("local.get", (1,)),
            Instr("local.get", (0,)),
            Instr("i32.add"),
            Instr("local.set", (1,)),
            Instr("local.get", (0,)),
            Instr("i32.const", (1,)),
            Instr("i32.sub"),
            Instr("local.set", (0,)),
            Instr("br", (0,)),
            Instr("end"),
            Instr("end"),
            Instr("local.get", (1,)),
        ]
        assert run(body, 10, 0) == [55]

    def test_br_table(self):
        body = [
            Instr("block", (None,)),
            Instr("block", (None,)),
            Instr("local.get", (0,)),
            Instr("br_table", ((0, 1), 1)),
            Instr("end"),
            Instr("i32.const", (100,)),
            Instr("return"),
            Instr("end"),
            Instr("i32.const", (200,)),
        ]
        assert run(body, 0, 0) == [100]  # label 0 → inner block → 100
        assert run(body, 1, 0) == [200]  # label 1 → outer block → 200
        assert run(body, 9, 0) == [200]  # default

    def test_early_return(self):
        body = [
            Instr("i32.const", (42,)),
            Instr("return"),
            Instr("unreachable"),
        ]
        assert run(body, 0, 0) == [42]

    def test_unreachable_traps(self):
        with pytest.raises(WasmTrap, match="unreachable"):
            run([Instr("unreachable")], 0, 0)

    def test_infinite_loop_exhausts_fuel(self):
        body = [Instr("loop", (None,)), Instr("br", (0,)), Instr("end"), Instr("i32.const", (0,))]
        module = make_module(body)
        with pytest.raises(FuelExhausted):
            Instance(module, fuel=1000).invoke("f", 0, 0)


class TestMemory:
    def test_store_load_roundtrip(self):
        body = [
            Instr("i32.const", (100,)),
            Instr("local.get", (0,)),
            Instr("i32.store", (2, 0)),
            Instr("i32.const", (100,)),
            Instr("i32.load", (2, 0)),
        ]
        assert run(body, 0xDEADBEEF, 0) == [0xDEADBEEF]

    def test_byte_load_signed_unsigned(self):
        body_u = [
            Instr("i32.const", (0,)),
            Instr("i32.const", (0x80,)),
            Instr("i32.store8", (0, 0)),
            Instr("i32.const", (0,)),
            Instr("i32.load8_u", (0, 0)),
        ]
        assert run(body_u, 0, 0) == [0x80]
        body_s = body_u[:-1] + [Instr("i32.load8_s", (0, 0))]
        assert run(body_s, 0, 0) == [0xFFFFFF80]

    def test_oob_traps(self):
        body = [Instr("i32.const", (65536 - 2,)), Instr("i32.load", (2, 0))]
        with pytest.raises(WasmTrap, match="out-of-bounds"):
            run(body, 0, 0, memory_pages=1)

    def test_offset_applies(self):
        body = [
            Instr("i32.const", (0,)),
            Instr("i32.const", (77,)),
            Instr("i32.store", (2, 128)),
            Instr("i32.const", (128,)),
            Instr("i32.load", (2, 0)),
        ]
        assert run(body, 0, 0) == [77]

    def test_memory_size_and_grow(self):
        body = [
            Instr("i32.const", (1,)),
            Instr("memory.grow", (0,)),
            Instr("drop"),
            Instr("memory.size", (0,)),
        ]
        assert run(body, 0, 0, memory_pages=1) == [2]

    def test_memory_grow_respects_maximum(self):
        body = [Instr("i32.const", (100,)), Instr("memory.grow", (0,))]
        assert run(body, 0, 0, memory_pages=1) == [0xFFFFFFFF]  # refused


class TestCalls:
    def test_call_local_function(self):
        module = Module()
        module.types = [FuncType((ValType.I32,), (ValType.I32,))]
        module.func_type_indices = [0, 0]
        module.memories = [Limits(1)]
        module.exports = [Export("main", 0, 0)]
        module.codes = [
            CodeEntry(body=[Instr("local.get", (0,)), Instr("call", (1,)), Instr("end")]),
            CodeEntry(body=[Instr("local.get", (0,)), Instr("i32.const", (2,)), Instr("i32.mul"), Instr("end")]),
        ]
        assert Instance(module).invoke("main", 21) == [42]

    def test_imported_abort_traps(self):
        module = make_module(
            [Instr("call", (0,)), Instr("i32.const", (0,))],
            imports=(Import("env", "abort", 0, 1),),
        )
        # import type index 1: append a () -> () type
        module.types.append(FuncType((), ()))
        with pytest.raises(WasmTrap, match="abort"):
            Instance(module).invoke("f", 0, 0)

    def test_custom_host_import(self):
        module = make_module(
            [Instr("call", (0,))],
            params=(), results=(ValType.I32,),
            imports=(Import("env", "answer", 0, 1),),
        )
        module.types.append(FuncType((), (ValType.I32,)))
        instance = Instance(module, imports={("env", "answer"): lambda: 42})
        assert instance.invoke("f") == [42]

    def test_unknown_export(self):
        with pytest.raises(KeyError):
            Instance(make_module([Instr("i32.const", (0,))])).invoke("nope")


class TestCorpusExecution:
    """The synthetic miners and benign modules are runnable programs."""

    def test_entire_corpus_executes(self, corpus):
        for blueprint in all_blueprints():
            module = decode_module(corpus.build(blueprint))
            instance = Instance(module, fuel=500_000)
            export = next(e for e in module.exports if e.kind == 0)
            result = instance.invoke(export.name, 5, 9)
            assert len(result) == 1, blueprint.label
            assert 0 <= result[0] < 2**32

    def test_corpus_execution_is_deterministic(self, corpus):
        data = corpus.build(ModuleBlueprint("coinhive", 0))
        a = execute_exported(data, "_cryptonight_create", 7, 13)
        b = execute_exported(data, "_cryptonight_create", 7, 13)
        assert a == b

    def test_kernel_output_depends_on_iteration_count(self, corpus):
        """More loop iterations must change at least one kernel's output."""
        data = corpus.build(ModuleBlueprint("coinhive", 0))
        module = decode_module(data)
        differs = False
        for export in module.exports:
            if export.kind != 0:
                continue
            a = Instance(decode_module(data)).invoke(export.name, 2, 5)
            b = Instance(decode_module(data)).invoke(export.name, 50, 5)
            if a != b:
                differs = True
                break
        assert differs

    def test_miner_kernels_touch_memory(self, corpus):
        """Across a few variants, the mining kernels write the scratchpad."""
        touched = False
        for variant in range(4):
            data = corpus.build(ModuleBlueprint("coinhive", variant))
            module = decode_module(data)
            instance = Instance(module)
            for export in module.exports:
                if export.kind == 0:
                    instance.invoke(export.name, 30, 3)
            if any(instance.memory):
                touched = True
                break
        assert touched, "no mining kernel wrote the scratchpad"
