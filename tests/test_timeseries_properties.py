"""Property tests (Hypothesis) for the timeseries merge law and artifact.

Three invariants keep the windowed-telemetry layer honest:

1. ``TimeSeries.merge`` is the registry merge law lifted pointwise over
   ticks — associative, commutative, with the empty series as identity —
   so sharded or resumed recorders aggregate exactly like live ones.
2. ``timeseries.jsonl`` round-trips losslessly (canonical serialization
   as the equality witness).
3. Ring-buffer eviction never rewrites history: the ticks a
   small-capacity recorder retains are byte-identical to the same ticks
   in an unbounded recorder fed the same schedule.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (
    HistogramWindow,
    TickRecord,
    TimeSeries,
    TimeSeriesRecorder,
)

# ---------------------------------------------------------------------------
# strategies

_names = st.sampled_from(
    [
        "service.requests.offered",
        "service.rejected.queue_full",
        "service.tier.static-only",
        "work.done",
        "x",
    ]
)

_BOUNDS = (0.01, 0.1, 1.0)


def _window(counts):
    return HistogramWindow(
        bounds=_BOUNDS,
        counts=counts,
        count=sum(counts),
        total_ns=sum(counts) * 5_000_000,
    )


_windows = st.builds(
    _window,
    st.lists(
        st.integers(min_value=0, max_value=50), min_size=4, max_size=4
    ).filter(lambda counts: sum(counts) > 0),
)

_ticks = st.builds(
    lambda tick, counters, gauges, histograms: TickRecord(
        tick=tick,
        time=float(tick + 1),
        counters={k: v for k, v in counters.items() if v},
        gauges=gauges,
        histograms=histograms,
    ),
    tick=st.integers(min_value=0, max_value=6),
    counters=st.dictionaries(_names, st.integers(min_value=0, max_value=10**6), max_size=3),
    gauges=st.dictionaries(_names, st.floats(min_value=0, max_value=1e6, width=32), max_size=2),
    histograms=st.dictionaries(st.sampled_from(["service.latency", "stage.fetch"]), _windows, max_size=2),
)

_series = st.builds(
    lambda records: _dedupe(records),
    st.lists(_ticks, max_size=6),
)


def _dedupe(records):
    series = TimeSeries(interval=1.0)
    for record in records:
        series.merge(TimeSeries(interval=1.0, records=[record]))
    return series


def _canon(series: TimeSeries) -> str:
    return series.to_jsonl()


def _copy(series: TimeSeries) -> TimeSeries:
    return TimeSeries.from_jsonl(series.to_jsonl())


# ---------------------------------------------------------------------------
# the merge law


@settings(max_examples=60, deadline=None)
@given(a=_series, b=_series)
def test_merge_commutes(a, b):
    left = _copy(a).merge(_copy(b))
    right = _copy(b).merge(_copy(a))
    assert _canon(left) == _canon(right)


@settings(max_examples=60, deadline=None)
@given(a=_series, b=_series, c=_series)
def test_merge_associates(a, b, c):
    left = _copy(a).merge(_copy(b).merge(_copy(c)))
    right = _copy(a).merge(_copy(b)).merge(_copy(c))
    assert _canon(left) == _canon(right)


@settings(max_examples=60, deadline=None)
@given(a=_series)
def test_empty_series_is_identity(a):
    merged = _copy(a).merge(TimeSeries(interval=1.0))
    assert _canon(merged) == _canon(a)
    onto_empty = TimeSeries(interval=1.0).merge(_copy(a))
    assert _canon(onto_empty) == _canon(a)


# ---------------------------------------------------------------------------
# serialization round trip


@settings(max_examples=60, deadline=None)
@given(a=_series)
def test_jsonl_round_trip_is_lossless(a):
    text = a.to_jsonl()
    loaded = TimeSeries.from_jsonl(text)
    assert loaded.to_jsonl() == text
    assert loaded.interval == a.interval
    assert [record.tick for record in loaded.records] == [
        record.tick for record in a.records
    ]


# ---------------------------------------------------------------------------
# ring-buffer eviction


_schedules = st.lists(
    st.tuples(
        st.sampled_from(["service.requests.offered", "work.done", "x"]),
        st.integers(min_value=0, max_value=20),
        st.floats(min_value=0.1, max_value=3.0),
    ),
    min_size=1,
    max_size=20,
)


@settings(max_examples=60, deadline=None)
@given(schedule=_schedules, capacity=st.integers(min_value=1, max_value=8))
def test_eviction_never_changes_retained_window_values(schedule, capacity):
    """A bounded ring holds exactly the suffix an unbounded one would."""
    bounded_registry = MetricsRegistry()
    unbounded_registry = MetricsRegistry()
    bounded = TimeSeriesRecorder(bounded_registry, interval=1.0, capacity=capacity)
    unbounded = TimeSeriesRecorder(unbounded_registry, interval=1.0, capacity=10_000)
    now = 0.0
    for name, increment, advance in schedule:
        bounded_registry.inc(name, increment)
        unbounded_registry.inc(name, increment)
        now += advance
        bounded.poll(now)
        unbounded.poll(now)
    retained = bounded.records
    reference = {record.tick: record for record in unbounded.records}
    assert len(retained) <= capacity
    if not unbounded.records:
        # the schedule never crossed the first tick boundary
        assert retained == []
        return
    for record in retained:
        # the fast-forward tick may absorb deltas the unbounded recorder
        # spread over evicted ticks; every later tick must match exactly
        expected = reference[record.tick]
        if record is retained[0]:
            assert record.tick == expected.tick
            continue
        assert record.to_dict() == expected.to_dict()
    # retained ticks are contiguous and end at the newest tick
    ticks = [record.tick for record in retained]
    assert ticks == list(range(ticks[0], ticks[0] + len(ticks)))
    assert ticks[-1] == unbounded.records[-1].tick
