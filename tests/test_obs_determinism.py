"""Executor-mode and wall-clock determinism of the observability layer.

Two guarantees:

1. Under an installed :class:`TickClock`, serial campaign timing is a pure
   function of the work done — ``wall_seconds``, ``domains_per_sec`` and
   ``parallel_efficiency`` reproduce exactly across runs (previously these
   read :func:`time.perf_counter` directly and were untestable).
2. With observability enabled, the *merged* view is executor-mode
   invariant: serial, thread, and resumed runs agree on results, metric
   counters, histogram observation counts, span name counts, and span id
   sets. Only durations may differ (they reflect the real schedule).
"""

from __future__ import annotations

import pytest

from repro.analysis.parallel import (
    ParallelConfig,
    PopulationRecipe,
    ShardedChromeCampaign,
    ShardedZgrabCampaign,
)
from repro.faults.resilience import ResiliencePolicy
from repro.internet.population import build_population
from repro.obs.clock import TickClock, use_clock
from repro.obs.profile import make_obs

SHARDS = 4


@pytest.fixture(scope="module")
def population():
    return build_population("alexa", seed=42, scale=0.04)


def _zgrab_run(population, mode: str, workers: int, checkpoint_dir=None):
    obs = make_obs(prefix="det")
    campaign = ShardedZgrabCampaign(
        population=population,
        config=ParallelConfig(
            shards=SHARDS,
            workers=workers,
            mode=mode,
            resilience=ResiliencePolicy() if checkpoint_dir else None,
            checkpoint_dir=checkpoint_dir,
        ),
        obs=obs,
    )
    result = campaign.scan(0)
    return result, campaign.metrics, obs


def _span_view(obs):
    """The schedule-independent projection of a trace."""
    counts: dict = {}
    for span in obs.tracer.spans:
        counts[span.name] = counts.get(span.name, 0) + 1
    return counts, {span.span_id for span in obs.tracer.spans}


def _nonhealth_counters(registry):
    return {k: v for k, v in registry.counters.items() if not k.startswith("health.")}


class TestTickClockTiming:
    def test_serial_timing_reproduces_exactly(self, population):
        snapshots = []
        for _ in range(2):
            with use_clock(TickClock()):
                _result, metrics, _obs = _zgrab_run(population, "serial", 1)
            snapshots.append(
                (
                    metrics.wall_seconds,
                    metrics.aggregate_rate,
                    metrics.parallel_efficiency,
                    [shard.wall_seconds for shard in metrics.shards],
                    [shard.domains_per_sec for shard in metrics.shards],
                )
            )
        assert snapshots[0] == snapshots[1]
        assert snapshots[0][0] > 0.0

    def test_trace_durations_reproduce_exactly(self, population):
        dumps = []
        for _ in range(2):
            with use_clock(TickClock()):
                _result, _metrics, obs = _zgrab_run(population, "serial", 1)
            dumps.append(obs.tracer.to_jsonl())
        assert dumps[0] == dumps[1]


class TestExecutorModeInvariance:
    def test_serial_vs_thread(self, population):
        with use_clock(TickClock()):
            serial_result, serial_metrics, serial_obs = _zgrab_run(population, "serial", 1)
        thread_result, thread_metrics, thread_obs = _zgrab_run(population, "thread", SHARDS)

        assert serial_result == thread_result
        assert (
            serial_metrics.merged_registry().counters
            == thread_metrics.merged_registry().counters
        )
        assert (
            serial_metrics.merged_registry().histogram_counts()
            == thread_metrics.merged_registry().histogram_counts()
        )
        assert _span_view(serial_obs) == _span_view(thread_obs)

    def test_chrome_serial_vs_thread(self):
        recipe = PopulationRecipe("alexa", seed=42, scale=0.04)
        views = []
        for mode, workers in (("serial", 1), ("thread", SHARDS)):
            obs = make_obs(prefix="cdet")
            campaign = ShardedChromeCampaign(
                recipe=recipe,
                config=ParallelConfig(shards=SHARDS, workers=workers, mode=mode),
                obs=obs,
            )
            result = campaign.run()
            views.append(
                (
                    result,
                    campaign.metrics.merged_registry().counters,
                    campaign.metrics.merged_registry().histogram_counts(),
                    _span_view(obs),
                )
            )
        assert views[0] == views[1]

    def test_obs_does_not_change_results(self, population):
        bare = ShardedZgrabCampaign(
            population=population,
            config=ParallelConfig(shards=SHARDS, workers=1, mode="serial"),
        )
        _observed_result, _metrics, _obs = _zgrab_run(population, "serial", 1)
        assert bare.scan(0) == _observed_result


class TestStreamingInvariance:
    """The same guarantees hold when the population is streamed instead
    of materialized (site derivation happens inside the shard workers)."""

    @pytest.fixture(scope="class")
    def streaming_population(self):
        from repro.internet.streaming import StreamingPopulation

        return StreamingPopulation("alexa", seed=42, size=250)

    def test_serial_vs_thread(self, streaming_population):
        with use_clock(TickClock()):
            serial_result, serial_metrics, serial_obs = _zgrab_run(
                streaming_population, "serial", 1
            )
        thread_result, thread_metrics, thread_obs = _zgrab_run(
            streaming_population, "thread", SHARDS
        )
        assert serial_result == thread_result
        assert (
            serial_metrics.merged_registry().counters
            == thread_metrics.merged_registry().counters
        )
        assert _span_view(serial_obs) == _span_view(thread_obs)

    def test_streamed_resume_counters_match_fresh(self, streaming_population, tmp_path):
        checkpoint_dir = str(tmp_path / "journals")
        fresh_result, fresh_metrics, _ = _zgrab_run(
            streaming_population, "serial", 1, checkpoint_dir=checkpoint_dir
        )
        resumed_result, resumed_metrics, _ = _zgrab_run(
            streaming_population, "serial", 1, checkpoint_dir=checkpoint_dir
        )
        assert resumed_result == fresh_result
        assert _nonhealth_counters(
            resumed_metrics.merged_registry()
        ) == _nonhealth_counters(fresh_metrics.merged_registry())
        assert resumed_metrics.merged_registry().counter("health.checkpoint.resumed") > 0


class TestResumedRunInvariance:
    def test_resumed_counters_match_fresh(self, population, tmp_path):
        checkpoint_dir = str(tmp_path / "journals")
        fresh_result, fresh_metrics, _ = _zgrab_run(
            population, "serial", 1, checkpoint_dir=checkpoint_dir
        )
        resumed_result, resumed_metrics, _ = _zgrab_run(
            population, "serial", 1, checkpoint_dir=checkpoint_dir
        )
        assert resumed_result == fresh_result
        # health.* (checkpoint/retry accounting) legitimately differs on a
        # resumed run; everything else must not
        assert _nonhealth_counters(
            resumed_metrics.merged_registry()
        ) == _nonhealth_counters(fresh_metrics.merged_registry())
        assert resumed_metrics.merged_registry().counter("health.checkpoint.resumed") > 0

    def test_resumed_span_view_matches_fresh(self, population, tmp_path):
        # resumed sites replay their recorded stage spans, so the span-id
        # set and per-stage histogram counts survive checkpoint/resume
        checkpoint_dir = str(tmp_path / "journals")
        with use_clock(TickClock()):
            _, fresh_metrics, fresh_obs = _zgrab_run(
                population, "serial", 1, checkpoint_dir=checkpoint_dir
            )
        with use_clock(TickClock()):
            _, resumed_metrics, resumed_obs = _zgrab_run(
                population, "serial", 1, checkpoint_dir=checkpoint_dir
            )
        assert _span_view(resumed_obs) == _span_view(fresh_obs)
        assert (
            resumed_metrics.merged_registry().histogram_counts()
            == fresh_metrics.merged_registry().histogram_counts()
        )
