"""Determinism regression tests for sharded execution.

Same population seed + different worker counts (or repeated runs) must
produce identical merged results. Guards against Counter merge-order
dependence, cross-shard RNG sharing in :mod:`repro.sim.rng`, and the
browser's page-RNG depending on global visit order.
"""

from __future__ import annotations

import pytest

from repro.analysis.crawl import ChromeCampaign, ZgrabCampaign
from repro.analysis.parallel import (
    ParallelConfig,
    PopulationRecipe,
    ShardedChromeCampaign,
    ShardedZgrabCampaign,
)
from repro.internet.population import build_population
from repro.sim.rng import RngStream
from repro.web.browser import HeadlessBrowser


class TestZgrabDeterminism:
    @pytest.fixture(scope="class")
    def population(self):
        return build_population("alexa", seed=42, scale=0.04)

    def test_worker_count_invariance(self, population):
        results = []
        for workers in (1, 2, 4):
            config = ParallelConfig(shards=4, workers=workers, mode="thread")
            campaign = ShardedZgrabCampaign(population=population, config=config)
            results.append((campaign.scan(0), campaign.scan(1)))
        assert results[0] == results[1] == results[2]

    def test_shard_count_invariance(self, population):
        sequential = ZgrabCampaign(population=population).scan(0)
        for shards in (2, 5, 8):
            config = ParallelConfig(shards=shards, workers=2, mode="thread")
            assert ShardedZgrabCampaign(population=population, config=config).scan(0) == sequential

    def test_repeated_runs_identical(self, population):
        config = ParallelConfig(shards=3, workers=3, mode="thread")
        first = ShardedZgrabCampaign(population=population, config=config).scan(0)
        second = ShardedZgrabCampaign(population=population, config=config).scan(0)
        assert first == second


class TestChromeDeterminism:
    RECIPE = PopulationRecipe("alexa", seed=42, scale=0.04)

    def test_worker_count_invariance(self):
        results = []
        for workers in (1, 2, 3):
            config = ParallelConfig(shards=3, workers=workers, mode="thread")
            campaign = ShardedChromeCampaign(recipe=self.RECIPE, config=config)
            results.append(campaign.run())
        assert results[0] == results[1] == results[2]

    def test_mode_invariance(self):
        serial = ShardedChromeCampaign(
            recipe=self.RECIPE, config=ParallelConfig(shards=4, workers=1, mode="serial")
        ).run()
        process = ShardedChromeCampaign(
            recipe=self.RECIPE, config=ParallelConfig(shards=4, workers=2, mode="process")
        ).run()
        assert serial == process


class TestRngIsolation:
    """The properties the executor's determinism actually rests on."""

    def test_substreams_independent_of_consumption_order(self):
        root_a = RngStream(7, "campaign")
        a1 = root_a.substream("shard", "1")
        _ = [a1.random() for _ in range(100)]  # heavy use of shard 1 ...
        a2 = root_a.substream("shard", "2")    # ... must not perturb shard 2
        root_b = RngStream(7, "campaign")
        b2 = root_b.substream("shard", "2")
        assert [a2.random() for _ in range(10)] == [b2.random() for _ in range(10)]

    def test_browser_page_rng_independent_of_visit_order(self):
        """Visiting A,B must replay B's behaviour exactly like visiting B,A —
        the property that lets shards regroup sites arbitrarily."""
        population = build_population("alexa", seed=42, scale=0.03)
        miners = [s for s in population.sites if s.role == "miner"][:2]
        assert len(miners) == 2
        urls = [f"http://www.{s.domain}/" for s in miners]

        def visit_all(ordering):
            browser = HeadlessBrowser(
                population.web, behavior_registry=population.behavior_registry
            )
            pages = {url: browser.visit(url) for url in ordering}
            return {
                url: (page.final_html, sorted(page.websocket_urls()), len(page.wasm_dumps))
                for url, page in pages.items()
            }

        forward = visit_all(urls)
        backward = visit_all(list(reversed(urls)))
        assert forward == backward

    def test_browser_repeat_visits_still_distinct(self):
        """Per-URL visit counters: repeat visits of one URL keep drawing
        fresh randomness (regression guard for the counter refactor)."""
        population = build_population("alexa", seed=42, scale=0.03)
        consent = [s for s in population.sites if s.role == "consent-declined"]
        site = consent[0] if consent else population.sites[0]
        url = f"http://www.{site.domain}/"
        browser = HeadlessBrowser(
            population.web, behavior_registry=population.behavior_registry
        )
        browser.visit(url)
        browser.visit(url)
        # the per-URL counter advanced: the second visit drew from a fresh
        # ("page", url, "2") stream rather than replaying visit 1
        assert browser._visit_counts[url] == 2


class TestMergeOrderIndependence:
    def test_merge_in_shard_id_order(self):
        """Partials merge by shard id, not completion order: two campaigns
        with wildly different worker counts end up byte-equal, including
        the Counter iteration order-sensitive script_shares mapping."""
        population = build_population("com", seed=13, scale=0.1)
        lhs = ShardedZgrabCampaign(
            population=population,
            config=ParallelConfig(shards=8, workers=1, mode="serial"),
        ).scan(0)
        rhs = ShardedZgrabCampaign(
            population=population,
            config=ParallelConfig(shards=8, workers=8, mode="thread"),
        ).scan(0)
        assert lhs == rhs
        assert list(lhs.script_shares.items()) == list(rhs.script_shares.items())
