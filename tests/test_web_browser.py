"""Tests for the headless browser: page-load heuristic and capture."""

import pytest

from repro.pool.protocol import decode_message, JobMessage, LoginMessage, SubmitMessage
from repro.web.browser import BrowserConfig, HeadlessBrowser
from repro.web.html import HtmlElement, parse_html
from repro.web.http import Resource, SyntheticWeb
from repro.web.scripts import (
    DomMutatorBehavior,
    InjectScriptBehavior,
    MinerBehavior,
    ScriptTag,
    inline_key,
)


def simple_web(html=b"<html><head></head><body>hi</body></html>") -> SyntheticWeb:
    web = SyntheticWeb()
    web.register_page("http://www.site.com/", html)
    return web


class TestBasicVisits:
    def test_successful_visit(self):
        browser = HeadlessBrowser(simple_web())
        result = browser.visit("http://www.site.com/")
        assert result.status == "ok"
        assert "hi" in result.final_html
        assert result.load_event_at is not None

    def test_unresolvable_domain(self):
        browser = HeadlessBrowser(SyntheticWeb())
        result = browser.visit("http://www.ghost.com/")
        assert result.status == "error"
        assert "name not resolved" in result.error

    def test_follows_redirect_to_https(self):
        web = SyntheticWeb()
        web.register("http://www.site.com/", Resource(redirect_to="https://www.site.com/"))
        web.register_page("https://www.site.com/", b"<html>secure</html>")
        result = HeadlessBrowser(web).visit("http://www.site.com/")
        assert result.status == "ok"
        assert result.final_url == "https://www.site.com/"

    def test_final_html_truncated_at_65k(self):
        web = simple_web(b"<html><body>" + b"z" * (100 * 1024) + b"</body></html>")
        result = HeadlessBrowser(web).visit("http://www.site.com/")
        assert len(result.final_html) == 65 * 1024

    def test_hanging_page_times_out_at_15s(self):
        web = SyntheticWeb()
        web.register("http://www.slow.com/", Resource(content=b"x", hang=True))
        browser = HeadlessBrowser(web)
        result = browser.visit("http://www.slow.com/")
        assert result.status == "error"  # transfer never completes


class TestPageLoadHeuristic:
    def test_quiet_page_finishes_2s_after_load(self):
        browser = HeadlessBrowser(simple_web())
        start = browser.loop.now
        result = browser.visit("http://www.site.com/")
        # latency 0.05 (page) → load; +2.0 quiet timer
        assert result.finished_at - start == pytest.approx(2.05, abs=0.2)

    def test_dom_mutations_extend_wait(self):
        web = simple_web(
            b"<html><head><script src='http://www.site.com/w.js'></script></head><body></body></html>"
        )
        web.register("http://www.site.com/w.js", Resource(content=b"/*w*/", content_type="text/javascript"))
        registry = {
            "http://www.site.com/w.js": DomMutatorBehavior(mutations=((1.0, "div"), (2.0, "div")))
        }
        browser = HeadlessBrowser(web, behavior_registry=registry)
        start = browser.loop.now
        result = browser.visit("http://www.site.com/")
        # last mutation at ~2.1; quiet timer pushes finish to ~4.1
        assert result.dom_mutations == 2
        assert result.finished_at - start == pytest.approx(4.1, abs=0.3)

    def test_wait_capped_at_5s_after_load(self):
        mutations = tuple((0.5 * i, "div") for i in range(1, 14))
        web = simple_web(
            b"<html><head><script src='http://www.site.com/w.js'></script></head><body></body></html>"
        )
        web.register("http://www.site.com/w.js", Resource(content=b"/*w*/", content_type="text/javascript"))
        registry = {"http://www.site.com/w.js": DomMutatorBehavior(mutations=mutations)}
        browser = HeadlessBrowser(web, behavior_registry=registry)
        start = browser.loop.now
        result = browser.visit("http://www.site.com/")
        load_delay = result.load_event_at - start
        assert result.finished_at - start <= load_delay + 5.0 + 0.01

    def test_mutations_after_finish_not_counted(self):
        web = simple_web(
            b"<html><head><script src='http://www.site.com/w.js'></script></head><body></body></html>"
        )
        web.register("http://www.site.com/w.js", Resource(content=b"/*w*/", content_type="text/javascript"))
        registry = {"http://www.site.com/w.js": DomMutatorBehavior(mutations=((60.0, "div"),))}
        browser = HeadlessBrowser(web, behavior_registry=registry)
        result = browser.visit("http://www.site.com/")
        assert result.dom_mutations == 0


class TestCapture:
    def make_mining_site(self):
        """A site whose inline script runs a miner against a toy pool."""
        web = SyntheticWeb()
        from repro.wasm.builder import ModuleBlueprint, WasmCorpusBuilder

        wasm = WasmCorpusBuilder().build(ModuleBlueprint("coinhive", 0))
        web.register("https://cdn.pool.com/cn.wasm", Resource(content=wasm, content_type="application/wasm"))

        from repro.pool.protocol import encode_message, SubmitResult, target_hex_for_difficulty

        def pool_handler(channel, payload):
            message = decode_message(payload)
            if isinstance(message, LoginMessage):
                channel.server_send(
                    encode_message(JobMessage(job_id="j1", blob_hex="00" * 76, target_hex="ffffff00"))
                )
            elif isinstance(message, SubmitMessage):
                channel.server_send(encode_message(SubmitResult(True)))

        web.register_ws("wss://ws1.pool.com/proxy", pool_handler)

        inline = "startMiner('TOK');"
        tag = ScriptTag(
            inline=inline,
            behavior=MinerBehavior(
                wasm_url="https://cdn.pool.com/cn.wasm",
                socket_url="wss://ws1.pool.com/proxy",
                token="TOK",
                hash_rate=100.0,
                share_difficulty_hint=4,
            ),
        )
        html = f"<html><head><script>{inline}</script></head><body></body></html>"
        web.register_page("http://www.miner.com/", html.encode())
        registry = {inline_key(inline): tag.behavior}
        return web, registry

    def test_wasm_dumped(self):
        web, registry = self.make_mining_site()
        browser = HeadlessBrowser(web, behavior_registry=registry)
        result = browser.visit("http://www.miner.com/")
        assert result.has_wasm()
        assert result.wasm_dumps[0][:4] == b"\x00asm"

    def test_websocket_frames_captured_both_directions(self):
        web, registry = self.make_mining_site()
        browser = HeadlessBrowser(web, behavior_registry=registry)
        result = browser.visit("http://www.miner.com/")
        directions = {frame.direction for frame in result.websocket_frames}
        assert directions == {"sent", "received"}
        assert result.websocket_urls() == {"wss://ws1.pool.com/proxy"}

    def test_auth_frame_carries_token(self):
        web, registry = self.make_mining_site()
        browser = HeadlessBrowser(web, behavior_registry=registry)
        result = browser.visit("http://www.miner.com/")
        sent = [f for f in result.websocket_frames if f.direction == "sent"]
        login = decode_message(sent[0].payload)
        assert isinstance(login, LoginMessage)
        assert login.token == "TOK"

    def test_submits_shares(self):
        web, registry = self.make_mining_site()
        browser = HeadlessBrowser(web, behavior_registry=registry)
        result = browser.visit("http://www.miner.com/")
        submits = [
            f for f in result.websocket_frames
            if f.direction == "sent" and isinstance(decode_message(f.payload), SubmitMessage)
        ]
        assert submits  # at ~100 H/s and difficulty 4, shares land fast

    def test_capture_reset_between_visits(self):
        web, registry = self.make_mining_site()
        web.register_page("http://www.clean.com/", b"<html><body>clean</body></html>")
        browser = HeadlessBrowser(web, behavior_registry=registry)
        miner_result = browser.visit("http://www.miner.com/")
        clean_result = browser.visit("http://www.clean.com/")
        assert miner_result.has_wasm()
        assert not clean_result.has_wasm()
        assert not clean_result.websocket_frames


class TestDynamicInjection:
    def test_injected_script_visible_in_final_html_only(self):
        web = SyntheticWeb()
        loader_inline = "loadStuff();"
        injected = ScriptTag(src="https://coinhive.com/lib/coinhive.min.js")
        html = f"<html><head><script>{loader_inline}</script></head><body></body></html>"
        web.register_page("http://www.sneaky.com/", html.encode())
        registry = {inline_key(loader_inline): InjectScriptBehavior(script=injected, delay=0.1)}
        browser = HeadlessBrowser(web, behavior_registry=registry)
        result = browser.visit("http://www.sneaky.com/")
        assert "coinhive.com" not in html.replace("coinhive.com/lib", "") or True
        assert "coinhive.com/lib/coinhive.min.js" in result.final_html
        assert "coinhive" not in html  # static HTML clean
