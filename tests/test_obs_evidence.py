"""Detection provenance: evidence records, the verdict ledger, and every
detector's explain path.

The contract under test is twofold. First, explained detection is
*outcome-identical* to bare detection — ``explain_*`` never changes what
the fast path would have decided, it only cites why. Second, the
persisted ``verdicts.jsonl`` is a lossless, versioned serialization:
Hypothesis round-trips arbitrary verdict records through the JSONL
format, legacy headerless files still parse, and files from a future
schema are rejected loudly (same contract as ``trace.jsonl``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.classifier import MinerClassifier
from repro.core.detector import (
    CrossTabulation,
    PageDetector,
    cross_tabulate,
    _websocket_evidence,
)
from repro.core.dynamic import DynamicMinerDetector
from repro.core.nocoin import (
    DEFAULT_LIST_SOURCE,
    FilterList,
    default_nocoin_list,
    parse_rule,
)
from repro.core.signatures import SignatureDatabase
from repro.obs.evidence import (
    EVIDENCE_SCHEMA_VERSION,
    Evidence,
    VerdictRecord,
    VerdictSchemaError,
    parse_verdicts_jsonl,
    render_verdict,
    verdicts_to_jsonl,
)


# ---------------------------------------------------------------------------
# filter-rule provenance (nocoin)


class TestRuleProvenance:
    def test_from_lines_records_source_and_line_numbers(self):
        lines = ["! a comment", "", "||coinhive.com^", "miner.min.js"]
        filters = FilterList.from_lines(lines, source="test-list")
        assert [(r.source, r.line_number) for r in filters.rules] == [
            ("test-list", 3),
            ("test-list", 4),
        ]

    def test_parse_rule_defaults_to_empty_provenance(self):
        rule = parse_rule("||coinhive.com^")
        assert rule.source == ""
        assert rule.line_number == 0

    def test_bundled_list_is_sourced(self):
        for rule in default_nocoin_list().rules:
            assert rule.source == DEFAULT_LIST_SOURCE
            assert rule.line_number >= 1


class TestNocoinExplain:
    @pytest.fixture(scope="class")
    def filters(self):
        return default_nocoin_list()

    def test_explain_url_cites_rule_and_span(self, filters):
        url = "https://coinhive.com/lib/coinhive.min.js"
        match = filters.explain_url(url)
        assert match is not None
        assert match.rule is filters.match_url(url)
        assert match.where == "url"
        assert match.subject == url
        assert match.matched and match.matched in url

    def test_explain_text_truncates_long_inline_subject(self, filters):
        text = "x" * 200 + "coinhive.min.js" + "y" * 200
        match = filters.explain_text(text)
        assert match is not None
        assert len(match.subject) <= 120
        assert match.matched == "coinhive.min.js"

    def test_explain_scripts_matches_match_scripts(self, filters):
        scripts = [
            ("https://coinhive.com/lib/coinhive.min.js", ""),
            ("https://cdn.example.com/app.js", ""),
            ("", "var miner = new CoinHive.Anonymous; // crypto-loot.min.js"),
        ]
        explained = filters.explain_scripts(scripts)
        assert [m.rule for m in explained] == filters.match_scripts(scripts)

    def test_exception_rules_suppress_explained_hits(self):
        filters = FilterList.from_lines(
            ["||coinhive.com^", "@@||coinhive.com/opt-out^"], source="t"
        )
        assert filters.explain_url("https://coinhive.com/opt-out/x.js") is None


# ---------------------------------------------------------------------------
# classifier cascade provenance


class TestClassifierExplain:
    def test_signature_evidence_cites_db_record(self, signature_db, coinhive_wasm):
        classifier = MinerClassifier(database=signature_db)
        classification, evidence = classifier.explain_wasm(coinhive_wasm)
        assert classification == classifier.classify_wasm(coinhive_wasm)
        assert classification.method == "signature"
        assert evidence.detector == "signature"
        assert evidence.verdict == "miner"
        details = dict(evidence.details)
        assert len(details["signature"]) == 64
        assert details["db_family"] == "coinhive"
        assert int(details["function_hashes"]) > 0

    def test_benign_evidence_cites_each_threshold(self, benign_wasm):
        classifier = MinerClassifier(database=SignatureDatabase())
        classification, evidence = classifier.explain_wasm(benign_wasm)
        assert classification == classifier.classify_wasm(benign_wasm)
        assert not classification.is_miner
        assert evidence.verdict == "benign"
        details = dict(evidence.details)
        # every cascade threshold is cited with the value that was tested
        for key in ("bitop_density", "float_density", "memory_pages", "rotate_count"):
            assert key in details
            assert "ok" in details[key] or "FAIL" in details[key]

    def test_undecodable_module_yields_invalid_evidence(self):
        classifier = MinerClassifier(database=SignatureDatabase())
        classification, evidence = classifier.explain_wasm(b"not wasm")
        assert not classification.is_miner
        assert evidence.verdict == "invalid"

    def test_explain_page_mirrors_page_is_miner(
        self, signature_db, coinhive_wasm, benign_wasm
    ):
        classifier = MinerClassifier(database=signature_db)
        dumps = [benign_wasm, coinhive_wasm]
        miner, evidence = classifier.explain_page(dumps)
        assert miner == classifier.page_is_miner(dumps)
        assert miner is not None and miner.is_miner
        assert evidence and evidence[0].verdict == "miner"

    def test_explain_page_no_dumps(self, signature_db):
        classifier = MinerClassifier(database=signature_db)
        assert classifier.explain_page([]) == (None, ())


# ---------------------------------------------------------------------------
# page detector: evidence only when asked, outcome never changes


@dataclass
class _Frame:
    url: str
    direction: str
    payload: str


class TestDetectorEvidence:
    HTML = '<html><script src="https://coinhive.com/lib/coinhive.min.js"></script></html>'

    def test_default_path_collects_nothing(self):
        report = PageDetector().detect_static("a.com", self.HTML)
        assert report.nocoin_hit
        assert report.evidence == ()

    def test_explained_static_detection_is_outcome_identical(self):
        bare = PageDetector().detect_static("a.com", self.HTML)
        explaining = PageDetector()
        explaining.collect_evidence = True
        explained = explaining.detect_static("a.com", self.HTML)
        assert explained == bare  # evidence is excluded from equality
        assert explained.nocoin_rule_labels == bare.nocoin_rule_labels
        (item,) = explained.evidence
        assert item.detector == "nocoin"
        details = dict(item.details)
        assert details["source"] == DEFAULT_LIST_SOURCE
        assert int(details["line_number"]) >= 1
        assert details["matched"]

    def test_websocket_evidence_counts_jobs_and_submits(self):
        frames = [
            _Frame("wss://pool.example/a", "received", json.dumps({"type": "job"})),
            _Frame("wss://pool.example/a", "sent", json.dumps({"type": "submit"})),
            _Frame("wss://pool.example/b", "received", json.dumps({"type": "job"})),
            _Frame("wss://pool.example/b", "received", "not json"),
        ]
        item = _websocket_evidence(frames)
        assert item.detector == "websocket"
        assert item.verdict == "active"  # at least one submit
        details = dict(item.details)
        assert details["wss://pool.example/a"] == "jobs=1 submits=1"
        assert details["wss://pool.example/b"] == "jobs=1 submits=0"

    def test_websocket_evidence_without_submits_is_observed(self):
        frames = [_Frame("wss://p/x", "received", json.dumps({"type": "job"}))]
        assert _websocket_evidence(frames).verdict == "observed"


# ---------------------------------------------------------------------------
# dynamic detector provenance


class TestDynamicExplain:
    def test_explain_matches_is_miner(self, coinhive_wasm, benign_wasm):
        detector = DynamicMinerDetector()
        for module in (coinhive_wasm, benign_wasm):
            verdict, evidence = detector.explain(module)
            assert verdict == detector.is_miner(module)
            assert evidence.detector == "dynamic"
            assert "executed" in dict(evidence.details)

    def test_garbage_module_is_invalid(self):
        verdict, evidence = DynamicMinerDetector().explain(b"garbage")
        assert verdict is False
        assert evidence.verdict == "invalid"


# ---------------------------------------------------------------------------
# pool attribution provenance


class TestPoolAttributionExplained:
    def test_explained_attribution_cites_merkle_proof(self, small_chain):
        from repro.core.pool_association import BlockAttributor
        from repro.pool.jobs import build_template

        template = build_template(
            small_chain, "coinhive", b"be0", timestamp=1_525_000_100
        )
        clusters = {template.header.prev_id: {template.merkle_root()}}
        small_chain.force_append(template.to_block(nonce=5))

        attributor = BlockAttributor(chain=small_chain)
        explained = attributor.attribute_explained(clusters)
        assert [blk for blk, _ in explained] == attributor.attribute(clusters)
        ((block, evidence),) = explained
        assert evidence.detector == "pool"
        assert evidence.verdict == "attributed"
        details = dict(evidence.details)
        assert details["merkle_root"] == block.merkle_root.hex()
        assert details["prev_block_pointer"] == template.header.prev_id.hex()
        assert details["height"] == str(block.height)

    def test_no_clusters_no_attribution(self, small_chain):
        from repro.core.pool_association import BlockAttributor

        assert BlockAttributor(chain=small_chain).attribute_explained({}) == []


# ---------------------------------------------------------------------------
# cross-tabulation edge cases (Table 2 denominators)


class TestCrossTabulationEdges:
    def test_empty_report_set(self):
        tab = cross_tabulate([])
        assert tab == CrossTabulation()
        assert tab.missed_fraction == 0.0
        assert tab.detection_factor == 0.0

    def test_zero_miners_zero_denominators(self):
        tab = CrossTabulation(nocoin_hits=5, wasm_miner_hits=0)
        assert tab.missed_fraction == 0.0
        assert tab.detection_factor == 0.0

    def test_no_blocked_miners_is_infinite_factor(self):
        tab = CrossTabulation(
            wasm_miner_hits=7, miners_blocked_by_nocoin=0, miners_missed_by_nocoin=7
        )
        assert tab.detection_factor == float("inf")
        assert tab.missed_fraction == 1.0

    def test_normal_ratio(self):
        tab = CrossTabulation(
            wasm_miner_hits=10, miners_blocked_by_nocoin=2, miners_missed_by_nocoin=8
        )
        assert tab.detection_factor == 5.0
        assert tab.missed_fraction == 0.8


# ---------------------------------------------------------------------------
# verdict ledger: lossless round-trip, legacy tolerance, future rejection


_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=24
)

_evidence = st.builds(
    Evidence,
    detector=st.sampled_from(
        ["nocoin", "signature", "name-hint", "instruction-mix", "backend",
         "websocket", "dynamic", "pool"]
    ),
    verdict=_text,
    summary=_text,
    details=st.lists(st.tuples(_text, _text), max_size=4).map(tuple),
)

_verdicts = st.lists(
    st.builds(
        VerdictRecord,
        subject=_text,
        dataset=st.sampled_from(["alexa", "com", "net", "org", "network"]),
        pipeline=st.sampled_from(["zgrab0", "zgrab1", "chrome", "pool"]),
        kind=st.sampled_from(["page", "block"]),
        status=st.sampled_from(["ok", "error"]),
        nocoin_hit=st.booleans(),
        wasm_present=st.booleans(),
        is_miner=st.booleans(),
        family=_text,
        method=st.sampled_from(
            ["", "signature", "name-hint", "instruction-mix", "backend"]
        ),
        confidence=st.floats(allow_nan=False, allow_infinity=False),
        evidence=st.lists(_evidence, max_size=3).map(tuple),
    ),
    max_size=6,
)


class TestVerdictSerialization:
    @settings(max_examples=60, deadline=None)
    @given(records=_verdicts)
    def test_jsonl_round_trip_is_lossless(self, records):
        assert parse_verdicts_jsonl(verdicts_to_jsonl(records)) == records

    @settings(max_examples=30, deadline=None)
    @given(records=_verdicts)
    def test_serialization_is_deterministic(self, records):
        assert verdicts_to_jsonl(records) == verdicts_to_jsonl(list(records))

    @settings(max_examples=30, deadline=None)
    @given(records=_verdicts)
    def test_legacy_headerless_files_parse(self, records):
        text = verdicts_to_jsonl(records)
        headerless = "\n".join(text.splitlines()[1:])
        assert parse_verdicts_jsonl(headerless) == records

    def test_header_line_is_versioned_and_compact(self):
        first = verdicts_to_jsonl([]).splitlines()[0]
        assert first == '{"schema_version":%d}' % EVIDENCE_SCHEMA_VERSION

    def test_future_schema_version_rejected(self):
        text = verdicts_to_jsonl([])
        bumped = text.replace(
            f'"schema_version":{EVIDENCE_SCHEMA_VERSION}',
            f'"schema_version":{EVIDENCE_SCHEMA_VERSION + 1}',
        )
        with pytest.raises(VerdictSchemaError, match="upgrade repro"):
            parse_verdicts_jsonl(bumped)

    def test_malformed_header_rejected(self):
        with pytest.raises(VerdictSchemaError, match="malformed"):
            parse_verdicts_jsonl('{"schema_version":"two"}\n')

    def test_unknown_verdict_fields_rejected(self):
        record = json.dumps({"subject": "a.com", "mystery": 1})
        with pytest.raises(ValueError, match="unknown verdict fields"):
            parse_verdicts_jsonl(record + "\n")

    def test_empty_file_parses_to_nothing(self):
        assert parse_verdicts_jsonl("") == []


class TestRenderVerdict:
    def test_miner_verdict_renders_evidence_chain(self):
        record = VerdictRecord(
            subject="evil.com",
            dataset="alexa",
            pipeline="chrome",
            nocoin_hit=False,
            wasm_present=True,
            is_miner=True,
            family="coinhive",
            method="signature",
            confidence=1.0,
            evidence=(
                Evidence(
                    detector="signature",
                    verdict="miner",
                    summary="signature-db record matched",
                    details=(("db_family", "coinhive"),),
                ),
            ),
        )
        text = render_verdict(record)
        assert "evil.com [alexa/chrome] -> MINER" in text
        assert "family=coinhive method=signature" in text
        assert "[signature] miner: signature-db record matched" in text
        assert "db_family = coinhive" in text

    def test_clean_verdict_without_evidence(self):
        text = render_verdict(VerdictRecord(subject="ok.com", dataset="net", pipeline="zgrab0"))
        assert "ok.com [net/zgrab0] -> clean" in text
        assert "(no evidence recorded)" in text
