"""zgrab campaigns over the zgrab-only datasets (.com and .net)."""

import pytest

from repro.analysis.crawl import ZgrabCampaign
from repro.internet.population import build_population


@pytest.fixture(scope="module")
def com_scans():
    population = build_population("com", seed=55, scale=0.05)
    return ZgrabCampaign(population=population).both_scans(), population


@pytest.fixture(scope="module")
def net_scans():
    population = build_population("net", seed=55, scale=0.2)
    return ZgrabCampaign(population=population).both_scans(), population


class TestComCampaign:
    def test_first_scan_counts_scale(self, com_scans):
        scans, population = com_scans
        listed = len(population.sites_by_role("listed-tag"))
        # every listed-tag site is https+static in .com: all detected
        assert scans[0].nocoin_domains == listed

    def test_prevalence_matches_paper_order(self, com_scans):
        scans, _ = com_scans
        # paper: .com ≈ 0.006%; scale-invariant because the denominator is
        # the paper's zone size and the numerator scales with it
        assert scans[0].prevalence < 0.0008

    def test_family_shares(self, com_scans):
        scans, _ = com_scans
        shares = scans[0].script_shares
        assert shares["coinhive"] > 0.7
        assert "cpmstar" in shares

    def test_churn_between_scans(self, com_scans):
        scans, _ = com_scans
        assert scans[1].nocoin_domains < scans[0].nocoin_domains
        retention = scans[1].nocoin_domains / scans[0].nocoin_domains
        assert 0.75 < retention < 0.95  # spec: 0.860


class TestNetCampaign:
    def test_detects_and_churns(self, net_scans):
        scans, _ = net_scans
        assert scans[0].nocoin_domains > 0
        assert scans[1].nocoin_domains <= scans[0].nocoin_domains

    def test_no_chrome_layer(self, net_scans):
        _, population = net_scans
        assert not population.spec.chrome_crawl
        assert not population.ground_truth_miners()

    def test_clean_sites_never_hit(self, net_scans):
        scans, population = net_scans
        clean = len(population.sites_by_role("clean"))
        assert scans[0].nocoin_domains <= len(population.sites) - clean
