"""Unit tests for the fault plan, error taxonomy, and fault ledger."""

from __future__ import annotations

import pytest

from repro.faults.ledger import FaultLedger
from repro.faults.plan import (
    FAULT_PROFILES,
    FaultKind,
    FaultPlan,
    KIND_TO_CLASS,
    build_fault_plan,
)
from repro.faults.taxonomy import (
    TRANSIENT_CLASSES,
    ErrorClass,
    classify_reason,
    is_transient,
)


class TestFaultPlanDecisions:
    def test_decisions_are_deterministic(self):
        plan = FaultPlan(seed=7, rates={FaultKind.RESET: 0.5})
        first = [plan.injects(FaultKind.RESET, f"u{i}") for i in range(200)]
        second = [plan.injects(FaultKind.RESET, f"u{i}") for i in range(200)]
        assert first == second
        assert any(first) and not all(first)

    def test_seed_changes_decisions(self):
        a = FaultPlan(seed=1, rates={FaultKind.RESET: 0.5})
        b = FaultPlan(seed=2, rates={FaultKind.RESET: 0.5})
        keys = [f"u{i}" for i in range(200)]
        assert [a.injects(FaultKind.RESET, k) for k in keys] != [
            b.injects(FaultKind.RESET, k) for k in keys
        ]

    def test_rate_zero_never_and_rate_one_always(self):
        never = FaultPlan(seed=3, rates={})
        always = FaultPlan(seed=3, rates={FaultKind.DNS: 1.0})
        for i in range(50):
            assert not never.injects(FaultKind.DNS, f"h{i}")
            assert always.injects(FaultKind.DNS, f"h{i}")

    def test_rate_roughly_respected(self):
        plan = FaultPlan(seed=11, rates={FaultKind.RESET: 0.2})
        hits = sum(plan.injects(FaultKind.RESET, f"u{i}") for i in range(2000))
        assert 300 < hits < 500  # 20% ± generous tolerance

    def test_rejects_unknown_kind_and_bad_rate(self):
        with pytest.raises(ValueError):
            FaultPlan(rates={"meteor-strike": 0.1})
        with pytest.raises(ValueError):
            FaultPlan(rates={FaultKind.DNS: 1.5})

    def test_every_kind_maps_to_an_error_class(self):
        assert set(KIND_TO_CLASS) == set(FaultKind)


class TestFetchFaultSemantics:
    def test_dns_fault_is_permanent_per_host(self):
        plan = FaultPlan(seed=5, rates={FaultKind.DNS: 1.0})
        for attempt in range(4):
            fault = plan.fetch_fault("https", "www.example.org", "https://www.example.org/", attempt)
            assert fault is not None and fault.kind is FaultKind.DNS

    def test_tls_fault_only_on_https(self):
        plan = FaultPlan(seed=5, rates={FaultKind.TLS: 1.0})
        assert plan.fetch_fault("https", "h", "https://h/", 0).kind is FaultKind.TLS
        assert plan.fetch_fault("http", "h", "http://h/", 0) is None

    def test_flapping_origin_recovers_after_flap_failures(self):
        plan = FaultPlan(seed=5, rates={FaultKind.FLAP: 1.0}, flap_failures=2)
        assert plan.fetch_fault("http", "h", "http://h/", 0).kind is FaultKind.FLAP
        assert plan.fetch_fault("http", "h", "http://h/", 1).kind is FaultKind.FLAP
        assert plan.fetch_fault("http", "h", "http://h/", 2) is None

    def test_reset_is_keyed_per_attempt(self):
        plan = FaultPlan(seed=12, rates={FaultKind.RESET: 0.5})
        urls = [f"http://site{i}/" for i in range(100)]
        first = [plan.fetch_fault("http", f"site{i}", u, 0) is not None for i, u in enumerate(urls)]
        second = [plan.fetch_fault("http", f"site{i}", u, 1) is not None for i, u in enumerate(urls)]
        assert first != second  # a retry sees fresh transient decisions

    def test_permanent_faults_shadow_transients(self):
        plan = FaultPlan(seed=5, rates={FaultKind.DNS: 1.0, FaultKind.RESET: 1.0})
        fault = plan.fetch_fault("http", "h", "http://h/", 0)
        assert fault.kind is FaultKind.DNS


class TestWsDropAndPoolOutage:
    def test_ws_drop_frames_within_bounds(self):
        plan = FaultPlan(
            seed=9,
            rates={FaultKind.WS_DROP: 1.0},
            ws_drop_min_frames=2,
            ws_drop_max_frames=5,
        )
        for i in range(100):
            after = plan.ws_drop_after("wss://x/p", f"s{i}")
            assert 2 <= after <= 5

    def test_ws_drop_none_without_injection(self):
        plan = FaultPlan(seed=9, rates={})
        assert plan.ws_drop_after("wss://x/p", "s") is None

    def test_pool_outage_buckets_are_contiguous(self):
        plan = FaultPlan(seed=4, rates={FaultKind.POOL_OUTAGE: 0.5}, pool_outage_bucket=30.0)
        # every instant within one bucket gets the same verdict
        for t in (0.0, 10.0, 29.9):
            assert plan.pool_endpoint_down("p/be0", t) == plan.pool_endpoint_down("p/be0", 0.0)
        # across many buckets both states occur
        states = {plan.pool_endpoint_down("p/be0", 30.0 * b) for b in range(50)}
        assert states == {True, False}

    def test_poll_fault_clears_under_retry(self):
        plan = FaultPlan(seed=21, rates={FaultKind.POOL_OUTAGE: 0.5})
        outcomes = {
            plan.poll_fault("e1", seq, attempt)
            for seq in range(40)
            for attempt in range(3)
        }
        assert outcomes == {True, False}


class TestBuildFaultPlan:
    def test_none_and_empty_disable_injection(self):
        assert build_fault_plan("") is None
        assert build_fault_plan("none") is None

    def test_named_profiles(self):
        for name in ("mild", "heavy"):
            plan = build_fault_plan(name, seed=99)
            assert plan is not None and plan.seed == 99
            assert plan.rates == {k.value: r for k, r in FAULT_PROFILES[name].items()}

    def test_spec_string(self):
        plan = build_fault_plan("reset=0.2, ws-drop=0.1")
        assert plan.rate(FaultKind.RESET) == 0.2
        assert plan.rate(FaultKind.WS_DROP) == 0.1

    def test_bad_specs_raise(self):
        with pytest.raises(ValueError):
            build_fault_plan("sharknado")
        with pytest.raises(ValueError):
            build_fault_plan("reset=lots")


class TestTaxonomy:
    @pytest.mark.parametrize(
        "reason, expected",
        [
            ("name not resolved", ErrorClass.DNS),
            ("TLS handshake failed (no HTTPS endpoint)", ErrorClass.TLS),
            ("injected: connection reset", ErrorClass.CONNECTION_RESET),
            ("timed out", ErrorClass.TIMEOUT),
            ("404 not found", ErrorClass.HTTP_ERROR),
            ("too many redirects", ErrorClass.REDIRECT_LOOP),
            ("coinhive/be3 unavailable (injected outage)", ErrorClass.POOL_OUTAGE),
            ("https://x/: circuit open", ErrorClass.BREAKER_OPEN),
            ("injected: flapping origin (attempt 1/2)", ErrorClass.CONNECTION_RESET),
            ("something nobody anticipated", ErrorClass.UNKNOWN),
        ],
    )
    def test_classify_reason(self, reason, expected):
        assert classify_reason(reason) is expected

    def test_transient_set(self):
        for cls in TRANSIENT_CLASSES:
            assert is_transient(cls)
        assert not is_transient(ErrorClass.DNS)
        assert not is_transient(ErrorClass.TLS)


class TestFaultLedger:
    def test_balance_invariant(self):
        ledger = FaultLedger()
        ledger.record_injection(FaultKind.RESET)
        ledger.record_injection(FaultKind.RESET)
        ledger.record_injection(FaultKind.DNS)
        ledger.settle([FaultKind.RESET, FaultKind.RESET], recovered=True)
        ledger.settle([FaultKind.DNS], recovered=False)
        assert ledger.balanced()
        assert ledger.total_injected == 3
        assert ledger.total_recovered == 2

    def test_unbalanced_detected(self):
        ledger = FaultLedger()
        ledger.record_injection(FaultKind.RESET)
        assert not ledger.balanced()

    def test_merge_is_additive(self):
        a, b = FaultLedger(), FaultLedger()
        for ledger in (a, b):
            ledger.record_injection(FaultKind.SLOW)
            ledger.settle([FaultKind.SLOW], recovered=False)
            ledger.record_observed(ErrorClass.TIMEOUT)
            ledger.retries += 2
        a.merge(b)
        assert a.injected["slow"] == 2
        assert a.observed["timeout"] == 2
        assert a.retries == 4
        assert a.balanced()

    def test_summary_rows_and_status_line(self):
        ledger = FaultLedger()
        for _ in range(3):
            ledger.record_injection(FaultKind.RESET)
        ledger.record_injection(FaultKind.DNS)
        ledger.settle([FaultKind.RESET] * 3, recovered=True)
        ledger.settle([FaultKind.DNS], recovered=False)
        ledger.record_observed(ErrorClass.DNS)
        rows = ledger.summary_rows()
        assert rows[0][0] == "reset"  # count-descending order
        assert rows == [["reset", 3, 3, 0], ["dns", 1, 0, 1]]
        line = ledger.status_line()
        assert "injected=4" in line and "dns:1" in line

    def test_has_events(self):
        assert not FaultLedger().has_events()
        ledger = FaultLedger()
        ledger.checkpoint_resumed += 1
        assert ledger.has_events()
