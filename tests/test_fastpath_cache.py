"""Property tests for the fastpath wasm memo cache.

The cache is only allowed to change *when* work happens, never *what* the
answer is. Three laws are enforced here:

- **exactness** — every cached field equals the cold reference recompute
  (`wasm_signature`, `unordered_signature`, `whole_module_signature`,
  `decode_module`, `extract_features`), including cached *failures*;
- **boundedness** — the LRU never exceeds its capacity under adversarial
  access patterns, and evicted entries are recomputed correctly;
- **mergeable accounting** — hit/miss/eviction tallies obey the same
  merge law as the obs :class:`~repro.obs.metrics.MetricsRegistry`
  (associative, commutative, counter-additive), so shard stats can be
  summed like any other campaign counter.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import fastpath
from repro.core.fastpath import DEFAULT_CACHE_CAPACITY, CacheStats, WasmCache
from repro.core.signatures import (
    unordered_signature,
    wasm_signature,
    whole_module_signature,
)
from repro.obs.metrics import MetricsRegistry
from repro.wasm.builder import ModuleBlueprint, WasmCorpusBuilder
from repro.wasm.decoder import WasmDecodeError, decode_module
from repro.core.features import extract_features

_builder = WasmCorpusBuilder()
_CORPUS = tuple(
    _builder.build(ModuleBlueprint(family, variant))
    for family in ("coinhive", "cryptoloot", "math-lib")
    for variant in (0, 1)
)
_BAD_BLOBS = (b"", b"\x00asm", b"not wasm at all", b"\x00asm\x01\x00\x00\x00\xff")


def _stats_tuple(stats: CacheStats) -> tuple:
    return (stats.hits, stats.misses, stats.evictions)


class TestExactness:
    def test_signatures_equal_cold_recompute(self):
        cache = WasmCache()
        for wasm in _CORPUS:
            for _ in range(2):  # second pass exercises the hit path
                assert cache.ordered_signature(wasm) == wasm_signature(wasm)
                assert cache.unordered_signature(wasm) == unordered_signature(wasm)
                assert cache.whole_module_signature(wasm) == whole_module_signature(wasm)

    def test_module_and_features_equal_cold_recompute(self):
        cache = WasmCache()
        for wasm in _CORPUS:
            assert cache.module(wasm) == decode_module(wasm)
            assert cache.features(wasm) == extract_features(wasm)
            # hits return the same answers
            assert cache.module(wasm) == decode_module(wasm)
            assert cache.features(wasm) == extract_features(wasm)

    def test_negative_caching_re_raises_each_time(self):
        cache = WasmCache()
        for blob in _BAD_BLOBS:
            with pytest.raises(WasmDecodeError) as first:
                cache.module(blob)
            with pytest.raises(WasmDecodeError) as second:
                cache.module(blob)
            assert str(second.value) == str(first.value)
        # the second round of raises came from the cache, not re-decodes
        assert cache.stats.hits == len(_BAD_BLOBS)
        assert cache.stats.misses == len(_BAD_BLOBS)

    def test_failure_does_not_poison_other_fields(self):
        cache = WasmCache()
        wasm = _CORPUS[0]
        with pytest.raises(WasmDecodeError):
            cache.module(b"broken")
        assert cache.ordered_signature(wasm) == wasm_signature(wasm)


class TestBoundedness:
    @settings(max_examples=150, deadline=None)
    @given(
        capacity=st.integers(min_value=1, max_value=5),
        accesses=st.lists(
            st.integers(min_value=0, max_value=len(_CORPUS) + len(_BAD_BLOBS) - 1),
            max_size=40,
        ),
    )
    def test_lru_never_exceeds_capacity(self, capacity, accesses):
        cache = WasmCache(capacity=capacity)
        blobs = _CORPUS + _BAD_BLOBS
        for index in accesses:
            wasm = blobs[index]
            try:
                got = cache.ordered_signature(wasm)
            except WasmDecodeError:
                assert index >= len(_CORPUS)
            else:
                assert got == wasm_signature(wasm)
            assert len(cache) <= capacity
        # one signature call touches one or two cached fields (the digest,
        # plus the bodies it derives from on a cold entry)
        assert len(accesses) <= cache.stats.hits + cache.stats.misses <= 2 * len(accesses)
        assert cache.stats.evictions >= max(0, len(set(accesses)) - capacity)

    def test_eviction_then_reaccess_recomputes_correctly(self):
        cache = WasmCache(capacity=2)
        a, b, c = _CORPUS[:3]
        first = cache.ordered_signature(a)
        cache.ordered_signature(b)
        cache.ordered_signature(c)  # evicts a (LRU)
        assert cache.stats.evictions == 1
        assert len(cache) == 2
        misses_before = cache.stats.misses
        assert cache.ordered_signature(a) == first == wasm_signature(a)
        assert cache.stats.misses > misses_before  # re-access was a miss, not a hit

    def test_recently_used_entry_survives_eviction(self):
        cache = WasmCache(capacity=2)
        a, b, c = _CORPUS[:3]
        cache.ordered_signature(a)
        cache.ordered_signature(b)
        cache.ordered_signature(a)  # refresh a; b is now LRU
        cache.ordered_signature(c)  # evicts b
        hits_before = cache.stats.hits
        cache.ordered_signature(a)
        assert cache.stats.hits == hits_before + 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            WasmCache(capacity=0)
        with pytest.raises(ValueError):
            WasmCache(capacity=-3)


_tallies = st.builds(
    CacheStats,
    hits=st.integers(min_value=0, max_value=10**6),
    misses=st.integers(min_value=0, max_value=10**6),
    evictions=st.integers(min_value=0, max_value=10**6),
)


class TestMergeLaw:
    @settings(max_examples=200, deadline=None)
    @given(a=_tallies, b=_tallies, c=_tallies)
    def test_merge_is_associative_and_commutative(self, a, b, c):
        left = CacheStats(*_stats_tuple(a)).merge(b).merge(c)
        right = CacheStats(*_stats_tuple(b)).merge(a)
        right = CacheStats(*_stats_tuple(c)).merge(right)
        assert _stats_tuple(left) == _stats_tuple(right)

    @settings(max_examples=200, deadline=None)
    @given(a=_tallies, b=_tallies)
    def test_merge_agrees_with_registry_merge(self, a, b):
        # merging stats then exporting == exporting then merging registries
        merged_stats = CacheStats(*_stats_tuple(a)).merge(b).as_registry()
        merged_registries = a.as_registry()
        merged_registries.merge(b.as_registry())
        assert merged_stats == merged_registries

    def test_as_registry_counter_names(self):
        registry = CacheStats(hits=3, misses=2, evictions=1).as_registry()
        assert isinstance(registry, MetricsRegistry)
        assert registry.to_dict()["counters"] == {
            "fastpath.cache.hits": 3,
            "fastpath.cache.misses": 2,
            "fastpath.cache.evictions": 1,
        }

    def test_live_shard_stats_sum_like_counters(self):
        shard_a, shard_b = WasmCache(capacity=2), WasmCache(capacity=2)
        for wasm in _CORPUS[:3]:
            shard_a.ordered_signature(wasm)
        for wasm in _CORPUS[2:5]:
            shard_b.ordered_signature(wasm)
            shard_b.ordered_signature(wasm)
        total = CacheStats().merge(shard_a.stats).merge(shard_b.stats)
        assert _stats_tuple(total) == (
            shard_a.stats.hits + shard_b.stats.hits,
            shard_a.stats.misses + shard_b.stats.misses,
            shard_a.stats.evictions + shard_b.stats.evictions,
        )


class TestSharedCache:
    def test_reset_replaces_and_resizes(self):
        original = fastpath.shared_cache()
        try:
            replacement = fastpath.reset_shared_cache(capacity=7)
            assert fastpath.shared_cache() is replacement
            assert replacement is not original
            assert len(replacement) == 0
        finally:
            fastpath.reset_shared_cache(DEFAULT_CACHE_CAPACITY)

    def test_shared_cache_backs_signature_lookup(self):
        fastpath.reset_shared_cache()
        try:
            with fastpath.configure(True):
                from repro.core.signatures import build_reference_database

                db = build_reference_database()
                wasm = _CORPUS[0]
                hit = db.lookup(wasm)
                assert hit is not None and hit.family == "coinhive"
                assert fastpath.shared_cache().stats.misses > 0
                before = fastpath.shared_cache().stats.hits
                assert db.lookup(wasm) == hit
                assert fastpath.shared_cache().stats.hits > before
        finally:
            fastpath.reset_shared_cache()
