"""Cross-cutting property-based tests on core invariants."""

import hashlib

from hypothesis import given, settings, strategies as st

from repro.blockchain import varint
from repro.blockchain.hashing import FAST_PARAMS, cryptonight, hash_meets_difficulty
from repro.blockchain.merkle import tree_hash
from repro.coinhive.obfuscation import BlobObfuscator
from repro.coinhive.shortlink import id_to_index, index_to_id
from repro.core.nocoin import FilterList
from repro.pool.protocol import (
    JobMessage,
    LoginMessage,
    SubmitMessage,
    decode_message,
    encode_message,
)
from repro.web.html import parse_html


class TestVarintProperties:
    @given(st.integers(min_value=0, max_value=2**63 - 1))
    def test_roundtrip(self, value):
        assert varint.decode(varint.encode(value))[0] == value

    @given(st.integers(min_value=0, max_value=2**63 - 1))
    def test_encoding_is_minimal(self, value):
        encoded = varint.encode(value)
        assert len(encoded) == max(1, (value.bit_length() + 6) // 7)


class TestMerkleProperties:
    @given(st.lists(st.binary(min_size=8, max_size=8), min_size=1, max_size=24))
    @settings(max_examples=60, deadline=None)
    def test_root_changes_when_any_leaf_changes(self, seeds):
        leaves = [hashlib.sha3_256(s).digest() for s in seeds]
        root = tree_hash(leaves)
        mutated = list(leaves)
        mutated[0] = hashlib.sha3_256(b"MUTANT" + seeds[0]).digest()
        assert tree_hash(mutated) != root

    @given(st.integers(min_value=1, max_value=64))
    @settings(max_examples=30, deadline=None)
    def test_root_is_32_bytes_for_any_count(self, count):
        leaves = [hashlib.sha3_256(bytes([i % 256, i // 256])).digest() for i in range(count)]
        assert len(tree_hash(leaves)) == 32


class TestObfuscatorProperties:
    @given(st.binary(min_size=1, max_size=16), st.integers(min_value=0, max_value=40))
    @settings(max_examples=60, deadline=None)
    def test_involution_for_any_key_and_offset(self, key, offset):
        obfuscator = BlobObfuscator(key=key, offset=offset)
        blob = bytes(range(256))[: offset + len(key) + 20]
        assert obfuscator.apply(obfuscator.apply(blob)) == blob

    @given(st.binary(min_size=8, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_nonzero_key_always_changes_blob(self, key):
        if key == bytes(8):
            return
        obfuscator = BlobObfuscator(key=key, offset=0)
        blob = bytes(64)
        assert obfuscator.apply(blob) != blob


class TestShortLinkIdProperties:
    @given(st.integers(min_value=0, max_value=36 + 36**2 + 36**3 + 36**4))
    def test_roundtrip(self, index):
        assert id_to_index(index_to_id(index)) == index

    @given(st.integers(min_value=0, max_value=10**6 - 1))
    def test_monotone_in_length_then_alphabet_order(self, index):
        from repro.coinhive.shortlink import ALPHABET

        rank = {c: i for i, c in enumerate(ALPHABET)}
        a, b = index_to_id(index), index_to_id(index + 1)
        key_a = (len(a), tuple(rank[c] for c in a))
        key_b = (len(b), tuple(rank[c] for c in b))
        assert key_a < key_b


class TestPowProperties:
    @given(st.binary(min_size=1, max_size=64), st.integers(min_value=1, max_value=2**40))
    @settings(max_examples=40, deadline=None)
    def test_difficulty_monotonicity(self, data, difficulty):
        """Meeting difficulty d implies meeting every d' < d."""
        digest = cryptonight(data, FAST_PARAMS)
        if hash_meets_difficulty(digest, difficulty):
            assert hash_meets_difficulty(digest, max(1, difficulty // 2))

    @given(st.binary(min_size=0, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_pure_function(self, data):
        assert cryptonight(data, FAST_PARAMS) == cryptonight(data, FAST_PARAMS)


class TestProtocolProperties:
    @given(st.text(alphabet="0123456789ABCDEF", min_size=8, max_size=64))
    def test_login_roundtrip(self, token):
        assert decode_message(encode_message(LoginMessage(token=token))).token == token

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_submit_nonce_roundtrip(self, nonce):
        message = SubmitMessage(job_id="j", nonce=nonce, result_hex="00")
        assert decode_message(encode_message(message)).nonce == nonce

    @given(st.binary(max_size=80))
    def test_job_blob_roundtrip(self, blob):
        message = JobMessage(job_id="j", blob_hex=blob.hex(), target_hex="ffff0000")
        assert bytes.fromhex(decode_message(encode_message(message)).blob_hex) == blob


class TestHtmlProperties:
    @given(st.lists(st.sampled_from(["<div>", "</div>", "<script src='x.js'>", "</script>",
                                     "text", "<p", ">", "<!--", "-->", "&amp;"]), max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_parser_total_on_tag_soup(self, fragments):
        parse_html("".join(fragments))

    @given(st.text(alphabet=st.characters(blacklist_categories=("Cs",)), max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_text_content_roundtrips_through_serialize(self, text):
        if "<" in text or ">" in text or "&" in text:
            return
        doc = parse_html(f"<p>{text}</p>")
        again = parse_html(doc.serialize())
        assert again.root.text().strip() == doc.root.text().strip()


class TestFilterListProperties:
    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789.-/", min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_domain_anchor_never_matches_other_registrable_domain(self, path):
        filter_list = FilterList.from_lines(["||coinhive.com^"])
        url = f"https://example-{path.replace('/', '')or 'x'}.net/{path}"
        if "coinhive.com" in url:
            return
        assert filter_list.match_url(url) is None
