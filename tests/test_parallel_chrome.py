"""Sharded Chrome campaign: merged results must equal the sequential run.

Covers both Chrome-crawled datasets (alexa and .org), full report-list
equality, and the ``UnknownWSS`` display-family edge case in
``_display_family`` surviving the shard merge.
"""

from __future__ import annotations

import pytest

from repro.analysis.crawl import ChromeCampaign
from repro.analysis.parallel import (
    ParallelConfig,
    PopulationRecipe,
    ShardedChromeCampaign,
)
from repro.internet.population import build_population

SCALE = 0.04
SEED = 2018


@pytest.fixture(scope="module")
def sequential():
    """Sequential ChromeCampaign results for both Chrome datasets."""
    results = {}
    for dataset in ("alexa", "org"):
        population = build_population(dataset, seed=SEED, scale=SCALE)
        results[dataset] = ChromeCampaign(population=population).run()
    return results


def _sharded(dataset: str, mode: str, shards: int, workers: int):
    campaign = ShardedChromeCampaign(
        recipe=PopulationRecipe(dataset, seed=SEED, scale=SCALE),
        config=ParallelConfig(shards=shards, workers=workers, mode=mode),
    )
    return campaign, campaign.run()


class TestShardedEqualsSequential:
    @pytest.mark.parametrize("dataset", ["alexa", "org"])
    def test_serial_mode(self, sequential, dataset):
        _, result = _sharded(dataset, "serial", shards=5, workers=1)
        assert result == sequential[dataset]

    @pytest.mark.parametrize("dataset", ["alexa", "org"])
    def test_thread_mode(self, sequential, dataset):
        _, result = _sharded(dataset, "thread", shards=4, workers=3)
        assert result == sequential[dataset]

    def test_process_mode(self, sequential):
        _, result = _sharded("alexa", "process", shards=3, workers=2)
        assert result == sequential["alexa"]

    def test_report_list_in_population_order(self, sequential):
        population = build_population("alexa", seed=SEED, scale=SCALE)
        _, result = _sharded("alexa", "thread", shards=6, workers=2)
        assert [r.domain for r in result.reports] == [s.domain for s in population.sites]
        assert result.reports == sequential["alexa"].reports

    def test_cross_tab_and_fractions(self, sequential):
        _, result = _sharded("org", "thread", shards=4, workers=2)
        seq = sequential["org"]
        assert result.cross_tab == seq.cross_tab
        assert result.nocoin_categorized_fraction == seq.nocoin_categorized_fraction
        assert result.signature_categorized_fraction == seq.signature_categorized_fraction
        assert result.nocoin_categories == seq.nocoin_categories
        assert result.signature_categories == seq.signature_categories


class TestUnknownWssDisplayFamily:
    def test_display_family_mapping(self):
        assert ChromeCampaign._display_family("unknown-wss") == "UnknownWSS"
        assert ChromeCampaign._display_family("unknown-miner") == "UnknownWSS"
        assert ChromeCampaign._display_family("coinhive") == "coinhive"

    @pytest.mark.parametrize("dataset", ["alexa", "org"])
    def test_unknown_wss_survives_merge(self, sequential, dataset):
        """Both datasets seed unknown-wss miners at this scale; the merged
        signature counts must use the display name, never the raw family."""
        population = build_population(dataset, seed=SEED, scale=SCALE)
        assert any(s.family == "unknown-wss" for s in population.sites)
        _, result = _sharded(dataset, "thread", shards=5, workers=2)
        assert result.signature_counts == sequential[dataset].signature_counts
        # ordered: most_common tie-breaks must match the sequential render
        assert result.signature_counts.most_common() == sequential[dataset].signature_counts.most_common()
        assert "unknown-wss" not in result.signature_counts
        assert "unknown-miner" not in result.signature_counts
        assert result.signature_counts["UnknownWSS"] >= 1


class TestShardedChromeMetrics:
    def test_metrics_cover_all_sites(self, sequential):
        campaign, result = _sharded("alexa", "thread", shards=4, workers=2)
        metrics = campaign.metrics
        assert metrics is not None
        assert metrics.total_sites == len(result.reports)
        assert metrics.total_detector_hits == result.miner_wasm_sites
        assert not metrics.failed_shards

    def test_requires_population_or_recipe(self):
        with pytest.raises(ValueError):
            ShardedChromeCampaign(config=ParallelConfig(shards=2, workers=1, mode="serial"))
