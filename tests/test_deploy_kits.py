"""Tests for miner deployment kits and script behaviours."""

import pytest

from repro.coinhive.miner_script import CoinhiveMinerKit, OFFICIAL_JS_URL, OFFICIAL_WASM_URL
from repro.core.nocoin import default_nocoin_list
from repro.internet.deployments import BenignWasmKit, FamilyMinerKit, make_canned_pool_handler
from repro.pool.protocol import JobMessage, LoginMessage, decode_message, encode_message
from repro.sim.events import EventLoop
from repro.sim.rng import RngStream
from repro.web.http import SyntheticWeb
from repro.web.scripts import InjectScriptBehavior, NoOpBehavior, ScriptTag, inline_key
from repro.web.websocket import WebSocketChannel


class TestCoinhiveKit:
    @pytest.fixture()
    def kit(self, coinhive_service):
        web = SyntheticWeb()
        kit = CoinhiveMinerKit(service=coinhive_service, web=web)
        kit.install()
        return kit

    def test_install_registers_assets(self, kit):
        assert kit.web.lookup(OFFICIAL_JS_URL).content_type == "text/javascript"
        wasm = kit.web.lookup(OFFICIAL_WASM_URL)
        assert wasm.body()[:4] == b"\x00asm"

    def test_install_registers_all_endpoints(self, kit, coinhive_service):
        for endpoint in coinhive_service.endpoints():
            assert kit.web.lookup_ws(endpoint)

    def test_official_tags_are_nocoin_visible(self, kit):
        tags = kit.official_tags("TOKEN123")
        nocoin = default_nocoin_list()
        assert nocoin.match_url(tags[0].src) is not None

    def test_self_hosted_tags_are_nocoin_invisible(self, kit):
        tags = kit.self_hosted_tags("TOKEN123", "www.innocent.com")
        nocoin = default_nocoin_list()
        assert nocoin.match_url(tags[0].src) is None
        # …but the wasm payload is registered and identical-family
        wasm = kit.web.lookup("https://www.innocent.com/assets/runtime.wasm").body()
        assert wasm[:4] == b"\x00asm"

    def test_behavior_deobfuscates(self, kit, coinhive_service):
        tags = kit.official_tags("TOK", endpoint_index=2)
        behavior = tags[1].behavior
        assert behavior.deobfuscate is not None
        blob = coinhive_service.pow_input_for_endpoint(coinhive_service.endpoint_name(2), 0.0)
        restored = behavior.deobfuscate(blob)
        assert restored != blob

    def test_versioned_wasm_variant(self, kit):
        tags = kit.official_tags("TOK", wasm_variant=3)
        behavior = tags[1].behavior
        assert behavior.wasm_url.endswith("-v3.wasm")
        assert kit.web.lookup(behavior.wasm_url).body()[:4] == b"\x00asm"

    def test_authedmine_variant(self, coinhive_service):
        web = SyntheticWeb()
        kit = CoinhiveMinerKit(service=coinhive_service, web=web, consent_banner=True)
        kit.install()
        tags = kit.official_tags("TOK")
        assert "authedmine" in tags[0].src
        assert "askAndStart" in tags[1].inline


class TestFamilyKit:
    @pytest.fixture()
    def kit(self):
        return FamilyMinerKit(
            family="cryptoloot", web=SyntheticWeb(), rng=RngStream(1, "kit")
        )

    def test_endpoint_urls_from_profile(self, kit):
        url = kit.endpoint_url(0)
        assert url.startswith("wss://")
        assert "crypto-loot" in url

    def test_install_idempotent(self, kit):
        kit.install()
        kit.install()
        assert len(kit.web.ws_handlers) == kit.num_endpoints

    def test_official_tags_have_family_src(self, kit):
        tags = kit.tags("TOK", official_js=True)
        assert "crypto-loot" in tags[0].src
        assert tags[1].behavior is not None

    def test_self_hosted_tags_first_party(self, kit):
        tags = kit.tags("TOKEN", self_host="www.a-site.org")
        assert "a-site.org" in tags[1].behavior.wasm_url

    def test_family_without_backend_rejected(self):
        kit = FamilyMinerKit(family="math-lib", web=SyntheticWeb(), rng=RngStream(2, "x"))
        with pytest.raises(ValueError):
            kit.endpoint_url(0)


class TestCannedPool:
    def test_speaks_protocol(self):
        loop = EventLoop()
        handler = make_canned_pool_handler(RngStream(5, "pool"))
        received = []
        channel = WebSocketChannel(url="wss://x/y", loop=loop, server_handler=handler)
        channel.on_message = received.append
        channel.send(encode_message(LoginMessage(token="T")))
        loop.run_all()
        assert received
        job = decode_message(received[0])
        assert isinstance(job, JobMessage)
        # the canned blob is structurally valid
        from repro.pool.jobs import parse_blob

        parse_blob(bytes.fromhex(job.blob_hex))

    def test_ignores_garbage_frames(self):
        loop = EventLoop()
        handler = make_canned_pool_handler(RngStream(6, "pool"))
        channel = WebSocketChannel(url="wss://x/y", loop=loop, server_handler=handler)
        channel.send("not json at all")
        loop.run_all()  # no exception


class TestBenignKit:
    def test_tags_register_wasm(self):
        kit = BenignWasmKit(web=SyntheticWeb())
        tags = kit.tags("video-codec", 1, "www.tube.com")
        wasm_urls = [u for u in kit.web.resources if u.endswith(".wasm")]
        assert len(wasm_urls) == 1
        assert tags[1].behavior is not None

    def test_shared_urls_not_duplicated(self):
        kit = BenignWasmKit(web=SyntheticWeb())
        kit.tags("video-codec", 1, "www.tube.com")
        kit.tags("video-codec", 1, "www.tube.com")
        assert len([u for u in kit.web.resources if u.endswith(".wasm")]) == 1


class TestScriptTagHelpers:
    def test_to_element_with_src(self):
        element = ScriptTag(src="https://x/y.js").to_element()
        assert element.serialize() == '<script src="https://x/y.js"></script>'

    def test_to_element_inline(self):
        element = ScriptTag(inline="var a=1;").to_element()
        assert "var a=1;" in element.serialize()

    def test_inline_key_distinct(self):
        assert inline_key("a();") != inline_key("b();")

    def test_noop_behavior(self):
        assert NoOpBehavior().run(None) is None

    def test_inject_behavior_delay(self):
        injector = InjectScriptBehavior(script=ScriptTag(src="https://x/m.js"), delay=0.5)
        assert injector.delay == 0.5
