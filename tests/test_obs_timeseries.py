"""The windowed-telemetry recorder: ticks, rings, and the jsonl artifact.

The recorder is clock-agnostic by construction (the caller feeds it
time), so these tests drive it with plain floats and a hand-built
registry — no service, no campaign — and pin the contract the service
and campaign wiring rely on: counter deltas per tick, contiguous tick
indices including empty ticks, bounded eviction, fast-forward over poll
gaps, atomic per-tick flushing, and a schema-versioned artifact that
tolerates legacy headerless files but refuses future schemas.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (
    TIMESERIES_SCHEMA_VERSION,
    HistogramWindow,
    RecorderProgress,
    TickRecord,
    TimeSeries,
    TimeSeriesRecorder,
    TimeSeriesSchemaError,
    parse_dimensions,
    read_timeseries_jsonl,
    write_timeseries_jsonl,
)


class TestParseDimensions:
    def test_tenant_segment_is_lifted(self):
        base, labels = parse_dimensions("service.tenant.tenant-0.offered")
        assert base == "service.tenant.offered"
        assert labels == {"tenant": "tenant-0"}

    def test_tier_and_bundle(self):
        assert parse_dimensions("service.tier.static-only") == (
            "service.tier", {"tier": "static-only"},
        )
        assert parse_dimensions("service.bundle.refresh-1.verdicts") == (
            "service.bundle.verdicts", {"bundle": "refresh-1"},
        )

    def test_stratum(self):
        base, labels = parse_dimensions("crawl.zgrab0.stratum.top1k.hits")
        assert base == "crawl.zgrab0.stratum.hits"
        assert labels == {"stratum": "top1k"}

    def test_plain_names_pass_through(self):
        assert parse_dimensions("service.requests.offered") == (
            "service.requests.offered", {},
        )

    def test_trailing_token_without_value_passes_through(self):
        assert parse_dimensions("service.tier") == ("service.tier", {})


class TestRecorderTicks:
    def test_counters_become_per_tick_deltas(self):
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(registry, interval=1.0)
        registry.inc("work.done", 3)
        assert recorder.poll(1.0) == 1
        registry.inc("work.done", 5)
        assert recorder.poll(2.0) == 1
        deltas = [record.counters.get("work.done", 0) for record in recorder.records]
        assert deltas == [3, 5]

    def test_empty_ticks_are_materialized(self):
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(registry, interval=0.5)
        registry.inc("work.done")
        recorder.poll(2.0)
        assert [record.tick for record in recorder.records] == [0, 1, 2, 3]
        assert recorder.records[0].counters == {"work.done": 1}
        assert recorder.records[1].counters == {}

    def test_tick_times_are_relative_to_origin(self):
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(registry, interval=0.5, origin=1000.0)
        recorder.poll(1001.0)
        assert [record.time for record in recorder.records] == [0.5, 1.0]

    def test_poll_before_first_boundary_emits_nothing(self):
        recorder = TimeSeriesRecorder(MetricsRegistry(), interval=1.0)
        assert recorder.poll(0.999) == 0
        assert recorder.records == []

    def test_histogram_deltas_are_windowed(self):
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(registry, interval=1.0)
        registry.observe("service.latency", 0.004)
        recorder.poll(1.0)
        registry.observe("service.latency", 0.9)
        recorder.poll(2.0)
        first, second = recorder.records
        assert first.histograms["service.latency"].count == 1
        assert second.histograms["service.latency"].count == 1
        # the second window holds only the slow observation, not the tail
        assert second.histograms["service.latency"].quantile(0.5) == 1.0

    def test_gauges_snapshot_high_water(self):
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(registry, interval=1.0)
        registry.gauge_max("service.queue.depth", 7)
        recorder.poll(1.0)
        assert recorder.records[0].gauges["service.queue.depth"] == 7


class TestRingBounds:
    def test_capacity_evicts_oldest_ticks(self):
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(registry, interval=1.0, capacity=3)
        for t in range(1, 6):
            registry.inc("work.done", t)
            recorder.poll(float(t))
        assert [record.tick for record in recorder.records] == [2, 3, 4]
        assert [record.counters["work.done"] for record in recorder.records] == [3, 4, 5]

    def test_fast_forward_over_a_long_gap(self):
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(registry, interval=1.0, capacity=4)
        registry.inc("work.done", 2)
        recorder.poll(1.0)
        registry.inc("work.done", 10)
        recorder.poll(100.0)  # 99 pending ticks, only 4 can be retained
        ticks = [record.tick for record in recorder.records]
        assert ticks == [96, 97, 98, 99]
        # the accumulated delta lands in the first retained tick
        assert recorder.records[0].counters == {"work.done": 10}
        assert recorder.records[1].counters == {}

    def test_capacity_must_cover_longest_alert_window(self):
        from repro.obs.alerts import AlertRule, AlertRuleSet

        rules = AlertRuleSet(
            rules=(AlertRule.parse("r", "shed_rate>0.5", windows=(5.0, 60.0)),)
        )
        with pytest.raises(ValueError, match="cannot cover"):
            TimeSeriesRecorder(MetricsRegistry(), interval=1.0, rules=rules, capacity=10)

    def test_invalid_interval_and_capacity(self):
        with pytest.raises(ValueError):
            TimeSeriesRecorder(MetricsRegistry(), interval=0.0)
        with pytest.raises(ValueError):
            TimeSeriesRecorder(MetricsRegistry(), interval=1.0, capacity=0)


class TestFlush:
    def test_poll_flushes_after_each_emission(self, tmp_path):
        path = tmp_path / "timeseries.jsonl"
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(registry, interval=1.0, flush_path=path)
        registry.inc("work.done")
        recorder.poll(1.0)
        live = read_timeseries_jsonl(path)
        assert len(live.records) == 1
        registry.inc("work.done")
        recorder.poll(2.0)
        assert len(read_timeseries_jsonl(path).records) == 2

    def test_flush_is_atomic_no_tmp_left_behind(self, tmp_path):
        path = tmp_path / "timeseries.jsonl"
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(registry, interval=1.0, flush_path=path)
        recorder.finish(3.0)
        assert path.exists()
        assert list(tmp_path.glob("*.tmp")) == []

    def test_finish_flushes_even_without_new_ticks(self, tmp_path):
        path = tmp_path / "timeseries.jsonl"
        recorder = TimeSeriesRecorder(MetricsRegistry(), interval=1.0, flush_path=path)
        recorder.finish(0.2)  # no completed tick yet
        assert read_timeseries_jsonl(path).records == []


class TestRecorderProgress:
    def test_polls_on_advance_and_finish(self):
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(registry, interval=1.0)
        times = iter([0.3, 1.2, 2.5])
        progress = RecorderProgress(recorder, inner=None, now=lambda: next(times))
        progress.begin(10)
        progress.advance(1)
        assert len(recorder.records) == 0
        progress.advance(1)
        assert len(recorder.records) == 1
        progress.finish()
        assert len(recorder.records) == 2

    def test_forwards_to_inner_reporter(self):
        from repro.obs.heartbeat import ProgressReporter

        lines = []
        inner = ProgressReporter(0.001, emit=lines.append)
        recorder = TimeSeriesRecorder(MetricsRegistry(), interval=1.0)
        times = iter([0.5, 1.5])
        progress = RecorderProgress(recorder, inner=inner, now=lambda: next(times))
        progress.begin(2)
        progress.advance(1)
        progress.finish()
        assert lines  # the inner reporter still emits
        assert len(recorder.records) == 1


class TestJsonlRoundTrip:
    def _series(self):
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(registry, interval=0.5)
        registry.inc("service.requests.offered", 4)
        registry.observe("service.latency", 0.02)
        recorder.poll(0.5)
        registry.inc("service.requests.offered", 2)
        recorder.poll(1.5)
        return recorder.timeseries()

    def test_round_trip_is_lossless(self, tmp_path):
        series = self._series()
        path = tmp_path / "timeseries.jsonl"
        assert write_timeseries_jsonl(path, series) == 3
        loaded = read_timeseries_jsonl(path)
        assert loaded.to_jsonl() == series.to_jsonl()
        assert loaded.interval == series.interval

    def test_header_declares_current_schema(self, tmp_path):
        path = tmp_path / "timeseries.jsonl"
        write_timeseries_jsonl(path, self._series())
        header = json.loads(path.read_text().splitlines()[0])
        assert header["schema_version"] == TIMESERIES_SCHEMA_VERSION
        assert header["interval"] == 0.5

    def test_legacy_headerless_file_is_tolerated(self):
        legacy = (
            json.dumps({"tick": 0, "time": 0.5, "counters": {"x": 1}})
            + "\n"
            + json.dumps({"tick": 1, "time": 1.0, "counters": {}})
            + "\n"
        )
        series = TimeSeries.from_jsonl(legacy)
        assert [record.tick for record in series.records] == [0, 1]
        # interval recovered from the first record's end time
        assert series.interval == 0.5

    def test_future_schema_is_rejected(self):
        future = json.dumps(
            {"schema_version": TIMESERIES_SCHEMA_VERSION + 1, "interval": 1.0}
        )
        with pytest.raises(TimeSeriesSchemaError, match="upgrade repro"):
            TimeSeries.from_jsonl(future)

    def test_malformed_line_is_rejected(self):
        with pytest.raises(TimeSeriesSchemaError, match="malformed"):
            TimeSeries.from_jsonl("not json\n")
        with pytest.raises(TimeSeriesSchemaError, match="unrecognized"):
            TimeSeries.from_jsonl('{"neither": "tick nor alert"}\n')

    def test_alert_events_round_trip(self):
        from repro.obs.alerts import AlertEvent

        series = TimeSeries(interval=1.0)
        series.records.append(TickRecord(tick=0, time=1.0, counters={"x": 1}))
        series.alerts.append(
            AlertEvent(
                rule="shed-burn",
                kind="fire",
                tick=0,
                time=1.0,
                expr="shed_rate>0.2",
                tier="static-only",
                windows=((5.0, 0.6, 0.2, ">"),),
                summary="shed-burn firing",
            )
        )
        loaded = TimeSeries.from_jsonl(series.to_jsonl())
        assert loaded.to_jsonl() == series.to_jsonl()
        event = loaded.alerts[0]
        assert event.windows == ((5.0, 0.6, 0.2, ">"),)
        assert event.tier == "static-only"


class TestHistogramWindow:
    def test_counts_must_match_bounds(self):
        with pytest.raises(ValueError):
            HistogramWindow(bounds=(1.0, 2.0), counts=[1, 2])

    def test_quantile_is_covering_bucket_upper_bound(self):
        window = HistogramWindow(bounds=(0.1, 1.0), counts=[3, 1, 0], count=4)
        assert window.quantile(0.5) == 0.1
        assert window.quantile(0.99) == 1.0

    def test_overflow_bucket_reports_top_bound_not_inf(self):
        window = HistogramWindow(bounds=(0.1, 1.0), counts=[0, 0, 2], count=2)
        assert window.quantile(0.99) == 1.0

    def test_empty_window_quantile_is_zero(self):
        window = HistogramWindow(bounds=(0.1,), counts=[0, 0])
        assert window.quantile(0.5) == 0.0
        assert window.mean_seconds == 0.0

    def test_merge_requires_matching_bounds(self):
        a = HistogramWindow(bounds=(0.1,), counts=[1, 0], count=1)
        b = HistogramWindow(bounds=(0.2,), counts=[1, 0], count=1)
        with pytest.raises(ValueError, match="bounds differ"):
            a.merge(b)


class TestLedgerIntegration:
    def _write(self, run_dir, series):
        from repro.obs.ledger import RunManifest, write_run

        manifest = RunManifest.build(
            "loadgen", {"seed": 1, "timeseries_interval": series.interval},
            git_describe="test",
        )
        write_run(run_dir, manifest, MetricsRegistry(), [], timeseries=series)

    def test_timeseries_artifact_round_trips_through_run_dir(self, tmp_path):
        from repro.obs.ledger import load_run

        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(registry, interval=1.0)
        registry.inc("service.requests.offered", 9)
        recorder.poll(2.0)
        series = recorder.timeseries()
        self._write(tmp_path / "run", series)
        loaded = load_run(tmp_path / "run")
        assert loaded.timeseries is not None
        assert loaded.timeseries.to_jsonl() == series.to_jsonl()
        manifest = json.loads((tmp_path / "run" / "manifest.json").read_text())
        assert "timeseries.jsonl" in manifest["artifacts"]

    def test_empty_timeseries_writes_no_artifact(self, tmp_path):
        from repro.obs.ledger import load_run

        self._write(tmp_path / "run", TimeSeries(interval=1.0))
        assert not (tmp_path / "run" / "timeseries.jsonl").exists()
        assert load_run(tmp_path / "run").timeseries is None

    def test_rewrite_without_timeseries_removes_stale_artifact(self, tmp_path):
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(registry, interval=1.0)
        registry.inc("x")
        recorder.poll(1.0)
        self._write(tmp_path / "run", recorder.timeseries())
        assert (tmp_path / "run" / "timeseries.jsonl").exists()
        self._write(tmp_path / "run", TimeSeries(interval=1.0))
        assert not (tmp_path / "run" / "timeseries.jsonl").exists()

    def test_timeseries_interval_is_an_execution_param(self):
        from repro.obs.ledger import RunManifest

        a = RunManifest.build(
            "loadgen", {"seed": 1, "timeseries_interval": 0.5, "cooldown": 10.0},
            git_describe="test",
        )
        b = RunManifest.build(
            "loadgen", {"seed": 1, "timeseries_interval": 0.0, "cooldown": 0.0},
            git_describe="test",
        )
        assert a.identity() == b.identity()
