"""Overhead of the windowed-telemetry recorder.

Two measurements, both persisted into BENCH_SUMMARY.json so CI can smoke
them without scraping tables:

1. the microcost of one ``poll`` that crosses a tick boundary over a
   service-shaped registry (the per-tick snapshot: counter deltas,
   histogram bucket diffs, burn-rate rule evaluation), and
2. the end-to-end cost a 0.5s-interval recorder adds to a seeded loadgen
   campaign, as a ratio against the same campaign with telemetry off.

The assertions are deliberately generous — they catch "the recorder made
campaigns several times slower", not scheduler jitter.
"""

from __future__ import annotations

import time

from conftest import emit, emit_json

from repro.obs.alerts import default_service_rules
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TimeSeriesRecorder
from repro.service.loadgen import LoadgenConfig, run_loadgen

#: a registry shaped like the verdict server's: a handful of scalar
#: counters, per-tenant and per-bundle dimensions, two latency histograms
_TENANTS = 4
_BUNDLES = 3


def _service_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.inc("service.requests.offered", 0)
    registry.inc("service.requests.completed", 0)
    registry.inc("service.rejected.queue_full", 0)
    for t in range(_TENANTS):
        registry.inc(f"service.tenant.tenant-{t}.offered", 0)
    for b in range(_BUNDLES):
        registry.inc(f"service.bundle.v{b}.verdicts", 0)
    return registry


def _spin_registry(registry: MetricsRegistry, step: int) -> None:
    registry.inc("service.requests.offered", 24)
    registry.inc("service.requests.completed", 20)
    registry.inc("service.rejected.queue_full", 4)
    registry.inc(f"service.tenant.tenant-{step % _TENANTS}.offered", 24)
    registry.inc(f"service.bundle.v{step % _BUNDLES}.verdicts", 20)
    registry.inc("service.tier.full", 20)
    for i in range(20):
        registry.observe("service.latency", 0.001 * (1 + (step + i) % 40))
        registry.observe("service.queue_wait", 0.0005 * (1 + (step + i) % 25))


def test_perf_timeseries_poll(benchmark):
    """One boundary-crossing poll: snapshot + rule evaluation."""
    registry = _service_registry()
    recorder = TimeSeriesRecorder(
        registry, interval=1.0, rules=default_service_rules(), capacity=256
    )
    state = {"now": 0.0, "step": 0}

    def tick():
        _spin_registry(registry, state["step"])
        state["step"] += 1
        state["now"] += 1.0
        recorder.poll(state["now"])

    benchmark(tick)
    assert recorder.records, "benchmark never crossed a tick boundary"


def test_timeseries_overhead_summary():
    """Recorder-on vs recorder-off loadgen, min-of-repeats wall time."""
    base = dict(seed=11, scale=0.05, rate=24.0, duration=6.0, tenants=2)

    def best_of(config: LoadgenConfig, repeats: int = 5) -> float:
        times = []
        for _ in range(repeats):
            start = time.perf_counter()
            run_loadgen(config)
            times.append(time.perf_counter() - start)
        return min(times)

    off = best_of(LoadgenConfig(**base))
    on = best_of(LoadgenConfig(timeseries_interval=0.5, **base))

    report = run_loadgen(LoadgenConfig(timeseries_interval=0.5, **base))
    ticks = len(report.recorder.records)
    overhead = round(on / off, 3)

    # per-tick microcost, measured directly (boundary-crossing polls)
    registry = _service_registry()
    recorder = TimeSeriesRecorder(
        registry, interval=1.0, rules=default_service_rules(), capacity=256
    )
    polls = 200
    start = time.perf_counter()
    for step in range(polls):
        _spin_registry(registry, step)
        recorder.poll(float(step + 1))
    per_tick_us = (time.perf_counter() - start) / polls * 1e6

    payload = {
        "loadgen_seconds_off": round(off, 4),
        "loadgen_seconds_on": round(on, 4),
        "overhead_ratio": overhead,
        "ticks_recorded": ticks,
        "poll_us_per_tick": round(per_tick_us, 1),
    }
    emit_json("timeseries_overhead", payload)
    emit(
        "timeseries_overhead",
        "\n".join(
            [
                f"loadgen {base['duration']}s @ {base['rate']} r/s: "
                f"off={off * 1e3:.1f}ms on={on * 1e3:.1f}ms "
                f"({overhead}x, {ticks} ticks)",
                f"recorder poll (snapshot + rules): {per_tick_us:.1f}us/tick",
            ]
        ),
    )
    assert ticks > 0, payload
    # generous: the 0.5s recorder must not multiply campaign cost
    assert overhead < 3.0, payload
