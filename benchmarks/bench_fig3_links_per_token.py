"""Figure 3 — short links per token: heavy-user power law.

Paper: 1/3 of all 1.7M links belong to a single user; ~85% to ten users;
the rank curve is a power law over ~10^4 tokens.
"""

from __future__ import annotations

from conftest import emit
from repro.analysis.reporting import render_table


def test_fig3_links_per_token(benchmark, shortlink_study):
    result = benchmark.pedantic(shortlink_study.links_per_token, rounds=1, iterations=1)

    rows = [
        ["total links", result.total_links, "1,709,203 (we run at 1/100 scale)"],
        ["tokens", len(result.counts_by_rank), "~10^4"],
        ["top-1 share", f"{result.top1_share:.1%}", "1/3"],
        ["top-10 share", f"{result.topn_share(10):.1%}", "85%"],
        ["rank-1 links", result.counts_by_rank[0], "~570k at paper scale"],
    ]
    cdf = result.cdf_points()
    for rank in (1, 10, 100, min(1000, len(cdf))):
        rows.append([f"CDF @ rank {rank}", f"{cdf[rank - 1][1]:.1%}", ""])
    emit(
        "fig3_links_per_token",
        render_table(["quantity", "measured", "paper"], rows,
                     title="Figure 3: links per token (heavy-user concentration)"),
    )

    assert abs(result.top1_share - 1 / 3) < 0.02
    assert abs(result.topn_share(10) - 0.85) < 0.02
    # power law: counts strictly dominated by the head
    assert result.counts_by_rank[0] > 10 * result.counts_by_rank[10]
