"""Verdict-server throughput under the acceptance-criteria load.

Measures wall-clock requests/second through the full service path
(admission → fetch → tier-aware cascade → verdict) for two regimes and
emits them into BENCH_SUMMARY.json so CI can pin server cost per request
across commits:

- ``requests_per_sec_clean``: fault-free run at nominal capacity — the
  pure cascade cost;
- ``requests_per_sec_overload``: heavy chaos at 2× capacity with a
  mid-run hot reload and a rejected reload — the run the acceptance
  criteria gate (bounded queue, balanced ledger, zero mixed bundles,
  measured here so a regression that slows degraded serving shows up
  as a throughput drop).

Note requests/second here is *wall-clock* service throughput (how fast
the simulation serves), not simulated load — the simulated timeline is
fixed by the seed.
"""

from __future__ import annotations

import time

from conftest import emit, emit_json
from repro.analysis.reporting import render_table
from repro.service.loadgen import LoadgenConfig, run_loadgen

SEED = 2018


def _run(config):
    started = time.perf_counter()
    report = run_loadgen(config)
    elapsed = time.perf_counter() - started
    return report, elapsed


def test_service_throughput(benchmark):
    clean_config = LoadgenConfig(
        seed=SEED, dataset="alexa", scale=0.1, rate=20.0, duration=30.0, tenants=4
    )
    overload_config = LoadgenConfig(
        seed=SEED,
        dataset="alexa",
        scale=0.1,
        rate=48.0,
        duration=30.0,
        tenants=4,
        fault_profile="heavy",
        reload_at=(10.0,),
        bad_reload_at=(20.0,),
    )

    clean_report, clean_elapsed = _run(clean_config)
    overload_report, _ = _run(overload_config)  # warm caches for the timed run
    overload_report, overload_elapsed = _run(overload_config)
    benchmark.pedantic(lambda: run_loadgen(clean_config), rounds=1, iterations=1)

    clean_rate = clean_report.offered / clean_elapsed
    overload_rate = overload_report.offered / overload_elapsed

    # the acceptance criteria, re-asserted where the numbers are produced
    assert overload_report.server.ledger.balanced()
    assert overload_report.counter("service.reload.mixed_bundle") == 0
    depth = overload_report.server.metrics.gauges["service.queue.depth"]
    assert depth <= overload_report.config.policy.queue_capacity

    rows = [
        [
            "clean @ nominal",
            clean_report.offered,
            f"{clean_rate:,.0f}/s",
            f"{clean_report.shed_rate:.1%}",
            f"{clean_report.latency_quantile(0.99) * 1000:.0f}ms",
        ],
        [
            "heavy chaos @ 2x",
            overload_report.offered,
            f"{overload_rate:,.0f}/s",
            f"{overload_report.shed_rate:.1%}",
            f"{overload_report.latency_quantile(0.99) * 1000:.0f}ms",
        ],
    ]
    emit(
        "service_throughput",
        render_table(
            ["regime", "requests", "served/sec (wall)", "shed", "p99 (sim)"], rows
        ),
    )
    emit_json(
        "service_throughput",
        {
            "requests_per_sec_clean": round(clean_rate, 1),
            "requests_per_sec_overload": round(overload_rate, 1),
            "clean_requests": clean_report.offered,
            "overload_requests": overload_report.offered,
            "overload_shed_rate": round(overload_report.shed_rate, 4),
            "overload_p99_sim_seconds": round(
                overload_report.latency_quantile(0.99), 4
            ),
            "overload_max_queue_depth": int(depth),
        },
    )
