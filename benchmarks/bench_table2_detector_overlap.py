"""Table 2 — NoCoin vs Wasm-signature detection on the Chrome crawls.

Paper:

    Alexa: NoCoin hits 993, of which 129 with miner Wasm; Wasm miners 737,
           129 blocked by NoCoin, 608 missed (82%).
    .org:  978 / 450 / 1372 / 450 / 922 (67%).

Headline: the fingerprint finds up to 5.7× more miners than the block list.
"""

from __future__ import annotations

from conftest import emit
from repro.analysis.reporting import render_table
from repro.core.detector import cross_tabulate

PAPER = {
    "alexa": dict(nocoin=993, nocoin_wasm=129, wasm=737, blocked=129, missed=608, missed_pct=82),
    "org": dict(nocoin=978, nocoin_wasm=450, wasm=1372, blocked=450, missed=922, missed_pct=67),
}


def test_table2_detector_overlap(benchmark, chrome_results):
    """Times the cross-tabulation over the shared Chrome crawl reports."""

    def run():
        return {name: cross_tabulate(result.reports) for name, result in chrome_results.items()}

    tabs = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, tab in tabs.items():
        paper = PAPER[name]
        rows.append(
            [
                name,
                f"{tab.nocoin_hits} ({paper['nocoin']})",
                f"{tab.nocoin_hits_with_miner_wasm} ({paper['nocoin_wasm']})",
                f"{tab.wasm_miner_hits} ({paper['wasm']})",
                f"{tab.miners_blocked_by_nocoin} ({paper['blocked']})",
                f"{tab.miners_missed_by_nocoin} ({paper['missed']})",
                f"{tab.missed_fraction:.0%} ({paper['missed_pct']}%)",
                f"{tab.detection_factor:.1f}x",
            ]
        )
    emit(
        "table2_detector_overlap",
        render_table(
            [
                "dataset", "NoCoin hits", "having Wasm miner", "Wasm hits",
                "blocked by NoCoin", "missed by NoCoin", "missed %", "factor",
            ],
            rows,
            title="Table 2: miners found by NoCoin vs Wasm signatures (paper in parens)",
        ),
    )

    alexa, org = tabs["alexa"], tabs["org"]
    # shape: Alexa misses more than .org; both miss the majority; factor > 2×
    assert alexa.missed_fraction > org.missed_fraction
    assert alexa.missed_fraction > 0.7
    assert 0.5 < org.missed_fraction < 0.8
    assert alexa.detection_factor > 3.0
