"""Ablation — signature granularity (DESIGN.md §6).

Compares the paper's ordered function-body hash against two variants:

- whole-module hash: breaks when only metadata (name section) changes,
- unordered function-set hash: survives function reordering.

The experiment applies two cheap obfuscations to every corpus module —
name-section stripping and function reordering — and measures which
signature variant still identifies the module.
"""

from __future__ import annotations

from conftest import emit
from repro.analysis.reporting import render_table
from repro.core.signatures import unordered_signature, wasm_signature, whole_module_signature
from repro.wasm.builder import WasmCorpusBuilder, all_blueprints
from repro.wasm.decoder import decode_module
from repro.wasm.encoder import encode_module


def _strip_names(data: bytes) -> bytes:
    module = decode_module(data)
    module.func_names = {}
    module.module_name = None
    return encode_module(module)


def _reorder_functions(data: bytes) -> bytes:
    module = decode_module(data)
    module.codes = list(reversed(module.codes))
    module.func_type_indices = list(reversed(module.func_type_indices))
    module.func_names = {}
    module.module_name = None
    return encode_module(module)


def test_ablation_signature_granularity(benchmark):
    builder = WasmCorpusBuilder()
    corpus = [builder.build(bp) for bp in all_blueprints()]

    def run():
        survival = {"ordered": [0, 0], "unordered": [0, 0], "whole-module": [0, 0]}
        fns = {
            "ordered": wasm_signature,
            "unordered": unordered_signature,
            "whole-module": whole_module_signature,
        }
        for data in corpus:
            stripped = _strip_names(data)
            reordered = _reorder_functions(data)
            for name, fn in fns.items():
                baseline = fn(data)
                if fn(stripped) == baseline:
                    survival[name][0] += 1
                if fn(reordered) == baseline:
                    survival[name][1] += 1
        return survival

    survival = benchmark.pedantic(run, rounds=1, iterations=1)
    total = len(corpus)
    rows = [
        [name, f"{s[0]}/{total}", f"{s[1]}/{total}"]
        for name, s in survival.items()
    ]
    emit(
        "ablation_signatures",
        render_table(
            ["signature variant", "survives name stripping", "survives fn reordering"],
            rows,
            title="Ablation: signature granularity vs cheap obfuscations",
        ),
    )

    # the paper's choice survives metadata changes but not reordering;
    # whole-module survives neither; unordered survives both
    assert survival["ordered"][0] == total
    assert survival["ordered"][1] == 0
    # whole-module breaks for every module that actually carried names
    # (families that ship stripped survive trivially: stripping is a no-op)
    assert survival["whole-module"][0] < total * 0.2
    assert survival["unordered"][0] == total
    assert survival["unordered"][1] == total
