"""Ablation — PoW-input polling rate (DESIGN.md §6).

The paper polls every 500 ms. Coarser polling risks missing short-lived
templates (and with them, attributable blocks). This ablation sweeps the
interval and measures PoW-input coverage per block interval.
"""

from __future__ import annotations

from conftest import emit
from repro.analysis.reporting import render_table
from repro.blockchain.chain import Blockchain
from repro.blockchain.difficulty import DifficultyAdjuster
from repro.blockchain.hashing import FAST_PARAMS
from repro.coinhive.service import CoinhiveService
from repro.core.pool_association import PoolObserver
from repro.sim.events import EventLoop

INTERVALS = (0.5, 5.0, 30.0, 120.0)


def test_ablation_polling_rate(benchmark):
    def run():
        coverage = {}
        for interval in INTERVALS:
            chain = Blockchain(
                pow_params=FAST_PARAMS,
                adjuster=DifficultyAdjuster(window=30, cut=2, initial_difficulty=10**9),
                genesis_timestamp=1_526_000_000,
            )
            service = CoinhiveService(chain=chain)
            observer = PoolObserver(
                fetch_input=service.pow_input_for_endpoint,
                endpoints=service.endpoints(),
                poll_interval=interval,
                detransform=service.obfuscator.revert,
            )
            loop = EventLoop()
            observer.run(loop, duration=600.0)
            coverage[interval] = (observer.max_inputs_per_block(), observer.polls)
        return coverage

    coverage = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [f"{interval}s", inputs, f"{inputs / 128:.0%}", polls]
        for interval, (inputs, polls) in coverage.items()
    ]
    emit(
        "ablation_polling",
        render_table(
            ["poll interval", "distinct PoW inputs seen", "of 128 possible", "polls"],
            rows,
            title="Ablation: polling rate vs PoW-input coverage (600 s window)",
        ),
    )

    # 500 ms (paper) reaches full coverage; two-minute polling cannot
    assert coverage[0.5][0] > coverage[120.0][0]
    assert coverage[0.5][0] >= 100
