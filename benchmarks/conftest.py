"""Shared fixtures for the reproduction benchmarks.

Expensive artifacts (full-calibration populations, the Chrome crawls, the
three-month network simulation) are computed once per session and shared;
the benchmark that owns an artifact times its construction, the others time
their own aggregation step on top of it.

Every benchmark prints the regenerated table/figure and appends it to
``benchmarks/results/<name>.txt`` so paper-vs-measured comparisons survive
the run.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis.crawl import ChromeCampaign, ZgrabCampaign
from repro.analysis.network import NetworkSimConfig, simulate_network
from repro.analysis.shortlink import ShortLinkStudy
from repro.core.signatures import build_reference_database
from repro.internet.population import build_population
from repro.internet.shortlinks import build_shortlink_population

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

SEED = 2018
#: Full calibration scale for the Chrome datasets; .com's zgrab-only zone is
#: large, so it runs at 1.0 too but has no browser layer.
SCALE = 1.0


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def signature_db():
    return build_reference_database()


@pytest.fixture(scope="session")
def populations():
    return {
        name: build_population(name, seed=SEED, scale=SCALE)
        for name in ("alexa", "com", "net", "org")
    }


@pytest.fixture(scope="session")
def zgrab_scans(populations):
    return {
        name: ZgrabCampaign(population=populations[name]).both_scans()
        for name in ("alexa", "com", "net", "org")
    }


@pytest.fixture(scope="session")
def chrome_results(populations):
    return {
        name: ChromeCampaign(population=populations[name]).run()
        for name in ("alexa", "org")
    }


@pytest.fixture(scope="session")
def shortlink_study():
    population = build_shortlink_population(seed=SEED, scale=0.01)
    return ShortLinkStudy(population=population, sample_per_top_user=1000)


@pytest.fixture(scope="session")
def network_observation():
    return simulate_network(NetworkSimConfig(seed=SEED))
