"""Shared fixtures for the reproduction benchmarks.

Expensive artifacts (full-calibration populations, the Chrome crawls, the
three-month network simulation) are computed once per session and shared;
the benchmark that owns an artifact times its construction, the others time
their own aggregation step on top of it.

Every benchmark prints the regenerated table/figure and appends it to
``benchmarks/results/<name>.txt`` so paper-vs-measured comparisons survive
the run. Benchmarks with machine-readable payloads additionally call
:func:`emit_json`; at session end every ``results/*.json`` (plus the
pytest-benchmark timing stats collected by the autouse fixture) is merged
into ``results/BENCH_SUMMARY.json`` — one artifact CI or ``repro obs
diff``-style tooling can consume without scraping tables.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.analysis.crawl import ChromeCampaign, ZgrabCampaign
from repro.analysis.network import NetworkSimConfig, simulate_network
from repro.analysis.shortlink import ShortLinkStudy
from repro.core.signatures import build_reference_database
from repro.internet.population import build_population
from repro.internet.shortlinks import build_shortlink_population

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

SEED = 2018
#: Full calibration scale for the Chrome datasets; .com's zgrab-only zone is
#: large, so it runs at 1.0 too but has no browser layer.
SCALE = 1.0


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def emit_json(name: str, payload: dict) -> None:
    """Persist a machine-readable result under benchmarks/results/<name>.json."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )


#: test name → pytest-benchmark timing stats, collected by the autouse
#: fixture below and folded into BENCH_SUMMARY.json at session end
_BENCH_TIMINGS: dict = {}


@pytest.fixture(autouse=True)
def _capture_benchmark_timings(request):
    yield
    benchmark = getattr(request.node, "funcargs", {}).get("benchmark")
    stats = getattr(getattr(benchmark, "stats", None), "stats", None)
    if stats is None:
        return
    try:
        _BENCH_TIMINGS[request.node.name] = {
            "mean_s": stats.mean,
            "min_s": stats.min,
            "max_s": stats.max,
            "stddev_s": stats.stddev,
            "rounds": stats.rounds,
        }
    except (AttributeError, ValueError):  # fewer rounds than a stat needs
        pass


def pytest_sessionfinish(session, exitstatus):
    if _BENCH_TIMINGS:
        emit_json("bench_timings", {"benchmarks": dict(sorted(_BENCH_TIMINGS.items()))})
    merged = {}
    for path in sorted(RESULTS_DIR.glob("*.json")) if RESULTS_DIR.exists() else []:
        if path.name == "BENCH_SUMMARY.json":
            continue
        try:
            merged[path.stem] = json.loads(path.read_text())
        except ValueError:
            continue
    if merged:
        (RESULTS_DIR / "BENCH_SUMMARY.json").write_text(
            json.dumps(merged, indent=2, sort_keys=True) + "\n"
        )


@pytest.fixture(scope="session")
def signature_db():
    return build_reference_database()


@pytest.fixture(scope="session")
def populations():
    return {
        name: build_population(name, seed=SEED, scale=SCALE)
        for name in ("alexa", "com", "net", "org")
    }


@pytest.fixture(scope="session")
def zgrab_scans(populations):
    return {
        name: ZgrabCampaign(population=populations[name]).both_scans()
        for name in ("alexa", "com", "net", "org")
    }


@pytest.fixture(scope="session")
def chrome_results(populations):
    return {
        name: ChromeCampaign(population=populations[name]).run()
        for name in ("alexa", "org")
    }


@pytest.fixture(scope="session")
def shortlink_study():
    population = build_shortlink_population(seed=SEED, scale=0.01)
    return ShortLinkStudy(population=population, sample_per_top_user=1000)


@pytest.fixture(scope="session")
def network_observation():
    return simulate_network(NetworkSimConfig(seed=SEED))
