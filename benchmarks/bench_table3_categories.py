"""Table 3 — top-5 RuleSpace categories, NoCoin vs signature detections.

Paper (Alexa): NoCoin column led by Gaming (19%), signature column led by
Pornography (19%); categorized fractions 79% vs 74%.
Paper (.org): NoCoin led by Gaming (29%), signature led by Religion (9%);
categorized 54% vs 42%. The divergence between the columns — driven by the
gaming ad network false positive — is the finding.
"""

from __future__ import annotations

from conftest import emit
from repro.analysis.reporting import render_table


def test_table3_categories(benchmark, chrome_results):
    """Times nothing heavy: renders category tables from the shared crawls."""

    def run():
        out = {}
        for name, result in chrome_results.items():
            out[name] = {
                "nocoin": result.nocoin_categories.most_common(5),
                "signature": result.signature_categories.most_common(5),
                "nocoin_cov": result.nocoin_categorized_fraction,
                "signature_cov": result.signature_categorized_fraction,
            }
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)

    for name, tables in data.items():
        nocoin_total = sum(count for _, count in tables["nocoin"]) or 1
        sig_total = sum(count for _, count in tables["signature"]) or 1
        rows = []
        for i in range(5):
            nocoin_cell = sig_cell = ""
            if i < len(tables["nocoin"]):
                cat, count = tables["nocoin"][i]
                nocoin_cell = f"{cat} ({count})"
            if i < len(tables["signature"]):
                cat, count = tables["signature"][i]
                sig_cell = f"{cat} ({count})"
            rows.append([i + 1, nocoin_cell, sig_cell])
        rows.append(
            [
                "cov.",
                f"{tables['nocoin_cov']:.0%}",
                f"{tables['signature_cov']:.0%}",
            ]
        )
        emit(
            f"table3_categories_{name}",
            render_table(
                ["rank", "NoCoin-detected sites", "signature-detected sites"],
                rows,
                title=f"Table 3 ({name}): top categories per detector",
            ),
        )

    # shape assertions
    alexa = data["alexa"]
    assert alexa["nocoin"][0][0] == "Gaming"          # ad-network skew
    assert alexa["nocoin"][0][0] != alexa["signature"][0][0]  # columns diverge
    assert alexa["nocoin_cov"] > data["org"]["nocoin_cov"]    # .org harder to classify
    org = data["org"]
    assert org["nocoin"][0][0] == "Gaming"
    assert any(cat == "Religion" for cat, _ in org["signature"][:3])
