"""Extension — feeding fingerprint results back into the block list.

The paper's operational takeaway is that lists lag the ecosystem. This
bench closes the loop: generate Adblock rules from the signature-detected
miners of the Alexa and .org crawls and measure how far the NoCoin gap
(82% / 67% missed) closes — and what structurally cannot be closed
(first-party loaders).
"""

from __future__ import annotations

from conftest import emit
from repro.analysis.defense import augmented_list, evaluate_coverage, generate_rules
from repro.analysis.reporting import render_table


def test_ext_blocklist_generation(benchmark, chrome_results, populations):
    def run():
        out = {}
        for name, result in chrome_results.items():
            site_hosts = {
                s.domain: f"www.{s.domain}" for s in populations[name].sites
            }
            generated = generate_rules(result.reports, site_hosts)
            combined = augmented_list(generated)
            out[name] = (generated, evaluate_coverage(result.reports, combined))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, (generated, comparison) in results.items():
        rows.append(
            [
                name,
                comparison.miners_total,
                len(generated),
                f"{comparison.base_missed_fraction:.0%}",
                f"{comparison.augmented_missed_fraction:.0%}",
            ]
        )
    emit(
        "ext_blocklist_generation",
        render_table(
            ["dataset", "miners", "generated rules", "missed (NoCoin)", "missed (augmented)"],
            rows,
            title="Extension: block-list rules generated from fingerprint results",
        ),
    )

    for name, (_generated, comparison) in results.items():
        assert comparison.augmented_missed_fraction < comparison.base_missed_fraction / 3
