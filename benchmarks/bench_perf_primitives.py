"""Performance benchmarks of the substrate primitives.

These are classic pytest-benchmark microbenchmarks (multiple rounds), so
regressions in the hot paths — the PoW hash, module decoding, signature
computation, HTML parsing, filter matching — are visible across runs.
"""

from __future__ import annotations

import pytest

from repro.blockchain.hashing import DEFAULT_PARAMS, FAST_PARAMS, cryptonight
from repro.blockchain.merkle import tree_hash
from repro.core.nocoin import default_nocoin_list
from repro.core.signatures import wasm_signature
from repro.wasm.builder import ModuleBlueprint, WasmCorpusBuilder
from repro.wasm.decoder import decode_module
from repro.web.html import parse_html

_BUILDER = WasmCorpusBuilder()
_WASM = _BUILDER.build(ModuleBlueprint("coinhive", 0))
_HTML = (
    "<html><head><title>t</title>"
    + '<script src="https://coinhive.com/lib/coinhive.min.js"></script>' * 3
    + "</head><body>"
    + "<div><p>paragraph text</p></div>" * 200
    + "</body></html>"
)


def test_perf_cryptonight_fast(benchmark):
    benchmark(cryptonight, b"blob" * 19, FAST_PARAMS)


def test_perf_cryptonight_default(benchmark):
    benchmark(cryptonight, b"blob" * 19, DEFAULT_PARAMS)


def test_perf_tree_hash_16(benchmark):
    import hashlib

    leaves = [hashlib.sha3_256(bytes([i])).digest() for i in range(16)]
    benchmark(tree_hash, leaves)


def test_perf_wasm_decode(benchmark):
    benchmark(decode_module, _WASM)


def test_perf_wasm_signature(benchmark):
    benchmark(wasm_signature, _WASM)


def test_perf_html_parse(benchmark):
    benchmark(parse_html, _HTML)


def test_perf_nocoin_matching(benchmark):
    nocoin = default_nocoin_list()
    scripts = parse_html(_HTML).scripts()
    benchmark(nocoin.match_scripts, scripts)


def test_perf_interpreter_kernel(benchmark):
    from repro.wasm.decoder import decode_module
    from repro.wasm.interp import Instance

    module = decode_module(_WASM)
    export = next(e.name for e in module.exports if e.kind == 0)

    def invoke():
        return Instance(module).invoke(export, 16, 7)

    benchmark(invoke)


def test_perf_dynamic_profile(benchmark):
    from repro.core.dynamic import profile_execution

    benchmark(profile_execution, _WASM, 16)


def test_perf_obs_span_disabled(benchmark):
    """The guarded no-op path: observability off must cost ~nothing.

    ``NULL_OBS.span()`` returns one shared pre-built context manager —
    the benchmark pins that, and the TickClock assertion proves the
    disabled path performs zero clock reads (the expensive part).
    """
    from repro.obs.clock import TickClock, use_clock
    from repro.obs.profile import NULL_OBS

    def spin():
        for _ in range(1000):
            with NULL_OBS.span("fetch", domain="example.org"):
                pass

    clock = TickClock()
    with use_clock(clock):
        benchmark(spin)
    assert clock.reads == 0, "disabled obs path read the clock"


def test_perf_campaign_without_run_dir_reads_no_clock(benchmark):
    """The no-``--run-dir``/no-heartbeat campaign path stays zero-cost.

    A plain sequential scan with the disabled obs singleton and no
    progress reporter must perform **zero** obs-clock reads — persisting
    run artifacts and heartbeats are strictly opt-in overhead.
    """
    from repro.analysis.crawl import ZgrabCampaign
    from repro.internet.population import build_population
    from repro.obs.clock import TickClock, use_clock

    population = build_population("net", seed=7, scale=0.02)
    campaign = ZgrabCampaign(population=population)
    clock = TickClock()
    with use_clock(clock):
        result = benchmark.pedantic(lambda: campaign.scan(0), rounds=1, iterations=1)
    assert clock.reads == 0, "no-run-dir campaign path read the obs clock"
    # ... and zero evidence work: the detector never flips into its
    # evidence-collecting mode and no verdicts are built or serialized.
    assert campaign.detector.collect_evidence is False
    assert result.verdicts == (), "NULL_OBS campaign built verdict records"
    assert result.graph is None, "NULL_OBS campaign built an attribution graph"


def test_perf_loadgen_without_timeseries_reads_no_clock(benchmark):
    """The no-``--timeseries-interval`` service path stays zero-cost.

    The verdict server runs entirely on seeded simulated time; with no
    recorder and no heartbeat attached, a full loadgen campaign must
    perform **zero** obs-clock reads — windowed telemetry is strictly
    opt-in overhead.
    """
    from repro.obs.clock import TickClock, use_clock
    from repro.service.loadgen import LoadgenConfig, run_loadgen

    config = LoadgenConfig(seed=11, scale=0.05, rate=20.0, duration=4.0)
    clock = TickClock()
    with use_clock(clock):
        report = benchmark.pedantic(
            lambda: run_loadgen(config), rounds=1, iterations=1
        )
    assert clock.reads == 0, "no-timeseries loadgen path read the obs clock"
    assert report.recorder is None
    assert report.timeseries is None


def test_perf_obs_span_enabled(benchmark):
    """The enabled path, for comparison against the disabled baseline."""
    from repro.obs.profile import make_obs

    obs = make_obs(prefix="bench")

    def spin():
        for _ in range(1000):
            with obs.span("fetch", domain="example.org"):
                pass

    benchmark(spin)


def test_perf_browser_visit(benchmark):
    from repro.web.browser import HeadlessBrowser
    from repro.web.http import SyntheticWeb

    web = SyntheticWeb()
    web.register_page("http://www.bench.com/", _HTML.encode())

    def visit():
        return HeadlessBrowser(web).visit("http://www.bench.com/")

    result = benchmark(visit)
    assert result.status == "ok"


# -- fastpath vs reference detection hot paths -------------------------------
#
# Same workload through both implementations, so every row in the summary
# has a visible twin and BENCH_SUMMARY.json carries the speedup CI gates on.

from repro.core import fastpath  # noqa: E402
from repro.core.signatures import unordered_signature, whole_module_signature  # noqa: E402
from repro.web.html import extract_scripts, scan_scripts  # noqa: E402

_NOCOIN = default_nocoin_list().warm()
#: ~500 mostly-clean URLs with a sprinkle of hits — the shape of a real
#: crawl, where nearly every URL walks the whole rule list before "clean"
_URLS = [
    f"https://site-{i}.example/assets/app-{i % 17}.js" for i in range(480)
] + [
    "https://coinhive.com/lib/coinhive.min.js",
    "https://cdn.example/static/coinhive.min.js",
    "https://authedmine.com/lib/authedmine.min.js",
    "https://crypto-loot.com/lib/miner.js",
] * 5


def _match_all_urls():
    return [_NOCOIN.match_url(url) for url in _URLS]


def test_perf_filter_urls_fastpath(benchmark):
    with fastpath.configure(True):
        benchmark(_match_all_urls)


def test_perf_filter_urls_reference(benchmark):
    with fastpath.configure(False):
        benchmark(_match_all_urls)


def test_perf_wasm_signature_memoized(benchmark):
    cache = fastpath.WasmCache()
    cache.ordered_signature(_WASM)  # warm: steady state is all hits

    def lookup():
        return (
            cache.ordered_signature(_WASM),
            cache.unordered_signature(_WASM),
            cache.whole_module_signature(_WASM),
        )

    benchmark(lookup)


def test_perf_wasm_signature_reference(benchmark):
    def recompute():
        return (
            wasm_signature(_WASM),
            unordered_signature(_WASM),
            whole_module_signature(_WASM),
        )

    benchmark(recompute)


def test_perf_html_scan_fastpath(benchmark):
    benchmark(scan_scripts, _HTML)


def test_perf_html_scan_reference(benchmark):
    benchmark(extract_scripts, _HTML)


def test_fastpath_speedup_summary():
    """Measure both implementations head-to-head and persist the ratios.

    Min-of-repeats wall time over the reference workload (the bundled
    NoCoin list at its full rule count, the crawl-shaped URL batch, the
    benchmark page, the coinhive module); the acceptance gate pins the
    filter-matching speedup at >= 3x and CI reads the emitted JSON.
    """
    import time

    from conftest import emit, emit_json

    def best_of(fn, repeats=7):
        times = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
        return min(times)

    with fastpath.configure(True):
        fast_urls = best_of(_match_all_urls)
    with fastpath.configure(False):
        ref_urls = best_of(_match_all_urls)

    fast_scan = best_of(lambda: scan_scripts(_HTML))
    ref_scan = best_of(lambda: extract_scripts(_HTML))

    cache = fastpath.WasmCache()
    cache.ordered_signature(_WASM)
    fast_sig = best_of(
        lambda: (cache.ordered_signature(_WASM), cache.unordered_signature(_WASM))
    )
    ref_sig = best_of(lambda: (wasm_signature(_WASM), unordered_signature(_WASM)))

    payload = {
        "rule_count": len(_NOCOIN),
        "url_batch": len(_URLS),
        "filter_match_speedup": round(ref_urls / fast_urls, 2),
        "static_scan_speedup": round(ref_scan / fast_scan, 2),
        "signature_memo_speedup": round(ref_sig / fast_sig, 2),
        "filter_match_us_per_url": {
            "fastpath": round(fast_urls / len(_URLS) * 1e6, 3),
            "reference": round(ref_urls / len(_URLS) * 1e6, 3),
        },
    }
    emit_json("fastpath", payload)
    emit(
        "fastpath",
        "\n".join(
            [
                f"filter-list matching ({len(_NOCOIN)} rules, {len(_URLS)} URLs): "
                f"{payload['filter_match_speedup']}x",
                f"static HTML script scan: {payload['static_scan_speedup']}x",
                f"wasm signature memo (warm): {payload['signature_memo_speedup']}x",
            ]
        ),
    )
    assert payload["filter_match_speedup"] >= 3.0, payload
    assert payload["static_scan_speedup"] >= 1.0, payload
    assert payload["signature_memo_speedup"] >= 1.0, payload
