"""Attribution-graph build throughput and memory footprint.

Graph emission rides the verdict hot path of every observed campaign, so
its cost must stay a rounding error next to the crawl itself. This
benchmark replays a fixed set of persisted-style verdicts through
:func:`repro.graph.build.add_verdict` (the exact call the campaign makes
per site), measures nodes/sec and the tracemalloc peak, and emits both
into BENCH_SUMMARY.json so ``obs diff``-style gates can pin the cost
across commits. The serialization leg times the canonical sorted
``graph.jsonl`` round-trip the twin-run byte-identity guarantee rests on.
"""

from __future__ import annotations

import time
import tracemalloc

from conftest import emit, emit_json
from repro.analysis.crawl import ChromeCampaign, ZgrabCampaign
from repro.graph.build import add_verdict
from repro.graph.model import Graph, graph_to_jsonl, parse_graph_jsonl
from repro.internet.population import build_population
from repro.obs.profile import make_obs

SEED = 2018
SCALE = 0.3
REPLAYS = 8


def _observed_verdicts():
    """(record, site, includers) triples exactly as the campaigns emit them."""
    population = build_population("alexa", seed=SEED, scale=SCALE)
    layer = population.includer_layer
    sites = {site.domain: site for site in population.sites}
    triples = []
    for result in (
        ZgrabCampaign(population=population, obs=make_obs(prefix="bench-z")).scan(0),
        ChromeCampaign(population=population, obs=make_obs(prefix="bench-c")).run(),
    ):
        for record in result.verdicts:
            site = sites.get(record.subject)
            includers = layer.includers_for(site) if site is not None else ()
            triples.append((record, site, includers))
    return triples


def test_graph_build_throughput(benchmark):
    triples = _observed_verdicts()

    def build():
        graph = Graph()
        for record, site, includers in triples:
            add_verdict(graph, record, site=site, includers=includers)
        return graph

    tracemalloc.start()
    try:
        started = time.perf_counter()
        for _ in range(REPLAYS):
            graph = build()
        elapsed = time.perf_counter() - started
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    benchmark.pedantic(build, rounds=3, iterations=1)

    text = graph_to_jsonl(graph)
    started = time.perf_counter()
    round_trips = 0
    while time.perf_counter() - started < 0.5:
        assert graph_to_jsonl(parse_graph_jsonl(text)) == text
        round_trips += 1
    serialize_elapsed = time.perf_counter() - started

    verdicts_per_sec = REPLAYS * len(triples) / elapsed
    nodes_per_sec = REPLAYS * len(graph.nodes) / elapsed
    payload = {
        "verdicts": len(triples),
        "nodes": len(graph.nodes),
        "edges": len(graph.edges),
        "verdicts_per_sec": round(verdicts_per_sec),
        "nodes_per_sec": round(nodes_per_sec),
        "peak_mb": round(peak / 1e6, 2),
        "serialize_round_trips_per_sec": round(round_trips / serialize_elapsed, 1),
    }
    emit(
        "graph_build",
        "\n".join(f"{name:>28}  {value}" for name, value in payload.items()),
    )
    emit_json("graph_build", payload)
    # an observed crawl processes a few hundred sites/sec; graph emission
    # at tens of thousands of verdicts/sec is structurally invisible
    assert verdicts_per_sec > 2_000
    assert payload["peak_mb"] < 64
