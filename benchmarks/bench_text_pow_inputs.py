"""In-text experiment (Section 4.2) — PoW-input counting at full fidelity.

The paper connects to the Coinhive pool and requests a fresh PoW input
every 500 ms: per endpoint it never sees more than 8 distinct inputs per
block; across all 32 endpoints at most 128 — revealing 16 backend systems
behind 32 endpoints. This benchmark runs the actual 500 ms polling loop
against the service simulator for several block intervals.
"""

from __future__ import annotations

from conftest import emit
from repro.analysis.reporting import render_table
from repro.blockchain.chain import Blockchain
from repro.blockchain.difficulty import DifficultyAdjuster
from repro.blockchain.hashing import FAST_PARAMS
from repro.coinhive.service import CoinhiveService
from repro.core.pool_association import PoolObserver
from repro.sim.events import EventLoop


def test_text_pow_inputs(benchmark):
    chain = Blockchain(
        pow_params=FAST_PARAMS,
        adjuster=DifficultyAdjuster(window=30, cut=2, initial_difficulty=10**9),
        genesis_timestamp=1_526_000_000,
    )
    service = CoinhiveService(chain=chain)

    def run():
        observer = PoolObserver(
            fetch_input=service.pow_input_for_endpoint,
            endpoints=service.endpoints(),
            poll_interval=0.5,
            detransform=service.obfuscator.revert,
        )
        loop = EventLoop()
        observer.run(loop, duration=600.0)  # five 120 s block intervals
        return observer

    observer = benchmark.pedantic(run, rounds=1, iterations=1)

    table = render_table(
        ["quantity", "measured", "paper"],
        [
            ["polls issued", observer.polls, "1 per endpoint per 500 ms"],
            ["endpoints", len(observer.endpoints), 32],
            ["max distinct PoW inputs per endpoint", observer.max_inputs_per_endpoint(), "≤ 8"],
            ["max distinct PoW inputs per block", observer.max_inputs_per_block(), "≤ 128"],
            ["implied backends", observer.max_inputs_per_block() // 8, 16],
        ],
        title="Section 4.2 in-text: PoW-input enumeration at 500 ms polling",
    )
    emit("text_pow_inputs", table)

    assert observer.max_inputs_per_endpoint() <= 8
    assert observer.max_inputs_per_block() <= 128
    assert observer.max_inputs_per_block() >= 100  # refresh cadence really yields ~8/backend
