"""Table 1 — top-5 WebAssembly signatures on Alexa and .org.

Paper:

    Alexa: coinhive 311, skencituer 123, cryptoloot 103, UnknownWSS 56,
           notgiven688 46 — total Wasm 796 (~96% miners)
    .org:  coinhive 711, cryptoloot 183, web.stati.bid 120,
           freecontent.date 108, notgiven688 92 — total Wasm 1491
"""

from __future__ import annotations

from conftest import emit
from repro.analysis.crawl import ChromeCampaign
from repro.analysis.reporting import render_table

PAPER_TOP5 = {
    "alexa": [
        ("coinhive", 311), ("skencituer", 123), ("cryptoloot", 103),
        ("UnknownWSS", 56), ("notgiven688", 46),
    ],
    "org": [
        ("coinhive", 711), ("cryptoloot", 183), ("web.stati.bid", 120),
        ("freecontent.date", 108), ("notgiven688", 92),
    ],
}
PAPER_TOTAL_WASM = {"alexa": 796, "org": 1491}


def test_table1_wasm_signatures(benchmark, populations):
    """Times the instrumented Chrome crawls of Alexa and .org."""

    def run():
        return {
            name: ChromeCampaign(population=populations[name]).run()
            for name in ("alexa", "org")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    for name, result in results.items():
        rows = []
        for rank, ((family, count), (paper_family, paper_count)) in enumerate(
            zip(result.signature_counts.most_common(5), PAPER_TOP5[name]), start=1
        ):
            rows.append([rank, family, count, f"{paper_family} {paper_count}"])
        rows.append(["", "Total WebAssembly", result.total_wasm_sites, PAPER_TOTAL_WASM[name]])
        miner_share = result.miner_wasm_sites / max(1, result.total_wasm_sites)
        rows.append(["", "miner share of Wasm", f"{miner_share:.0%}", "~96%"])
        emit(
            f"table1_wasm_signatures_{name}",
            render_table(
                ["rank", "classification (measured)", "count", "paper"],
                rows,
                title=f"Table 1 ({name}): top WebAssembly signatures",
            ),
        )

        assert result.signature_counts.most_common(1)[0][0] == "coinhive"
        assert miner_share > 0.85
