"""Sequential vs. sharded campaign execution wall-clock.

Times the full-calibration .com zgrab scan (the largest zone) three ways:

- sequential ``ZgrabCampaign.scan``,
- sharded serial (same partition, one worker — isolates shard overhead and
  yields uncontended per-shard timings),
- sharded thread/process pools at 4 workers.

Real pool wall-clock only beats sequential when the host has spare cores;
CI containers are often single-core, where every worker timeshares one
CPU. So besides the measured wall-clocks this benchmark derives the
**modeled 4-worker makespan**: the longest-processing-time schedule of the
uncontended per-shard timings onto 4 workers — the wall-clock a 4-core
host converges to. The acceptance gate (≥2× at 4 workers) is asserted on
that model, and additionally on the real pool wall-clock when the host
actually has ≥4 cores.
"""

from __future__ import annotations

import os

from conftest import emit, emit_json
from repro.analysis.crawl import ZgrabCampaign
from repro.analysis.parallel import ParallelConfig, ShardedZgrabCampaign
from repro.analysis.reporting import render_table
from repro.obs.profile import PROFILE_HEADER, make_obs, profile_rows

WORKERS = 4
SHARDS = 8


def _lpt_makespan(durations: list[float], workers: int) -> float:
    """Longest-processing-time-first schedule length on ``workers`` machines."""
    loads = [0.0] * workers
    for duration in sorted(durations, reverse=True):
        loads[loads.index(min(loads))] += duration
    return max(loads)


def test_parallel_scan_speedup(benchmark, populations):
    population = populations["com"]
    sequential_campaign = ZgrabCampaign(population=population)

    def run_sequential():
        return sequential_campaign.scan(0)

    sequential_result = benchmark.pedantic(run_sequential, rounds=1, iterations=1)
    sequential_wall = benchmark.stats.stats.total

    rows = [["sequential", 1, f"{sequential_wall:.3f}s", "1.00x", "-"]]
    walls = {}
    results = {}
    shard_walls: list[float] = []
    for mode, workers in (("serial", 1), ("thread", WORKERS), ("process", WORKERS)):
        campaign = ShardedZgrabCampaign(
            population=population,
            config=ParallelConfig(shards=SHARDS, workers=workers, mode=mode),
        )
        results[mode] = campaign.scan(0)
        walls[mode] = campaign.metrics.wall_seconds
        if mode == "serial":
            shard_walls = [m.wall_seconds for m in campaign.metrics.shards]
        rows.append(
            [
                f"sharded/{mode}",
                workers,
                f"{walls[mode]:.3f}s",
                f"{sequential_wall / walls[mode]:.2f}x",
                f"{campaign.metrics.parallel_efficiency:.0%}",
            ]
        )

    # the wall-clock 4 truly-parallel workers converge to, from the
    # uncontended per-shard timings
    makespan = _lpt_makespan(shard_walls, WORKERS)
    modeled_speedup = sequential_wall / makespan if makespan else 0.0
    rows.append(["modeled 4-worker", WORKERS, f"{makespan:.3f}s", f"{modeled_speedup:.2f}x", "-"])

    cores = os.cpu_count() or 1
    table = render_table(
        ["execution", "workers", "wall", "speedup", "efficiency"],
        rows,
        title=f"zgrab .com scan, {len(population.sites)} sites, {SHARDS} shards "
        f"(host cores: {cores})",
    )
    emit("parallel_scan", table)
    emit_json(
        "parallel_scan",
        {
            "sites": len(population.sites),
            "shards": SHARDS,
            "workers": WORKERS,
            "host_cores": cores,
            "sequential_wall_s": sequential_wall,
            "wall_s": dict(walls),
            "speedup": {mode: sequential_wall / wall for mode, wall in walls.items()},
            "shard_walls_s": shard_walls,
            "modeled_makespan_s": makespan,
            "modeled_speedup": modeled_speedup,
        },
    )

    # per-stage attribution: where the scan's wall clock goes, from an
    # obs-instrumented serial run (uncontended, so stage shares are clean)
    obs = make_obs(prefix="bench")
    profiled = ShardedZgrabCampaign(
        population=population,
        config=ParallelConfig(shards=SHARDS, workers=1, mode="serial"),
        obs=obs,
    )
    profiled_result = profiled.scan(0)
    emit(
        "parallel_scan_stages",
        render_table(
            PROFILE_HEADER,
            profile_rows(obs.registry),
            title=f"per-stage latency, sharded/serial ({SHARDS} shards)",
        ),
    )
    assert profiled_result == sequential_result, "obs instrumentation changed the result"

    # correctness first: every mode merged to the sequential result
    for mode, result in results.items():
        assert result == sequential_result, mode

    # the partition keeps 4 workers ≥2× faster than one; on a ≥4-core host
    # the realized pool wall-clock must show it too
    assert modeled_speedup >= 2.0, (
        f"modeled 4-worker speedup {modeled_speedup:.2f}x < 2x "
        f"(shard walls: {[f'{w:.3f}' for w in shard_walls]})"
    )
    if cores >= WORKERS:
        best_real = sequential_wall / min(walls["thread"], walls["process"])
        assert best_real >= 2.0, f"real 4-worker speedup {best_real:.2f}x < 2x on {cores} cores"
