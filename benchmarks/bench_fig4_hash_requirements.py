"""Figure 4 — required hashes per link and resolution time at 20 H/s.

Paper: majority of links resolvable below 1024 hashes (<51 s at 20 H/s);
heavy-user bias peaks at 512 hashes; removing the bias, over 2/3 of links
stay ≤1024; hundreds of links demand 10^19 hashes (≈16 Gyr).
"""

from __future__ import annotations

from conftest import emit
from repro.analysis.reporting import render_histogram, render_table
from repro.coinhive.resolver import duration_seconds


def _fmt_duration(seconds: float) -> str:
    if seconds < 120:
        return f"{seconds:.0f}s"
    if seconds < 7200:
        return f"{seconds / 60:.0f}m"
    if seconds < 86400 * 365:
        return f"{seconds / 3600:.0f}h"
    return f"{seconds / (365.25 * 86400):.1e}yr"


def test_fig4_hash_requirements(benchmark, shortlink_study):
    result = benchmark.pedantic(shortlink_study.hash_requirements, rounds=1, iterations=1)

    histogram = result.histogram(unbiased=False)
    buckets = sorted(histogram)
    hist_text = render_histogram(
        [f"{b} ({_fmt_duration(duration_seconds(b))})" for b in buckets],
        [histogram[b] for b in buckets],
        title="Figure 4: required hashes (all links) with duration @20 H/s",
        width=36,
    )

    rows = [
        ["≤1024 hashes, all links", f"{result.share_resolvable_within(1024, unbiased=False):.0%}", "majority"],
        ["≤1024 hashes, user bias removed", f"{result.share_resolvable_within(1024, unbiased=True):.0%}", "> 2/3"],
        ["≤10K hashes, bias removed", f"{result.share_resolvable_within(10_000, unbiased=True):.0%}", "85%"],
        ["links at ≥1e18 hashes", sum(1 for v in result.all_links if v >= 10**18), "hundreds"],
        ["1024 hashes @20 H/s", _fmt_duration(duration_seconds(1024)), "51s"],
        ["1e19 hashes @20 H/s", _fmt_duration(duration_seconds(10**19)), "16 Gyr"],
    ]
    table = render_table(["quantity", "measured", "paper"], rows)
    emit("fig4_hash_requirements", hist_text + "\n\n" + table)

    assert result.share_resolvable_within(1024, unbiased=False) > 0.5
    assert result.share_resolvable_within(1024, unbiased=True) > 0.6
    assert result.share_resolvable_within(10_000, unbiased=True) > 0.75
    assert max(result.all_links) >= 10**18
    # the heavy-user spike: 512 over-represented in the biased view
    biased_share_512 = histogram.get(512, 0) / len(result.all_links)
    unbiased_hist = result.histogram(unbiased=True)
    unbiased_share_512 = unbiased_hist.get(512, 0) / len(result.user_bias_removed)
    assert biased_share_512 > unbiased_share_512
