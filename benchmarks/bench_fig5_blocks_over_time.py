"""Figure 5 — Coinhive-mined blocks over hour-of-day and date.

Paper (26 Apr – 24 May 2018): median 8.5 / average 9.0 blocks per day,
found throughout the whole day; visible bumps around 30 Apr, 10 May, and
22 May (holidays); near-zero on 6–7 May (Coinhive disruption); black
stripes where the observation infrastructure was down.
"""

from __future__ import annotations

import datetime as _dt

from conftest import emit
from repro.analysis.reporting import render_day_hour_heatmap, render_table
from repro.sim.clock import utc_timestamp


def test_fig5_blocks_over_time(benchmark, network_observation):
    window_start = utc_timestamp(2018, 4, 26)
    window_end = utc_timestamp(2018, 5, 24)

    def run():
        matrix = {}
        for (date, hour), count in network_observation.day_hour_matrix().items():
            ts = utc_timestamp(*map(int, date.split("-")))
            if window_start <= ts < window_end:
                matrix[(date, hour)] = count
        return matrix

    matrix = benchmark.pedantic(run, rounds=1, iterations=1)
    heatmap = render_day_hour_heatmap(matrix, title="Figure 5: Coinhive blocks per (day, hour)")

    per_day = {}
    for (date, _hour), count in matrix.items():
        per_day[date] = per_day.get(date, 0) + count
    days = sorted(per_day)
    counts = sorted(per_day.get(d, 0) for d in days)
    median = counts[len(counts) // 2]
    average = sum(counts) / len(counts)
    summary = render_table(
        ["quantity", "measured", "paper"],
        [
            ["median blocks/day", median, 8.5],
            ["average blocks/day", f"{average:.1f}", 9.0],
            ["blocks on 2018-05-06 (outage)", per_day.get("2018-05-06", 0), "few to none"],
            ["blocks on 2018-04-30 (holiday)", per_day.get("2018-04-30", 0), "above average"],
            ["hours of day with blocks", sum(1 for h in network_observation.hourly_totals() if h), "24"],
        ],
    )
    emit("fig5_blocks_over_time", heatmap + "\n\n" + summary)

    assert 6 <= median <= 12
    assert 6.5 <= average <= 11
    assert per_day.get("2018-05-06", 0) <= median / 2
    assert per_day.get("2018-04-30", 0) >= average
