"""Table 6 — Coinhive mining statistics for May/June/July 2018.

Paper:

    month  med[blocks/day]  avg   hashrate  currency
    May    9.0              8.8   5.5 MH/s  1231 XMR
    June   10.0             9.7   5.5 MH/s  1293 XMR
    July   9.0              9.1   5.8 MH/s  1215 XMR

plus the in-text derivations: 1.18% of all blocks, 462 MH/s network rate,
58K–292K concurrent users, ~150K USD/month at 120 USD/XMR.
"""

from __future__ import annotations

from conftest import emit
from repro.analysis.economics import EconomicsReport, user_count_bracket
from repro.analysis.reporting import render_table

PAPER_ROWS = {
    "2018-05": (9.0, 8.8, 5.5, 1231),
    "2018-06": (10.0, 9.7, 5.5, 1293),
    "2018-07": (9.0, 9.1, 5.8, 1215),
}


def test_table6_monthly_stats(benchmark, network_observation):
    rows_data = benchmark.pedantic(network_observation.monthly_stats, rounds=1, iterations=1)

    rows = []
    for row in rows_data:
        paper = PAPER_ROWS[row["month"]]
        rows.append(
            [
                row["month"],
                f"{row['median_blocks_per_day']:.1f} ({paper[0]})",
                f"{row['avg_blocks_per_day']:.1f} ({paper[1]})",
                f"{row['pool_hashrate_mhs']:.1f} ({paper[2]})",
                f"{row['xmr']:.0f} ({paper[3]})",
                f"{row['share']:.2%}",
            ]
        )
    emit(
        "table6_monthly_stats",
        render_table(
            ["month", "med blocks/day", "avg", "MH/s", "XMR", "share"],
            rows,
            title="Table 6: Coinhive monthly mining statistics (paper in parens)",
        ),
    )

    # in-text derivations
    june = next(r for r in rows_data if r["month"] == "2018-06")
    economics = EconomicsReport(xmr_mined=june["xmr"])
    high, low = user_count_bracket(june["pool_hashrate_mhs"] * 1e6)
    derived = render_table(
        ["quantity", "measured", "paper"],
        [
            ["network hashrate", f"{june['network_hashrate_mhs']:.0f} MH/s", "462 MH/s"],
            ["pool share (June)", f"{june['share']:.2%}", "~1.18% (June was peak)"],
            ["users @20 H/s", f"{high:,.0f}", "292K"],
            ["users @100 H/s", f"{low:,.0f}", "58K"],
            ["gross USD/month @120", f"{economics.gross_usd:,.0f}", "~150,000"],
            ["users' 70% cut", f"{economics.users_cut_usd:,.0f}", ""],
        ],
    )
    emit("table6_derived_economics", derived)

    for row in rows_data:
        paper = PAPER_ROWS[row["month"]]
        assert abs(row["median_blocks_per_day"] - paper[0]) <= 2.5
        assert abs(row["avg_blocks_per_day"] - paper[1]) <= 2.0
        assert abs(row["pool_hashrate_mhs"] - paper[2]) <= 1.5
        assert abs(row["xmr"] - paper[3]) <= 250
    assert abs(june["network_hashrate_mhs"] - 462) < 60
