"""Extension — quantifying the paper's future work (Section 6).

The paper closes: "the impact of the CPU intensive miner on a website's
performance, a mobile device's battery lifetime or a visitor's energy
bill is yet to be quantified but it could be a huge hurdle". This bench
quantifies it with the first-order model of
:mod:`repro.analysis.impact` across device classes and throttle levels.
"""

from __future__ import annotations

from conftest import emit
from repro.analysis.impact import (
    DESKTOP_2013,
    DESKTOP_2018,
    PHONE_2018,
    ad_revenue_equivalent_minutes,
    battery_lifetime_hours,
    visit_impact,
)
from repro.analysis.reporting import render_table


def test_ext_visitor_impact(benchmark):
    devices = (DESKTOP_2013, DESKTOP_2018, PHONE_2018)

    def run():
        rows = []
        for device in devices:
            for throttle in (0.0, 0.5):
                impact = visit_impact(device, duration_s=3600, throttle=throttle)
                battery = (
                    f"{battery_lifetime_hours(device, throttle):.1f}h"
                    if device.battery_wh
                    else "mains"
                )
                rows.append(
                    [
                        device.name,
                        f"{throttle:.0%}",
                        f"{impact.energy_wh:.1f} Wh",
                        battery,
                        f"${impact.visitor_cost_usd:.4f}",
                        f"${impact.operator_revenue_usd:.4f}",
                        f"{impact.transfer_efficiency:.2f}",
                        f"{ad_revenue_equivalent_minutes(device, 2.0, throttle):.0f} min"
                        if throttle < 1
                        else "-",
                    ]
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ext_visitor_impact",
        render_table(
            [
                "device", "throttle", "energy/h", "battery life",
                "visitor cost/h", "operator gain/h", "$out/$in", "mins ≈ 1 ad",
            ],
            rows,
            title="Extension: visitor-side cost of one hour of mining "
                  "(paper Section 6's open question)",
        ),
    )

    # the quantified conclusion: mining transfers less value than it burns
    full_speed = [r for r in rows if r[1] == "0%"]
    for row in full_speed:
        assert float(row[6]) < 1.0
