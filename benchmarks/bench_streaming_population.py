"""Streaming-population throughput and memory footprint.

The tentpole claim: a streamed internet costs O(1) memory per shard at
any population size, and per-site derivation is cheap enough that a
zone-scale scan is fetch-bound, not generation-bound. This benchmark
measures both and emits them into BENCH_SUMMARY.json so ``repro obs
diff --fail-on`` gates can pin per-site cost across commits:

- ``sites_per_sec``: raw site-derivation throughput over a 10k-site walk
  of a 10M-domain population (cold cache, every site derived);
- ``campaign_sites_per_sec``: end-to-end sharded zgrab throughput over a
  stratified sample of the same population (derivation + lazy web +
  detector);
- ``peak_mb_*``: tracemalloc peaks for both, which must stay flat as the
  nominal population grows 100× (the constant-memory assertion).
"""

from __future__ import annotations

import time
import tracemalloc

from conftest import emit, emit_json
from repro.analysis.parallel import ParallelConfig, ShardedZgrabCampaign
from repro.analysis.reporting import render_table
from repro.internet.streaming import StreamingPopulation

SEED = 2018
POPULATION_SIZE = 10_000_000
WALK_SITES = 10_000
SAMPLE_PER_STRATUM = 400


def _traced(fn):
    tracemalloc.start()
    try:
        started = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - started
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return value, elapsed, peak


def test_streaming_population_throughput(benchmark):
    population = StreamingPopulation("com", seed=SEED, size=POPULATION_SIZE)

    # raw derivation: walk 10k sites spread across the whole rank order so
    # every stratum's code path is exercised and nothing is cache-warm
    stride = POPULATION_SIZE // WALK_SITES
    indices = range(0, POPULATION_SIZE, stride)

    def walk():
        count = 0
        for site in population.iter_sites(indices):
            count += 1
        return count

    walked, derive_elapsed, derive_peak = _traced(walk)
    assert walked == WALK_SITES
    derive_rate = walked / derive_elapsed

    # end-to-end: the real sharded campaign over a stratified sample
    sampled = StreamingPopulation(
        "com", seed=SEED, size=POPULATION_SIZE, sample_per_stratum=SAMPLE_PER_STRATUM
    )
    campaign = ShardedZgrabCampaign(
        population=sampled, config=ParallelConfig(shards=4, workers=1, mode="serial")
    )
    result, campaign_elapsed, campaign_peak = _traced(lambda: benchmark.pedantic(
        lambda: campaign.scan(0), rounds=1, iterations=1
    ))
    campaign_rate = result.domains_probed / campaign_elapsed

    # the constant-memory contract, asserted at benchmark time too
    assert derive_peak < 32 * 1024 * 1024
    assert campaign_peak < 64 * 1024 * 1024

    rows = [
        ["derive 10k/10M sites", f"{derive_rate:,.0f}/s", f"{derive_peak / 1e6:.1f} MB"],
        [
            f"campaign {result.domains_probed} sampled sites",
            f"{campaign_rate:,.0f}/s",
            f"{campaign_peak / 1e6:.1f} MB",
        ],
    ]
    emit(
        "streaming_population",
        render_table(["stage", "throughput", "peak memory"], rows),
    )
    emit_json(
        "streaming_population",
        {
            "population_size": POPULATION_SIZE,
            "sites_per_sec": round(derive_rate, 1),
            "campaign_sites_per_sec": round(campaign_rate, 1),
            "domains_probed": result.domains_probed,
            "peak_mb_derive": round(derive_peak / 1e6, 2),
            "peak_mb_campaign": round(campaign_peak / 1e6, 2),
            "us_per_site": round(1e6 / derive_rate, 2),
        },
    )
