"""Ablation — the page-load heuristic (DESIGN.md §6).

The paper waits for the load event plus a 2 s DOM-quiet timer capped at
5 s (15 s timeout). This ablation sweeps the wait policy and measures
miner-detection recall vs crawl cost on the Alexa population: miners that
load Wasm and open sockets late are missed by impatient configurations.
"""

from __future__ import annotations

from conftest import emit
from repro.analysis.reporting import render_table
from repro.core.detector import PageDetector
from repro.core.signatures import build_reference_database
from repro.internet.population import build_population
from repro.web.browser import BrowserConfig, HeadlessBrowser

CONFIGS = {
    "impatient (no wait)": BrowserConfig(dom_quiet_timer=0.0, max_wait_after_load=0.0),
    "0.5s quiet / 1s cap": BrowserConfig(dom_quiet_timer=0.5, max_wait_after_load=1.0),
    "paper: 2s quiet / 5s cap": BrowserConfig(dom_quiet_timer=2.0, max_wait_after_load=5.0),
    "generous: 5s quiet / 10s cap": BrowserConfig(dom_quiet_timer=5.0, max_wait_after_load=10.0),
}


def test_ablation_pageload(benchmark):
    population = build_population("alexa", seed=4242, scale=0.25)
    detector = PageDetector()
    detector.classifier.database = build_reference_database()
    truth = population.ground_truth_miners()

    def run():
        results = {}
        for label, config in CONFIGS.items():
            browser = HeadlessBrowser(
                population.web, config=config, behavior_registry=population.behavior_registry
            )
            found = 0
            sim_time = 0.0
            for site in population.sites:
                start = browser.loop.now
                page = browser.visit(f"http://www.{site.domain}/")
                sim_time += page.finished_at - start
                if detector.detect_page(site.domain, page).is_miner:
                    found += 1
            results[label] = (found, sim_time / len(population.sites))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [label, found, len(truth), f"{found / len(truth):.0%}", f"{avg:.2f}s"]
        for label, (found, avg) in results.items()
    ]
    emit(
        "ablation_pageload",
        render_table(
            ["wait policy", "miners found", "ground truth", "recall", "avg page time"],
            rows,
            title="Ablation: page-load heuristic vs miner recall and crawl cost",
        ),
    )

    paper_found, paper_cost = results["paper: 2s quiet / 5s cap"]
    impatient_found, impatient_cost = results["impatient (no wait)"]
    generous_found, generous_cost = results["generous: 5s quiet / 10s cap"]
    assert paper_found >= impatient_found          # waiting finds late miners
    assert paper_found >= 0.95 * generous_found    # …but 2s/5s already saturates
    assert paper_cost < generous_cost              # at lower crawl cost
