"""Tables 4 and 5 — short-link destinations.

Table 4 (paper): the top-10 creators' samples concentrate ~89% on ten
hosts, led by youtu.be (20%) and filesharing mirrors.
Table 5 (paper): the unbiased <10K-hash dataset spreads over diverse
categories (Tech & Telecomm., Gaming, Dynamic Site, Business, Porn, …)
with ~1/3 of URLs unclassifiable.

Resolving the samples is the expensive part: the resolver actually
computes (scaled) CryptoNight hashes and reverts the XOR obfuscation, as
the paper's tooling did for 61.5M hashes.
"""

from __future__ import annotations

from conftest import emit
from repro.analysis.reporting import render_table

PAPER_TABLE4 = [
    ("youtu.be", "20%"), ("zippyshare.com", "10%"), ("icerbox.com", "10%"),
    ("hq-mirror.de", "10%"), ("andyspeedracing.com", "10%"),
    ("ftbucket.info", "9.9%"), ("getcoinfree.com", "9.2%"), ("ul.to", "4.2%"),
    ("share-online.biz", "2.9%"), ("oboom.com", "2.8%"),
]


def test_table4_table5_destinations(benchmark, shortlink_study):
    result = benchmark.pedantic(shortlink_study.destinations, rounds=1, iterations=1)

    # ---- Table 4 ----
    rows = []
    for (host, count), (paper_host, paper_share) in zip(
        result.top_user_domains.most_common(10), PAPER_TABLE4
    ):
        share = count / result.top_user_sample_size
        rows.append([host, f"{share:.1%}", f"{paper_host} {paper_share}"])
    top10_cover = sum(c for _, c in result.top_user_domains.most_common(10)) / result.top_user_sample_size
    rows.append(["(top-10 coverage)", f"{top10_cover:.0%}", "~89%"])
    emit(
        "table4_top_user_destinations",
        render_table(["domain (measured)", "freq", "paper"], rows,
                     title="Table 4: top destination domains of the top-10 creators"),
    )

    # ---- Table 5 ----
    rows = [
        [category, count]
        for category, count in result.unbiased_categories.most_common(10)
    ]
    unclassified = result.unbiased_unclassified / result.unbiased_urls
    rows.append(["(unclassified URLs)", f"{unclassified:.0%} (paper: ~1/3)"])
    rows.append(["(hashes computed)", result.hashes_computed])
    emit(
        "table5_link_categories",
        render_table(["category", "count"], rows,
                     title="Table 5: top categories of the unbiased <10K-hash dataset"),
    )

    assert top10_cover > 0.8
    assert result.top_user_domains.most_common(1)[0][0] == "youtu.be"
    assert len(result.unbiased_categories) >= 8
    assert 0.2 < unclassified < 0.5
