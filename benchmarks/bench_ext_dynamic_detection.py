"""Extension — static vs dynamic instruction-mix detection.

The paper's feature classifier counts instructions *statically*. This
bench quantifies its robustness against dead-code padding (an evasion any
miner author could ship) and compares it with the interpreter-backed
dynamic detector of :mod:`repro.core.dynamic` on three corpora:

- clean miners (names stripped, unknown signatures),
- the same miners padded with never-executed float-heavy functions,
- benign modules (as the false-positive control).
"""

from __future__ import annotations

from conftest import emit
from repro.analysis.reporting import render_table
from repro.core.classifier import MinerClassifier
from repro.core.dynamic import DynamicMinerDetector, pad_with_dead_code
from repro.core.signatures import SignatureDatabase
from repro.wasm.builder import BENIGN_FAMILIES, MINER_FAMILIES, ModuleBlueprint, WasmCorpusBuilder
from repro.wasm.decoder import decode_module
from repro.wasm.encoder import encode_module


def _strip(data: bytes) -> bytes:
    module = decode_module(data)
    module.func_names = {}
    module.module_name = None
    module.exports = [
        type(e)("f%d" % i, e.kind, e.index) for i, e in enumerate(module.exports)
    ]
    return encode_module(module)


def test_ext_dynamic_detection(benchmark):
    builder = WasmCorpusBuilder(root_seed=777)  # unknown to any signature DB
    miners = [
        _strip(builder.build(ModuleBlueprint(family, v)))
        for family in MINER_FAMILIES
        for v in range(2)
    ]
    padded = [pad_with_dead_code(m) for m in miners]
    benign = [
        builder.build(ModuleBlueprint(family, v))
        for family in BENIGN_FAMILIES
        for v in range(2)
    ]

    static = MinerClassifier(database=SignatureDatabase())
    dynamic = DynamicMinerDetector()

    def run():
        def static_hits(mods):
            return sum(1 for m in mods if static.classify_wasm(m).is_miner)

        def dynamic_hits(mods):
            return sum(1 for m in mods if dynamic.is_miner(m))

        return {
            "clean miners": (static_hits(miners), dynamic_hits(miners), len(miners)),
            "padded miners": (static_hits(padded), dynamic_hits(padded), len(padded)),
            "benign": (static_hits(benign), dynamic_hits(benign), len(benign)),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [corpus, f"{s}/{n}", f"{d}/{n}"]
        for corpus, (s, d, n) in results.items()
    ]
    emit(
        "ext_dynamic_detection",
        render_table(
            ["corpus", "static mix detector", "dynamic (executed) detector"],
            rows,
            title="Extension: dead-code padding vs static/dynamic detection",
        ),
    )

    clean_s, clean_d, n_miners = results["clean miners"]
    padded_s, padded_d, _ = results["padded miners"]
    benign_s, benign_d, _ = results["benign"]
    assert clean_d >= clean_s                   # dynamic at least as good when clean
    assert padded_s < n_miners * 0.5            # padding defeats the static mix
    assert padded_d >= n_miners * 0.9           # …but not the dynamic detector
    assert benign_s == 0 and benign_d == 0      # no false positives either way
