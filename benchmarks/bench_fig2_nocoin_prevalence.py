"""Figure 2 — NoCoin-detected miners on Alexa Top 1M and .com/.net/.org.

Paper's series (detected potential mining domains per scan):

    Alexa 710 / 621, .com 6676 / 5744, .net 618 / 553, .org 473 / 399

with per-script shares dominated by coinhive (>75%), then authedmine,
wp-monero, cryptoloot, cpmstar, other.
"""

from __future__ import annotations

from conftest import emit
from repro.analysis.crawl import ZgrabCampaign
from repro.analysis.reporting import render_table

PAPER_COUNTS = {
    "alexa": (710, 621),
    "com": (6676, 5744),
    "net": (618, 553),
    "org": (473, 399),
}


def test_fig2_nocoin_prevalence(benchmark, populations):
    """Times the full two-scan zgrab campaign over all four datasets."""

    def run():
        return {
            name: ZgrabCampaign(population=populations[name]).both_scans()
            for name in ("alexa", "com", "net", "org")
        }

    scans = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, results in scans.items():
        for i, scan in enumerate(results):
            top = ", ".join(
                f"{label} {share:.0%}" for label, share in list(scan.script_shares.items())[:5]
            )
            rows.append(
                [
                    name,
                    scan.scan_date,
                    scan.nocoin_domains,
                    PAPER_COUNTS[name][i],
                    f"{scan.prevalence:.4%}",
                    top,
                ]
            )
    table = render_table(
        ["dataset", "scan", "measured", "paper", "prevalence", "top-5 script shares"],
        rows,
        title="Figure 2: NoCoin detections per dataset and scan date",
    )
    emit("fig2_nocoin_prevalence", table)

    # shape assertions: coinhive dominates everywhere; prevalence < 0.08%
    for name, results in scans.items():
        for scan in results:
            assert scan.script_shares.get("coinhive", 0) > 0.5
            assert scan.prevalence < 0.0008
    # second scan always smaller (churn)
    for name, results in scans.items():
        assert results[1].nocoin_domains < results[0].nocoin_domains
