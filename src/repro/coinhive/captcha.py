"""Coinhive's proof-of-work captcha service.

Section 1 of the paper lists captchas among Coinhive's API offerings: a
form gating widget that requires the visitor's browser to compute a
configured number of hashes before the form can be submitted — spam
protection that pays the site owner.

The flow mirrors the short-link service: a captcha is created with a hash
goal and the creator's token; the served widget mines against the pool;
once the goal is reached the service issues a verification token the site
backend can check once (single use, expiring)."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class CaptchaChallenge:
    """One outstanding captcha instance."""

    challenge_id: str
    site_token: str
    goal_hashes: int
    created_at: float
    hashes_done: int = 0
    verification_token: Optional[str] = None

    @property
    def solved(self) -> bool:
        return self.hashes_done >= self.goal_hashes

    def progress(self) -> float:
        return min(1.0, self.hashes_done / self.goal_hashes)


@dataclass
class CaptchaService:
    """Creation, hash accounting, and single-use verification."""

    token_ttl: float = 300.0  # verification tokens expire after 5 minutes
    _challenges: dict = field(default_factory=dict)
    _verifications: dict = field(default_factory=dict)  # token → (challenge, expiry)
    _counter: int = 0

    def create(self, site_token: str, goal_hashes: int, now: float) -> CaptchaChallenge:
        if goal_hashes < 1:
            raise ValueError("goal must be positive")
        self._counter += 1
        challenge_id = hashlib.sha256(
            f"{site_token}/{self._counter}/{now}".encode()
        ).hexdigest()[:24]
        challenge = CaptchaChallenge(
            challenge_id=challenge_id,
            site_token=site_token,
            goal_hashes=goal_hashes,
            created_at=now,
        )
        self._challenges[challenge_id] = challenge
        return challenge

    def widget_html(self, challenge: CaptchaChallenge) -> str:
        """The embeddable widget (detectable by the same NoCoin rules)."""
        return (
            '<div class="coinhive-captcha" data-hashes="%d" data-key="%s">'
            '<script src="https://coinhive.com/lib/captcha.min.js" async></script>'
            "</div>" % (challenge.goal_hashes, challenge.site_token)
        )

    def submit_hashes(self, challenge_id: str, count: int, now: float) -> Optional[str]:
        """Credit hashes; returns the verification token when solved."""
        if count < 0:
            raise ValueError("hash count must be non-negative")
        challenge = self._challenges.get(challenge_id)
        if challenge is None:
            raise KeyError(f"unknown captcha {challenge_id!r}")
        if challenge.verification_token is not None:
            return challenge.verification_token
        challenge.hashes_done += count
        if challenge.solved:
            token = hashlib.sha256(
                f"verified/{challenge_id}/{challenge.hashes_done}".encode()
            ).hexdigest()
            challenge.verification_token = token
            self._verifications[token] = (challenge_id, now + self.token_ttl)
            return token
        return None

    def verify(self, verification_token: str, now: float) -> bool:
        """Backend-side check; single use and TTL-bounded."""
        entry = self._verifications.pop(verification_token, None)
        if entry is None:
            return False
        _challenge_id, expiry = entry
        return now <= expiry
