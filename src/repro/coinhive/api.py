"""Coinhive's owner-facing HTTP API.

Site owners interacted with Coinhive through an authenticated JSON API
(``api.coinhive.com``): per-site-key hash/payout statistics, token
verification (the captcha backend call), and payout requests once the
balance crossed the withdrawal threshold. This module implements that
surface over the pool's ledgers, so a complete owner workflow — embed,
mine, query stats, withdraw — is expressible end-to-end.

Coinhive's real minimum payout was 0.05 XMR (raised over time); we adopt
that default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.blockchain.transactions import ATOMIC_PER_XMR
from repro.coinhive.service import CoinhiveService

MIN_PAYOUT_ATOMIC = int(0.05 * ATOMIC_PER_XMR)


@dataclass(frozen=True)
class ApiResponse:
    """All endpoints respond with this envelope (mirrors the JSON API)."""

    success: bool
    data: dict = field(default_factory=dict)
    error: Optional[str] = None

    def to_dict(self) -> dict:
        out: dict = {"success": self.success}
        out.update(self.data)
        if self.error is not None:
            out["error"] = self.error
        return out


@dataclass
class CoinhiveApi:
    """``api.coinhive.com`` over the simulated service."""

    service: CoinhiveService
    min_payout_atomic: int = MIN_PAYOUT_ATOMIC
    payouts_issued: list = field(default_factory=list)

    def _require_user(self, token: str) -> Optional[ApiResponse]:
        if token not in self.service.users:
            return ApiResponse(False, error="invalid_site_key")
        return None

    # -- GET /user/balance ---------------------------------------------------------

    def user_balance(self, token: str) -> ApiResponse:
        error = self._require_user(token)
        if error:
            return error
        pool = self.service.pool
        balance = pool.payouts.balances_atomic.get(token, 0)
        return ApiResponse(
            True,
            data={
                "name": self.service.users[token].label,
                "balance": balance,
                "balance_xmr": balance / ATOMIC_PER_XMR,
                "withdrawable": balance >= self.min_payout_atomic,
                "hashes_pending": pool.shares.hashes_credited.get(token, 0),
            },
        )

    # -- GET /stats/site --------------------------------------------------------------

    def site_stats(self, token: str) -> ApiResponse:
        error = self._require_user(token)
        if error:
            return error
        pool = self.service.pool
        return ApiResponse(
            True,
            data={
                "shares_total": pool.shares.shares.get(token, 0),
                "hashes_total": pool.shares.hashes_credited.get(token, 0),
            },
        )

    # -- GET /stats/pool (public) --------------------------------------------------------

    def pool_stats(self) -> ApiResponse:
        pool = self.service.pool
        return ApiResponse(
            True,
            data={
                "blocks_found": len(pool.blocks_mined),
                "total_mined_xmr": self.service.total_mined_atomic() / ATOMIC_PER_XMR,
                "fee_percent": pool.payouts.pool_fee_percent,
                "endpoints": len(self.service.endpoints()),
            },
        )

    # -- POST /user/withdraw -----------------------------------------------------------

    def withdraw(self, token: str, address: str) -> ApiResponse:
        error = self._require_user(token)
        if error:
            return error
        if not address:
            return ApiResponse(False, error="invalid_address")
        balances = self.service.pool.payouts.balances_atomic
        amount = balances.get(token, 0)
        if amount < self.min_payout_atomic:
            return ApiResponse(
                False,
                error="balance_too_low",
                data={"balance": amount, "minimum": self.min_payout_atomic},
            )
        balances[token] = 0
        self.payouts_issued.append((token, address, amount))
        return ApiResponse(True, data={"amount": amount, "address": address})

    # -- POST /token/verify (the captcha backend call) ---------------------------------------

    def token_verify(self, captcha_service, verification_token: str, now: float) -> ApiResponse:
        if captcha_service.verify(verification_token, now):
            return ApiResponse(True, data={"verified": True})
        return ApiResponse(False, error="invalid_token", data={"verified": False})
