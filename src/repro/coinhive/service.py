"""The Coinhive service: accounts, pool, and endpoints.

Facts reproduced from the paper:

- users are identified by a token included in API calls (Section 4),
- the pool keeps 30% of rewards and pays users 70%,
- 32 WebSocket mining endpoints front 16 backend systems (two endpoints
  per backend), each backend holding its own block template — hence at
  most ``16 × 8 = 128`` distinct PoW inputs per block (Section 4.2),
- outgoing job blobs are XOR-obfuscated (Section 4.1),
- backends refresh templates periodically as transactions arrive, capped
  at 8 templates per backend per block.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from repro.blockchain.chain import Blockchain, Mempool
from repro.coinhive.obfuscation import BlobObfuscator
from repro.pool.protocol import (
    AuthedMessage,
    BannedMessage,
    LoginMessage,
    SubmitMessage,
    decode_message,
    encode_message,
)
from repro.pool.server import PoolServer, PoolUnavailable

NUM_BACKENDS = 16
ENDPOINTS_PER_BACKEND = 2
NUM_ENDPOINTS = NUM_BACKENDS * ENDPOINTS_PER_BACKEND
TEMPLATE_REFRESH_SECONDS = 15.0  # ≈8 refreshes per 120 s block


@dataclass
class CoinhiveUser:
    """One Coinhive account (site owner or short-link creator)."""

    token: str
    label: str = ""
    kind: str = "website"  # website | shortlink


def make_token(seed: str) -> str:
    """Coinhive-style 32-char site key."""
    return hashlib.sha256(seed.encode("utf-8")).hexdigest()[:32].upper()


@dataclass
class CoinhiveService:
    """The service tying users, pool, endpoints, and obfuscation together."""

    chain: Blockchain
    mempool: Mempool = field(default_factory=Mempool)
    obfuscator: BlobObfuscator = field(default_factory=BlobObfuscator)
    num_backends: int = NUM_BACKENDS
    share_difficulty: int = 16
    fee_percent: int = 30
    pool: PoolServer = field(default=None)  # type: ignore[assignment]
    users: dict = field(default_factory=dict)
    _endpoint_backend: dict = field(default_factory=dict)
    _last_refresh: dict = field(default_factory=dict)
    _connection_counter: int = 0
    outage_windows: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.pool is None:
            self.pool = PoolServer(
                name="coinhive",
                chain=self.chain,
                mempool=self.mempool,
                num_backends=self.num_backends,
                share_difficulty=self.share_difficulty,
                fee_percent=self.fee_percent,
                blob_transform=self.obfuscator.apply,
            )
        for backend in range(self.num_backends):
            for slot in range(ENDPOINTS_PER_BACKEND):
                endpoint = self.endpoint_name(backend * ENDPOINTS_PER_BACKEND + slot + 1)
                self._endpoint_backend[endpoint] = backend

    # -- endpoints -------------------------------------------------------------

    @staticmethod
    def endpoint_name(index: int) -> str:
        """``wss://ws<N>.coinhive.com/proxy`` for N in 1..32."""
        return f"wss://ws{index}.coinhive.com/proxy"

    def endpoints(self) -> list:
        def index_of(endpoint: str) -> int:
            host = endpoint.split("://", 1)[1]
            return int(host.split(".")[0].lstrip("ws"))

        return sorted(self._endpoint_backend, key=index_of)

    def backend_for(self, endpoint: str) -> int:
        try:
            return self._endpoint_backend[endpoint]
        except KeyError:
            raise KeyError(f"unknown endpoint {endpoint!r}") from None

    # -- accounts ----------------------------------------------------------------

    def register_user(self, label: str, kind: str = "website") -> CoinhiveUser:
        token = make_token(f"{kind}/{label}")
        user = CoinhiveUser(token=token, label=label, kind=kind)
        self.users[token] = user
        return user

    # -- availability (Figure 5's outages) ----------------------------------------

    def add_outage(self, start: float, end: float) -> None:
        """Service outage window (the paper observed one on 6–7 May 2018)."""
        if end <= start:
            raise ValueError("outage window must have positive length")
        self.outage_windows.append((start, end))

    def is_down(self, now: float) -> bool:
        return any(start <= now < end for start, end in self.outage_windows)

    # -- job distribution -----------------------------------------------------------

    def _maybe_refresh(self, backend: int, now: float) -> None:
        last = self._last_refresh.get(backend)
        if last is None or now - last >= TEMPLATE_REFRESH_SECONDS:
            self.pool.refresh_backend(backend, now)
            self._last_refresh[backend] = now

    def pow_input_for_endpoint(self, endpoint: str, now: float) -> bytes:
        """The (obfuscated) job blob a miner polling ``endpoint`` receives.

        This is the surface the paper's :class:`~repro.core.
        pool_association.PoolObserver` measures. Raises ``RuntimeError``
        during outages.
        """
        if self.is_down(now):
            raise RuntimeError("coinhive service unavailable")
        backend = self.backend_for(endpoint)
        self._maybe_refresh(backend, now)
        self._connection_counter += 1
        connection_id = f"observer-{self._connection_counter}"
        self.pool.handle_login(connection_id, "anonymous-observer")
        job = self.pool.get_job(connection_id, backend, now)
        return job.blob

    def on_new_block(self, now: float) -> None:
        """Chain advanced: all backends rebuild on next poll."""
        self.pool.on_new_block(now)
        for backend in range(self.num_backends):
            self._last_refresh[backend] = now

    # -- websocket protocol endpoint (for browser-driven miners) ---------------------

    def websocket_handler(self, endpoint: str):
        """A ``(channel, payload)`` handler speaking the pool protocol.

        Wire this into :meth:`repro.web.http.SyntheticWeb.register_ws` for
        each endpoint URL so in-browser miners reach the real pool.
        """
        backend = self.backend_for(endpoint)

        def handler(channel, payload: str) -> None:
            now = channel.loop.now
            if self.is_down(now):
                channel.close()
                return
            try:
                message = decode_message(payload)
            except Exception:
                return
            connection_id = f"ws-{id(channel)}"
            if isinstance(message, LoginMessage):
                if not message.token:
                    channel.server_send(encode_message(BannedMessage(reason="invalid token")))
                    # close only after the ban frame has flushed to the client
                    channel.loop.call_later(channel.latency * 2, channel.close)
                    return
                self.pool.handle_login(connection_id, message.token)
                channel.server_send(
                    encode_message(AuthedMessage(token=message.token, hashes=0))
                )
                self._maybe_refresh(backend, now)
                try:
                    job = self.pool.get_job(connection_id, backend, now)
                except PoolUnavailable:
                    # injected backend outage: the miner's connection dies,
                    # exactly what a real pool outage looks like client-side
                    channel.close()
                    return
                channel.server_send(encode_message(self.pool.job_message(job)))
            elif isinstance(message, SubmitMessage):
                result = self.pool.handle_submit(
                    connection_id, message.job_id, message.nonce, now
                )
                channel.server_send(encode_message(result))

        return handler

    def register_endpoints(self, web) -> None:
        """Register all 32 endpoints on a :class:`SyntheticWeb`."""
        for endpoint in self.endpoints():
            web.register_ws(endpoint, self.websocket_handler(endpoint))

    # -- economics --------------------------------------------------------------------

    def total_mined_atomic(self) -> int:
        return sum(block.reward() for block in self.pool.blocks_mined)
