"""Coinhive service simulator.

Coinhive (Section 4 of the paper) was the dominant browser-mining
provider: it served a highly optimized Monero Wasm miner, ran a mining
pool behind 32 WebSocket endpoints (two per backend system), kept 30% of
the mined rewards, obfuscated outgoing PoW blobs with a fixed XOR, and
operated side businesses — most notably the ``cnhv.co`` short-link
forwarding service that required visitors to compute hashes before being
redirected.

- :mod:`repro.coinhive.obfuscation` — the XOR blob transform.
- :mod:`repro.coinhive.service` — accounts, pool, endpoints.
- :mod:`repro.coinhive.miner_script` — website-embeddable miner assets.
- :mod:`repro.coinhive.shortlink` — the cnhv.co short-link service.
- :mod:`repro.coinhive.resolver` — the paper's non-browser parallel link
  resolver (Section 4.1, "Link Destinations").
"""

from repro.coinhive.captcha import CaptchaService
from repro.coinhive.obfuscation import BlobObfuscator
from repro.coinhive.service import CoinhiveService, CoinhiveUser
from repro.coinhive.shortlink import ShortLink, ShortLinkService, id_to_index, index_to_id
from repro.coinhive.resolver import LinkResolver, ResolvedLink

__all__ = [
    "CaptchaService",
    "BlobObfuscator",
    "CoinhiveService",
    "CoinhiveUser",
    "ShortLink",
    "ShortLinkService",
    "id_to_index",
    "index_to_id",
    "LinkResolver",
    "ResolvedLink",
]
