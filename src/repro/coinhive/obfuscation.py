"""Coinhive's PoW-blob obfuscation.

    "We found that Coinhive alters the block header contained in the PoW
    inputs before sending them to the users which the web miner reverts
    deep within its WebAssembly. [...] A simple XOR with a fixed value at a
    fixed offset." — Section 4.1

The transform is an involution (XOR twice = identity), so the same object
serves both the pool's outgoing transform and the reverse-engineered
de-transform the paper's resolver needed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blockchain.block import NONCE_OFFSET


@dataclass(frozen=True)
class BlobObfuscator:
    """XOR ``key`` into the blob at ``offset``.

    The default offset targets the bytes just before the nonce (inside the
    previous-block id), which breaks naive reuse of the miner against other
    pools while remaining trivially revertible once discovered.
    """

    key: bytes = bytes.fromhex("c0 1d ca fe 0b ad f0 0d".replace(" ", ""))
    offset: int = NONCE_OFFSET - 8

    def __post_init__(self) -> None:
        if not self.key:
            raise ValueError("key must be non-empty")
        if self.offset < 0:
            raise ValueError("offset must be non-negative")

    def apply(self, blob: bytes) -> bytes:
        """Obfuscate (or revert — the operation is its own inverse)."""
        end = self.offset + len(self.key)
        if len(blob) < end:
            raise ValueError(
                f"blob too short ({len(blob)} bytes) for XOR at [{self.offset}:{end})"
            )
        window = bytes(b ^ k for b, k in zip(blob[self.offset : end], self.key))
        return blob[: self.offset] + window + blob[end:]

    revert = apply  # reading aid: observer code calls .revert(blob)
