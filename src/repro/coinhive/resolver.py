"""Non-browser short-link resolver (Section 4.1, "Link Destinations").

    "To efficiently resolve the short links without a web browser, we
    replicate the working principle of the web miner in a non-web
    implementation that can resolve multiple short links in parallel
    making use of the official optimized Monero hash code."

The resolver (a) enumerates the ID space and scrapes creator token and
required-hash count from each landing page, and (b) resolves selected
links by actually computing hashes — including reverting Coinhive's XOR
blob obfuscation, which the paper had to reverse engineer out of the Wasm.

Because the stand-in CryptoNight is still real computation, the resolver
exposes a ``hash_scale`` knob: ``ceil(required / hash_scale)`` hashes are
physically computed while the full count is credited to the service. With
``hash_scale=1`` the resolver does every hash, as the paper's tooling did
(61.5 M hashes over two days).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

from repro.blockchain.hashing import CryptonightParams, FAST_PARAMS, cryptonight
from repro.coinhive.obfuscation import BlobObfuscator
from repro.coinhive.service import CoinhiveService
from repro.coinhive.shortlink import ShortLinkService
from repro.web.html import parse_html

_TOKEN_RE = re.compile(r'CoinHive\.User\("([0-9A-F]+)"')
_GOAL_RE = re.compile(r"goal:\s*(\d+)")


@dataclass(frozen=True)
class ScannedLink:
    """Metadata scraped from one landing page (no hashing needed)."""

    link_id: str
    token: str
    required_hashes: int


@dataclass(frozen=True)
class ResolvedLink:
    """A fully resolved link."""

    link_id: str
    token: str
    required_hashes: int
    target_url: str
    hashes_computed: int


@dataclass
class LinkResolver:
    """Scans and resolves cnhv.co links against a :class:`CoinhiveService`."""

    shortlinks: ShortLinkService
    coinhive: Optional[CoinhiveService] = None
    obfuscator: BlobObfuscator = field(default_factory=BlobObfuscator)
    pow_params: CryptonightParams = FAST_PARAMS
    hash_scale: int = 1024
    total_hashes_computed: int = 0

    # -- enumeration ------------------------------------------------------------

    def scan(self, max_chars: int = 4) -> list:
        """Scrape every assigned ID's landing page for token and hash goal."""
        scanned: list[ScannedLink] = []
        for link_id in self.shortlinks.enumerate_ids(max_chars):
            page = self.shortlinks.landing_page(link_id)
            if page is None:
                continue
            parsed = self.parse_landing_page(link_id, page)
            if parsed is not None:
                scanned.append(parsed)
        return scanned

    @staticmethod
    def parse_landing_page(link_id: str, html: str) -> Optional[ScannedLink]:
        """Extract ``(token, goal)`` from a redirection document."""
        document = parse_html(html)
        for _src, inline in document.scripts():
            token_match = _TOKEN_RE.search(inline)
            goal_match = _GOAL_RE.search(inline)
            if token_match and goal_match:
                return ScannedLink(
                    link_id=link_id,
                    token=token_match.group(1),
                    required_hashes=int(goal_match.group(1)),
                )
        return None

    # -- resolution --------------------------------------------------------------

    def resolve(self, link_id: str, now: float = 0.0) -> Optional[ResolvedLink]:
        """Compute the link's hashes and return its target.

        Returns None for unknown links. The hash loop follows the web
        miner's working principle: fetch a PoW input from the pool, revert
        the XOR obfuscation, then iterate nonces through CryptoNight.
        """
        link = self.shortlinks.get(link_id)
        if link is None:
            return None
        blob = self._fetch_deobfuscated_blob(now)
        physical = max(1, -(-link.required_hashes // self.hash_scale))  # ceil
        physical = min(physical, 4096)  # cap per link: parallel workers chunk
        for nonce in range(physical):
            cryptonight(blob + nonce.to_bytes(8, "little"), self.pow_params)
        self.total_hashes_computed += physical
        remaining = max(0, link.required_hashes - link.hashes_done)
        target = self.shortlinks.submit_hashes(link_id, remaining)
        if target is None:  # pragma: no cover - submit covers the full goal
            raise RuntimeError("service did not resolve after full hash goal")
        return ResolvedLink(
            link_id=link_id,
            token=link.token,
            required_hashes=link.required_hashes,
            target_url=target,
            hashes_computed=physical,
        )

    def resolve_many(self, link_ids, now: float = 0.0) -> list:
        """Resolve a batch (the paper ran many links in parallel)."""
        out = []
        for link_id in link_ids:
            resolved = self.resolve(link_id, now)
            if resolved is not None:
                out.append(resolved)
        return out

    def _fetch_deobfuscated_blob(self, now: float) -> bytes:
        if self.coinhive is None:
            # stand-alone mode: hash over a fixed-shape synthetic blob
            return b"\x07\x07" + b"\x00" * 74
        endpoint = self.coinhive.endpoints()[0]
        blob = self.coinhive.pow_input_for_endpoint(endpoint, now)
        return self.obfuscator.revert(blob)


def duration_seconds(required_hashes: int, hash_rate: float = 20.0) -> float:
    """Time to compute ``required_hashes`` at ``hash_rate`` H/s.

    Figure 4's top axis: a 2013 MacBook Pro does ~20 H/s in Chrome, so
    1024 hashes ≈ 51 s and 10^19 hashes ≈ 16 billion years.
    """
    if hash_rate <= 0:
        raise ValueError("hash rate must be positive")
    return required_hashes / hash_rate
