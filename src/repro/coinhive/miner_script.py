"""Website-embeddable Coinhive miner assets.

Provides what a site owner got from Coinhive: the ``coinhive.min.js``
loader, the CryptoNight Wasm, and the snippet

    <script src="https://coinhive.com/lib/coinhive.min.js"></script>
    <script>new CoinHive.Anonymous('SITE_KEY').start();</script>

plus the *self-hosted* variant (loader copied to the site's own domain),
which is how many operators evaded URL-based block lists — the mechanism
behind the paper's NoCoin false negatives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.coinhive.service import CoinhiveService
from repro.wasm.builder import ModuleBlueprint, WasmCorpusBuilder
from repro.web.http import Resource, SyntheticWeb
from repro.web.scripts import MinerBehavior, ScriptTag

OFFICIAL_JS_URL = "https://coinhive.com/lib/coinhive.min.js"
OFFICIAL_WASM_URL = "https://coinhive.com/lib/cryptonight.wasm"
AUTHEDMINE_JS_URL = "https://authedmine.com/lib/authedmine.min.js"
AUTHEDMINE_WASM_URL = "https://authedmine.com/lib/cryptonight.wasm"

#: A shortened but recognizable loader body (NoCoin text rules match it).
LOADER_JS = (
    "var CoinHive=CoinHive||{};CoinHive.CONFIG={LIB_URL:'%(wasm)s',"
    "WEBSOCKET_SHARDS:%(shards)d};CoinHive.Anonymous=function(k,o){"
    "return new CoinHive.Miner(k,o)};CoinHive.User=function(k,u,o){"
    "return new CoinHive.Miner(k,o)};"
)


@dataclass
class CoinhiveMinerKit:
    """Registers Coinhive assets on a synthetic web and mints script tags."""

    service: CoinhiveService
    web: SyntheticWeb
    corpus: WasmCorpusBuilder = field(default_factory=WasmCorpusBuilder)
    wasm_variant: int = 0
    consent_banner: bool = False  # Authedmine asks; Coinhive doesn't

    @property
    def family(self) -> str:
        return "authedmine" if self.consent_banner else "coinhive"

    @property
    def js_url(self) -> str:
        return AUTHEDMINE_JS_URL if self.consent_banner else OFFICIAL_JS_URL

    @property
    def wasm_url(self) -> str:
        return AUTHEDMINE_WASM_URL if self.consent_banner else OFFICIAL_WASM_URL

    def install(self) -> None:
        """Register the loader, the Wasm, and all 32 pool endpoints."""
        wasm_bytes = self.corpus.build(ModuleBlueprint(self.family, self.wasm_variant))
        loader = (LOADER_JS % {"wasm": self.wasm_url, "shards": len(self.service.endpoints())}).encode()
        self.web.register(self.js_url, Resource(content=loader, content_type="text/javascript"))
        self.web.register(
            self.wasm_url, Resource(content=wasm_bytes, content_type="application/wasm")
        )
        self.service.register_endpoints(self.web)

    # -- deployment variants -----------------------------------------------------

    def official_tags(self, token: str, endpoint_index: int = 1, throttle: float = 0.0, wasm_variant: Optional[int] = None) -> list:
        """The documented two-tag embed, loading from coinhive.com."""
        behavior = self._behavior(token, self.wasm_url, endpoint_index, throttle, wasm_variant)
        inline = f"var miner=new CoinHive.Anonymous('{token}');miner.start();"
        if self.consent_banner:
            inline = f"var miner=new CoinHive.Anonymous('{token}');miner.askAndStart();"
        return [
            ScriptTag(src=self.js_url),
            ScriptTag(inline=inline, behavior=behavior),
        ]

    def self_hosted_tags(
        self, token: str, host: str, endpoint_index: int = 1, throttle: float = 0.0, wasm_variant: Optional[int] = None
    ) -> list:
        """Loader + Wasm re-hosted under the site's own domain.

        The script URL carries no Coinhive strings, so URL-based lists stay
        silent; the Wasm (and the pool WebSocket) are unchanged — which is
        exactly what the paper's fingerprint still catches.
        """
        js_url = f"https://{host}/assets/app-support.js"
        wasm_url = f"https://{host}/assets/runtime.wasm"
        variant = self.wasm_variant if wasm_variant is None else wasm_variant
        wasm_bytes = self.corpus.build(ModuleBlueprint(self.family, variant))
        self.web.register(
            js_url,
            Resource(content=b"/*bundle*/(function(){var m;})();", content_type="text/javascript"),
        )
        self.web.register(wasm_url, Resource(content=wasm_bytes, content_type="application/wasm"))
        behavior = self._behavior(token, wasm_url, endpoint_index, throttle, wasm_variant)
        return [
            ScriptTag(src=js_url),
            ScriptTag(inline=f"window.__rt&&__rt.init('{token[:12]}');", behavior=behavior),
        ]

    def _behavior(
        self, token: str, wasm_url: str, endpoint_index: int, throttle: float, wasm_variant: Optional[int]
    ) -> MinerBehavior:
        if wasm_variant is not None and wasm_variant != self.wasm_variant:
            # version skew across sites: serve this variant under a
            # versioned URL so the browser dumps the right bytes
            versioned = self.wasm_url.replace(".wasm", f"-v{wasm_variant}.wasm")
            self.web.register(
                versioned,
                Resource(
                    content=self.corpus.build(ModuleBlueprint(self.family, wasm_variant)),
                    content_type="application/wasm",
                ),
            )
            if wasm_url == self.wasm_url:
                wasm_url = versioned
        endpoint = self.service.endpoint_name(endpoint_index)
        return MinerBehavior(
            wasm_url=wasm_url,
            socket_url=endpoint,
            token=token,
            throttle=throttle,
            share_difficulty_hint=self.service.share_difficulty,
            deobfuscate=self.service.obfuscator.revert,
        )
