"""The cnhv.co short-link forwarding service (Section 4.1).

A short link is an alphanumeric ID under ``https://cnhv.co/``. Visiting it
serves a page that mines until the creator-configured number of hashes has
been submitted, then redirects to the original target. Properties the
paper measured and we reproduce:

- IDs are assigned *incrementally* over the ``[a-z0-9]`` alphabet — the
  enumerability that made the study possible,
- the redirection page embeds the creator's token and the required hash
  count (both parseable by a crawler),
- required hashes range from 2^8 up to absurd 10^19 values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

ALPHABET = "abcdefghijklmnopqrstuvwxyz0123456789"
BASE = len(ALPHABET)
_CHAR_INDEX = {char: i for i, char in enumerate(ALPHABET)}


def index_to_id(index: int) -> str:
    """Map a 0-based creation index to its short-link ID.

    IDs enumerate all 1-character strings, then all 2-character strings,
    and so on (``a``…``9``, ``aa``…``99``, ``aaa``…), matching the
    observed ``https://cnhv.co/[a-z0-9]+`` growth.
    """
    if index < 0:
        raise ValueError("index must be non-negative")
    length = 1
    span = BASE
    remaining = index
    while remaining >= span:
        remaining -= span
        length += 1
        span *= BASE
    chars = []
    for _ in range(length):
        chars.append(ALPHABET[remaining % BASE])
        remaining //= BASE
    return "".join(reversed(chars))


def id_to_index(link_id: str) -> int:
    """Inverse of :func:`index_to_id`; raises :class:`ValueError`."""
    if not link_id:
        raise ValueError("empty link id")
    value = 0
    for char in link_id:
        if char not in _CHAR_INDEX:
            raise ValueError(f"invalid character {char!r} in link id")
        value = value * BASE + _CHAR_INDEX[char]
    offset = 0
    span = BASE
    for _ in range(len(link_id) - 1):
        offset += span
        span *= BASE
    return offset + value


@dataclass
class ShortLink:
    """One created link."""

    link_id: str
    token: str               # creator's Coinhive token
    target_url: str
    required_hashes: int
    hashes_done: int = 0
    visits: int = 0

    @property
    def resolved(self) -> bool:
        return self.hashes_done >= self.required_hashes

    @property
    def url(self) -> str:
        return f"https://cnhv.co/{self.link_id}"


@dataclass
class ShortLinkService:
    """Creation, serving, and hash accounting for cnhv.co."""

    links: list = field(default_factory=list)
    _by_id: dict = field(default_factory=dict)

    def create(self, token: str, target_url: str, required_hashes: int) -> ShortLink:
        if required_hashes < 1:
            raise ValueError("required_hashes must be positive")
        link_id = index_to_id(len(self.links))
        link = ShortLink(
            link_id=link_id,
            token=token,
            target_url=target_url,
            required_hashes=required_hashes,
        )
        self.links.append(link)
        self._by_id[link_id] = link
        return link

    def get(self, link_id: str) -> Optional[ShortLink]:
        return self._by_id.get(link_id)

    def __len__(self) -> int:
        return len(self.links)

    # -- the visitor-facing flow ---------------------------------------------------

    def landing_page(self, link_id: str) -> Optional[str]:
        """The redirection HTML document served at ``cnhv.co/<id>``.

        Embeds the creator token and the hash goal — exactly the two fields
        the paper's enumeration crawler extracted.
        """
        link = self._by_id.get(link_id)
        if link is None:
            return None
        return (
            "<html><head><title>Loading...</title>"
            '<script src="https://coinhive.com/lib/coinhive.min.js"></script>'
            "</head><body>"
            '<div class="progress" id="progress"></div>'
            "<script>"
            f'var miner = new CoinHive.User("{link.token}", "cnhv", '
            f"{{goal: {link.required_hashes}}});miner.start();"
            "</script>"
            "</body></html>"
        )

    def submit_hashes(self, link_id: str, count: int) -> Optional[str]:
        """Credit ``count`` hashes to ``link_id``.

        Returns the target URL once the goal is reached, else None —
        mirroring the service returning the original link only when the
        progress bar fills.
        """
        if count < 0:
            raise ValueError("hash count must be non-negative")
        link = self._by_id.get(link_id)
        if link is None:
            raise KeyError(f"no such short link {link_id!r}")
        link.hashes_done += count
        if link.resolved:
            return link.target_url
        return None

    def visit(self, link_id: str) -> Optional[ShortLink]:
        link = self._by_id.get(link_id)
        if link is not None:
            link.visits += 1
        return link

    # -- enumeration surface (what the paper crawled) ---------------------------------

    def enumerate_ids(self, max_chars: int = 4) -> list:
        """All assigned IDs up to ``max_chars`` characters, in ID order."""
        limit = sum(BASE**n for n in range(1, max_chars + 1))
        return [link.link_id for link in self.links[:limit]]
