"""The seeded open-loop load generator.

Open-loop means arrivals do not wait for responses: each tenant is an
independent Poisson process (via
:meth:`~repro.sim.rng.RngStream.exponential_interarrivals`), so offered
load keeps arriving at the configured rate no matter how slow the server
gets — the regime where admission control actually earns its keep.
Everything is a pure function of the seed: arrival times, which domain
each request asks about, and the client capture attached to it.

Client captures are synthesized from population ground truth, modeling
the browser-extension consumer: a request for a miner site carries that
site's actual corpus wasm (rebuilt deterministically from its
``(family, wasm_variant)``) and the family's WebSocket backend; benign
wasm sites carry their module; everything else is HTML-only. That makes
service-side recall directly measurable against
``population.ground_truth_miners()`` — including how much recall a
degraded tier gives up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.detector import TIER_STATIC_ONLY
from repro.core.nocoin import FilterList
from repro.faults.plan import build_fault_plan
from repro.internet.population import build_population
from repro.service.admission import ServicePolicy
from repro.service.bundles import DetectionBundle
from repro.service.server import ServiceRequest, VerdictServer
from repro.sim.rng import RngStream
from repro.wasm.builder import FAMILY_PROFILES, ModuleBlueprint, WasmCorpusBuilder


@dataclass(frozen=True)
class LoadgenConfig:
    """One load run: who arrives, how fast, for how long."""

    seed: int = 2018
    dataset: str = "alexa"
    scale: float = 0.1
    #: aggregate offered load (requests/second, split evenly over tenants)
    rate: float = 40.0
    #: simulated seconds of arrivals
    duration: float = 30.0
    tenants: int = 4
    fault_profile: str = ""
    #: simulated times at which a refreshed (valid) bundle is hot-swapped
    reload_at: tuple = ()
    #: simulated times at which an *invalid* bundle is offered (rollback demo)
    bad_reload_at: tuple = ()
    policy: ServicePolicy = field(default_factory=ServicePolicy)
    collect_evidence: bool = True
    #: tick width for the windowed-telemetry recorder (0 = no recorder)
    timeseries_interval: float = 0.0
    #: simulated seconds of quiet observation after the last arrival
    #: drains — long enough for burn-rate alerts to resolve on tape
    cooldown: float = 0.0
    #: heartbeat line interval in simulated seconds (0 = no heartbeat)
    heartbeat: float = 0.0
    #: burn-rate rules for the recorder (None = default_service_rules())
    alert_rules: object = None


@dataclass
class LoadReport:
    """Everything a load run produced, summarized."""

    config: LoadgenConfig
    server: VerdictServer
    responses: list
    #: the TimeSeriesRecorder attached for this run (None when disabled)
    recorder: object = None

    # -- derived views -------------------------------------------------------------

    def counter(self, name: str) -> int:
        return self.server.metrics.counter(name)

    @property
    def offered(self) -> int:
        return self.counter("service.requests.offered")

    @property
    def completed(self) -> int:
        return self.counter("service.requests.completed")

    @property
    def rejected(self) -> int:
        return (
            self.counter("service.rejected.rate_limit")
            + self.counter("service.rejected.queue_full")
            + self.counter("service.rejected.deadline")
        )

    @property
    def shed_rate(self) -> float:
        return self.rejected / max(1, self.offered)

    def latency_quantile(self, q: float) -> float:
        histogram = self.server.metrics.histograms.get("service.latency")
        return histogram.quantile(q) if histogram is not None else 0.0

    @property
    def timeseries(self):
        return self.recorder.timeseries() if self.recorder is not None else None

    @property
    def alerts_fired(self) -> int:
        if self.recorder is None:
            return 0
        return sum(1 for event in self.recorder.alerts if event.kind == "fire")

    @property
    def alerts_resolved(self) -> int:
        if self.recorder is None:
            return 0
        return sum(1 for event in self.recorder.alerts if event.kind == "resolve")

    def recall(self, tier: Optional[str] = None) -> Optional[float]:
        """Miner recall over served requests (optionally one tier only).

        A response "flags" a miner if any surviving detector fired — the
        wasm cascade *or* the NoCoin list (which is all a static-only
        response has left). None when no ground-truth miner was served at
        that tier: recall is undefined, not perfect.
        """
        miners = self.server.population.ground_truth_miners()
        seen = flagged = 0
        for response in self.responses:
            if response.status != "ok" or response.request.domain not in miners:
                continue
            if tier is not None and response.tier != tier:
                continue
            seen += 1
            flagged += int(response.is_miner or response.nocoin_hit)
        if seen == 0:
            return None
        return flagged / seen

    def summary_rows(self) -> list:
        degraded = sum(
            self.server.metrics.counters_with_prefix("service.degraded.").values()
        )
        recall_full = self.recall()
        recall_static = self.recall(TIER_STATIC_ONLY)
        return [
            ["offered", self.offered],
            ["admitted", self.counter("service.requests.admitted")],
            ["completed", self.completed],
            ["rejected: rate-limit", self.counter("service.rejected.rate_limit")],
            ["rejected: queue-full", self.counter("service.rejected.queue_full")],
            ["rejected: deadline", self.counter("service.rejected.deadline")],
            ["shed rate", f"{self.shed_rate:.1%}"],
            ["degraded responses", degraded],
            ["max queue depth", int(self.server.metrics.gauges.get("service.queue.depth", 0.0))],
            ["latency p50", f"{self.latency_quantile(0.5) * 1000:.0f}ms"],
            ["latency p99", f"{self.latency_quantile(0.99) * 1000:.0f}ms"],
            ["miner recall (all tiers)", "n/a" if recall_full is None else f"{recall_full:.0%}"],
            ["miner recall (static-only)", "n/a" if recall_static is None else f"{recall_static:.0%}"],
            ["reloads applied/rejected",
             f"{self.counter('service.reload.applied')}/{self.counter('service.reload.rejected')}"],
        ] + (
            [
                ["timeseries ticks", len(self.recorder.records)],
                ["alerts fired/resolved", f"{self.alerts_fired}/{self.alerts_resolved}"],
            ]
            if self.recorder is not None
            else []
        )


# ---------------------------------------------------------------------------
# request synthesis


def synthesize_capture(site, corpus: WasmCorpusBuilder, cache: dict) -> tuple:
    """(wasm_dumps, websocket_urls) a client would have captured on ``site``."""
    if site.role == "miner":
        key = (site.family, site.wasm_variant)
        if key not in cache:
            cache[key] = corpus.build(ModuleBlueprint(site.family, site.wasm_variant))
        backend = FAMILY_PROFILES[site.family].backend
        urls = (backend % 1,) if backend is not None else ()
        return (cache[key],), urls
    if site.role == "benign-wasm":
        key = (site.family, site.wasm_variant)
        if key not in cache:
            cache[key] = corpus.build(ModuleBlueprint(site.family, site.wasm_variant))
        return (cache[key],), ()
    return (), ()


def build_requests(config: LoadgenConfig, population) -> list:
    """The full seeded arrival schedule, sorted by arrival time."""
    rng = RngStream(config.seed, "loadgen", config.dataset)
    corpus = WasmCorpusBuilder(root_seed=config.seed)
    cache: dict = {}
    sites = population.sites
    per_tenant_rate = config.rate / max(1, config.tenants)
    arrivals = []
    for tenant_index in range(config.tenants):
        tenant = f"tenant-{tenant_index}"
        times = rng.substream("arrivals", tenant)
        picks = rng.substream("domains", tenant)
        for when in times.exponential_interarrivals(per_tenant_rate, config.duration):
            site = sites[picks.randint(0, len(sites) - 1)]
            wasm_dumps, websocket_urls = synthesize_capture(site, corpus, cache)
            arrivals.append(
                (when, tenant, site.domain, wasm_dumps, websocket_urls)
            )
    arrivals.sort(key=lambda item: (item[0], item[1]))
    deadline = config.policy.request_deadline
    return [
        ServiceRequest(
            tenant=tenant,
            domain=domain,
            arrival=when,
            deadline=when + deadline,
            wasm_dumps=wasm_dumps,
            websocket_urls=websocket_urls,
            sequence=sequence,
        )
        for sequence, (when, tenant, domain, wasm_dumps, websocket_urls) in enumerate(arrivals)
    ]


def build_reloads(config: LoadgenConfig) -> list:
    """(when, bundle) events: valid refreshes plus doomed candidates."""
    reloads = [
        (when, DetectionBundle.build(f"refresh-{index + 1}"))
        for index, when in enumerate(config.reload_at)
    ]
    for index, when in enumerate(config.bad_reload_at):
        # an empty filter list never validates: exercises rollback
        version = f"broken-{index + 1}"
        reference = DetectionBundle.build(version)
        broken = DetectionBundle(
            version=version,
            filters=FilterList(),
            signatures=reference.signatures,
            filter_version=version,
            db_version=version,
        )
        reloads.append((when, broken))
    reloads.sort(key=lambda item: item[0])
    return reloads


def run_loadgen(config: LoadgenConfig, population=None, flush_path=None) -> LoadReport:
    """Run one seeded open-loop load campaign against a fresh server.

    With ``config.timeseries_interval > 0`` a
    :class:`~repro.obs.timeseries.TimeSeriesRecorder` rides the sim
    clock, evaluating burn-rate alert rules every tick;  ``flush_path``
    (typically ``<run-dir>/timeseries.jsonl``) makes it rewrite the
    artifact atomically on every tick so ``repro obs top --watch`` can
    follow the run live. ``config.cooldown`` extends observation past the
    last drained request so recovered alerts resolve on tape.
    """
    if population is None:
        population = build_population(
            config.dataset, seed=config.seed, scale=config.scale
        )
    server = VerdictServer(
        population=population,
        policy=config.policy,
        fault_plan=build_fault_plan(config.fault_profile, seed=config.seed),
        collect_evidence=config.collect_evidence,
    )
    recorder = None
    if config.timeseries_interval > 0:
        from repro.obs.alerts import default_service_rules
        from repro.obs.timeseries import TimeSeriesRecorder

        rules = config.alert_rules
        if rules is None:
            rules = default_service_rules()
        recorder = TimeSeriesRecorder(
            registry=server.metrics,
            interval=config.timeseries_interval,
            rules=rules,
            flush_path=flush_path,
        )
        server.recorder = recorder
    if config.heartbeat > 0:
        from repro.obs.heartbeat import ProgressReporter

        server.progress = ProgressReporter(
            config.heartbeat,
            label="loadgen",
            clock=lambda: server.clock.now,
            health=server.service_health,
        )
    requests = build_requests(config, population)
    responses = server.run(requests, reloads=build_reloads(config))
    if recorder is not None:
        recorder.finish(server.clock.now + max(0.0, config.cooldown))
    return LoadReport(
        config=config, server=server, responses=responses, recorder=recorder
    )
