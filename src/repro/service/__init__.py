"""Detection-as-a-service: the long-running verdict server.

The batch campaigns answer "how prevalent is mining *today*"; this
package answers single requests, forever. It wraps the full detector
cascade (NoCoin → wasm signature db → classifier → dynamic) behind a
deterministic, sim-clock-driven request/response API with:

- hot-reloadable detection state (:mod:`repro.service.bundles`):
  versioned FilterList/signature-db bundles swapped atomically under
  load, rejected candidates rolled back, torn swaps provably impossible,
- admission control (:mod:`repro.service.admission`): per-tenant token
  buckets, a bounded queue with deadline-aware rejection, and graceful
  degradation tiers that shed expensive cascade stages first,
- SLO gates (:mod:`repro.service.slo`) over the persisted metrics,
- a seeded open-loop load generator (:mod:`repro.service.loadgen`).
"""

from repro.service.admission import AdmissionQueue, ServicePolicy, TokenBucket
from repro.service.bundles import (
    BundleStore,
    BundleValidationError,
    DetectionBundle,
    validate_bundle,
)
from repro.service.loadgen import LoadgenConfig, LoadReport, run_loadgen
from repro.service.server import ServiceRequest, ServiceResponse, VerdictServer
from repro.service.slo import evaluate_slo, parse_slo

__all__ = [
    "AdmissionQueue",
    "BundleStore",
    "BundleValidationError",
    "DetectionBundle",
    "LoadReport",
    "LoadgenConfig",
    "ServicePolicy",
    "ServiceRequest",
    "ServiceResponse",
    "TokenBucket",
    "VerdictServer",
    "evaluate_slo",
    "parse_slo",
    "run_loadgen",
    "validate_bundle",
]
