"""Versioned, hot-reloadable detection state.

A :class:`DetectionBundle` pins together everything a verdict depends on
— the NoCoin filter list and the wasm signature database — under one
version string. The server snapshots exactly one bundle reference per
request, so a reload can never produce a verdict computed half against
the old filters and half against the new signatures: the swap is a
single reference assignment, and both halves carry the stamp of the
version they were packaged under.

:class:`BundleStore` is the swap point. ``reload()`` validates the
candidate first and keeps the active bundle on any failure (rollback is
the degenerate case of never having moved); ``active()`` is a lock-free
single attribute read, safe against concurrent reloads. Every decision
lands in the ``service.reload.*`` counter namespace:

- ``service.reload.requests``  — reloads attempted,
- ``service.reload.applied``   — candidates validated and swapped in,
- ``service.reload.rejected``  — candidates refused (active unchanged),
- ``service.reload.mixed_bundle`` — requests that observed mismatched
  filter/db version stamps; the server checks every response and this
  counter staying zero is the no-torn-swap proof.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.core.nocoin import FilterList, default_nocoin_list
from repro.core.signatures import SignatureDatabase, build_reference_database


class BundleValidationError(ValueError):
    """A candidate bundle failed validation and must not be activated."""


@dataclass(frozen=True)
class DetectionBundle:
    """One immutable, versioned unit of detection state.

    ``filter_version`` and ``db_version`` are stamped onto the two halves
    at packaging time; a request that ever observed differing stamps
    would hold a torn bundle. :meth:`consistent` is the per-request check.
    """

    version: str
    filters: FilterList
    signatures: SignatureDatabase
    filter_version: str
    db_version: str

    @classmethod
    def build(
        cls,
        version: str,
        filters: Optional[FilterList] = None,
        signatures: Optional[SignatureDatabase] = None,
    ) -> "DetectionBundle":
        """Package a bundle; defaults to the bundled list + reference db.

        The filter list's combined automaton is built here, at packaging
        time, so a hot swap ships a warm fastpath and never pays compile
        cost on the request path.
        """
        bundle = cls(
            version=version,
            filters=filters if filters is not None else default_nocoin_list(),
            signatures=(
                signatures if signatures is not None else build_reference_database()
            ),
            filter_version=version,
            db_version=version,
        )
        bundle.filters.warm()
        return bundle

    def consistent(self) -> bool:
        return self.filter_version == self.version == self.db_version


def validate_bundle(bundle: DetectionBundle) -> None:
    """Raise :class:`BundleValidationError` unless ``bundle`` is servable.

    A servable bundle has a version, internally consistent stamps, at
    least one compiled filter rule, and a signature database that knows
    at least one miner — an empty db or list is a data-pipeline accident
    upstream, not a legitimate refresh.
    """
    if not bundle.version:
        raise BundleValidationError("bundle has no version")
    if not bundle.consistent():
        raise BundleValidationError(
            f"bundle {bundle.version!r} is torn: filter stamp "
            f"{bundle.filter_version!r} vs db stamp {bundle.db_version!r}"
        )
    if not bundle.filters.rules:
        raise BundleValidationError(
            f"bundle {bundle.version!r} has an empty filter list"
        )
    if not bundle.signatures.miner_signatures():
        raise BundleValidationError(
            f"bundle {bundle.version!r} has a signature db with no miner records"
        )


@dataclass
class BundleStore:
    """The atomic swap point for detection state.

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) receives
    the ``service.reload.*`` counters when supplied; counter updates
    happen under the same lock as the swap, so applied/rejected tallies
    are exact even with concurrent reloaders.
    """

    metrics: Optional[object] = None
    _active: Optional[DetectionBundle] = None
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    generation: int = 0
    #: versions activated, in order (bounded: reload history is small)
    history: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if self._active is None:
            self._active = DetectionBundle.build("seed")
            self.history.append(self._active.version)

    def active(self) -> DetectionBundle:
        """The current bundle — one reference read, never torn."""
        return self._active

    def reload(self, candidate: DetectionBundle) -> bool:
        """Validate and atomically activate ``candidate``.

        Returns True when the swap happened. A failed validation leaves
        the active bundle untouched (rollback) and returns False.
        """
        with self._lock:
            self._inc("service.reload.requests")
            try:
                validate_bundle(candidate)
            except BundleValidationError:
                self._inc("service.reload.rejected")
                return False
            candidate.filters.warm()  # bundles built by hand warm up here
            self._active = candidate
            self.generation += 1
            self.history.append(candidate.version)
            self._inc("service.reload.applied")
            return True

    def _inc(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.inc(name)
