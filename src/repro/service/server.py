"""The deterministic, sim-clock-driven verdict server.

One :class:`VerdictServer` models a single-worker detection backend the
way the rest of the repo models the internet: every latency is simulated
seconds, every decision is a pure function of the seed and the arrival
timeline, and two runs with the same inputs produce byte-identical
metrics. The request lifecycle:

1. **Admission** (:meth:`submit`): per-tenant token bucket, then the
   bounded queue. Rejections answer immediately.
2. **Dequeue** (:meth:`drain_until`): requests start when the server
   frees up. A request whose deadline passed while queued is rejected
   without touching the cascade; otherwise the queue depth at dequeue
   picks the degradation tier.
3. **Fetch**: the server re-fetches the page through the chaos-wired
   :class:`~repro.web.zgrab.ZgrabFetcher` under a
   :class:`~repro.faults.resilience.ResiliencePolicy` whose deadline is
   the request's *remaining* budget — fetch retries can never outlive
   the caller. All fault accounting lands in the shared ledger.
4. **Cascade** (:meth:`~repro.core.detector.PageDetector.detect_request`):
   runs at the chosen tier against one atomically-snapshotted
   :class:`~repro.service.bundles.DetectionBundle`; the submitted wasm
   capture feeds the signature/classifier/dynamic stages.
5. **Response**: a :class:`ServiceResponse` carrying the verdict, the
   tier, the bundle version, and (in evidence mode) an evidence chain
   that `repro obs explain` can render — including *why* a degraded
   answer was partial.

Metrics land under ``service.*`` plus ``stage.svc.*`` histograms, so the
existing obs toolkit (profile tables, run diffs, SLO gates) applies
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.classifier import MinerClassifier
from repro.core.detector import (
    TIER_FULL,
    TIER_NO_CLASSIFIER,
    TIER_NO_DYNAMIC,
    TIER_STATIC_ONLY,
    PageDetector,
)
from repro.core.dynamic import DynamicMinerDetector
from repro.faults.ledger import FaultLedger
from repro.faults.plan import FaultKind, FaultPlan
from repro.faults.resilience import BreakerRegistry, ResiliencePolicy
from repro.obs.evidence import Evidence, VerdictRecord
from repro.obs.metrics import MetricsRegistry
from repro.service.admission import AdmissionQueue, ServicePolicy, TokenBucket
from repro.service.bundles import BundleStore
from repro.sim.clock import SimClock
from repro.web.zgrab import ZgrabFetcher

#: histogram bounds for request latencies (simulated seconds; the default
#: obs bounds top out at 60 s which is far past any request deadline)
_LATENCY_BOUNDS = (0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0)


@dataclass(frozen=True)
class ServiceRequest:
    """One client request: a page to judge plus the client's capture."""

    tenant: str
    domain: str
    arrival: float
    #: absolute simulated deadline (arrival + budget)
    deadline: float
    #: wasm modules and WebSocket endpoints the client observed
    wasm_dumps: tuple = ()
    websocket_urls: tuple = ()
    sequence: int = 0


@dataclass(frozen=True)
class ServiceResponse:
    """The server's answer for one request."""

    request: ServiceRequest
    status: str  # ok | error | rejected
    reason: str = ""  # rejection/error detail ("rate-limit", "queue-full", ...)
    tier: str = TIER_FULL
    bundle_version: str = ""
    is_miner: bool = False
    family: str = ""
    method: str = ""
    nocoin_hit: bool = False
    started: float = 0.0
    completed: float = 0.0

    @property
    def latency(self) -> float:
        return max(0.0, self.completed - self.request.arrival)

    @property
    def queue_wait(self) -> float:
        return max(0.0, self.started - self.request.arrival)


@dataclass
class VerdictServer:
    """A single-worker verdict service over one population's web."""

    population: object
    policy: ServicePolicy = field(default_factory=ServicePolicy)
    store: Optional[BundleStore] = None
    clock: SimClock = field(default_factory=SimClock)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    ledger: FaultLedger = field(default_factory=FaultLedger)
    fault_plan: Optional[FaultPlan] = None
    dynamic: Optional[DynamicMinerDetector] = field(default_factory=DynamicMinerDetector)
    collect_evidence: bool = True
    #: called with each completed VerdictRecord (None = keep in .verdicts)
    verdict_sink: Optional[Callable] = None
    verdicts: list = field(default_factory=list)
    responses: list = field(default_factory=list)
    #: optional TimeSeriesRecorder polled with sim time as it advances —
    #: the windowed-telemetry tap (`--timeseries-interval`)
    recorder: Optional[object] = None
    #: optional ProgressReporter advanced per response (`--heartbeat`);
    #: construct it with ``clock=lambda: server.clock.now`` and
    #: ``health=server.service_health`` so lines carry live service state
    progress: Optional[object] = None

    def __post_init__(self) -> None:
        if self.store is None:
            self.store = BundleStore(metrics=self.metrics)
        elif self.store.metrics is None:
            self.store.metrics = self.metrics
        self._queue = AdmissionQueue(capacity=self.policy.queue_capacity)
        self._buckets: dict = {}
        self._busy_until = 0.0
        self._breakers = BreakerRegistry(ledger=self.ledger)
        if self.fault_plan is not None:
            self.population.attach_fault_plan(self.fault_plan)
        self._dataset = getattr(getattr(self.population, "spec", None), "name", "service")
        self._last_tier = TIER_FULL

    # -- admission ----------------------------------------------------------------

    def _advance(self, when: float) -> None:
        # the clock tracks max(event time, completion time): an arrival that
        # lands while the server is mid-request must not rewind it
        if when > self.clock.now:
            # poll before the move: a tick boundary exactly at `when`
            # closes *before* the event at `when` is accounted, so the
            # event deterministically lands in the next window
            if self.recorder is not None:
                self.recorder.poll(when)
            self.clock.advance_to(when)

    def submit(self, request: ServiceRequest) -> Optional[ServiceResponse]:
        """Admit or reject one arrival; None means enqueued."""
        self._advance(request.arrival)
        self.metrics.inc("service.requests.offered")
        self.metrics.inc(f"service.tenant.{request.tenant}.offered")
        bucket = self._buckets.get(request.tenant)
        if bucket is None:
            bucket = TokenBucket(
                rate=self.policy.tenant_rate,
                burst=self.policy.tenant_burst,
                last_refill=request.arrival,
            )
            self._buckets[request.tenant] = bucket
        if not bucket.try_take(request.arrival):
            self.metrics.inc("service.rejected.rate_limit")
            return self._reject(request, "rate-limit", at=request.arrival)
        if not self._queue.offer(request):
            self.metrics.inc("service.rejected.queue_full")
            return self._reject(request, "queue-full", at=request.arrival)
        self.metrics.inc("service.requests.admitted")
        self.metrics.gauge_max("service.queue.depth", float(self._queue.depth))
        return None

    def _reject(self, request: ServiceRequest, reason: str, at: float) -> ServiceResponse:
        response = ServiceResponse(
            request=request,
            status="rejected",
            reason=reason,
            started=at,
            completed=at,
        )
        self.responses.append(response)
        self._notify_progress(response)
        return response

    def _notify_progress(self, response: ServiceResponse) -> None:
        if self.progress is not None:
            self.progress.advance(1, failed=int(response.status != "ok"))

    # -- the serving loop ---------------------------------------------------------

    def drain_until(self, horizon: float) -> None:
        """Serve queued requests that the server can *start* by ``horizon``."""
        while self._queue and self._busy_until <= horizon:
            request = self._queue.take()
            start = max(self._busy_until, request.arrival)
            if start >= request.deadline:
                # deadline-aware rejection: the answer would arrive too late
                self.metrics.inc("service.rejected.deadline")
                self._reject(request, "deadline", at=start)
                continue
            response = self._serve(request, start)
            self._busy_until = response.completed
            self._advance(self._busy_until)
            self.responses.append(response)
            self._notify_progress(response)

    def drain(self) -> None:
        """Serve everything still queued (end-of-run flush)."""
        self.drain_until(float("inf"))

    def run(self, requests, reloads=()) -> list:
        """Serve a full arrival schedule; returns every response.

        ``requests`` must be sorted by arrival time. ``reloads`` is an
        iterable of ``(when, bundle)`` pairs applied at simulated time
        ``when`` — interleaved deterministically with arrivals, which is
        how hot reloads under load are exercised.
        """
        events = [(req.arrival, 1, index, req) for index, req in enumerate(requests)]
        events += [(when, 0, index, bundle) for index, (when, bundle) in enumerate(reloads)]
        events.sort(key=lambda item: (item[0], item[1], item[2]))
        if self.progress is not None:
            self.progress.begin(len(requests))
        for when, kind, _index, payload in events:
            self.drain_until(when)
            if kind == 0:
                self.store.reload(payload)
            else:
                self.submit(payload)
        self.drain()
        if self.progress is not None:
            self.progress.finish()
        return list(self.responses)

    # -- one request through the cascade ------------------------------------------

    def _serve(self, request: ServiceRequest, start: float) -> ServiceResponse:
        policy = self.policy
        depth = self._queue.depth
        tier = policy.tier_for_depth(depth)
        self._last_tier = tier
        bundle = self.store.active()  # ONE snapshot; every stage uses it
        if not bundle.consistent():
            self.metrics.inc("service.reload.mixed_bundle")
        self.metrics.inc(f"service.tier.{tier}")
        if tier != TIER_FULL:
            self.metrics.inc(f"service.degraded.{tier}")

        remaining = request.deadline - start
        fetcher = ZgrabFetcher(
            web=self.population.web,
            timeout=policy.fetch_timeout,
            resilience=ResiliencePolicy(
                retry=policy.retry,
                breaker=self._breakers.policy,
                deadline=remaining,
            ),
            ledger=self.ledger,
        )
        fetcher._breakers = self._breakers  # breaker state outlives requests
        result = fetcher.fetch_domain(request.domain)
        fetch_time = policy.fetch_cost * max(1, result.attempts)
        self.metrics.observe("stage.svc.fetch", fetch_time)
        elapsed = fetch_time

        if not result.ok:
            self.metrics.inc("service.fetch.errors")
            self.metrics.inc(f"service.error.{result.error_class}")
            completed = start + elapsed
            self._observe_request(request, start, completed)
            self._record_verdict(request, None, tier, bundle, depth, start, "error")
            return ServiceResponse(
                request=request,
                status="error",
                reason=result.error_class or "fetch-failed",
                tier=tier,
                bundle_version=bundle.version,
                started=start,
                completed=completed,
            )

        detector = PageDetector(
            nocoin=bundle.filters,
            classifier=MinerClassifier(database=bundle.signatures),
            collect_evidence=self.collect_evidence,
        )
        stalled = (
            self.fault_plan is not None
            and bool(request.wasm_dumps)
            and tier != TIER_STATIC_ONLY
            and self.fault_plan.signature_stall(request.domain)
        )
        report = detector.detect_request(
            request.domain,
            result.body,
            wasm_dumps=request.wasm_dumps,
            websocket_urls=request.websocket_urls,
            tier=tier,
            dynamic=self.dynamic,
        )
        elapsed += self._charge_stages(request, tier, stalled)
        if stalled:
            # chaos on the signature path: injected, answered late, recovered
            self.ledger.record_injection(FaultKind.SLOW)
            self.ledger.settle([FaultKind.SLOW], recovered=True)
            self.metrics.inc("service.signature.stalls")

        completed = start + elapsed
        self._observe_request(request, start, completed)
        self.metrics.inc("service.verdict.miner" if report.is_miner else "service.verdict.clean")
        self.metrics.inc(f"service.bundle.{bundle.version}.verdicts")
        if self.collect_evidence:
            report.evidence = report.evidence + (
                self._service_evidence(tier, bundle, depth, remaining, request.tenant),
            )
        self._record_verdict(request, report, tier, bundle, depth, start, "ok")
        return ServiceResponse(
            request=request,
            status="ok",
            tier=tier,
            bundle_version=bundle.version,
            is_miner=report.is_miner,
            family=report.miner_family or "",
            method=report.miner.method if report.is_miner else "",
            nocoin_hit=report.nocoin_hit,
            started=start,
            completed=completed,
        )

    def _charge_stages(self, request: ServiceRequest, tier: str, stalled: bool) -> float:
        """Simulated seconds the cascade stages cost at this tier."""
        policy = self.policy
        elapsed = policy.static_cost
        self.metrics.observe("stage.svc.static", policy.static_cost)
        dumps = len(request.wasm_dumps)
        if not dumps or tier == TIER_STATIC_ONLY:
            return elapsed
        signature_time = policy.signature_cost * dumps
        if stalled:
            signature_time += policy.signature_stall_cost
        self.metrics.observe("stage.svc.signature", signature_time)
        elapsed += signature_time
        if tier in (TIER_FULL, TIER_NO_DYNAMIC):
            classify_time = policy.classify_cost * dumps
            self.metrics.observe("stage.svc.classify", classify_time)
            elapsed += classify_time
        if tier == TIER_FULL and self.dynamic is not None:
            dynamic_time = policy.dynamic_cost * dumps
            self.metrics.observe("stage.svc.dynamic", dynamic_time)
            elapsed += dynamic_time
        return elapsed

    def _observe_request(self, request: ServiceRequest, start: float, completed: float) -> None:
        self.metrics.inc("service.requests.completed")
        self.metrics.observe(
            "service.latency", completed - request.arrival, bounds=_LATENCY_BOUNDS
        )
        self.metrics.observe(
            "service.queue_wait", start - request.arrival, bounds=_LATENCY_BOUNDS
        )

    def _service_evidence(
        self, tier: str, bundle, depth: int, remaining: float, tenant: str = ""
    ) -> Evidence:
        """Why this response is (or is not) partial — for `obs explain`."""
        if tier == TIER_FULL:
            summary = "full cascade served (queue below degradation thresholds)"
            verdict = "full"
        else:
            threshold = {
                TIER_NO_DYNAMIC: self.policy.degrade_thresholds[0],
                TIER_NO_CLASSIFIER: self.policy.degrade_thresholds[1],
                TIER_STATIC_ONLY: self.policy.degrade_thresholds[2],
            }[tier]
            summary = (
                f"degraded to {tier}: queue depth {depth} crossed "
                f"threshold {threshold}; expensive stages shed"
            )
            verdict = tier
        return Evidence(
            detector="service",
            verdict=verdict,
            summary=summary,
            details=(
                ("tier", tier),
                ("queue_depth", str(depth)),
                ("bundle_version", bundle.version),
                ("deadline_remaining", f"{remaining:.3f}s"),
                ("tenant", tenant),
            ),
        )

    def _record_verdict(
        self, request, report, tier, bundle, depth, start, status
    ) -> None:
        if not self.collect_evidence:
            return
        if report is None:
            record = VerdictRecord(
                subject=request.domain,
                dataset=self._dataset,
                pipeline="service",
                status="error",
            )
        else:
            record = VerdictRecord(
                subject=request.domain,
                dataset=self._dataset,
                pipeline="service",
                status=status,
                nocoin_hit=report.nocoin_hit,
                wasm_present=report.wasm_present,
                is_miner=report.is_miner,
                family=report.miner_family or "",
                method=report.miner.method if report.is_miner else "",
                confidence=report.miner.confidence if report.is_miner else 0.0,
                evidence=report.evidence,
            )
        if self.verdict_sink is not None:
            self.verdict_sink(record)
        else:
            self.verdicts.append(record)

    # -- operational surface ------------------------------------------------------

    def reload(self, bundle) -> bool:
        """Hot-swap detection state (validated; rolled back on failure)."""
        return self.store.reload(bundle)

    @property
    def queue_depth(self) -> int:
        return self._queue.depth

    def service_health(self) -> dict:
        """Live health for heartbeat lines: queue depth, shed rate, tier."""
        offered = self.metrics.counter("service.requests.offered")
        rejected = (
            self.metrics.counter("service.rejected.rate_limit")
            + self.metrics.counter("service.rejected.queue_full")
            + self.metrics.counter("service.rejected.deadline")
        )
        return {
            "queue": self._queue.depth,
            "shed": f"{rejected / max(1, offered):.1%}",
            "tier": self._last_tier,
        }
