"""Admission control for the verdict server.

Three gates stand between an arriving request and the cascade, checked
in order and each with its own ``service.*`` counter:

1. **Per-tenant token buckets** (:class:`TokenBucket`): refill is a pure
   function of simulated time, so two runs with the same seed admit the
   same requests. Over-rate tenants are rejected immediately
   (``service.rejected.rate_limit``) — one tenant cannot starve the
   queue for everyone else.
2. **The bounded queue** (:class:`AdmissionQueue`): depth never exceeds
   ``queue_capacity``; arrivals past the bound are shed
   (``service.rejected.queue_full``). An unbounded queue under overload
   is just a slow crash.
3. **Deadline-aware dequeue**: a request whose deadline already passed
   by the time the server would start it is rejected on dequeue
   (``service.rejected.deadline``) instead of burning cascade stages on
   an answer nobody is waiting for — the same deadline-propagation
   discipline :mod:`repro.faults.resilience` applies to fetch retries.

Past admission, :meth:`ServicePolicy.tier_for_depth` maps the queue
depth observed at dequeue onto a degradation tier: the deeper the
backlog, the more cascade stages are shed (dynamic first, then the
classifier, then everything but NoCoin).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.detector import (
    DEGRADATION_TIERS,
    TIER_FULL,
    TIER_NO_CLASSIFIER,
    TIER_NO_DYNAMIC,
    TIER_STATIC_ONLY,
)
from repro.faults.resilience import RetryPolicy


@dataclass(frozen=True)
class ServicePolicy:
    """Everything tunable about admission, degradation, and stage costs.

    Stage costs are simulated seconds per executed cascade stage,
    calibrated against the per-site stage profile in BENCH_SUMMARY.json
    (fetch and dynamic execution dominate; signature lookup is a hash
    probe). ``nominal_capacity`` is the advertised full-tier throughput
    — the load generator's "2× capacity" overload runs key off it.
    """

    queue_capacity: int = 32
    #: queue depth at dequeue ≥ threshold → shed one more stage
    degrade_thresholds: tuple = (4, 12, 24)
    #: simulated seconds a request may spend end-to-end (arrival → answer)
    request_deadline: float = 2.0
    #: per-tenant token bucket: sustained requests/second and burst size
    tenant_rate: float = 8.0
    tenant_burst: float = 16.0
    #: stage costs (simulated seconds)
    fetch_cost: float = 0.04
    static_cost: float = 0.002
    signature_cost: float = 0.001
    classify_cost: float = 0.006
    dynamic_cost: float = 0.05
    #: extra simulated seconds a chaos-stalled signature lookup burns
    signature_stall_cost: float = 0.25
    #: per-attempt fetch timeout (the propagated deadline shrinks it)
    fetch_timeout: float = 0.5
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(max_attempts=2, backoff_base=0.05)
    )

    @property
    def nominal_capacity(self) -> float:
        """Full-tier requests/second on a clean page (fetch + static)."""
        return 1.0 / (self.fetch_cost + self.static_cost)

    def tier_for_depth(self, depth: int) -> str:
        """Degradation tier for a queue depth observed at dequeue."""
        t1, t2, t3 = self.degrade_thresholds
        if depth >= t3:
            return TIER_STATIC_ONLY
        if depth >= t2:
            return TIER_NO_CLASSIFIER
        if depth >= t1:
            return TIER_NO_DYNAMIC
        return TIER_FULL

    def __post_init__(self) -> None:
        if len(self.degrade_thresholds) != 3:
            raise ValueError("degrade_thresholds must name 3 depths (tier 1..3)")
        if list(self.degrade_thresholds) != sorted(self.degrade_thresholds):
            raise ValueError("degrade_thresholds must be non-decreasing")
        assert len(DEGRADATION_TIERS) == 4  # ladder and thresholds stay in sync


@dataclass
class TokenBucket:
    """A deterministic token bucket over simulated time.

    ``try_take(now)`` refills ``rate * (now - last)`` tokens (capped at
    ``burst``) and spends one if available. No wall clock, no jitter —
    admission is a pure function of the arrival timeline.
    """

    rate: float
    burst: float
    tokens: float = 0.0
    last_refill: float = 0.0

    def __post_init__(self) -> None:
        self.tokens = self.burst

    def try_take(self, now: float) -> bool:
        if now > self.last_refill:
            self.tokens = min(self.burst, self.tokens + self.rate * (now - self.last_refill))
            self.last_refill = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


@dataclass
class AdmissionQueue:
    """The bounded FIFO between admission and the cascade."""

    capacity: int
    _items: deque = field(default_factory=deque)

    def offer(self, request) -> bool:
        """Enqueue unless full; False means the request was shed."""
        if len(self._items) >= self.capacity:
            return False
        self._items.append(request)
        return True

    def take(self):
        return self._items.popleft()

    @property
    def depth(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)
