"""SLO gates over persisted service metrics.

``repro obs slo RUN --fail-on EXPR`` turns a run directory into a CI
tripwire. Expressions reuse the ``--fail-on`` grammar
(``<target><op><number>``, absolute values only) with service-aware
targets resolved in this order:

1. **latency shorthands** — ``p50``/``p90``/``p95``/``p99``/``mean``/
   ``max`` read the ``service.latency`` histogram (seconds),
2. **derived rates** — ``shed_rate`` (rejections / offered),
   ``error_rate`` (fetch errors / completed), ``degraded_rate``
   (degraded responses / completed), ``deadline_rate`` (deadline
   rejections / offered),
3. **histogram stats** — ``<histogram>.<stat>`` for any recorded
   histogram (``service.queue_wait.p99``, ``stage.svc.fetch.p90``, …),
4. **counters** — anything else is a plain counter name
   (``service.reload.mixed_bundle``, ``service.rejected.queue_full``).

The relative (``1.2x``) form is rejected: an SLO is a promise about one
run, not a comparison between two.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import analyze
from repro.obs.metrics import MetricsRegistry

_LATENCY_SHORTHANDS = ("mean", "max", "p50", "p90", "p95", "p99")
_HISTOGRAM_STATS = ("mean", "max", "total", "count", "p50", "p90", "p95", "p99")


@dataclass(frozen=True)
class SloThreshold:
    """One parsed SLO expression."""

    raw: str
    target: str
    op: str
    value: float


def parse_slo(expression: str) -> SloThreshold:
    """Parse ``p99>0.5`` / ``shed_rate>0.25`` / ``service.reload.mixed_bundle>0``."""
    match = analyze._EXPR_RE.match(expression)
    if match is None:
        raise ValueError(
            f"bad SLO expression {expression!r}; expected '<target><op><number>', "
            f"e.g. 'p99>0.5' or 'shed_rate>0.25'"
        )
    if match["relative"] == "x":
        raise ValueError(
            f"SLO gates are absolute; drop the trailing 'x' in {expression!r}"
        )
    return SloThreshold(
        raw=expression.strip(),
        target=match["target"],
        op=match["op"],
        value=float(match["value"]),
    )


def _histogram_stat(histogram, stat: str) -> float:
    if stat == "mean":
        return histogram.mean_seconds
    if stat == "max":
        return histogram.max_seconds
    if stat == "total":
        return histogram.total_seconds
    if stat == "count":
        return float(histogram.count)
    return histogram.quantile(float(stat[1:]) / 100.0)


def _ratio(registry: MetricsRegistry, numerator: int, denominator_name: str) -> float:
    return numerator / max(1, registry.counter(denominator_name))


def _derived_rate(registry: MetricsRegistry, target: str):
    if target == "shed_rate":
        rejected = (
            registry.counter("service.rejected.rate_limit")
            + registry.counter("service.rejected.queue_full")
            + registry.counter("service.rejected.deadline")
        )
        return _ratio(registry, rejected, "service.requests.offered")
    if target == "deadline_rate":
        return _ratio(
            registry,
            registry.counter("service.rejected.deadline"),
            "service.requests.offered",
        )
    if target == "error_rate":
        return _ratio(
            registry,
            registry.counter("service.fetch.errors"),
            "service.requests.completed",
        )
    if target == "degraded_rate":
        degraded = sum(
            registry.counters_with_prefix("service.degraded.").values()
        )
        return _ratio(registry, degraded, "service.requests.completed")
    return None


def slo_value(registry: MetricsRegistry, target: str) -> float:
    """Resolve one SLO target against a run's metrics."""
    if target in _LATENCY_SHORTHANDS:
        histogram = registry.histograms.get("service.latency")
        return _histogram_stat(histogram, target) if histogram is not None else 0.0
    derived = _derived_rate(registry, target)
    if derived is not None:
        return derived
    prefix, _, stat = target.rpartition(".")
    if prefix and stat in _HISTOGRAM_STATS and prefix in registry.histograms:
        return _histogram_stat(registry.histograms[prefix], stat)
    return float(registry.counter(target))


def evaluate_slo(threshold: SloThreshold, registry: MetricsRegistry):
    """(violated, human-readable detail) for one SLO threshold."""
    measured = slo_value(registry, threshold.target)
    violated = analyze._OPS[threshold.op](measured, threshold.value)
    detail = (
        f"{threshold.raw}: measured {measured:.4g} — "
        f"{'VIOLATED' if violated else 'ok'}"
    )
    return violated, detail


def slo_summary_rows(registry: MetricsRegistry) -> list:
    """The at-a-glance service health table ``obs slo`` prints."""
    return [
        ["offered", registry.counter("service.requests.offered")],
        ["admitted", registry.counter("service.requests.admitted")],
        ["completed", registry.counter("service.requests.completed")],
        ["shed rate", f"{_derived_rate(registry, 'shed_rate'):.1%}"],
        ["degraded rate", f"{_derived_rate(registry, 'degraded_rate'):.1%}"],
        ["error rate", f"{_derived_rate(registry, 'error_rate'):.1%}"],
        ["latency p50", f"{slo_value(registry, 'p50') * 1000:.0f}ms"],
        ["latency p99", f"{slo_value(registry, 'p99') * 1000:.0f}ms"],
        ["max queue depth", int(registry.gauges.get("service.queue.depth", 0.0))],
        ["reloads applied", registry.counter("service.reload.applied")],
        ["reloads rejected", registry.counter("service.reload.rejected")],
        ["mixed-bundle verdicts", registry.counter("service.reload.mixed_bundle")],
    ]
