"""Walk queries over the attribution graph.

``neighbors`` / ``find_path`` answer the single-campaign questions
("which includer seeded this miner?"), ``clusters`` groups the population
into campaign components over ``includes`` / ``attributed-to`` edges, and
``graph_metrics`` flattens everything into the scalar namespace the
``--fail-on`` gate grammar addresses (``clusters.max_miner_share>0.5``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.graph.model import Graph, NODE_KINDS, node_kind
from repro.obs.analyze import _OPS, Threshold

#: Edge kinds that define campaign membership: shared includer scripts and
#: shared family attribution (via domains, signatures, pools). ``includes``
#: edges count only when the includer is a *campaign* one — benign shared
#: infrastructure (the metrics/widgets/fonts hosts on a fifth of all
#: sites) would otherwise merge every campaign into one component.
CLUSTER_EDGE_KINDS = frozenset({"includes", "attributed-to"})


def _is_cluster_edge(graph: Graph, kind: str, src: str) -> bool:
    if kind not in CLUSTER_EDGE_KINDS:
        return False
    if kind == "includes":
        node = graph.nodes.get(src)
        return node is not None and "benign" not in node[1].get("kind", ())
    return True


def neighbors(graph: Graph, nid: str) -> list:
    """Sorted ``(edge kind, direction, other node, edge attrs)`` rows."""
    if nid not in graph.nodes:
        raise KeyError(nid)
    rows = []
    for (kind, src, dst), attrs in graph.edges.items():
        if src == nid:
            rows.append((kind, "->", dst, _flat(attrs)))
        elif dst == nid:
            rows.append((kind, "<-", src, _flat(attrs)))
    rows.sort(key=lambda row: (row[0], row[1], row[2]))
    return rows


def _flat(attrs: dict) -> dict:
    return {name: ",".join(sorted(values)) for name, values in sorted(attrs.items())}


@dataclass
class PathStep:
    """One hop of an undirected path: the edge taken and the node reached."""

    edge_kind: str
    direction: str  # "->" traversed with the edge, "<-" against it
    node: str
    attrs: dict = field(default_factory=dict)


def _benign_includer(graph: Graph, nid: str) -> bool:
    node = graph.nodes.get(nid)
    return (
        node is not None
        and node[0] == "includer"
        and "benign" in node[1].get("kind", ())
    )


def find_path(graph: Graph, start: str, to: str) -> Optional[List[PathStep]]:
    """Shortest undirected path from ``start`` to ``to``.

    ``to`` is either a full node id (``includer:zamvorcdn.io``) or a node
    *kind* (``includer``) — the nearest node of that kind wins. The first
    step carries the start node with no edge; returns ``None`` when no
    path exists.

    ``includes`` edges from *benign* infrastructure includers are walked
    only when that includer is itself the named start or target: shared
    metrics/widgets hosts sit on a fifth of the population and would
    otherwise shortcut every pair of sites, so ``--to includer`` always
    resolves to the campaign includer that seeded the subject.
    """
    if start not in graph.nodes:
        raise KeyError(start)
    if ":" in to and to not in graph.nodes and node_kind(to) in NODE_KINDS:
        raise KeyError(to)
    want_kind = None if ":" in to else to
    named = {start, to}

    def is_goal(nid: str) -> bool:
        if want_kind is not None:
            return graph.nodes[nid][0] == want_kind
        return nid == to

    adjacency = graph.adjacency()
    parents: Dict[str, tuple] = {start: ()}
    queue = deque([start])
    goal = start if is_goal(start) else None
    while queue and goal is None:
        current = queue.popleft()
        for kind, direction, other in adjacency.get(current, ()):
            if other in parents:
                continue
            if kind == "includes":
                includer = current if direction == "out" else other
                if _benign_includer(graph, includer) and includer not in named:
                    continue
            parents[other] = (current, kind, direction)
            if is_goal(other):
                goal = other
                break
            queue.append(other)
    if goal is None:
        return None
    steps = [PathStep(edge_kind="", direction="", node=goal)]
    nid = goal
    while parents[nid]:
        prev, kind, direction = parents[nid]
        edge_key = (kind, prev, nid) if direction == "out" else (kind, nid, prev)
        steps[-1].edge_kind = kind
        steps[-1].direction = "->" if direction == "out" else "<-"
        steps[-1].attrs = _flat(graph.edges.get(edge_key, {}))
        steps.append(PathStep(edge_kind="", direction="", node=prev))
        nid = prev
    steps.reverse()
    return steps


# ---------------------------------------------------------------------------
# clusters


@dataclass
class Cluster:
    """One connected component over the campaign edges."""

    label: str
    nodes: List[str]
    domains: List[str]
    includers: List[str]
    families: List[str]
    miners: int
    wasm_hits: int
    blocked: int

    @property
    def size(self) -> int:
        return len(self.nodes)

    @property
    def miner_share(self) -> float:
        return self.miners / len(self.domains) if self.domains else 0.0

    @property
    def detection_factor(self) -> float:
        """Cluster-level Table-2 factor: wasm miners per NoCoin-blocked one."""
        if self.blocked:
            return self.wasm_hits / self.blocked
        return float("inf") if self.wasm_hits else 0.0


def _includer_label(graph: Graph, nid: str) -> str:
    """``<dataset>/<includer name>`` — the same family's seeder exists per
    dataset, so an unqualified name would collide across zones."""
    key = nid.split(":", 1)[1]
    name = ",".join(sorted(graph.nodes[nid][1].get("name", {key})))
    if "/" in key:
        return f"{key.split('/', 1)[0]}/{name}"
    return name


def clusters(graph: Graph) -> List[Cluster]:
    """Connected components over ``includes`` / ``attributed-to`` edges.

    Nodes not touched by a campaign edge (isolated clean domains, rule
    nodes, strata) do not form singleton clusters — the component list is
    the campaign structure, not the whole graph. Sorted by size
    descending, then label.
    """
    parent: Dict[str, str] = {}

    def find(x: str) -> str:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(a: str, b: str) -> None:
        for n in (a, b):
            parent.setdefault(n, n)
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)

    for kind, src, dst in graph.edges:
        if _is_cluster_edge(graph, kind, src):
            union(src, dst)

    members: Dict[str, list] = {}
    for n in parent:
        members.setdefault(find(n), []).append(n)

    result = []
    for nodes in members.values():
        nodes.sort()
        domains = [n for n in nodes if graph.nodes.get(n, ("",))[0] == "domain"]
        includers = sorted(
            {
                _includer_label(graph, n)
                for n in nodes
                if graph.nodes.get(n, ("",))[0] == "includer"
            }
        )
        families = sorted(
            n.split(":", 1)[1]
            for n in nodes
            if graph.nodes.get(n, ("",))[0] == "family"
        )
        miners = wasm = blocked = 0
        for domain in domains:
            attrs = graph.nodes[domain][1]
            if "yes" in attrs.get("miner", ()):
                miners += 1
            if "blocked" in attrs:
                wasm += 1
                if "yes" in attrs["blocked"]:
                    blocked += 1
        label = (
            "+".join(includers)
            or "+".join(families)
            or (nodes[0] if nodes else "empty")
        )
        result.append(
            Cluster(
                label=label,
                nodes=nodes,
                domains=domains,
                includers=includers,
                families=families,
                miners=miners,
                wasm_hits=wasm,
                blocked=blocked,
            )
        )
    result.sort(key=lambda c: (-c.size, c.label))
    return result


# ---------------------------------------------------------------------------
# metrics + gates


def graph_metrics(graph: Graph) -> dict:
    """Flat scalar namespace for ``--fail-on`` gates.

    Names avoid the ``stage.`` prefix (which the gate grammar reserves
    for span statistics).
    """
    metrics: dict = {"nodes.total": float(len(graph.nodes)), "edges.total": float(len(graph.edges))}
    for nid, (kind, _) in graph.nodes.items():
        metrics[f"nodes.{kind}"] = metrics.get(f"nodes.{kind}", 0.0) + 1.0
    for (kind, _, _), _attrs in graph.edges.items():
        metrics[f"edges.{kind}"] = metrics.get(f"edges.{kind}", 0.0) + 1.0
    parts = clusters(graph)
    metrics["clusters.count"] = float(len(parts))
    metrics["clusters.max_size"] = float(max((c.size for c in parts), default=0))
    metrics["clusters.max_miner_share"] = max(
        (c.miner_share for c in parts), default=0.0
    )
    with_wasm = [c.detection_factor for c in parts if c.wasm_hits]
    metrics["clusters.min_detection_factor"] = min(with_wasm, default=0.0)
    metrics["clusters.max_detection_factor"] = max(with_wasm, default=0.0)
    return metrics


def evaluate_graph_threshold(threshold: Threshold, metrics: dict):
    """(violated, detail) for one ``--fail-on`` gate on graph metrics."""
    if threshold.relative:
        raise ValueError(
            f"graph gates are absolute; drop the trailing 'x' in "
            f"{threshold.raw!r} (there is no base run to be relative to)"
        )
    target = threshold.metric if threshold.stat is None else (
        f"{threshold.metric}.{threshold.stat}"
    )
    if target not in metrics:
        available = ", ".join(sorted(metrics))
        raise ValueError(f"unknown graph metric {target!r}; available: {available}")
    measured = metrics[target]
    violated = _OPS[threshold.op](measured, threshold.value)
    detail = (
        f"{threshold.raw}: measured {measured:.4g} — "
        f"{'VIOLATED' if violated else 'ok'}"
    )
    return violated, detail
