"""Deriving attribution-graph nodes and edges from verdict evidence.

The builder maps each :class:`~repro.obs.evidence.VerdictRecord` — plus
the population's seeded includer edges — onto the typed graph:

- ``domain`` nodes for page subjects, ``block`` nodes for pool-attributed
  blocks, annotated with pipeline/status/detection flags
- ``includes`` edges from ``includer`` nodes (the seeded third-party
  script layer) to every domain carrying their tag
- ``matched`` edges from ``rule`` nodes (NoCoin rule, cited by source and
  line number) to the domains they fired on
- ``served`` edges from domains to ``sig`` (wasm signature) and
  ``bundle`` (service rule-bundle version) nodes
- ``attributed-to`` edges from domains and signatures to ``family`` nodes
- ``connects`` edges from domains and blocks to ``pool`` endpoint nodes
- ``in-stratum`` edges from domains to their rank stratum, and
  ``requested`` edges from service ``tenant`` nodes to domains

Everything is emitted inside the campaign's ``obs.enabled`` guard, so the
NULL_OBS path builds no graph at all.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.graph.model import Graph
from repro.obs.evidence import Evidence, VerdictRecord


def _pool_host(url: str) -> str:
    """The host part of a ws:// or https:// pool endpoint URL."""
    stripped = url.split("://", 1)[-1]
    return stripped.split("/", 1)[0] or url


def _scoped(record: VerdictRecord, key: str) -> str:
    """Dataset-qualify a population-local key (``alexa/shop.com``).

    Synthetic populations are independent universes: alexa's ``shop.com``
    and .com's ``shop.com`` are different sites that happen to share a
    name, and an unqualified node would falsely bridge their campaigns.
    Families, signatures, rules, and pool endpoints stay global — those
    model genuinely shared upstream infrastructure.
    """
    return f"{record.dataset}/{key}" if record.dataset else key


def evidence_node_id(evidence: Evidence) -> Optional[str]:
    """The graph node one evidence element anchors to (for ``obs explain``).

    Returns ``None`` for detectors whose facts are thresholds rather than
    shared infrastructure (instruction-mix, name-hint, dynamic).
    """
    details = dict(evidence.details)
    if evidence.detector == "nocoin":
        source = details.get("source") or "unsourced"
        return f"rule:{source}:{details.get('line_number', '?')}"
    if evidence.detector == "signature":
        signature = details.get("signature")
        return f"sig:{signature}" if signature else None
    if evidence.detector == "backend":
        url = details.get("backend_url")
        return f"pool:{_pool_host(url)}" if url else None
    if evidence.detector == "websocket":
        for key in details:
            if "://" in key:
                return f"pool:{_pool_host(key)}"
        return None
    if evidence.detector == "pool":
        cluster_id = details.get("cluster_id")
        return f"pool:cluster-{cluster_id[:16]}" if cluster_id else None
    if evidence.detector == "service":
        version = details.get("bundle_version")
        return f"bundle:{version}" if version else None
    return None


def add_verdict(
    graph: Graph,
    record: VerdictRecord,
    site=None,
    includers: Iterable = (),
) -> None:
    """Emit one verdict's nodes and edges into ``graph``."""
    if record.kind == "block":
        subject = graph.add_node("block", record.subject, dataset=record.dataset)
    else:
        key = _scoped(record, record.subject)
        subject = graph.add_node(
            "domain",
            key,
            dataset=record.dataset,
            pipeline=record.pipeline,
        )
        if record.status != "ok":
            graph.add_node("domain", key, status=record.status)
        if record.nocoin_hit:
            graph.add_node("domain", key, nocoin="hit")
        if record.is_miner:
            graph.add_node("domain", key, miner="yes")
            if record.pipeline == "chrome":
                graph.add_node(
                    "domain",
                    key,
                    blocked="yes" if record.nocoin_hit else "no",
                )
        if site is not None and getattr(site, "role", ""):
            graph.add_node("domain", key, role=site.role)

    if record.stratum:
        stratum = graph.add_node("stratum", _scoped(record, record.stratum))
        graph.add_edge("in-stratum", subject, stratum)

    for includer in includers:
        inc = graph.add_node(
            "includer",
            _scoped(record, includer.domain),
            name=includer.name,
            kind=includer.kind,
            family=includer.family,
        )
        graph.add_edge("includes", inc, subject, url=includer.url)

    if record.is_miner and record.family:
        family = graph.add_node("family", record.family)
        graph.add_edge(
            "attributed-to",
            subject,
            family,
            method=record.method,
            pipeline=record.pipeline,
        )

    for evidence in record.evidence:
        _add_evidence(graph, subject, record, evidence)


def _add_evidence(
    graph: Graph, subject: str, record: VerdictRecord, evidence: Evidence
) -> None:
    details = dict(evidence.details)
    if evidence.detector == "nocoin":
        source = details.get("source") or "unsourced"
        rule = graph.add_node(
            "rule",
            f"{source}:{details.get('line_number', '?')}",
            rule=details.get("rule", ""),
            label=details.get("label", ""),
        )
        graph.add_edge(
            "matched",
            rule,
            subject,
            where=details.get("where", ""),
            matched=details.get("matched", ""),
        )
    elif evidence.detector == "signature":
        signature = details.get("signature")
        if not signature:
            return
        sig = graph.add_node(
            "sig",
            signature,
            variant=details.get("db_variant", ""),
            miner=details.get("db_is_miner", ""),
        )
        graph.add_edge("served", subject, sig, verdict=evidence.verdict)
        db_family = details.get("db_family")
        if db_family:
            family = graph.add_node("family", db_family)
            graph.add_edge("attributed-to", sig, family, method="signature")
    elif evidence.detector == "backend":
        url = details.get("backend_url")
        if not url:
            return
        pool = graph.add_node("pool", _pool_host(url), url=url)
        graph.add_edge(
            "connects", subject, pool, needle=details.get("backend_needle", "")
        )
        if details.get("family"):
            family = graph.add_node("family", details["family"])
            graph.add_edge("attributed-to", pool, family, method="backend")
    elif evidence.detector == "websocket":
        for key, value in evidence.details:
            if "://" not in key:
                continue
            pool = graph.add_node("pool", _pool_host(key), url=key)
            graph.add_edge("connects", subject, pool, activity=value)
    elif evidence.detector == "pool":
        cluster_id = details.get("cluster_id", "")
        pool = graph.add_node(
            "pool", f"cluster-{cluster_id[:16]}", cluster_id=cluster_id
        )
        graph.add_edge(
            "connects",
            subject,
            pool,
            merkle_root=details.get("merkle_root", ""),
            height=details.get("height", ""),
        )
        if record.family:
            family = graph.add_node("family", record.family)
            graph.add_edge("attributed-to", pool, family, method=record.method)
    elif evidence.detector == "service":
        version = details.get("bundle_version")
        if version:
            bundle = graph.add_node("bundle", version)
            graph.add_edge(
                "served", subject, bundle, tier=details.get("tier", "")
            )
        tenant_name = details.get("tenant")
        if tenant_name:
            tenant = graph.add_node("tenant", tenant_name)
            graph.add_edge("requested", tenant, subject)


class GraphBuilder:
    """Accumulates verdicts (plus includer edges) into one graph.

    A campaign keeps one builder per shard partial; the partial merge is
    ``graph.merge`` — associative, so shard order and executor choice
    cannot change the result.
    """

    def __init__(self, includer_layer=None) -> None:
        self.graph = Graph()
        self.includer_layer = includer_layer

    def add(self, record: VerdictRecord, site=None) -> None:
        includers = ()
        if site is not None and self.includer_layer is not None:
            includers = self.includer_layer.includers_for(site)
        add_verdict(self.graph, record, site=site, includers=includers)


def graph_from_verdicts(records: Iterable[VerdictRecord]) -> Graph:
    """A graph from bare verdicts (service / loadgen runs: no population)."""
    graph = Graph()
    for record in records:
        add_verdict(graph, record)
    return graph
