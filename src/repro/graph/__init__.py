"""Campaign attribution graph: typed property graph over run evidence.

``model`` holds the :class:`Graph` container with its associative merge
law and schema-versioned JSONL persistence; ``build`` derives nodes and
edges from verdict evidence chains plus the population's includer edge
layer; ``query`` answers neighbor / path / cluster questions and exposes
flat metrics for ``--fail-on`` CI gates.
"""

from repro.graph.build import (
    GraphBuilder,
    add_verdict,
    evidence_node_id,
    graph_from_verdicts,
)
from repro.graph.model import (
    GRAPH_SCHEMA_VERSION,
    Graph,
    GraphSchemaError,
    parse_graph_jsonl,
    graph_to_jsonl,
)
from repro.graph.query import (
    clusters,
    find_path,
    graph_metrics,
    neighbors,
)

__all__ = [
    "GRAPH_SCHEMA_VERSION",
    "Graph",
    "GraphBuilder",
    "GraphSchemaError",
    "add_verdict",
    "clusters",
    "evidence_node_id",
    "find_path",
    "graph_from_verdicts",
    "graph_metrics",
    "graph_to_jsonl",
    "neighbors",
    "parse_graph_jsonl",
]
