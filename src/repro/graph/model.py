"""The attribution graph container and its persistence contract.

A :class:`Graph` is a typed property graph: nodes are keyed by an id that
embeds their kind (``domain:shop.com``, ``includer:zamvorcdn.io``,
``family:coinhive`` ...), edges by ``(kind, src, dst)``. Attribute values
are *sets of strings* merged by union, which makes :meth:`Graph.merge`
associative, commutative, and idempotent — per-shard subgraphs union in
any order (or twice, on resume) to the same graph, and sorted
serialization then makes ``graph.jsonl`` byte-identical for the same
seed/config regardless of shard count or executor.

Persistence follows the ledger-wide artifact contract: a compact
``{"schema_version": N}`` header line, then sorted-key compact JSON lines
(all nodes sorted by id, then all edges sorted by key). Headerless legacy
files are tolerated; files from a future schema are rejected with an
upgrade hint.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, Tuple

GRAPH_SCHEMA_VERSION = 1

#: The node kinds the builder emits. Kept here so queries can validate
#: ``--to <kind>`` arguments without importing the builder.
NODE_KINDS = (
    "domain",
    "includer",
    "sig",
    "family",
    "pool",
    "rule",
    "stratum",
    "tenant",
    "bundle",
    "block",
)


class GraphSchemaError(ValueError):
    """graph.jsonl is malformed or from a newer schema."""


def node_id(kind: str, key: str) -> str:
    return f"{kind}:{key}"


def node_kind(nid: str) -> str:
    return nid.split(":", 1)[0]


def _clean(value) -> str:
    """Attribute values must be comma-free single-line strings.

    Commas separate set members in the serialized form and newlines would
    break the JSONL framing of downstream consumers, so both are folded.
    """
    return str(value).replace(",", ";").replace("\n", " ")


@dataclass
class Graph:
    """Nodes ``id -> (kind, {attr: set of values})``; edges
    ``(kind, src, dst) -> {attr: set of values}``. Plain dicts and sets,
    so partials carrying a graph pickle across process executors."""

    nodes: Dict[str, tuple] = field(default_factory=dict)
    edges: Dict[Tuple[str, str, str], dict] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return bool(self.nodes or self.edges)

    def add_node(self, kind: str, key: str, /, **attrs) -> str:
        nid = node_id(kind, _clean(key))
        existing = self.nodes.get(nid)
        if existing is None:
            existing = (kind, {})
            self.nodes[nid] = existing
        store = existing[1]
        for name, value in attrs.items():
            if value is None or value == "":
                continue
            store.setdefault(name, set()).add(_clean(value))
        return nid

    def add_edge(self, kind: str, src: str, dst: str, /, **attrs) -> None:
        key = (kind, src, dst)
        store = self.edges.setdefault(key, {})
        for name, value in attrs.items():
            if value is None or value == "":
                continue
            store.setdefault(name, set()).add(_clean(value))

    def merge(self, other: "Graph") -> "Graph":
        """Union ``other`` into this graph (the shard merge law)."""
        for nid, (kind, attrs) in other.nodes.items():
            mine = self.nodes.get(nid)
            if mine is None:
                self.nodes[nid] = (kind, {k: set(v) for k, v in attrs.items()})
                continue
            for name, values in attrs.items():
                mine[1].setdefault(name, set()).update(values)
        for key, attrs in other.edges.items():
            store = self.edges.setdefault(key, {})
            for name, values in attrs.items():
                store.setdefault(name, set()).update(values)
        return self

    # -- views --------------------------------------------------------------

    def node_attrs(self, nid: str) -> dict:
        """Flattened attrs of one node: ``name -> "v1,v2"`` sorted."""
        kind_attrs = self.nodes.get(nid)
        if kind_attrs is None:
            return {}
        return _flatten(kind_attrs[1])

    def nodes_of_kind(self, kind: str) -> list:
        return sorted(n for n, (k, _) in self.nodes.items() if k == kind)

    def adjacency(self) -> Dict[str, list]:
        """``node -> [(edge kind, direction, other node)]``, sorted."""
        adj: Dict[str, list] = {nid: [] for nid in self.nodes}
        for kind, src, dst in self.edges:
            adj.setdefault(src, []).append((kind, "out", dst))
            adj.setdefault(dst, []).append((kind, "in", src))
        for entries in adj.values():
            entries.sort()
        return adj


def _flatten(attrs: dict) -> dict:
    return {name: ",".join(sorted(values)) for name, values in sorted(attrs.items())}


# ---------------------------------------------------------------------------
# persistence


def graph_to_jsonl(graph: Graph) -> str:
    """Canonical serialization: header, sorted nodes, sorted edges."""
    lines = [
        json.dumps(
            {
                "edges": len(graph.edges),
                "nodes": len(graph.nodes),
                "schema_version": GRAPH_SCHEMA_VERSION,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
    ]
    for nid in sorted(graph.nodes):
        kind, attrs = graph.nodes[nid]
        lines.append(
            json.dumps(
                {"attrs": _flatten(attrs), "id": nid, "kind": kind},
                sort_keys=True,
                separators=(",", ":"),
            )
        )
    for key in sorted(graph.edges):
        kind, src, dst = key
        lines.append(
            json.dumps(
                {
                    "attrs": _flatten(graph.edges[key]),
                    "dst": dst,
                    "kind": kind,
                    "src": src,
                },
                sort_keys=True,
                separators=(",", ":"),
            )
        )
    return "\n".join(lines) + "\n"


def _explode(attrs: dict) -> dict:
    return {name: set(value.split(",")) if value else set() for name, value in attrs.items()}


def parse_graph_jsonl(text: str) -> Graph:
    """Inverse of :func:`graph_to_jsonl` (lossless round-trip).

    Accepts headerless legacy files — node and edge lines always carry
    ``id`` or ``src``, so the header is unambiguous.
    """
    graph = Graph()
    lines = [line for line in text.splitlines() if line.strip()]
    if lines:
        try:
            first = json.loads(lines[0])
        except ValueError as exc:
            raise GraphSchemaError(f"malformed graph line: {lines[0]!r}") from exc
        if (
            isinstance(first, dict)
            and "schema_version" in first
            and "id" not in first
            and "src" not in first
        ):
            version = first["schema_version"]
            if not isinstance(version, int) or version < 1:
                raise GraphSchemaError(f"malformed graph schema header: {lines[0]!r}")
            if version > GRAPH_SCHEMA_VERSION:
                raise GraphSchemaError(
                    f"graph file uses schema v{version}, but this reader only "
                    f"understands up to v{GRAPH_SCHEMA_VERSION} — upgrade repro"
                )
            lines = lines[1:]
    for line in lines:
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise GraphSchemaError(f"malformed graph line: {line!r}") from exc
        if "id" in record:
            graph.nodes[record["id"]] = (
                record.get("kind", node_kind(record["id"])),
                _explode(record.get("attrs", {})),
            )
        elif "src" in record:
            key = (record.get("kind", ""), record["src"], record["dst"])
            graph.edges[key] = _explode(record.get("attrs", {}))
        else:
            raise GraphSchemaError(f"graph line is neither node nor edge: {line!r}")
    return graph


def write_graph_jsonl(path, graph: Graph) -> int:
    """Write a graph file; returns the node + edge count."""
    pathlib.Path(path).write_text(graph_to_jsonl(graph))
    return len(graph.nodes) + len(graph.edges)


def read_graph_jsonl(path) -> Graph:
    return parse_graph_jsonl(pathlib.Path(path).read_text())
