"""repro — reproduction of "Digging into Browser-based Crypto Mining" (IMC 2018).

This package reimplements, in pure Python, every system the paper builds on:

- :mod:`repro.wasm` — a WebAssembly binary-format substrate (encoder/decoder)
  plus a synthetic miner/benign module generator.
- :mod:`repro.web` — a web substrate: HTML parsing, a simulated HTTP/TLS
  fetcher (zgrab-style), WebSockets, and an instrumented headless browser.
- :mod:`repro.blockchain` — a Monero-like blockchain: CryptoNight stand-in
  proof of work, Merkle trees, difficulty retargeting, chain state.
- :mod:`repro.pool` — mining-pool job distribution and share accounting.
- :mod:`repro.coinhive` — a faithful simulator of the Coinhive service
  (tokens, pool endpoints, XOR header obfuscation, short links).
- :mod:`repro.rulespace` — a RuleSpace-like website categorizer.
- :mod:`repro.internet` — synthetic, seeded domain populations calibrated to
  the paper's reported distributions.
- :mod:`repro.core` — the paper's contributions: the NoCoin filter engine,
  Wasm fingerprinting, miner classification, the combined detector, and the
  blockchain pool-association methodology.
- :mod:`repro.analysis` — measurement campaigns and the table/figure
  reproduction harness.

See DESIGN.md for the system inventory and EXPERIMENTS.md for paper-vs-measured
results for every table and figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
