"""The instrumented headless browser.

Reproduces the paper's Chrome-based crawler (Section 3.2):

- loads ``http://www.<domain>`` and follows redirects (thereby also
  covering non-HTTPS sites, unlike the TLS-only zgrab pass),
- executes page scripts (behaviour objects),
- decides page completion with the paper's heuristic — wait for the load
  event, then a 2-second timer armed on every DOM change, but no more than
  5 extra seconds; without a load event, give up after 15 seconds,
- captures, DevTools-style, every WebSocket frame and every fetched
  WebAssembly module,
- saves the first 65 kB of the *final* (post-execution) HTML for NoCoin
  re-matching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.faults.plan import FaultKind
from repro.obs.profile import NULL_OBS, Obs
from repro.sim.events import EventLoop
from repro.sim.rng import RngStream
from repro.web.html import HtmlDocument, HtmlElement, parse_html
from repro.web.http import FetchError, SyntheticWeb, split_url
from repro.web.websocket import CapturedFrame, WebSocketChannel


@dataclass(frozen=True)
class BrowserConfig:
    """The paper's page-load parameters (Section 3.2)."""

    dom_quiet_timer: float = 2.0
    max_wait_after_load: float = 5.0
    page_timeout: float = 15.0
    final_html_bytes: int = 65 * 1024
    fetch_timeout: float = 10.0


@dataclass
class PageResult:
    """Everything the instrumentation captured for one page visit."""

    url: str
    final_url: str = ""
    status: str = "ok"  # ok | timeout | error
    error: Optional[str] = None
    final_html: str = ""
    websocket_frames: list = field(default_factory=list)
    wasm_dumps: list = field(default_factory=list)
    load_event_at: Optional[float] = None
    finished_at: float = 0.0
    dom_mutations: int = 0
    #: taxonomy entry when ``status == "error"``
    error_class: Optional[str] = None
    #: injected fault kinds this visit hit (main document, subresources,
    #: WebSocket drops) — the crawl layer settles these into its ledger
    fault_events: list = field(default_factory=list)
    ws_dropped: int = 0

    def websocket_urls(self) -> set:
        return {frame.url for frame in self.websocket_frames}

    def has_websockets(self) -> bool:
        return bool(self.websocket_frames)

    def has_wasm(self) -> bool:
        return bool(self.wasm_dumps)


class PageContext:
    """The capability surface handed to script behaviours.

    Mirrors what page JavaScript can do: fetch subresources, open
    WebSockets, and mutate the DOM — with every action passing through the
    browser's capture hooks.
    """

    def __init__(
        self,
        browser: "HeadlessBrowser",
        document: HtmlDocument,
        result: PageResult,
        rng: RngStream,
        session_key: str = "",
    ) -> None:
        self._browser = browser
        self.loop: EventLoop = browser.loop
        self.document = document
        self.result = result
        self.rng = rng
        #: keys per-visit fault decisions (WS drops) — stable across shards
        self.session_key = session_key
        self._open_channels: list[WebSocketChannel] = []

    def fetch(self, url: str, callback: Callable, expect_wasm: bool = False) -> None:
        """Fetch ``url`` asynchronously; ``callback(ctx, body_or_None)``.

        WebAssembly responses (by content type or magic bytes) are dumped
        into the capture, as the paper's instrumented Chrome does.
        """
        plan = self._browser.web.fault_plan
        if plan is not None:
            try:
                scheme, host, _path = split_url(url)
            except ValueError:
                scheme = host = None
            if host is not None:
                fault = plan.fetch_fault(scheme, host, url, 0)
                if fault is not None:
                    # failed subresource: the page sees None, like a 404
                    self.result.fault_events.append(fault.kind.value)
                    self.loop.call_later(0.01, callback, self, None)
                    return
        try:
            resource = self._browser.web.lookup(url)
        except (FetchError, ValueError):
            self.loop.call_later(0.01, callback, self, None)
            return
        if resource.hang:
            return  # request never completes; page heuristics handle it

        def _complete() -> None:
            body = resource.body()
            is_wasm = expect_wasm or resource.content_type == "application/wasm" or body[:4] == b"\x00asm"
            if is_wasm and body[:4] == b"\x00asm":
                self.result.wasm_dumps.append(body)
            callback(self, body)

        self.loop.call_later(resource.latency, _complete)

    def open_websocket(self, url: str) -> Optional[WebSocketChannel]:
        """Open a captured WebSocket; returns None when the endpoint is dead."""
        try:
            handler = self._browser.web.lookup_ws(url)
        except (FetchError, ValueError):
            return None
        channel = WebSocketChannel(
            url=url,
            loop=self.loop,
            server_handler=handler,
            capture=self._browser._capture_frame,
        )
        plan = self._browser.web.fault_plan
        if plan is not None:
            drop_after = plan.ws_drop_after(url, self.session_key)
            if drop_after is not None:
                channel.drop_after = drop_after
                channel.on_drop = self._record_ws_drop
        self._open_channels.append(channel)
        return channel

    def _record_ws_drop(self, channel: WebSocketChannel) -> None:
        self.result.ws_dropped += 1
        self.result.fault_events.append(FaultKind.WS_DROP.value)

    def append_body_element(self, element: HtmlElement) -> None:
        """Append an element to <body> (or the root) and record the mutation."""
        bodies = self.document.find_all("body")
        target = bodies[0] if bodies else self.document.root
        target.append(element)
        self.mark_dom_mutation()

    def mark_dom_mutation(self) -> None:
        self.result.dom_mutations += 1
        self._browser._on_dom_mutation()

    def close_all(self) -> None:
        for channel in self._open_channels:
            channel.close()


class HeadlessBrowser:
    """Drives page visits on the event loop.

    One browser instance is reusable across visits (like one Chrome
    process); each :meth:`visit` creates a fresh context and capture.
    """

    def __init__(
        self,
        web: SyntheticWeb,
        loop: Optional[EventLoop] = None,
        config: BrowserConfig = BrowserConfig(),
        rng: Optional[RngStream] = None,
        behavior_registry: Optional[dict] = None,
        obs: Obs = NULL_OBS,
    ) -> None:
        self.web = web
        self.loop = loop if loop is not None else EventLoop()
        self.config = config
        self.obs = obs
        self.rng = rng if rng is not None else RngStream(0, "browser")
        #: script-src URL → ScriptBehavior; how the browser "executes" JS.
        self.behavior_registry = behavior_registry if behavior_registry is not None else {}
        self._current: Optional[PageResult] = None
        self._last_mutation: float = 0.0
        self._visit_counts: dict[str, int] = {}

    # -- capture hooks ------------------------------------------------------------

    def _capture_frame(self, frame: CapturedFrame) -> None:
        if self._current is not None:
            self._current.websocket_frames.append(frame)

    def _on_dom_mutation(self) -> None:
        self._last_mutation = self.loop.now

    # -- main entry ---------------------------------------------------------------

    def visit(self, url: str) -> PageResult:
        """Visit ``url`` and return the captured :class:`PageResult`."""
        result = PageResult(url=url)
        self._current = result
        start = self.loop.now
        try:
            with self.obs.span("fetch", url=url) as fetch_span:
                try:
                    response = self.web.fetch(
                        url, timeout=self.config.page_timeout, follow_redirects=True
                    )
                except FetchError as exc:
                    fetch_span.set_tag("error_class", exc.error_class.value)
                    raise
        except FetchError as exc:
            # the only expected failure: SyntheticWeb wraps malformed URLs
            # into FetchError(INVALID_URL); anything else is a bug upstream
            result.status = "error"
            result.error = str(exc)
            result.error_class = exc.error_class.value
            if exc.injected and exc.fault_kind is not None:
                result.fault_events.append(exc.fault_kind.value)
            result.finished_at = self.loop.now
            self._current = None
            return result

        result.final_url = response.url
        if response.fault_truncated:
            result.fault_events.append(FaultKind.TRUNCATE.value)
        with self.obs.span("parse"):
            document = parse_html(response.body.decode("utf-8", errors="replace"))
        # per-visit stream keyed by (url, nth visit of that url): distinct
        # across repeat visits, yet independent of the order in which other
        # URLs are visited — sharded crawls replay identical page behaviour
        visit_count = self._visit_counts.get(url, 0) + 1
        self._visit_counts[url] = visit_count
        context = PageContext(
            self,
            document,
            result,
            self.rng.substream("page", url, str(visit_count)),
            session_key=f"{url}#{visit_count}",
        )
        self._last_mutation = start

        # "Execute" scripts: static script tags run in document order after
        # their (src) resources arrive; latency drawn per script.
        load_delay = response.elapsed
        for src, inline in document.scripts():
            if src:
                behavior = self.behavior_registry.get(src)
            elif inline:
                from repro.web.scripts import inline_key

                behavior = self.behavior_registry.get(inline_key(inline))
            else:
                behavior = None
            script_latency = 0.0
            if src is not None:
                try:
                    script_latency = self.web.lookup(src).latency
                except (FetchError, ValueError):
                    script_latency = 0.05  # failed script: DNS/404 delay only
            load_delay = max(load_delay, response.elapsed + script_latency)
            if behavior is not None:
                self.loop.call_later(response.elapsed + script_latency, behavior.run, context)

        # load event fires when the document and all static subresources are in
        load_at = start + load_delay
        if load_at - start > self.config.page_timeout:
            load_at = None  # load event will never fire in time
        else:
            self.loop.call_later(load_at - self.loop.now, self._fire_load, result)

        with self.obs.span("execute"):
            self._run_page(result, context, start, load_at)
        self._current = None
        return result

    def _fire_load(self, result: PageResult) -> None:
        result.load_event_at = self.loop.now

    def _run_page(self, result: PageResult, context: PageContext, start: float, load_at: Optional[float]) -> None:
        """Advance the loop until the page-load heuristic declares completion."""
        config = self.config
        hard_deadline = start + config.page_timeout
        while True:
            if load_at is None:
                # no load event: run to the 15 s timeout
                self.loop.run_until(hard_deadline)
                result.status = "timeout"
                break
            if self.loop.now < load_at:
                self.loop.run_until(min(load_at, hard_deadline))
                continue
            # After load: wait until DOM has been quiet for dom_quiet_timer,
            # capped at load + max_wait_after_load.
            cap = load_at + config.max_wait_after_load
            quiet_deadline = max(self._last_mutation, load_at) + config.dom_quiet_timer
            target = min(quiet_deadline, cap)
            if self.loop.now >= target:
                break
            self.loop.run_until(target)
            new_quiet = max(self._last_mutation, load_at) + config.dom_quiet_timer
            if self.loop.now >= min(new_quiet, cap):
                break
        result.finished_at = self.loop.now
        context.close_all()
        html = context.document.serialize()
        result.final_html = html[: config.final_html_bytes]
