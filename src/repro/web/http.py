"""Simulated HTTP/TLS transfers and the synthetic web.

:class:`SyntheticWeb` is the origin registry the crawlers talk to. Each
registered :class:`Resource` serves bytes for a URL, optionally redirects,
and carries a latency model. Fidelity points that matter to the paper's
measurements:

- TLS-only fetches fail on plain-HTTP-only sites (the zgrab dataset is
  TLS-only; the Chrome crawl also covers non-HTTPS sites — Table 2's
  populations differ for exactly this reason),
- redirects (``http://www.example.org`` → ``https://…``),
- truncation is the *client's* job (zgrab stops at 256 kB),
- unresponsive origins hang until the client's timeout.

An optional :class:`~repro.faults.plan.FaultPlan` attached as
``fault_plan`` turns the registry into a chaos plane: every fetch attempt
consults the plan for injected DNS/TLS/reset/flap/slow faults (raised as
classified :class:`FetchError`\\ s with ``injected=True``) and truncation
faults (surfaced on the response). Every :class:`FetchError` carries an
:class:`~repro.faults.taxonomy.ErrorClass` and the simulated seconds the
failed transfer consumed, which is what lets callers propagate deadlines
across retries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Union

from repro.faults.plan import FaultKind, FaultPlan
from repro.faults.taxonomy import ErrorClass, classify_reason

ContentProvider = Union[bytes, Callable[[], bytes]]


class FetchError(Exception):
    """A failed transfer (DNS, refused, TLS mismatch, timeout).

    ``error_class`` is the structured taxonomy entry (derived from the
    reason string when not given), ``injected`` marks fault-plan failures,
    ``fault_kind`` names the injected fault, and ``elapsed`` is the
    simulated time the doomed transfer consumed before failing.
    """

    def __init__(
        self,
        url: str,
        reason: str,
        error_class: Optional[ErrorClass] = None,
        injected: bool = False,
        fault_kind: Optional[FaultKind] = None,
        elapsed: float = 0.0,
    ) -> None:
        super().__init__(f"{url}: {reason}")
        self.url = url
        self.reason = reason
        self.error_class = error_class if error_class is not None else classify_reason(reason)
        self.injected = injected
        self.fault_kind = fault_kind
        self.elapsed = elapsed


@dataclass
class Resource:
    """One servable URL.

    ``content`` may be bytes or a zero-argument callable (for dynamic
    pages). ``redirect_to`` wins over content. ``latency`` is the simulated
    transfer time in seconds; ``hang`` marks an origin that accepts the
    connection but never responds (the paper's 15 s browser timeout exists
    because such sites are common).
    """

    content: ContentProvider = b""
    content_type: str = "text/html"
    redirect_to: Optional[str] = None
    latency: float = 0.05
    hang: bool = False
    status: int = 200

    def body(self) -> bytes:
        if callable(self.content):
            return self.content()
        return self.content


@dataclass(frozen=True)
class HttpResponse:
    """A completed transfer."""

    url: str
    status: int
    body: bytes
    content_type: str
    elapsed: float
    redirects: tuple = ()
    #: body shortened by an injected truncation fault (distinct from the
    #: client-requested ``max_bytes`` cut, which is not a fault)
    fault_truncated: bool = False


def split_url(url: str) -> tuple:
    """``(scheme, host, path)`` from a URL; raises :class:`ValueError`."""
    if "://" not in url:
        raise ValueError(f"URL without scheme: {url!r}")
    scheme, rest = url.split("://", 1)
    if scheme not in ("http", "https", "ws", "wss"):
        raise ValueError(f"unsupported scheme {scheme!r}")
    host, _, path = rest.partition("/")
    if not host:
        raise ValueError(f"URL without host: {url!r}")
    return scheme, host.lower(), "/" + path


@dataclass
class SyntheticWeb:
    """The registry of everything fetchable in a simulation.

    URLs are stored normalized as ``scheme://host/path``. Hosts absent from
    the registry raise DNS-style failures; ``https`` URLs for hosts marked
    HTTP-only raise TLS failures.
    """

    resources: dict = field(default_factory=dict)
    https_hosts: set = field(default_factory=set)
    ws_handlers: dict = field(default_factory=dict)
    max_redirects: int = 5
    #: the chaos plane; ``None`` disables injection entirely
    fault_plan: Optional[FaultPlan] = None

    def register_ws(self, url: str, handler: Callable) -> None:
        """Register a WebSocket endpoint handler ``(channel, payload) -> None``."""
        scheme, host, path = split_url(url)
        if scheme not in ("ws", "wss"):
            raise ValueError(f"WebSocket URL must be ws:// or wss://, got {url!r}")
        self.ws_handlers[f"{scheme}://{host}{path}"] = handler

    def lookup_ws(self, url: str) -> Callable:
        scheme, host, path = split_url(url)
        handler = self.ws_handlers.get(f"{scheme}://{host}{path}")
        if handler is None:
            raise FetchError(url, "no WebSocket endpoint")
        return handler

    def register(self, url: str, resource: Resource) -> None:
        scheme, host, path = split_url(url)
        if scheme == "https":
            self.https_hosts.add(host)
        self.resources[f"{scheme}://{host}{path}"] = resource

    def register_page(
        self,
        url: str,
        html: ContentProvider,
        latency: float = 0.05,
        hang: bool = False,
    ) -> None:
        self.register(url, Resource(content=html, latency=latency, hang=hang))

    def has_host(self, host: str) -> bool:
        host = host.lower()
        prefix_variants = (f"http://{host}/", f"https://{host}/")
        return any(key.startswith(prefix_variants) for key in self.resources)

    def lookup(self, url: str) -> Resource:
        scheme, host, path = split_url(url)
        key = f"{scheme}://{host}{path}"
        resource = self.resources.get(key)
        if resource is not None:
            return resource
        if not self.has_host(host):
            raise FetchError(url, "name not resolved", error_class=ErrorClass.DNS)
        if scheme == "https" and host not in self.https_hosts:
            raise FetchError(
                url,
                "TLS handshake failed (no HTTPS endpoint)",
                error_class=ErrorClass.TLS,
            )
        raise FetchError(url, "404 not found", error_class=ErrorClass.HTTP_ERROR)

    def fetch(
        self,
        url: str,
        max_bytes: Optional[int] = None,
        timeout: float = 10.0,
        follow_redirects: bool = True,
        attempt: int = 0,
    ) -> HttpResponse:
        """Perform a blocking simulated transfer.

        ``max_bytes`` truncates the body client-side (zgrab's 256 kB cut).
        ``timeout`` converts hanging origins into :class:`FetchError`.
        ``attempt`` (0-based) keys per-attempt fault decisions, so retries
        see transient faults clear and flapping origins recover.
        """
        plan = self.fault_plan
        redirects: list[str] = []
        current = url
        elapsed = 0.0
        for _ in range(self.max_redirects + 1):
            try:
                scheme, host, _path = split_url(current)
            except ValueError as exc:
                raise FetchError(
                    current,
                    f"invalid URL ({exc})",
                    error_class=ErrorClass.INVALID_URL,
                    elapsed=elapsed,
                ) from None
            if plan is not None:
                fault = plan.fetch_fault(scheme, host, current, attempt)
                if fault is not None:
                    failed_at = (
                        timeout
                        if fault.error_class is ErrorClass.TIMEOUT
                        else elapsed + fault.elapsed
                    )
                    raise FetchError(
                        current,
                        fault.reason,
                        error_class=fault.error_class,
                        injected=True,
                        fault_kind=fault.kind,
                        elapsed=failed_at,
                    )
            try:
                resource = self.lookup(current)
            except FetchError as exc:
                exc.elapsed = elapsed
                raise
            elapsed += resource.latency
            if resource.hang or elapsed > timeout:
                raise FetchError(
                    current,
                    "timed out",
                    error_class=ErrorClass.TIMEOUT,
                    elapsed=timeout,
                )
            if resource.redirect_to is not None and follow_redirects:
                redirects.append(current)
                current = resource.redirect_to
                continue
            body = resource.body()
            fault_truncated = False
            if plan is not None and body and plan.truncates(current):
                body = body[: max(int(len(body) * plan.truncate_keep_fraction), 1)]
                fault_truncated = True
            if max_bytes is not None:
                body = body[:max_bytes]
            return HttpResponse(
                url=current,
                status=resource.status,
                body=body,
                content_type=resource.content_type,
                elapsed=elapsed,
                redirects=tuple(redirects),
                fault_truncated=fault_truncated,
            )
        raise FetchError(
            url, "too many redirects", error_class=ErrorClass.REDIRECT_LOOP, elapsed=elapsed
        )
