"""Web substrate.

Everything between a domain name and the data the paper's detectors
consume: a synthetic web of sites, an HTML parser, a zgrab-style
landing-page fetcher (Section 3.1), WebSocket channels, and an instrumented
headless browser with DevTools-like capture of WebSocket frames and dumped
WebAssembly modules (Section 3.2).

- :mod:`repro.web.html` — HTML tokenizer/parser/serializer.
- :mod:`repro.web.http` — simulated HTTP/TLS transfers and the
  :class:`~repro.web.http.SyntheticWeb` origin registry.
- :mod:`repro.web.websocket` — WebSocket channels with frame capture.
- :mod:`repro.web.scripts` — declarative script behaviours (miners, ads,
  analytics, DOM builders) executed by the browser.
- :mod:`repro.web.zgrab` — the light-weight TLS landing-page fetcher.
- :mod:`repro.web.browser` — the headless browser with the paper's
  page-load heuristic (load event, 2 s DOM-quiet timer, +5 s cap, 15 s
  timeout) and capture hooks.
"""

from repro.web.html import HtmlElement, HtmlParser, parse_html
from repro.web.http import (
    FetchError,
    HttpResponse,
    Resource,
    SyntheticWeb,
)
from repro.web.websocket import WebSocketChannel, WebSocketClosed
from repro.web.zgrab import ZgrabFetcher, ZgrabResult
from repro.web.browser import BrowserConfig, HeadlessBrowser, PageResult

__all__ = [
    "HtmlElement",
    "HtmlParser",
    "parse_html",
    "FetchError",
    "HttpResponse",
    "Resource",
    "SyntheticWeb",
    "WebSocketChannel",
    "WebSocketClosed",
    "ZgrabFetcher",
    "ZgrabResult",
    "BrowserConfig",
    "HeadlessBrowser",
    "PageResult",
]
