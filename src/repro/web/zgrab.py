"""The light-weight landing-page fetcher (Section 3.1).

The paper's first pass visits every domain prefixed with ``www.`` over TLS
and downloads the first 256 kB of the landing page with zgrab; the HTML is
then matched against the NoCoin list. This module reproduces that client:
TLS-only, fixed byte budget, no script execution.

With a :class:`~repro.faults.resilience.ResiliencePolicy` attached, each
domain's fetch runs under a retry budget with seeded jitter, a per-domain
circuit breaker, and a propagated deadline: every failed attempt's
simulated elapsed time (plus backoff) is charged against the domain's
deadline, and the remaining budget shrinks the next attempt's timeout.
All fault accounting lands in the supplied
:class:`~repro.faults.ledger.FaultLedger`.

Only :class:`FetchError` is handled here — anything else (a ``ValueError``
out of a buggy content provider, say) is a bug in the simulation and must
propagate, not be booked as a failed transfer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.faults.ledger import FaultLedger
from repro.faults.resilience import BreakerRegistry, ResiliencePolicy
from repro.faults.taxonomy import ErrorClass, is_transient
from repro.obs.profile import NULL_OBS, Obs
from repro.web.http import FetchError, SyntheticWeb

DEFAULT_MAX_BYTES = 256 * 1024


@dataclass(frozen=True)
class ZgrabResult:
    """Outcome of one zgrab-style fetch."""

    domain: str
    url: str
    ok: bool
    body: str = ""
    error: Optional[str] = None
    truncated: bool = False
    error_class: Optional[str] = None
    attempts: int = 1


@dataclass
class ZgrabFetcher:
    """Downloads ``https://www.<domain>/`` bodies, truncated at 256 kB."""

    web: SyntheticWeb
    max_bytes: int = DEFAULT_MAX_BYTES
    timeout: float = 10.0
    resilience: Optional[ResiliencePolicy] = None
    ledger: Optional[FaultLedger] = None
    #: observability hook; the disabled singleton costs nothing per fetch
    obs: Obs = field(default=NULL_OBS, repr=False)
    _breakers: Optional[BreakerRegistry] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.resilience is not None and self.resilience.breaker is not None:
            self._breakers = BreakerRegistry(
                policy=self.resilience.breaker, ledger=self.ledger
            )

    def fetch_domain(self, domain: str, ledger: Optional[FaultLedger] = None) -> ZgrabResult:
        """Fetch one domain under the configured resilience policy.

        ``ledger`` overrides the fetcher-level one for this call (the
        campaigns pass a per-site ledger so checkpointed sites carry their
        own fault accounting).
        """
        if not self.obs.enabled:
            return self._fetch_domain(domain, ledger)
        with self.obs.span("fetch", domain=domain) as span:
            result = self._fetch_domain(domain, ledger)
            if result.attempts > 1:
                span.set_tag("attempts", result.attempts)
            if not result.ok and result.error_class:
                span.set_tag("error_class", result.error_class)
            return result

    def _fetch_domain(self, domain: str, ledger: Optional[FaultLedger]) -> ZgrabResult:
        url = f"https://www.{domain}/"
        ledger = ledger if ledger is not None else self.ledger
        policy = self.resilience
        breaker = self._breakers.get(domain) if self._breakers is not None else None
        if breaker is not None and self._breakers.ledger is not ledger:
            breaker.ledger = ledger  # route this call's transitions correctly

        if breaker is not None and not breaker.allow():
            if ledger is not None:
                ledger.record_observed(ErrorClass.BREAKER_OPEN)
            return ZgrabResult(
                domain=domain,
                url=url,
                ok=False,
                error=f"{url}: circuit open",
                error_class=ErrorClass.BREAKER_OPEN.value,
                attempts=0,
            )

        max_attempts = policy.attempts() if policy is not None else 1
        deadline = policy.deadline if policy is not None else float("inf")
        spent = 0.0
        injected_kinds: list = []
        last_error: Optional[FetchError] = None
        attempt = 0
        while attempt < max_attempts:
            remaining = deadline - spent
            if remaining <= 0:
                break
            try:
                response = self.web.fetch(
                    url,
                    max_bytes=self.max_bytes,
                    timeout=min(self.timeout, remaining),
                    attempt=attempt,
                )
            except FetchError as exc:
                attempt += 1
                spent += exc.elapsed
                last_error = exc
                if exc.injected and exc.fault_kind is not None:
                    injected_kinds.append(exc.fault_kind)
                    if ledger is not None:
                        ledger.record_injection(exc.fault_kind)
                if breaker is not None:
                    breaker.record_failure()
                    if breaker.state == "open":
                        break
                if not is_transient(exc.error_class):
                    break  # permanent: retrying cannot help
                if attempt < max_attempts and policy is not None:
                    backoff = policy.retry.delay(attempt, key=(domain,))
                    spent += backoff
                    if spent >= deadline:
                        break  # the backoff outlives the deadline: no retry runs
                    if ledger is not None:
                        ledger.retries += 1
                continue
            # success
            if breaker is not None:
                breaker.record_success()
            if ledger is not None:
                ledger.settle(injected_kinds, recovered=True)
                if response.fault_truncated:
                    # truncation is a fault that *succeeded* short: injected
                    # and immediately recovered-with-degradation
                    from repro.faults.plan import FaultKind

                    ledger.record_injection(FaultKind.TRUNCATE)
                    ledger.settle([FaultKind.TRUNCATE], recovered=True)
                    ledger.record_observed(ErrorClass.TRUNCATED)
            body = response.body.decode("utf-8", errors="replace")
            return ZgrabResult(
                domain=domain,
                url=response.url,
                ok=True,
                body=body,
                truncated=len(response.body) >= self.max_bytes
                or response.fault_truncated,
                attempts=attempt + 1,
            )

        # terminal failure
        if last_error is None:
            # deadline consumed before the first attempt could run
            error_class = ErrorClass.DEADLINE
            message = f"{url}: deadline exhausted"
        elif spent >= deadline and is_transient(last_error.error_class):
            error_class = ErrorClass.DEADLINE
            message = f"{url}: deadline exhausted after {attempt} attempts"
        else:
            error_class = last_error.error_class
            message = str(last_error)
        if ledger is not None:
            ledger.settle(injected_kinds, recovered=False)
            ledger.record_observed(error_class)
        return ZgrabResult(
            domain=domain,
            url=url,
            ok=False,
            error=message,
            error_class=error_class.value,
            attempts=attempt,
        )

    def fetch_many(self, domains: Iterable[str]) -> list[ZgrabResult]:
        """Fetch a batch of domains (order preserved).

        Fetches are independent and side-effect free on the shared
        :class:`SyntheticWeb`, which is what lets shard workers run them
        concurrently (see :mod:`repro.analysis.parallel`).
        """
        return [self.fetch_domain(domain) for domain in domains]
