"""The light-weight landing-page fetcher (Section 3.1).

The paper's first pass visits every domain prefixed with ``www.`` over TLS
and downloads the first 256 kB of the landing page with zgrab; the HTML is
then matched against the NoCoin list. This module reproduces that client:
TLS-only, fixed byte budget, no script execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.web.http import FetchError, SyntheticWeb

DEFAULT_MAX_BYTES = 256 * 1024


@dataclass(frozen=True)
class ZgrabResult:
    """Outcome of one zgrab-style fetch."""

    domain: str
    url: str
    ok: bool
    body: str = ""
    error: Optional[str] = None
    truncated: bool = False


@dataclass
class ZgrabFetcher:
    """Downloads ``https://www.<domain>/`` bodies, truncated at 256 kB."""

    web: SyntheticWeb
    max_bytes: int = DEFAULT_MAX_BYTES
    timeout: float = 10.0

    def fetch_domain(self, domain: str) -> ZgrabResult:
        url = f"https://www.{domain}/"
        try:
            response = self.web.fetch(url, max_bytes=self.max_bytes, timeout=self.timeout)
        except (FetchError, ValueError) as exc:
            return ZgrabResult(domain=domain, url=url, ok=False, error=str(exc))
        body = response.body.decode("utf-8", errors="replace")
        return ZgrabResult(
            domain=domain,
            url=response.url,
            ok=True,
            body=body,
            truncated=len(response.body) >= self.max_bytes,
        )

    def fetch_many(self, domains: Iterable[str]) -> list[ZgrabResult]:
        """Fetch a batch of domains (order preserved).

        Fetches are independent and side-effect free on the shared
        :class:`SyntheticWeb`, which is what lets shard workers run them
        concurrently (see :mod:`repro.analysis.parallel`).
        """
        return [self.fetch_domain(domain) for domain in domains]
