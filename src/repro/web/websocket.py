"""Simulated WebSocket channels.

The browser's DevTools capture (Section 3.2 of the paper) records every
frame sent or received on every WebSocket a page opens. We model a channel
as a pair of in-process endpoints bridged by the event loop, with an
optional capture callback seeing ``(direction, url, payload, time)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional


class WebSocketClosed(RuntimeError):
    """Raised when sending on a closed channel."""


@dataclass(frozen=True)
class CapturedFrame:
    """One frame as the DevTools instrumentation records it."""

    url: str
    direction: str  # "sent" (page → server) or "received"
    payload: str
    time: float


@dataclass
class WebSocketChannel:
    """A client-side WebSocket bound to a server handler.

    ``server_handler(channel, payload)`` is invoked (via the event loop,
    after ``latency``) for every client frame; the handler replies with
    :meth:`server_send`. Frames pass through ``capture`` when installed.
    """

    url: str
    loop: object  # EventLoop
    server_handler: Callable[["WebSocketChannel", str], None]
    latency: float = 0.03
    capture: Optional[Callable[[CapturedFrame], None]] = None
    on_message: Optional[Callable[[str], None]] = None
    closed: bool = False
    frames_sent: int = 0
    frames_received: int = 0
    #: injected mid-session drop: the connection dies after this many
    #: total frames (either direction); ``None`` = healthy channel
    drop_after: Optional[int] = None
    dropped: bool = False
    on_drop: Optional[Callable[["WebSocketChannel"], None]] = None
    _pending_events: list = field(default_factory=list)

    def send(self, payload: str) -> None:
        """Page → server."""
        if self.closed:
            raise WebSocketClosed(self.url)
        self.frames_sent += 1
        self._capture("sent", payload)
        event = self.loop.call_later(self.latency, self._deliver_to_server, payload)
        self._pending_events.append(event)
        self._maybe_drop()

    def _deliver_to_server(self, payload: str) -> None:
        if not self.closed:
            self.server_handler(self, payload)

    def server_send(self, payload: str) -> None:
        """Server → page (called from the server handler)."""
        if self.closed:
            return
        event = self.loop.call_later(self.latency, self._deliver_to_client, payload)
        self._pending_events.append(event)

    def _deliver_to_client(self, payload: str) -> None:
        if self.closed:
            return
        self.frames_received += 1
        self._capture("received", payload)
        if self.on_message is not None:
            self.on_message(payload)
        self._maybe_drop()

    def _maybe_drop(self) -> None:
        """Enforce an injected mid-session drop once the frame budget hits.

        The frame that crossed the threshold is still delivered/captured —
        a real connection dies *after* the bytes it managed to carry.
        """
        if (
            self.drop_after is not None
            and not self.closed
            and self.frames_sent + self.frames_received >= self.drop_after
        ):
            self.dropped = True
            if self.on_drop is not None:
                self.on_drop(self)
            self.close()

    def close(self) -> None:
        self.closed = True
        for event in self._pending_events:
            event.cancel()
        self._pending_events.clear()

    def _capture(self, direction: str, payload: str) -> None:
        if self.capture is not None:
            self.capture(
                CapturedFrame(
                    url=self.url,
                    direction=direction,
                    payload=payload,
                    time=self.loop.now,
                )
            )
