"""HTML tokenizer, parser, and serializer.

The paper extracts ``<script>`` tags with lxml before applying the NoCoin
list and saves rendered HTML for re-matching. We implement a small
fault-tolerant HTML parser (crawled pages are truncated at 256 kB and often
malformed) sufficient for:

- extracting script tags (``src`` attribute and inline text),
- walking elements and text for categorization,
- serializing a (mutated) DOM back to HTML.

It is intentionally not a full HTML5 tree builder: no implied-tag
inference, no entity decoding beyond the common five — crawl analysis needs
robustness, not spec completeness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

VOID_ELEMENTS = frozenset(
    {"area", "base", "br", "col", "embed", "hr", "img", "input",
     "link", "meta", "param", "source", "track", "wbr"}
)
RAW_TEXT_ELEMENTS = frozenset({"script", "style"})

_ENTITIES = {"&amp;": "&", "&lt;": "<", "&gt;": ">", "&quot;": '"', "&#39;": "'"}


def unescape(text: str) -> str:
    """Decode the five common HTML entities."""
    for entity, char in _ENTITIES.items():
        if entity in text:
            text = text.replace(entity, char)
    return text


def escape(text: str) -> str:
    """Encode text for safe HTML embedding."""
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


@dataclass
class HtmlElement:
    """One element node; children are elements or plain strings (text)."""

    tag: str
    attrs: dict = field(default_factory=dict)
    children: list = field(default_factory=list)

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self.attrs.get(name.lower(), default)

    def append(self, child) -> None:
        self.children.append(child)

    def text(self) -> str:
        """Concatenated text content of the subtree."""
        parts: list[str] = []
        for child in self.children:
            if isinstance(child, str):
                parts.append(child)
            else:
                parts.append(child.text())
        return "".join(parts)

    def iter(self) -> Iterator["HtmlElement"]:
        """Depth-first iteration over this element and all descendants."""
        yield self
        for child in self.children:
            if isinstance(child, HtmlElement):
                yield from child.iter()

    def find_all(self, tag: str) -> list:
        tag = tag.lower()
        return [el for el in self.iter() if el.tag == tag]

    def serialize(self) -> str:
        attrs = "".join(
            f' {name}="{escape(value)}"' if value is not None else f" {name}"
            for name, value in self.attrs.items()
        )
        if self.tag in VOID_ELEMENTS:
            return f"<{self.tag}{attrs}>"
        inner = []
        for child in self.children:
            if isinstance(child, str):
                # script/style bodies must not be entity-escaped
                inner.append(child if self.tag in RAW_TEXT_ELEMENTS else escape(child))
            else:
                inner.append(child.serialize())
        return f"<{self.tag}{attrs}>{''.join(inner)}</{self.tag}>"


@dataclass
class HtmlDocument:
    """Parse result: a root element (synthetic ``#document``)."""

    root: HtmlElement

    def find_all(self, tag: str) -> list:
        return self.root.find_all(tag)

    def scripts(self) -> list:
        """All script tags as ``(src, inline_text)`` pairs."""
        out = []
        for el in self.root.find_all("script"):
            out.append((el.get("src"), el.text()))
        return out

    def title(self) -> str:
        titles = self.root.find_all("title")
        return titles[0].text().strip() if titles else ""

    def body_text(self) -> str:
        bodies = self.root.find_all("body")
        return bodies[0].text() if bodies else self.root.text()

    def serialize(self) -> str:
        return "".join(
            child if isinstance(child, str) else child.serialize()
            for child in self.root.children
        )


class HtmlParser:
    """Fault-tolerant, single-pass HTML parser.

    Unknown constructs degrade to text; unclosed tags close implicitly at
    EOF (truncated crawls!); mismatched end tags pop to the nearest matching
    open element, or are dropped if none matches.
    """

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.length = len(text)

    def parse(self) -> HtmlDocument:
        root = HtmlElement("#document")
        stack = [root]
        while self.pos < self.length:
            if self.text.startswith("<!--", self.pos):
                self._skip_comment()
            elif self.text.startswith("<!", self.pos) or self.text.startswith("<?", self.pos):
                self._skip_declaration()
            elif self.text.startswith("</", self.pos):
                self._handle_end_tag(stack)
            elif self.text.startswith("<", self.pos) and self._looks_like_tag():
                self._handle_start_tag(stack)
            else:
                self._handle_text(stack)
        return HtmlDocument(root)

    # -- token handlers --------------------------------------------------------

    def _looks_like_tag(self) -> bool:
        nxt = self.pos + 1
        return nxt < self.length and (self.text[nxt].isalpha())

    def _skip_comment(self) -> None:
        end = self.text.find("-->", self.pos + 4)
        self.pos = self.length if end == -1 else end + 3

    def _skip_declaration(self) -> None:
        end = self.text.find(">", self.pos)
        self.pos = self.length if end == -1 else end + 1

    def _handle_text(self, stack: list) -> None:
        next_tag = self.text.find("<", self.pos + 1)
        end = self.length if next_tag == -1 else next_tag
        chunk = self.text[self.pos : end]
        if chunk.strip():
            stack[-1].append(unescape(chunk))
        self.pos = end

    def _handle_end_tag(self, stack: list) -> None:
        end = self.text.find(">", self.pos)
        if end == -1:
            self.pos = self.length
            return
        tag = self.text[self.pos + 2 : end].strip().split()[0].lower() if self.text[self.pos + 2 : end].strip() else ""
        self.pos = end + 1
        for i in range(len(stack) - 1, 0, -1):
            if stack[i].tag == tag:
                del stack[i:]
                return
        # no matching open element: drop the stray end tag

    def _handle_start_tag(self, stack: list) -> None:
        end = self._find_tag_end(self.pos)
        if end == -1:
            # truncated mid-tag: swallow the rest
            self.pos = self.length
            return
        raw = self.text[self.pos + 1 : end]
        self.pos = end + 1
        self_closing = raw.rstrip().endswith("/")
        if self_closing:
            raw = raw.rstrip()[:-1]
        tag, attrs = self._parse_tag_contents(raw)
        if not tag:
            return
        element = HtmlElement(tag, attrs)
        stack[-1].append(element)
        if tag in RAW_TEXT_ELEMENTS and not self_closing:
            self._consume_raw_text(element, tag)
        elif tag not in VOID_ELEMENTS and not self_closing:
            stack.append(element)

    def _find_tag_end(self, start: int) -> int:
        """Find the closing ``>`` of a tag, respecting quoted attributes."""
        i = start + 1
        quote: Optional[str] = None
        while i < self.length:
            char = self.text[i]
            if quote is not None:
                if char == quote:
                    quote = None
            elif char in "\"'":
                quote = char
            elif char == ">":
                return i
            i += 1
        return -1

    def _parse_tag_contents(self, raw: str) -> tuple:
        i = 0
        n = len(raw)
        while i < n and not raw[i].isspace():
            i += 1
        tag = raw[:i].lower()
        attrs: dict = {}
        while i < n:
            while i < n and raw[i].isspace():
                i += 1
            if i >= n:
                break
            name_start = i
            while i < n and raw[i] not in "=\t\n\r " :
                i += 1
            name = raw[name_start:i].lower()
            if not name:
                break
            while i < n and raw[i].isspace():
                i += 1
            if i < n and raw[i] == "=":
                i += 1
                while i < n and raw[i].isspace():
                    i += 1
                if i < n and raw[i] in "\"'":
                    quote = raw[i]
                    i += 1
                    value_start = i
                    while i < n and raw[i] != quote:
                        i += 1
                    attrs[name] = unescape(raw[value_start:i])
                    i += 1
                else:
                    value_start = i
                    while i < n and not raw[i].isspace():
                        i += 1
                    attrs[name] = unescape(raw[value_start:i])
            else:
                attrs[name] = None
        return tag, attrs

    def _consume_raw_text(self, element: HtmlElement, tag: str) -> None:
        """Script/style bodies: raw text until the matching end tag."""
        close = f"</{tag}"
        lower = self.text.lower()
        idx = lower.find(close, self.pos)
        if idx == -1:
            element.append(self.text[self.pos :])
            self.pos = self.length
            return
        element.append(self.text[self.pos : idx])
        end = self.text.find(">", idx)
        self.pos = self.length if end == -1 else end + 1


class ScriptScanner(HtmlParser):
    """Single-pass, zero-copy script extractor for the zgrab hot path.

    Runs the exact tokenizer state machine of :class:`HtmlParser` —
    comment/declaration skipping, quote-aware tag-end search, raw-text
    consumption — but never builds a DOM: the only allocations are the
    ``(src, inline_text)`` pairs themselves. Because mismatched end tags
    never pop the synthetic root and every tokenized start tag lands in
    the tree, the parser emits exactly one script per ``<script>`` start
    tag in encounter order — which is what this scanner emits directly.
    ``scan_scripts(html) == extract_scripts(html)`` for all inputs (the
    differential suite fuzzes this).
    """

    def __init__(self, text: str) -> None:
        super().__init__(text)
        self._lower: Optional[str] = None

    def scan(self) -> list:
        scripts: list = []
        while self.pos < self.length:
            if self.text.startswith("<!--", self.pos):
                self._skip_comment()
            elif self.text.startswith("<!", self.pos) or self.text.startswith("<?", self.pos):
                self._skip_declaration()
            elif self.text.startswith("</", self.pos):
                self._skip_end_tag()
            elif self.text.startswith("<", self.pos) and self._looks_like_tag():
                self._scan_start_tag(scripts)
            else:
                next_tag = self.text.find("<", self.pos + 1)
                self.pos = self.length if next_tag == -1 else next_tag
        return scripts

    def _skip_end_tag(self) -> None:
        end = self.text.find(">", self.pos)
        self.pos = self.length if end == -1 else end + 1

    def _scan_start_tag(self, scripts: list) -> None:
        end = self._find_tag_end(self.pos)
        if end == -1:
            # truncated mid-tag: swallow the rest
            self.pos = self.length
            return
        raw = self.text[self.pos + 1 : end]
        self.pos = end + 1
        self_closing = raw.rstrip().endswith("/")
        if self_closing:
            raw = raw.rstrip()[:-1]
        tag, attrs = self._parse_tag_contents(raw)
        if not tag:
            return
        if tag in RAW_TEXT_ELEMENTS and not self_closing:
            inline = self._consume_raw_text_span(tag)
            if tag == "script":
                scripts.append((attrs.get("src"), inline))
        elif tag == "script":
            scripts.append((attrs.get("src"), ""))

    def _consume_raw_text_span(self, tag: str) -> str:
        close = f"</{tag}"
        if self._lower is None:
            self._lower = self.text.lower()
        idx = self._lower.find(close, self.pos)
        if idx == -1:
            chunk = self.text[self.pos :]
            self.pos = self.length
            return chunk
        chunk = self.text[self.pos : idx]
        end = self.text.find(">", idx)
        self.pos = self.length if end == -1 else end + 1
        return chunk


def parse_html(text: str) -> HtmlDocument:
    """Parse ``text`` into an :class:`HtmlDocument` (never raises)."""
    return HtmlParser(text).parse()


def extract_scripts(html: str) -> list:
    """Convenience: ``(src, inline_text)`` for every script tag in ``html``."""
    return parse_html(html).scripts()


def scan_scripts(html: str) -> list:
    """``extract_scripts`` without the DOM: one traversal, no tree."""
    return ScriptScanner(html).scan()
