"""Declarative script behaviours.

A real crawl executes JavaScript; our headless browser executes *behaviour
objects* attached to script tags instead. Each behaviour receives the
browser's :class:`~repro.web.browser.PageContext` and drives exactly the
observable side effects the paper's instrumentation records: DOM mutations,
subresource fetches (including ``.wasm`` binaries), and WebSocket traffic.

Behaviours used by the synthetic populations:

- :class:`MinerBehavior` — the Coinhive-style web miner: fetch the Wasm,
  open a pool WebSocket, authenticate with the site token, receive jobs,
  (de)obfuscate the PoW blob, and submit shares at a configured hash rate.
- :class:`BenignWasmBehavior` — games/codecs that load Wasm but don't mine
  (the ~4% of Wasm the paper found to be non-mining).
- :class:`DomMutatorBehavior` — widgets/ads that keep mutating the DOM
  (exercises the 2 s quiet-timer page-load heuristic).
- :class:`InjectScriptBehavior` — injects another script tag at runtime;
  miners loaded this way are invisible to static HTML matching, one source
  of the NoCoin false negatives in Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.pool.protocol import (
    JobMessage,
    LoginMessage,
    SubmitMessage,
    decode_message,
    encode_message,
)
from repro.web.html import HtmlElement


class ScriptBehavior:
    """Base class: ``run(ctx)`` is called when the script executes."""

    def run(self, ctx) -> None:  # pragma: no cover - interface
        raise NotImplementedError


def inline_key(inline_text: str) -> str:
    """Behavior-registry key for an inline script.

    The browser resolves behaviours by script ``src``; inline scripts have
    none, so they are keyed by their (hashed) text. Inline scripts carrying
    behaviours must therefore be unique per deployment — the population
    generators embed the site token to guarantee that.
    """
    import hashlib

    digest = hashlib.sha1(inline_text.encode("utf-8")).hexdigest()
    return f"inline::{digest}"


@dataclass(frozen=True)
class ScriptTag:
    """A script on a website.

    ``src``/``inline`` determine the static HTML; ``behavior`` what happens
    when the browser executes it; ``dynamic`` scripts do not appear in the
    static HTML at all — another script injects them at runtime.
    """

    src: Optional[str] = None
    inline: str = ""
    behavior: Optional[ScriptBehavior] = None
    dynamic: bool = False

    def to_element(self) -> HtmlElement:
        attrs: dict = {}
        if self.src is not None:
            attrs["src"] = self.src
        element = HtmlElement("script", attrs)
        if self.inline:
            element.append(self.inline)
        return element


@dataclass
class MinerBehavior(ScriptBehavior):
    """The web miner's lifecycle, as observed from the browser.

    Parameters
    ----------
    wasm_url:
        Where the miner fetches its CryptoNight Wasm from.
    socket_url:
        The pool endpoint (``wss://…``).
    token:
        The site owner's Coinhive-style token sent in the auth frame.
    hash_rate:
        Client hashes/second (paper: 20–100 H/s); with ``throttle`` the
        effective rate drops, as Coinhive's ``setThrottle`` did.
    deobfuscate:
        Callable reverting the pool's blob transform, mirroring the XOR
        countermeasure the paper found "deep within the WebAssembly".
    """

    wasm_url: str
    socket_url: str
    token: str
    hash_rate: float = 40.0
    throttle: float = 0.0
    share_difficulty_hint: int = 16
    deobfuscate: Optional[Callable[[bytes], bytes]] = None
    max_shares: int = 4

    def run(self, ctx) -> None:
        ctx.fetch(self.wasm_url, self._on_wasm, expect_wasm=True)

    def _on_wasm(self, ctx, body: Optional[bytes]) -> None:
        if body is None:
            return  # wasm failed to load: miner silently dies, page unaffected
        channel = ctx.open_websocket(self.socket_url)
        if channel is None:
            return
        state = _MinerSession(self, ctx, channel)
        channel.on_message = state.on_frame
        channel.send(encode_message(LoginMessage(token=self.token)))


@dataclass
class _MinerSession:
    """Per-connection miner state machine."""

    behavior: MinerBehavior
    ctx: object
    channel: object
    shares_submitted: int = 0
    current_job: Optional[JobMessage] = None

    def on_frame(self, payload: str) -> None:
        try:
            message = decode_message(payload)
        except Exception:
            return
        if isinstance(message, JobMessage):
            self.current_job = message
            self._schedule_share()

    def effective_rate(self) -> float:
        rate = self.behavior.hash_rate * (1.0 - self.behavior.throttle)
        return max(rate, 0.1)

    def _schedule_share(self) -> None:
        """Model the nonce search as an exponential wait at the hash rate.

        Expected hashes per share = share difficulty, so the expected time
        to the next share is ``difficulty / rate``; we draw the actual wait
        from the corresponding exponential distribution.
        """
        if self.shares_submitted >= self.behavior.max_shares or self.channel.closed:
            return
        mean_wait = self.behavior.share_difficulty_hint / self.effective_rate()
        wait = self.ctx.rng.expovariate(1.0 / mean_wait) if mean_wait > 0 else 0.01
        self.ctx.loop.call_later(min(wait, 30.0), self._submit_share)

    def _submit_share(self) -> None:
        if self.channel.closed or self.current_job is None:
            return
        blob = bytes.fromhex(self.current_job.blob_hex)
        if self.behavior.deobfuscate is not None:
            blob = self.behavior.deobfuscate(blob)
        nonce = self.ctx.rng.getrandbits(32)
        # The simulated client reports the share; hash correctness is the
        # pool's job to verify (and the capture only needs the frame).
        result_hex = self.ctx.rng.randbytes(32).hex()
        try:
            self.channel.send(
                encode_message(
                    SubmitMessage(job_id=self.current_job.job_id, nonce=nonce, result_hex=result_hex)
                )
            )
        except Exception:
            return
        self.shares_submitted += 1
        self._schedule_share()


@dataclass
class BenignWasmBehavior(ScriptBehavior):
    """Loads and instantiates Wasm with no mining traffic."""

    wasm_url: str
    dom_updates: int = 2

    def run(self, ctx) -> None:
        ctx.fetch(self.wasm_url, self._on_wasm, expect_wasm=True)

    def _on_wasm(self, ctx, body: Optional[bytes]) -> None:
        if body is None:
            return
        for i in range(self.dom_updates):
            ctx.loop.call_later(
                0.1 + 0.2 * i, ctx.append_body_element, HtmlElement("canvas", {"data-frame": str(i)})
            )


@dataclass
class DomMutatorBehavior(ScriptBehavior):
    """Appends elements to the body on a schedule (ads, tickers, widgets)."""

    mutations: tuple = ((0.2, "div"), (0.6, "div"))

    def run(self, ctx) -> None:
        for delay, tag in self.mutations:
            ctx.loop.call_later(delay, ctx.append_body_element, HtmlElement(tag, {"class": "widget"}))


@dataclass
class InjectScriptBehavior(ScriptBehavior):
    """Injects another script tag into the DOM at runtime and executes it.

    This is how ad networks and obfuscated miners load their payloads: the
    static HTML carries only an innocuous loader.
    """

    script: ScriptTag = field(default_factory=ScriptTag)
    delay: float = 0.3

    def run(self, ctx) -> None:
        ctx.loop.call_later(self.delay, self._inject, ctx)

    def _inject(self, ctx) -> None:
        ctx.append_body_element(self.script.to_element())
        if self.script.behavior is not None:
            self.script.behavior.run(ctx)


@dataclass
class ConsentMinerBehavior(ScriptBehavior):
    """Authedmine's opt-in flow: ask first, mine only on consent.

    The behaviour renders a consent dialog into the DOM (observable in the
    final HTML), then draws the visitor's decision from the page RNG with
    ``accept_rate``. Declines leave exactly the signature the paper's
    Table 2 false positives show: an authedmine script tag (NoCoin hit)
    with no Wasm and no pool traffic.
    """

    miner: MinerBehavior = None  # type: ignore[assignment]
    accept_rate: float = 0.25
    decision_delay: float = 0.8

    def run(self, ctx) -> None:
        dialog = HtmlElement(
            "div",
            {"class": "authedmine-consent", "data-state": "asking"},
            ["Allow this site to use your CPU for mining?"],
        )
        ctx.append_body_element(dialog)
        ctx.loop.call_later(self.decision_delay, self._decide, ctx, dialog)

    def _decide(self, ctx, dialog: HtmlElement) -> None:
        accepted = ctx.rng.random() < self.accept_rate
        dialog.attrs["data-state"] = "accepted" if accepted else "declined"
        ctx.mark_dom_mutation()
        if accepted and self.miner is not None:
            self.miner.run(ctx)


@dataclass
class NoOpBehavior(ScriptBehavior):
    """Scripts with no observable side effects (the common case)."""

    def run(self, ctx) -> None:
        return None
