"""The combined page-level detection pipeline.

Ties the two detectors together the way the paper's evaluation does
(Table 2): for every visited page, record

- whether the NoCoin list matches the page's script tags (on static zgrab
  HTML and/or on the browser's post-execution HTML),
- whether any captured Wasm is classified as a miner (signature/feature
  cascade),

and expose the cross-tabulation (blocked-by / missed-by) plus per-family
tallies for Table 1 and Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.classifier import Classification, MinerClassifier
from repro.core.nocoin import FilterList, default_nocoin_list
from repro.web.html import extract_scripts


@dataclass
class DetectionReport:
    """Detection outcome for one page."""

    domain: str
    nocoin_hit: bool = False
    nocoin_rule_labels: tuple = ()
    wasm_present: bool = False
    miner: Optional[Classification] = None
    websocket_urls: tuple = ()
    status: str = "ok"

    @property
    def is_miner(self) -> bool:
        return self.miner is not None and self.miner.is_miner

    @property
    def miner_family(self) -> Optional[str]:
        return self.miner.family if self.is_miner else None

    @property
    def nocoin_false_positive(self) -> bool:
        """NoCoin fired but no mining Wasm ran on the page."""
        return self.nocoin_hit and not self.is_miner

    @property
    def nocoin_false_negative(self) -> bool:
        """A miner ran but NoCoin stayed silent — the paper's headline gap."""
        return self.is_miner and not self.nocoin_hit


@dataclass
class PageDetector:
    """Applies both detectors to crawl artifacts."""

    nocoin: FilterList = field(default_factory=default_nocoin_list)
    classifier: MinerClassifier = field(default_factory=MinerClassifier)

    def detect_static(self, domain: str, html: str) -> DetectionReport:
        """NoCoin-only detection on zgrab HTML (the Section 3.1 pipeline)."""
        report = DetectionReport(domain=domain)
        self._apply_nocoin(report, html)
        return report

    def detect_page(self, domain: str, page_result) -> DetectionReport:
        """Full detection on a browser visit (the Section 3.2 pipeline)."""
        report = DetectionReport(domain=domain, status=page_result.status)
        if page_result.status == "error":
            report.status = "error"
            return report
        self._apply_nocoin(report, page_result.final_html)
        report.websocket_urls = tuple(sorted(page_result.websocket_urls()))
        report.wasm_present = page_result.has_wasm()
        if report.wasm_present:
            report.miner = self.classifier.page_is_miner(
                page_result.wasm_dumps, report.websocket_urls
            )
        return report

    def _apply_nocoin(self, report: DetectionReport, html: str) -> None:
        hits = self.nocoin.match_scripts(extract_scripts(html))
        if hits:
            report.nocoin_hit = True
            report.nocoin_rule_labels = tuple(
                dict.fromkeys(rule.label or rule.raw for rule in hits)
            )


@dataclass
class CrossTabulation:
    """Table 2's numbers for one dataset."""

    nocoin_hits: int = 0
    nocoin_hits_with_miner_wasm: int = 0
    wasm_miner_hits: int = 0
    miners_blocked_by_nocoin: int = 0
    miners_missed_by_nocoin: int = 0

    @property
    def missed_fraction(self) -> float:
        if self.wasm_miner_hits == 0:
            return 0.0
        return self.miners_missed_by_nocoin / self.wasm_miner_hits

    @property
    def detection_factor(self) -> float:
        """How many × more miners the signature method finds than NoCoin∩Wasm.

        The paper's headline: "up to a factor of 5.7 more miners than
        publicly available block lists".
        """
        if self.miners_blocked_by_nocoin == 0:
            return float("inf") if self.wasm_miner_hits else 0.0
        return self.wasm_miner_hits / self.miners_blocked_by_nocoin


def cross_tabulate(reports) -> CrossTabulation:
    """Aggregate per-page reports into Table 2's cross-tabulation."""
    tab = CrossTabulation()
    for report in reports:
        if report.nocoin_hit:
            tab.nocoin_hits += 1
            if report.is_miner:
                tab.nocoin_hits_with_miner_wasm += 1
        if report.is_miner:
            tab.wasm_miner_hits += 1
            if report.nocoin_hit:
                tab.miners_blocked_by_nocoin += 1
            else:
                tab.miners_missed_by_nocoin += 1
    return tab
