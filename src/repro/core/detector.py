"""The combined page-level detection pipeline.

Ties the two detectors together the way the paper's evaluation does
(Table 2): for every visited page, record

- whether the NoCoin list matches the page's script tags (on static zgrab
  HTML and/or on the browser's post-execution HTML),
- whether any captured Wasm is classified as a miner (signature/feature
  cascade),

and expose the cross-tabulation (blocked-by / missed-by) plus per-family
tallies for Table 1 and Figure 2.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from repro.core import fastpath
from repro.core.classifier import Classification, MinerClassifier
from repro.core.nocoin import FilterList, default_nocoin_list
from repro.obs.evidence import Evidence
from repro.web.html import extract_scripts, scan_scripts

# ---------------------------------------------------------------------------
# degradation tiers (the service's load-shedding ladder)
#
# Under overload the cascade sheds its expensive stages first: dynamic
# execution profiling, then the feature classifier (leaving exact
# signature-db lookups), then everything but the NoCoin filter match.
# Tiers are ordered cheapest-last; ``DEGRADATION_TIERS[i+1]`` is strictly
# cheaper (and blinder) than ``DEGRADATION_TIERS[i]``.

TIER_FULL = "full"
TIER_NO_DYNAMIC = "no-dynamic"
TIER_NO_CLASSIFIER = "no-classifier"
TIER_STATIC_ONLY = "static-only"
DEGRADATION_TIERS = (TIER_FULL, TIER_NO_DYNAMIC, TIER_NO_CLASSIFIER, TIER_STATIC_ONLY)


@dataclass
class DetectionReport:
    """Detection outcome for one page."""

    domain: str
    nocoin_hit: bool = False
    nocoin_rule_labels: tuple = ()
    wasm_present: bool = False
    miner: Optional[Classification] = None
    websocket_urls: tuple = ()
    status: str = "ok"
    #: provenance chain (populated only when the detector collects evidence);
    #: excluded from equality so evidence-collecting and bare detections of
    #: the same page compare equal
    evidence: tuple = field(default=(), compare=False)

    @property
    def is_miner(self) -> bool:
        return self.miner is not None and self.miner.is_miner

    @property
    def miner_family(self) -> Optional[str]:
        return self.miner.family if self.is_miner else None

    @property
    def nocoin_false_positive(self) -> bool:
        """NoCoin fired but no mining Wasm ran on the page."""
        return self.nocoin_hit and not self.is_miner

    @property
    def nocoin_false_negative(self) -> bool:
        """A miner ran but NoCoin stayed silent — the paper's headline gap."""
        return self.is_miner and not self.nocoin_hit


@dataclass
class PageDetector:
    """Applies both detectors to crawl artifacts.

    With ``collect_evidence`` set (campaigns enable it when their ``Obs``
    context is on), every report carries an :class:`Evidence` chain citing
    the exact rule/signature/threshold/backend that produced its verdict.
    The default keeps detection evidence-free — the ``NULL_OBS`` hot path
    allocates nothing extra.
    """

    nocoin: FilterList = field(default_factory=default_nocoin_list)
    classifier: MinerClassifier = field(default_factory=MinerClassifier)
    collect_evidence: bool = False

    def detect_static(self, domain: str, html: str) -> DetectionReport:
        """NoCoin-only detection on zgrab HTML (the Section 3.1 pipeline)."""
        report = DetectionReport(domain=domain)
        self._apply_nocoin(report, html)
        return report

    def detect_page(self, domain: str, page_result) -> DetectionReport:
        """Full detection on a browser visit (the Section 3.2 pipeline)."""
        report = DetectionReport(domain=domain, status=page_result.status)
        if page_result.status == "error":
            report.status = "error"
            return report
        self._apply_nocoin(report, page_result.final_html)
        report.websocket_urls = tuple(sorted(page_result.websocket_urls()))
        report.wasm_present = page_result.has_wasm()
        if report.wasm_present:
            if self.collect_evidence:
                report.miner, wasm_evidence = self.classifier.explain_page(
                    page_result.wasm_dumps, report.websocket_urls
                )
                report.evidence = report.evidence + wasm_evidence
            else:
                report.miner = self.classifier.page_is_miner(
                    page_result.wasm_dumps, report.websocket_urls
                )
        if self.collect_evidence and page_result.websocket_frames:
            report.evidence = report.evidence + (
                _websocket_evidence(page_result.websocket_frames),
            )
        return report

    def detect_request(
        self,
        domain: str,
        html: str,
        wasm_dumps=(),
        websocket_urls=(),
        tier: str = TIER_FULL,
        dynamic=None,
    ) -> DetectionReport:
        """Cascade entry point for request/response serving.

        Runs the detector cascade on a client capture (page HTML plus the
        wasm modules and WebSocket endpoints the client observed) at the
        requested degradation ``tier``:

        - ``full``: NoCoin → signature db → classifier → ``dynamic``
          (execution profiling, when a detector is supplied),
        - ``no-dynamic``: drops execution profiling,
        - ``no-classifier``: exact signature-db lookups only — no feature
          extraction, no instruction-mix heuristics,
        - ``static-only``: NoCoin filter match only; submitted wasm is not
          inspected at all (``wasm_present`` stays False).
        """
        if tier not in DEGRADATION_TIERS:
            raise ValueError(f"unknown degradation tier {tier!r}; expected one of {DEGRADATION_TIERS}")
        report = DetectionReport(domain=domain)
        self._apply_nocoin(report, html)
        if tier == TIER_STATIC_ONLY or not wasm_dumps:
            return report
        report.websocket_urls = tuple(sorted(websocket_urls))
        report.wasm_present = True
        if tier == TIER_NO_CLASSIFIER:
            self._signature_only(report, wasm_dumps)
            return report
        if self.collect_evidence:
            report.miner, wasm_evidence = self.classifier.explain_page(
                wasm_dumps, report.websocket_urls
            )
            report.evidence = report.evidence + wasm_evidence
        else:
            report.miner = self.classifier.page_is_miner(
                wasm_dumps, report.websocket_urls
            )
        if tier == TIER_FULL and dynamic is not None and not report.is_miner:
            self._apply_dynamic(report, wasm_dumps, dynamic)
        return report

    def _signature_only(self, report: DetectionReport, wasm_dumps) -> None:
        """Exact signature-db lookups; unknown modules stay unclassified."""
        for dump in wasm_dumps:
            record = self.classifier.database.lookup(dump)
            if record is None or not record.is_miner:
                continue
            report.miner = Classification(
                is_miner=True,
                family=record.family,
                method="signature",
                confidence=1.0,
            )
            if self.collect_evidence:
                _, evidence = self.classifier.explain_wasm(dump, report.websocket_urls)
                report.evidence = report.evidence + (evidence,)
            return

    def _apply_dynamic(self, report: DetectionReport, wasm_dumps, dynamic) -> None:
        """Execution-profile modules the static cascade left unclassified."""
        for dump in wasm_dumps:
            if self.collect_evidence:
                is_miner, evidence = dynamic.explain(dump)
                report.evidence = report.evidence + (evidence,)
            else:
                is_miner = dynamic.is_miner(dump)
            if is_miner:
                report.miner = Classification(
                    is_miner=True,
                    family="unknown-miner",
                    method="dynamic",
                    confidence=0.8,
                )
                return

    def _apply_nocoin(self, report: DetectionReport, html: str) -> None:
        scripts = scan_scripts(html) if fastpath.enabled() else extract_scripts(html)
        if self.collect_evidence:
            matches = self.nocoin.explain_scripts(scripts)
            if matches:
                report.nocoin_hit = True
                report.nocoin_rule_labels = tuple(
                    dict.fromkeys(m.rule.label or m.rule.raw for m in matches)
                )
                report.evidence = report.evidence + tuple(
                    _nocoin_evidence(match) for match in matches
                )
            return
        hits = self.nocoin.match_scripts(scripts)
        if hits:
            report.nocoin_hit = True
            report.nocoin_rule_labels = tuple(
                dict.fromkeys(rule.label or rule.raw for rule in hits)
            )


def _nocoin_evidence(match) -> Evidence:
    """Cite the exact filter rule (source, line, text) and matched span."""
    rule = match.rule
    return Evidence(
        detector="nocoin",
        verdict="hit",
        summary=(
            f"rule {rule.raw!r} ({rule.source or 'unsourced'}:{rule.line_number}) "
            f"matched the page's script {match.where}"
        ),
        details=(
            ("rule", rule.raw),
            ("source", rule.source),
            ("line_number", str(rule.line_number)),
            ("label", rule.label),
            ("where", match.where),
            ("subject", match.subject),
            ("matched", match.matched),
        ),
    )


def _websocket_evidence(frames) -> Evidence:
    """Cite backend endpoints and their job/submit message counts.

    Pool-protocol frames are JSON with a ``type`` field; received ``job``
    frames are the pool handing out work and sent ``submit`` frames are
    the page returning shares — the dynamic fingerprint of active mining.
    """
    per_endpoint: dict = {}
    for frame in frames:
        jobs, submits = per_endpoint.get(frame.url, (0, 0))
        try:
            kind = json.loads(frame.payload).get("type", "")
        except (ValueError, AttributeError):
            kind = ""
        if frame.direction == "received" and kind == "job":
            jobs += 1
        elif frame.direction == "sent" and kind == "submit":
            submits += 1
        per_endpoint[frame.url] = (jobs, submits)
    endpoints = sorted(per_endpoint)
    total_jobs = sum(jobs for jobs, _ in per_endpoint.values())
    total_submits = sum(submits for _, submits in per_endpoint.values())
    return Evidence(
        detector="websocket",
        verdict="active" if total_submits else "observed",
        summary=(
            f"{len(endpoints)} backend endpoint(s): {total_jobs} job / "
            f"{total_submits} submit message(s)"
        ),
        details=tuple(
            (url, f"jobs={per_endpoint[url][0]} submits={per_endpoint[url][1]}")
            for url in endpoints
        ),
    )


@dataclass
class CrossTabulation:
    """Table 2's numbers for one dataset."""

    nocoin_hits: int = 0
    nocoin_hits_with_miner_wasm: int = 0
    wasm_miner_hits: int = 0
    miners_blocked_by_nocoin: int = 0
    miners_missed_by_nocoin: int = 0

    @property
    def missed_fraction(self) -> float:
        if self.wasm_miner_hits == 0:
            return 0.0
        return self.miners_missed_by_nocoin / self.wasm_miner_hits

    @property
    def detection_factor(self) -> float:
        """How many × more miners the signature method finds than NoCoin∩Wasm.

        The paper's headline: "up to a factor of 5.7 more miners than
        publicly available block lists".
        """
        if self.miners_blocked_by_nocoin == 0:
            return float("inf") if self.wasm_miner_hits else 0.0
        return self.wasm_miner_hits / self.miners_blocked_by_nocoin


def cross_tabulate(reports) -> CrossTabulation:
    """Aggregate per-page reports into Table 2's cross-tabulation."""
    tab = CrossTabulation()
    for report in reports:
        if report.nocoin_hit:
            tab.nocoin_hits += 1
            if report.is_miner:
                tab.nocoin_hits_with_miner_wasm += 1
        if report.is_miner:
            tab.wasm_miner_hits += 1
            if report.nocoin_hit:
                tab.miners_blocked_by_nocoin += 1
            else:
                tab.miners_missed_by_nocoin += 1
    return tab
