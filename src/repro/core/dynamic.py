"""Execution-based miner detection (extension of the paper's method).

The paper's instruction-mix features are *static*: they count XOR/shift/
load instructions in the binary. A miner author can game static counts by
padding modules with float-heavy dead code — the counts change, the
executed behaviour does not. This module runs the module in the
:mod:`repro.wasm.interp` interpreter and counts what actually executes,
which is robust against dead-code padding (and is how later academic work,
e.g. MineSweeper's CPU-cache profiling, hardened the idea).

``benchmarks/bench_ext_dynamic_detection.py`` compares static and dynamic
classification on a dead-code-padded corpus.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.features import WasmFeatures
from repro.wasm import opcodes
from repro.wasm.decoder import WasmDecodeError, decode_module
from repro.wasm.interp import FuelExhausted, Instance, WasmTrap
from repro.wasm.types import Instr, Module


@dataclass
class _CountingInstance(Instance):
    """An interpreter instance that tallies executed instruction groups."""

    counts: dict = field(default_factory=lambda: {
        "total": 0, "xor": 0, "shift": 0, "rotate": 0,
        "load": 0, "store": 0, "float": 0,
    })

    def _execute_simple(self, instr: Instr, stack: list, locals_: list) -> None:
        counts = self.counts
        counts["total"] += 1
        name = instr.name
        if name in opcodes.XOR_OPS:
            counts["xor"] += 1
        elif name in opcodes.SHIFT_OPS:
            counts["shift"] += 1
        elif name in opcodes.ROTATE_OPS:
            counts["rotate"] += 1
        elif name in opcodes.LOAD_OPS:
            counts["load"] += 1
        elif name in opcodes.STORE_OPS:
            counts["store"] += 1
        elif name in opcodes.FLOAT_OPS:
            counts["float"] += 1
        super()._execute_simple(instr, stack, locals_)


@dataclass(frozen=True)
class DynamicProfile:
    """Executed-instruction profile of one module."""

    executed: int
    xor_density: float
    shift_density: float
    rotate_count: int
    load_density: float
    float_density: float
    memory_pages: int
    completed: bool  # False when every export trapped/exhausted fuel


def profile_execution(
    module_or_bytes, iterations: int = 64, fuel: int = 400_000
) -> DynamicProfile:
    """Run every exported function and profile what executes.

    ``iterations`` seeds the first i32 parameter — our corpus kernels (and
    real mining kernels) take a work-count-like argument, so this drives
    the hot loop. Traps and fuel exhaustion are tolerated per export; a
    fuel-exhausted kernel still contributes its executed counts (an
    infinite hashing loop is itself a signal).
    """
    if isinstance(module_or_bytes, (bytes, bytearray)):
        module = decode_module(bytes(module_or_bytes))
    elif isinstance(module_or_bytes, Module):
        module = module_or_bytes
    else:
        raise TypeError(f"expected Module or bytes, got {type(module_or_bytes).__name__}")

    instance = _CountingInstance(module, fuel=fuel)
    ran_any = False
    for export in module.exports:
        if export.kind != 0:
            continue
        functype = instance._type_of(export.index)
        args = []
        for i, _param in enumerate(functype.params):
            args.append(iterations if i == 0 else 7 + i)
        try:
            instance.invoke_index(export.index, *args)
            ran_any = True
        except FuelExhausted:
            ran_any = True
        except WasmTrap:
            continue

    counts = instance.counts
    total = max(1, counts["total"])
    memory_pages = module.memories[0].minimum if module.memories else 0
    return DynamicProfile(
        executed=counts["total"],
        xor_density=counts["xor"] / total,
        shift_density=counts["shift"] / total,
        rotate_count=counts["rotate"],
        load_density=counts["load"] / total,
        float_density=counts["float"] / total,
        memory_pages=memory_pages,
        completed=ran_any,
    )


@dataclass
class DynamicMinerDetector:
    """Classifies by executed instruction mix.

    Thresholds parallel :class:`~repro.core.classifier.MinerClassifier`'s
    static ones but apply to the executed stream, where the miner's hot
    loop dominates regardless of what dead code surrounds it.
    """

    min_bitop_density: float = 0.08
    max_float_density: float = 0.05
    min_memory_pages: int = 16
    min_rotate_count: int = 4
    min_executed: int = 200

    def is_miner(self, module_or_bytes) -> bool:
        try:
            profile = profile_execution(module_or_bytes)
        except (WasmDecodeError, WasmTrap):
            return False
        if not profile.completed or profile.executed < self.min_executed:
            return False
        bitops = profile.xor_density + profile.shift_density
        return (
            bitops >= self.min_bitop_density
            and profile.float_density <= self.max_float_density
            and profile.memory_pages >= self.min_memory_pages
            and profile.rotate_count >= self.min_rotate_count
        )

    def explain(self, module_or_bytes) -> tuple:
        """``(is_miner, evidence)``: each executed-stream feature value
        cited against the threshold it was tested on."""
        from repro.obs.evidence import Evidence

        try:
            profile = profile_execution(module_or_bytes)
        except (WasmDecodeError, WasmTrap) as exc:
            return False, Evidence(
                detector="dynamic",
                verdict="invalid",
                summary=f"module failed to execute ({type(exc).__name__})",
                details=(("error", type(exc).__name__),),
            )
        bitops = profile.xor_density + profile.shift_density
        verdict = (
            profile.completed
            and profile.executed >= self.min_executed
            and bitops >= self.min_bitop_density
            and profile.float_density <= self.max_float_density
            and profile.memory_pages >= self.min_memory_pages
            and profile.rotate_count >= self.min_rotate_count
        )
        checks = (
            (
                "executed",
                f"{profile.executed} (>= {self.min_executed} "
                f"{'ok' if profile.executed >= self.min_executed else 'FAIL'})",
            ),
            ("completed", str(profile.completed)),
            (
                "executed_bitop_density",
                f"{bitops:.4f} (>= {self.min_bitop_density} "
                f"{'ok' if bitops >= self.min_bitop_density else 'FAIL'})",
            ),
            (
                "executed_float_density",
                f"{profile.float_density:.4f} (<= {self.max_float_density} "
                f"{'ok' if profile.float_density <= self.max_float_density else 'FAIL'})",
            ),
            (
                "memory_pages",
                f"{profile.memory_pages} (>= {self.min_memory_pages} "
                f"{'ok' if profile.memory_pages >= self.min_memory_pages else 'FAIL'})",
            ),
            (
                "executed_rotate_count",
                f"{profile.rotate_count} (>= {self.min_rotate_count} "
                f"{'ok' if profile.rotate_count >= self.min_rotate_count else 'FAIL'})",
            ),
        )
        return verdict, Evidence(
            detector="dynamic",
            verdict="miner" if verdict else "benign",
            summary=(
                "executed instruction stream "
                + ("matches" if verdict else "does not match")
                + " the CryptoNight profile"
            ),
            details=checks,
        )


def pad_with_dead_code(wasm_bytes: bytes, float_functions: int = 6) -> bytes:
    """Adversarial transform: append never-called float-heavy functions.

    Inflates the module's *static* float counts (confusing a static
    instruction-mix classifier) while executed behaviour is unchanged —
    the padded functions are not exported and never called.
    """
    from repro.wasm.encoder import encode_module
    from repro.wasm.types import CodeEntry, FuncType, ValType

    module = decode_module(wasm_bytes)
    type_index = len(module.types)
    module.types = list(module.types) + [FuncType((), (ValType.F64,))]
    for i in range(float_functions):
        body = []
        for j in range(120):
            body.append(Instr("f64.const", (float(i + 1),)))
            body.append(Instr("f64.const", (float(j + 2),)))
            body.append(Instr("f64.mul"))
            body.append(Instr("drop"))
        body.append(Instr("f64.const", (0.0,)))
        body.append(Instr("end"))
        module.func_type_indices.append(type_index)
        module.codes.append(CodeEntry(body=body))
    return encode_module(module)
