"""NoCoin filter-list engine (the paper's baseline detector).

Implements the Adblock Plus rule subset the NoCoin list [hoshsadiq/
adblock-nocoin-list] actually uses:

- ``||host^`` domain-anchored rules,
- plain substring rules with ``*`` wildcards and ``^`` separators,
- ``/regex/`` rules,
- ``@@`` exception rules,
- ``$`` options (``script``, ``domain=``, ``third-party`` — parsed, with
  ``script`` honored and the rest recorded),
- ``!`` comments and ``[Adblock Plus]`` headers.

The engine matches script-src URLs; :meth:`FilterList.match_text` applies
the same patterns to inline script text, reproducing how the paper ran the
list over extracted ``<script>`` tags. The bundled default list mirrors the
2018 NoCoin list's character — including overbroad rules (``cpmstar``) that
the paper identified as false-positive sources.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

from repro.core import fastpath


@dataclass(frozen=True)
class FilterRule:
    """One parsed filter rule."""

    raw: str
    pattern: str
    is_exception: bool = False
    domain_anchor: bool = False  # ||…
    regex: Optional[str] = None
    options: tuple = ()
    label: str = ""  # human-readable miner family tag for reporting
    #: provenance: which list this rule came from and its 1-based line
    #: number there, so a hit can cite the exact list line that fired
    source: str = ""
    line_number: int = 0

    def to_line(self) -> str:
        """Reconstruct the list line this rule parsed from.

        ``parse_rule(rule.to_line())`` returns an equal rule for every
        rule ``parse_rule`` can produce (the round-trip property pinned
        in the test suite) — ``raw`` holds the stripped body, so the
        ``@@`` / ``||`` / ``$options`` decorations are re-applied here.
        """
        body = f"/{self.regex}/" if self.regex is not None else (
            ("||" if self.domain_anchor else "") + self.pattern
        )
        options = "$" + ",".join(self.options) if self.options else ""
        return ("@@" if self.is_exception else "") + body + options

    def compile(self) -> "CompiledRule":
        if self.regex is not None:
            return CompiledRule(self, re.compile(self.regex, re.IGNORECASE))
        # translate Adblock wildcards into a regex:
        #   * -> .*       ^ -> separator ([^\w.%-] or end)
        out = []
        for char in self.pattern:
            if char == "*":
                out.append(".*")
            elif char == "^":
                out.append(r"(?:[^\w.%-]|$)")
            else:
                out.append(re.escape(char))
        body = "".join(out)
        if self.domain_anchor:
            # ||host matches at a domain-label boundary after the scheme
            body = r"^[a-z]+://(?:[\w-]+\.)*" + body
        return CompiledRule(self, re.compile(body, re.IGNORECASE))


@dataclass
class CompiledRule:
    """A rule with its compiled regex."""

    rule: FilterRule
    matcher: re.Pattern

    def matches_url(self, url: str) -> bool:
        return bool(self.matcher.search(url))

    def matches_text(self, text: str, lowered: Optional[str] = None) -> bool:
        # inline text has no scheme; strip the URL anchor for text scans.
        # ``lowered`` lets list-level scans lower the document once
        # instead of once per rule.
        if self.rule.domain_anchor:
            if lowered is None:
                lowered = text.lower()
            return self.rule.pattern.split("^")[0].lower() in lowered
        return bool(self.matcher.search(text))

    def find_url(self, url: str) -> Optional[str]:
        """The matched URL span, or None — the explainable ``matches_url``."""
        found = self.matcher.search(url)
        return found.group(0) if found is not None else None

    def find_text(self, text: str, lowered: Optional[str] = None) -> Optional[str]:
        """The matched text span, or None — the explainable ``matches_text``."""
        if self.rule.domain_anchor:
            needle = self.rule.pattern.split("^")[0].lower()
            if lowered is None:
                lowered = text.lower()
            at = lowered.find(needle)
            return text[at : at + len(needle)] if at >= 0 else None
        found = self.matcher.search(text)
        return found.group(0) if found is not None else None


@dataclass(frozen=True)
class FilterMatch:
    """One explained filter hit: the rule plus what it matched.

    ``where`` is ``"url"`` or ``"text"``; ``subject`` is the script src or
    (truncated) inline text the rule was applied to; ``matched`` is the
    exact span the rule's pattern covered.
    """

    rule: FilterRule
    where: str
    subject: str
    matched: str


class FilterListError(ValueError):
    """Raised for unparseable filter rules."""


def parse_rule(
    line: str, label: str = "", source: str = "", line_number: int = 0
) -> Optional[FilterRule]:
    """Parse one list line; returns None for comments/blank/header lines.

    ``source``/``line_number`` record where the rule came from — evidence
    records cite them so a hit names the exact list line that fired.
    """
    line = line.strip()
    if not line or line.startswith("!") or (line.startswith("[") and line.endswith("]")):
        return None
    is_exception = line.startswith("@@")
    if is_exception:
        line = line[2:]
    options: tuple = ()
    if "$" in line and not line.startswith("/"):
        line, _, opts = line.rpartition("$")
        options = tuple(opt.strip() for opt in opts.split(","))
    if line.startswith("/") and line.endswith("/") and len(line) > 2:
        body = line[1:-1]
        try:
            re.compile(body, re.IGNORECASE)
        except re.error as exc:
            raise FilterListError(f"bad regex rule {line!r}: {exc}")
        return FilterRule(
            raw=line,
            pattern="",
            regex=body,
            is_exception=is_exception,
            options=options,
            label=label,
            source=source,
            line_number=line_number,
        )
    domain_anchor = line.startswith("||")
    if domain_anchor:
        line = line[2:]
    if not line:
        raise FilterListError("empty rule body")
    return FilterRule(
        raw=line,
        pattern=line,
        is_exception=is_exception,
        domain_anchor=domain_anchor,
        options=options,
        label=label,
        source=source,
        line_number=line_number,
    )


@dataclass
class FilterList:
    """A compiled filter list with URL and inline-text matching."""

    rules: list = field(default_factory=list)
    _compiled: list = field(default_factory=list, repr=False)
    _exceptions: list = field(default_factory=list, repr=False)
    #: lazily built combined automaton (repro.core.fastpath); invalidated
    #: by add() so it always reflects the current rule set
    _fastset: Optional[object] = field(default=None, repr=False, compare=False)

    @classmethod
    def from_lines(
        cls, lines, labels: Optional[dict] = None, source: str = ""
    ) -> "FilterList":
        """Build from raw list lines; ``labels`` maps raw line → family tag.

        Each parsed rule carries ``(source, line_number)`` provenance —
        line numbers are 1-based over ``lines`` including comments and
        blanks, matching how the list file reads.
        """
        instance = cls()
        for line_number, line in enumerate(lines, start=1):
            label = (labels or {}).get(line.strip(), "")
            rule = parse_rule(line, label=label, source=source, line_number=line_number)
            if rule is not None:
                instance.add(rule)
        return instance

    def add(self, rule: FilterRule) -> None:
        self.rules.append(rule)
        compiled = rule.compile()
        if rule.is_exception:
            self._exceptions.append(compiled)
        else:
            self._compiled.append(compiled)
        self._fastset = None

    def _fast(self) -> "fastpath.CompiledFilterSet":
        if self._fastset is None:
            self._fastset = fastpath.CompiledFilterSet(
                self._compiled, self._exceptions
            )
        return self._fastset

    def warm(self) -> "FilterList":
        """Pre-build the combined automaton (service bundles do this at
        packaging time so a hot swap never pays compile cost mid-request)."""
        self._fast()
        return self

    def match_url(self, url: str) -> Optional[FilterRule]:
        """First matching (non-excepted) rule for a script URL, or None.

        ``$script`` options need no handling here: callers only pass
        script-src URLs, which is exactly the resource type those rules
        target.
        """
        if fastpath.enabled():
            found = self._fast().find_url(url)
            if found is None:
                return None
            if self._fast().any_exception_url(url):
                return None
            return found[0].rule
        for compiled in self._compiled:
            if compiled.matches_url(url):
                if any(exc.matches_url(url) for exc in self._exceptions):
                    return None
                return compiled.rule
        return None

    def match_text(self, text: str) -> Optional[FilterRule]:
        """First rule whose pattern occurs in inline script text, or None."""
        if not text:
            return None
        if fastpath.enabled():
            found = self._fast().find_text(text)
            return found[0].rule if found is not None else None
        lowered = text.lower()
        for compiled in self._compiled:
            if compiled.matches_text(text, lowered):
                return compiled.rule
        return None

    def match_scripts(self, scripts) -> list:
        """Match ``(src, inline)`` script pairs; returns matching rules."""
        hits = []
        for src, inline in scripts:
            rule = None
            if src:
                rule = self.match_url(src)
            if rule is None and inline:
                rule = self.match_text(inline)
            if rule is not None:
                hits.append(rule)
        return hits

    # -- explained matching (evidence provenance) --------------------------------

    def explain_url(self, url: str) -> Optional[FilterMatch]:
        """Like :meth:`match_url`, but returns the rule *and* matched span."""
        if fastpath.enabled():
            found = self._fast().find_url(url)
            if found is None:
                return None
            if self._fast().any_exception_url(url):
                return None
            compiled, matched = found
            return FilterMatch(
                rule=compiled.rule, where="url", subject=url, matched=matched
            )
        for compiled in self._compiled:
            matched = compiled.find_url(url)
            if matched is not None:
                if any(exc.matches_url(url) for exc in self._exceptions):
                    return None
                return FilterMatch(
                    rule=compiled.rule, where="url", subject=url, matched=matched
                )
        return None

    def explain_text(self, text: str) -> Optional[FilterMatch]:
        """Like :meth:`match_text`, but returns the rule and matched span."""
        if not text:
            return None
        if fastpath.enabled():
            found = self._fast().find_text(text)
            if found is None:
                return None
            compiled, matched = found
            subject = text if len(text) <= 120 else text[:117] + "..."
            return FilterMatch(
                rule=compiled.rule, where="text", subject=subject, matched=matched
            )
        lowered = text.lower()
        for compiled in self._compiled:
            matched = compiled.find_text(text, lowered)
            if matched is not None:
                subject = text if len(text) <= 120 else text[:117] + "..."
                return FilterMatch(
                    rule=compiled.rule, where="text", subject=subject, matched=matched
                )
        return None

    def explain_scripts(self, scripts) -> list:
        """Explained variant of :meth:`match_scripts`: one
        :class:`FilterMatch` per hit, same rule-selection order."""
        matches = []
        for src, inline in scripts:
            match = None
            if src:
                match = self.explain_url(src)
            if match is None and inline:
                match = self.explain_text(inline)
            if match is not None:
                matches.append(match)
        return matches

    def __len__(self) -> int:
        return len(self.rules)


#: The bundled NoCoin-style list. Labels tag each rule with the miner
#: family it targets so Figure 2's per-script shares can be reported.
_DEFAULT_RULES: tuple = (
    ("||coinhive.com^", "coinhive"),
    ("||coin-hive.com^", "coinhive"),
    ("coinhive.min.js", "coinhive"),
    ("||authedmine.com^", "authedmine"),
    ("authedmine.min.js", "authedmine"),
    ("||crypto-loot.com^", "cryptoloot"),
    ("crypto-loot.min.js", "cryptoloot"),
    ("||cryptaloot.pro^", "cryptoloot"),
    ("wp-monero-miner*.js", "wp-monero"),
    ("||wp-monero-miner.de^", "wp-monero"),
    # The overbroad gaming-ad-network rule the paper calls out as a false
    # positive: cpmstar serves ads, not miners.
    ("||cpmstar.com^", "cpmstar"),
    ("cpmstar.js", "cpmstar"),
    ("||jsminer.example^", "jsminer"),
    ("jsminer.js", "jsminer"),
    ("||webminepool.com^", "webminepool"),
    ("||coinerra.com^", "coinerra"),
    ("||minero.cc^", "minero"),
    ("||papoto.com^", "papoto"),
    ("||coinblind.com^", "coinblind"),
    ("||monerominer.rocks^", "monerominer"),
    ("/cryptonight\\.wasm/", "generic-cryptonight"),
    ("coinhive.com/lib", "coinhive"),
)


#: Source label the bundled list's rules cite in evidence records.
DEFAULT_LIST_SOURCE = "bundled-nocoin"


def default_nocoin_list() -> FilterList:
    """The reproduction's bundled NoCoin-style list."""
    labels = {raw: label for raw, label in _DEFAULT_RULES}
    return FilterList.from_lines(
        [raw for raw, _ in _DEFAULT_RULES], labels=labels, source=DEFAULT_LIST_SOURCE
    )
