"""Wasm fingerprinting (the paper's detection contribution).

    "We build signatures from the Wasm code by combining (in a strict
    order) and then hashing the contained functions with SHA256."
    — Section 3.2

A signature is therefore order-sensitive over the raw function bodies of
the code section. The :class:`SignatureDatabase` plays the role of the
paper's hand-built collection of ~160 categorized assemblies: it maps
signatures to family labels and answers lookups during crawls.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Optional

from repro.core import fastpath
from repro.wasm.decoder import WasmDecodeError, function_body_bytes


def digest_bodies(bodies) -> str:
    """SHA-256 over length-prefixed function bodies — the digest both the
    ordered and unordered signatures (and their memoized fastpath
    variants) are defined in terms of."""
    digest = hashlib.sha256()
    for body in bodies:
        digest.update(len(body).to_bytes(4, "little"))
        digest.update(body)
    return digest.hexdigest()


def wasm_signature(wasm_bytes: bytes) -> str:
    """SHA-256 signature over the module's function bodies in strict order.

    Raises :class:`~repro.wasm.decoder.WasmDecodeError` for non-wasm input.
    """
    return digest_bodies(function_body_bytes(wasm_bytes))


def unordered_signature(wasm_bytes: bytes) -> str:
    """Ablation variant: hash the *sorted* set of function bodies.

    Robust to function reordering (a cheap obfuscation), at the cost of a
    coarser identity. Compared against the paper's ordered signature in
    ``benchmarks/bench_ablation_signatures.py``.
    """
    return digest_bodies(sorted(function_body_bytes(wasm_bytes)))


def whole_module_signature(wasm_bytes: bytes) -> str:
    """Ablation variant: hash the entire binary.

    Breaks on any metadata change (name section, exports) even when the
    code is identical — the failure mode that motivates function-body
    hashing.
    """
    return hashlib.sha256(wasm_bytes).hexdigest()


@dataclass(frozen=True)
class SignatureRecord:
    """One catalogued assembly."""

    signature: str
    family: str
    is_miner: bool
    variant: int = 0
    note: str = ""


@dataclass
class SignatureDatabase:
    """The curated signature → family catalogue.

    Mirrors the paper's workflow: Wasm dumps are inspected (here: generated
    with known ground truth), categorized, and recorded; crawls then look
    captured modules up by signature.
    """

    records: dict = field(default_factory=dict)

    def add(self, record: SignatureRecord) -> None:
        existing = self.records.get(record.signature)
        if existing is not None and existing.family != record.family:
            raise ValueError(
                f"signature collision: {record.signature[:12]} is both "
                f"{existing.family} and {record.family}"
            )
        self.records[record.signature] = record

    def add_module(self, wasm_bytes: bytes, family: str, is_miner: bool, variant: int = 0, note: str = "") -> SignatureRecord:
        record = SignatureRecord(
            signature=wasm_signature(wasm_bytes),
            family=family,
            is_miner=is_miner,
            variant=variant,
            note=note,
        )
        self.add(record)
        return record

    def lookup(self, wasm_bytes: bytes) -> Optional[SignatureRecord]:
        """Find the record for a captured module, or None if unknown."""
        try:
            if fastpath.enabled():
                signature = fastpath.shared_cache().ordered_signature(wasm_bytes)
            else:
                signature = wasm_signature(wasm_bytes)
        except WasmDecodeError:
            return None
        return self.records.get(signature)

    def lookup_signature(self, signature: str) -> Optional[SignatureRecord]:
        return self.records.get(signature)

    def families(self) -> set:
        return {record.family for record in self.records.values()}

    def miner_signatures(self) -> set:
        return {sig for sig, rec in self.records.items() if rec.is_miner}

    def __len__(self) -> int:
        return len(self.records)

    # -- persistence -------------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            [
                {
                    "signature": rec.signature,
                    "family": rec.family,
                    "is_miner": rec.is_miner,
                    "variant": rec.variant,
                    "note": rec.note,
                }
                for rec in sorted(self.records.values(), key=lambda r: r.signature)
            ],
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "SignatureDatabase":
        database = cls()
        for item in json.loads(text):
            database.add(SignatureRecord(**item))
        return database


def build_reference_database(corpus_builder=None) -> SignatureDatabase:
    """Catalogue the full synthetic corpus (the paper's ~160 assemblies)."""
    from repro.wasm.builder import WasmCorpusBuilder, all_blueprints

    builder = corpus_builder if corpus_builder is not None else WasmCorpusBuilder()
    database = SignatureDatabase()
    for blueprint in all_blueprints():
        profile = blueprint.profile()
        database.add_module(
            builder.build(blueprint),
            family=profile.name,
            is_miner=profile.is_miner,
            variant=blueprint.variant,
        )
    return database
