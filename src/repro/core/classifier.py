"""Miner classification.

Decision cascade, mirroring the paper's manual workflow made mechanical:

1. **Signature lookup** — a known assembly is classified by its database
   record (the common case once the catalogue is built).
2. **Name hints** — unknown modules exporting ``cryptonight``/``keccak``/
   …-flavoured names are miners of family "unknown" (the paper's
   "function name hinting at the hash function itself").
3. **Instruction-mix heuristic** — unknown, stripped modules: high
   XOR+shift+rotate density with near-zero float use and a scratchpad-sized
   memory is the CryptoNight profile.
4. **WebSocket-backend matching** — the paper categorized several
   assemblies "through their Websocket communication backend"; pages whose
   Wasm stays unknown but which talk to a known mining backend are
   classified by that backend (and genuinely unknown backends become the
   paper's ``UnknownWSS`` class).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.features import WasmFeatures, extract_features
from repro.core.signatures import SignatureDatabase
from repro.wasm.decoder import WasmDecodeError

#: WebSocket URL substrings → family, the "communication backend" feature.
KNOWN_BACKENDS: tuple = (
    ("coinhive.com", "coinhive"),
    ("authedmine.com", "authedmine"),
    ("crypto-loot.com", "cryptoloot"),
    ("skencituer.com", "skencituer"),
    ("web.stati.bid", "web.stati.bid"),
    ("freecontent.date", "freecontent.date"),
    ("webminepool.com", "notgiven688"),
    ("wp-monero-miner.de", "wp-monero"),
    ("jsminer.example", "jsminer"),
)


@dataclass(frozen=True)
class Classification:
    """Outcome of classifying one Wasm dump (plus page context)."""

    is_miner: bool
    family: str
    method: str  # signature | name-hint | instruction-mix | backend | none
    confidence: float
    features: Optional[WasmFeatures] = None


@dataclass
class MinerClassifier:
    """The cascade classifier.

    Thresholds follow the CryptoNight workload profile: the real miner
    kernels are integer-only (float density ≈ 0), bit-operation dense, and
    need a multi-page scratchpad. ``compression``-style code is the hard
    negative: non-trivial XOR/shift density but small memory and no rotates.
    """

    database: SignatureDatabase = field(default_factory=SignatureDatabase)
    min_bitop_density: float = 0.09
    max_float_density: float = 0.02
    min_memory_pages: int = 16
    min_rotate_count: int = 4

    def classify_wasm(self, wasm_bytes: bytes, websocket_urls: tuple = ()) -> Classification:
        """Classify one captured module; ``websocket_urls`` give page context."""
        record = self.database.lookup(wasm_bytes)
        if record is not None:
            return Classification(
                is_miner=record.is_miner,
                family=record.family,
                method="signature",
                confidence=1.0,
            )
        try:
            features = extract_features(wasm_bytes)
        except WasmDecodeError:
            return Classification(False, "invalid", "none", 0.0)

        if features.has_hash_names():
            return Classification(
                True,
                self._family_from_backends(websocket_urls) or "unknown-miner",
                "name-hint",
                0.9,
                features,
            )

        if self._mix_says_miner(features):
            backend_family = self._family_from_backends(websocket_urls)
            if backend_family is not None:
                return Classification(True, backend_family, "backend", 0.85, features)
            if websocket_urls:
                return Classification(True, "unknown-wss", "instruction-mix", 0.75, features)
            return Classification(True, "unknown-miner", "instruction-mix", 0.6, features)

        return Classification(False, "benign", "instruction-mix", 0.7, features)

    def classify_page(self, wasm_dumps, websocket_urls: tuple = ()) -> list:
        """Classify every Wasm dump of one page visit."""
        return [self.classify_wasm(dump, websocket_urls) for dump in wasm_dumps]

    def page_is_miner(self, wasm_dumps, websocket_urls: tuple = ()) -> Optional[Classification]:
        """The first miner classification on a page, or None."""
        for classification in self.classify_page(wasm_dumps, websocket_urls):
            if classification.is_miner:
                return classification
        return None

    # -- internals -----------------------------------------------------------------

    def _mix_says_miner(self, features: WasmFeatures) -> bool:
        return (
            features.bitop_density >= self.min_bitop_density
            and features.float_density <= self.max_float_density
            and features.memory_pages >= self.min_memory_pages
            and features.rotate_count >= self.min_rotate_count
        )

    @staticmethod
    def _family_from_backends(websocket_urls) -> Optional[str]:
        for url in websocket_urls:
            for needle, family in KNOWN_BACKENDS:
                if needle in url:
                    return family
        return None
