"""Miner classification.

Decision cascade, mirroring the paper's manual workflow made mechanical:

1. **Signature lookup** — a known assembly is classified by its database
   record (the common case once the catalogue is built).
2. **Name hints** — unknown modules exporting ``cryptonight``/``keccak``/
   …-flavoured names are miners of family "unknown" (the paper's
   "function name hinting at the hash function itself").
3. **Instruction-mix heuristic** — unknown, stripped modules: high
   XOR+shift+rotate density with near-zero float use and a scratchpad-sized
   memory is the CryptoNight profile.
4. **WebSocket-backend matching** — the paper categorized several
   assemblies "through their Websocket communication backend"; pages whose
   Wasm stays unknown but which talk to a known mining backend are
   classified by that backend (and genuinely unknown backends become the
   paper's ``UnknownWSS`` class).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core import fastpath
from repro.core.features import WasmFeatures, extract_features
from repro.core.signatures import SignatureDatabase, wasm_signature
from repro.obs.evidence import Evidence
from repro.wasm.decoder import WasmDecodeError, function_body_bytes

#: WebSocket URL substrings → family, the "communication backend" feature.
KNOWN_BACKENDS: tuple = (
    ("coinhive.com", "coinhive"),
    ("authedmine.com", "authedmine"),
    ("crypto-loot.com", "cryptoloot"),
    ("skencituer.com", "skencituer"),
    ("web.stati.bid", "web.stati.bid"),
    ("freecontent.date", "freecontent.date"),
    ("webminepool.com", "notgiven688"),
    ("wp-monero-miner.de", "wp-monero"),
    ("jsminer.example", "jsminer"),
)


@dataclass(frozen=True)
class Classification:
    """Outcome of classifying one Wasm dump (plus page context)."""

    is_miner: bool
    family: str
    method: str  # signature | name-hint | instruction-mix | backend | none
    confidence: float
    features: Optional[WasmFeatures] = None


@dataclass
class MinerClassifier:
    """The cascade classifier.

    Thresholds follow the CryptoNight workload profile: the real miner
    kernels are integer-only (float density ≈ 0), bit-operation dense, and
    need a multi-page scratchpad. ``compression``-style code is the hard
    negative: non-trivial XOR/shift density but small memory and no rotates.
    """

    database: SignatureDatabase = field(default_factory=SignatureDatabase)
    min_bitop_density: float = 0.09
    max_float_density: float = 0.02
    min_memory_pages: int = 16
    min_rotate_count: int = 4

    def classify_wasm(self, wasm_bytes: bytes, websocket_urls: tuple = ()) -> Classification:
        """Classify one captured module; ``websocket_urls`` give page context."""
        record = self.database.lookup(wasm_bytes)
        if record is not None:
            return Classification(
                is_miner=record.is_miner,
                family=record.family,
                method="signature",
                confidence=1.0,
            )
        try:
            if fastpath.enabled():
                features = fastpath.shared_cache().features(wasm_bytes)
            else:
                features = extract_features(wasm_bytes)
        except WasmDecodeError:
            return Classification(False, "invalid", "none", 0.0)

        if features.has_hash_names():
            return Classification(
                True,
                self._family_from_backends(websocket_urls) or "unknown-miner",
                "name-hint",
                0.9,
                features,
            )

        if self._mix_says_miner(features):
            backend_family = self._family_from_backends(websocket_urls)
            if backend_family is not None:
                return Classification(True, backend_family, "backend", 0.85, features)
            if websocket_urls:
                return Classification(True, "unknown-wss", "instruction-mix", 0.75, features)
            return Classification(True, "unknown-miner", "instruction-mix", 0.6, features)

        return Classification(False, "benign", "instruction-mix", 0.7, features)

    def classify_page(self, wasm_dumps, websocket_urls: tuple = ()) -> list:
        """Classify every Wasm dump of one page visit."""
        return [self.classify_wasm(dump, websocket_urls) for dump in wasm_dumps]

    def page_is_miner(self, wasm_dumps, websocket_urls: tuple = ()) -> Optional[Classification]:
        """The first miner classification on a page, or None."""
        for classification in self.classify_page(wasm_dumps, websocket_urls):
            if classification.is_miner:
                return classification
        return None

    # -- explained classification (evidence provenance) ----------------------------

    def explain_wasm(
        self, wasm_bytes: bytes, websocket_urls: tuple = ()
    ) -> tuple:
        """``(classification, evidence)`` for one module.

        The evidence cites the concrete branch of the cascade that decided:
        the signature-db record (and how many function hashes fed the
        signature), the name hints found, or each instruction-mix feature
        value against the threshold it was tested on.
        """
        classification = self.classify_wasm(wasm_bytes, websocket_urls)
        return classification, self._evidence_for(
            classification, wasm_bytes, websocket_urls
        )

    def explain_page(
        self, wasm_dumps, websocket_urls: tuple = ()
    ) -> tuple:
        """``(first miner classification or None, evidence tuple)``.

        Mirrors :meth:`page_is_miner`: the verdict is the first miner hit,
        and the evidence explains that dump — or, on an all-benign page,
        the first dump's benign decision (so clean pages are explainable
        too).
        """
        first_benign = None
        for dump in wasm_dumps:
            classification, item = self.explain_wasm(dump, websocket_urls)
            if classification.is_miner:
                return classification, (item,)
            if first_benign is None:
                first_benign = (None, (item,))
        return first_benign if first_benign is not None else (None, ())

    def _evidence_for(
        self, classification: Classification, wasm_bytes: bytes, websocket_urls: tuple
    ) -> Evidence:
        verdict = "miner" if classification.is_miner else "benign"
        if classification.method == "signature":
            record = self.database.lookup(wasm_bytes)
            if fastpath.enabled():
                cache = fastpath.shared_cache()
                hashes = len(cache.bodies(wasm_bytes))
                signature = cache.ordered_signature(wasm_bytes)
            else:
                hashes = len(function_body_bytes(wasm_bytes))
                signature = wasm_signature(wasm_bytes)
            return Evidence(
                detector="signature",
                verdict=verdict,
                summary=(
                    f"signature-db record {record.family!r} matched "
                    f"({hashes} function hashes)"
                ),
                details=(
                    ("signature", signature),
                    ("db_family", record.family),
                    ("db_is_miner", str(record.is_miner)),
                    ("db_variant", str(record.variant)),
                    ("function_hashes", str(hashes)),
                ),
            )
        if classification.method == "none":
            return Evidence(
                detector="signature",
                verdict="invalid",
                summary="module did not decode; no classification possible",
                details=(("decodable", "False"),),
            )
        features = classification.features
        if classification.method == "name-hint":
            return Evidence(
                detector="name-hint",
                verdict=verdict,
                summary=(
                    f"function names hint at PoW hashing: "
                    f"{', '.join(features.name_hints[:4])}"
                ),
                details=tuple(
                    ("name_hint", name) for name in features.name_hints[:8]
                ),
            )
        if classification.method == "backend":
            needle, url = self._matched_backend(websocket_urls)
            return Evidence(
                detector="backend",
                verdict=verdict,
                summary=f"WebSocket backend {needle!r} identifies the family",
                details=(
                    ("backend_needle", needle or ""),
                    ("backend_url", url or ""),
                    ("family", classification.family),
                ) + self._threshold_details(features),
            )
        # instruction-mix: cite each feature value against its threshold
        return Evidence(
            detector="instruction-mix",
            verdict=verdict,
            summary=(
                "instruction mix "
                + ("matches" if classification.is_miner else "does not match")
                + " the CryptoNight profile"
            ),
            details=self._threshold_details(features)
            + (("websocket_urls", ",".join(websocket_urls)),),
        )

    def _threshold_details(self, features: WasmFeatures) -> tuple:
        """Each feature value next to the threshold it was tested against."""
        return (
            (
                "bitop_density",
                f"{features.bitop_density:.4f} (>= {self.min_bitop_density} "
                f"{'ok' if features.bitop_density >= self.min_bitop_density else 'FAIL'})",
            ),
            (
                "float_density",
                f"{features.float_density:.4f} (<= {self.max_float_density} "
                f"{'ok' if features.float_density <= self.max_float_density else 'FAIL'})",
            ),
            (
                "memory_pages",
                f"{features.memory_pages} (>= {self.min_memory_pages} "
                f"{'ok' if features.memory_pages >= self.min_memory_pages else 'FAIL'})",
            ),
            (
                "rotate_count",
                f"{features.rotate_count} (>= {self.min_rotate_count} "
                f"{'ok' if features.rotate_count >= self.min_rotate_count else 'FAIL'})",
            ),
        )

    def _matched_backend(self, websocket_urls) -> tuple:
        for url in websocket_urls:
            for needle, _family in KNOWN_BACKENDS:
                if needle in url:
                    return needle, url
        return None, None

    # -- internals -----------------------------------------------------------------

    def _mix_says_miner(self, features: WasmFeatures) -> bool:
        return (
            features.bitop_density >= self.min_bitop_density
            and features.float_density <= self.max_float_density
            and features.memory_pages >= self.min_memory_pages
            and features.rotate_count >= self.min_rotate_count
        )

    @staticmethod
    def _family_from_backends(websocket_urls) -> Optional[str]:
        for url in websocket_urls:
            for needle, family in KNOWN_BACKENDS:
                if needle in url:
                    return family
        return None
