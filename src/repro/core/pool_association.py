"""Blockchain pool association (Section 4.2 of the paper).

The method: join the pool as a miner and request fresh PoW inputs every
500 ms from every endpoint. Cluster inputs by their previous-block pointer.
When the chain advances, compare each clustered input's Merkle root with
the Merkle root of the block actually mined on that parent: a match proves
the block was mined from that pool's template, because the first Merkle
leaf is the pool's own coinbase — "we could never by accident see a Merkle
tree root of another miner in the PoW input".

Classes:

- :class:`PoolObserver` — the polling client (with optional blob
  de-transformation for pools that obfuscate, as Coinhive does).
- :class:`BlockAttributor` — the chain-side matching.
- :class:`NetworkEstimator` — blocks/day → pool share → hash rate → users,
  the arithmetic behind Table 6 and the in-text estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.blockchain.chain import Blockchain
from repro.faults.ledger import FaultLedger
from repro.faults.plan import FaultKind, FaultPlan
from repro.faults.resilience import BreakerPolicy, BreakerRegistry, RetryPolicy
from repro.faults.taxonomy import ErrorClass, classify_reason, is_transient
from repro.obs.profile import NULL_OBS, Obs
from repro.pool.jobs import parse_blob
from repro.pool.server import PoolUnavailable


@dataclass(frozen=True)
class PowObservation:
    """One polled PoW input, parsed."""

    endpoint: str
    seen_at: float
    prev_id: bytes
    merkle_root: bytes
    num_txs: int


@dataclass
class PoolObserver:
    """Polls pool endpoints for PoW inputs and clusters them.

    Parameters
    ----------
    fetch_input:
        ``fetch_input(endpoint, now) -> bytes`` returning the raw job blob
        a miner would receive from that endpoint.
    endpoints:
        Endpoint identifiers to poll (Coinhive: 32).
    poll_interval:
        Seconds between polls per endpoint (paper: 0.5).
    detransform:
        Optional blob de-obfuscation (the reverse-engineered XOR).
    fault_plan:
        Optional chaos plane injecting client-side poll failures, keyed on
        ``(endpoint, poll sequence, attempt)``.
    retry:
        Optional in-tick retry budget: a transient poll failure is retried
        immediately (retries are fast against the 500 ms poll interval).
    breaker:
        Optional per-endpoint circuit breaker; an endpoint that keeps
        failing is skipped until its half-open probe succeeds.
    ledger:
        Optional :class:`~repro.faults.ledger.FaultLedger` receiving the
        injected/observed/recovered accounting.

    A poll that fails terminally is simply a missed observation — the
    association method is a lower bound by construction, and stays correct
    as long as *some* poll per template window succeeds.
    """

    fetch_input: Callable[[str, float], bytes]
    endpoints: list
    poll_interval: float = 0.5
    detransform: Optional[Callable[[bytes], bytes]] = None
    fault_plan: Optional[FaultPlan] = None
    retry: Optional[RetryPolicy] = None
    breaker: Optional[BreakerPolicy] = None
    ledger: Optional[FaultLedger] = None
    #: observability hook — each poll tick is one ``ws-poll`` span
    obs: Obs = field(default=NULL_OBS, repr=False)
    observations: list = field(default_factory=list)
    #: prev_id → {merkle_root, ...}
    clusters: dict = field(default_factory=dict)
    #: (prev_id, endpoint) → {merkle_root, ...}
    per_endpoint_clusters: dict = field(default_factory=dict)
    polls: int = 0
    failures: int = 0
    #: per-endpoint poll sequence numbers (fault keying)
    _poll_seq: dict = field(default_factory=dict)
    _breakers: Optional[BreakerRegistry] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.breaker is not None:
            self._breakers = BreakerRegistry(policy=self.breaker, ledger=self.ledger)

    def poll_once(self, now: float) -> list:
        """Poll every endpoint once; returns new observations."""
        if not self.obs.enabled:
            return self._poll_once(now)
        failures_before = self.failures
        with self.obs.span("ws-poll") as span:
            new = self._poll_once(now)
            span.set_tag("observations", len(new))
        self.obs.inc("poll.ticks")
        self.obs.inc("poll.observations", len(new))
        self.obs.inc("poll.failures", self.failures - failures_before)
        return new

    def _poll_once(self, now: float) -> list:
        new: list[PowObservation] = []
        for endpoint in self.endpoints:
            self.polls += 1
            seq = self._poll_seq.get(endpoint, 0)
            self._poll_seq[endpoint] = seq + 1
            breaker = self._breakers.get(endpoint) if self._breakers is not None else None
            if breaker is not None and not breaker.allow():
                self.failures += 1
                if self.ledger is not None:
                    self.ledger.record_observed(ErrorClass.BREAKER_OPEN)
                continue
            blob, injected, error_class = self._fetch(endpoint, now, seq)
            if blob is None:
                self.failures += 1
                if breaker is not None:
                    breaker.record_failure()
                if self.ledger is not None:
                    self.ledger.settle(injected, recovered=False)
                    self.ledger.record_observed(error_class)
                continue
            if breaker is not None:
                breaker.record_success()
            if self.ledger is not None:
                self.ledger.settle(injected, recovered=True)
            if self.detransform is not None:
                blob = self.detransform(blob)
            try:
                _header, prev_id, _nonce, merkle_root, num_txs = parse_blob(blob)
            except Exception:
                self.failures += 1
                if self.ledger is not None:
                    self.ledger.record_observed(ErrorClass.PROTOCOL)
                continue
            observation = PowObservation(
                endpoint=endpoint,
                seen_at=now,
                prev_id=prev_id,
                merkle_root=merkle_root,
                num_txs=num_txs,
            )
            new.append(observation)
            self.observations.append(observation)
            self.clusters.setdefault(prev_id, set()).add(merkle_root)
            self.per_endpoint_clusters.setdefault((prev_id, endpoint), set()).add(merkle_root)
        return new

    def _fetch(
        self, endpoint: str, now: float, seq: int
    ) -> tuple[Optional[bytes], list, ErrorClass]:
        """One poll under the retry budget.

        Returns ``(blob_or_None, injected fault kinds, terminal class)``.
        Injection counts land in the ledger here; settlement (recovered vs
        unrecovered) happens in :meth:`poll_once` where the poll's fate is
        known.
        """
        attempts = self.retry.max_attempts if self.retry is not None else 1
        injected: list = []
        error_class = ErrorClass.POOL_OUTAGE
        for attempt in range(attempts):
            if attempt > 0 and self.ledger is not None:
                self.ledger.retries += 1
            if self.fault_plan is not None and self.fault_plan.poll_fault(
                endpoint, seq, attempt
            ):
                injected.append(FaultKind.POOL_OUTAGE)
                if self.ledger is not None:
                    self.ledger.record_injection(FaultKind.POOL_OUTAGE)
                error_class = ErrorClass.POOL_OUTAGE
                continue
            try:
                return self.fetch_input(endpoint, now), injected, error_class
            except PoolUnavailable:
                injected.append(FaultKind.POOL_OUTAGE)
                if self.ledger is not None:
                    self.ledger.record_injection(FaultKind.POOL_OUTAGE)
                error_class = ErrorClass.POOL_OUTAGE
                continue
            except Exception as exc:
                error_class = classify_reason(str(exc))
                if not is_transient(error_class):
                    break
        return None, injected, error_class

    def run(self, loop, duration: float) -> None:
        """Poll on the event loop for ``duration`` simulated seconds."""
        end = loop.now + duration

        def tick() -> None:
            self.poll_once(loop.now)
            if loop.now + self.poll_interval <= end:
                loop.call_later(self.poll_interval, tick)

        tick()
        loop.run_until(end)

    # -- the paper's endpoint-count observations ---------------------------------

    def max_inputs_per_endpoint(self) -> int:
        """Paper: "we never obtain more than 8 different PoW inputs"."""
        return max((len(roots) for roots in self.per_endpoint_clusters.values()), default=0)

    def max_inputs_per_block(self) -> int:
        """Paper: "at most 128 different PoW inputs per block" (32 endpoints)."""
        return max((len(roots) for roots in self.clusters.values()), default=0)


@dataclass(frozen=True)
class AttributedBlock:
    """A block proven to originate from the observed pool."""

    height: int
    timestamp: int
    reward_atomic: int
    merkle_root: bytes


@dataclass
class BlockAttributor:
    """Matches observed PoW inputs against blocks on the chain."""

    chain: Blockchain

    def attribute(self, clusters: dict) -> list:
        """All chain blocks whose Merkle root appears in ``clusters``.

        ``clusters`` maps prev-block id → set of observed Merkle roots (as
        built by :class:`PoolObserver`). For each cluster we look up the
        block that extended that parent and compare roots.
        """
        attributed: list[AttributedBlock] = []
        for prev_id, merkle_roots in clusters.items():
            block = self.chain.block_after(prev_id)
            if block is None:
                continue  # parent never got extended on our chain view
            if block.merkle_root() in merkle_roots:
                height = self.chain.height_of(block)
                attributed.append(
                    AttributedBlock(
                        height=height,
                        timestamp=block.header.timestamp,
                        reward_atomic=block.reward(),
                        merkle_root=block.merkle_root(),
                    )
                )
        attributed.sort(key=lambda blk: blk.height)
        return attributed

    def attribute_explained(self, clusters: dict) -> list:
        """``(AttributedBlock, Evidence)`` pairs, sorted by height.

        Each evidence record is the Merkle proof of the attribution: the
        cluster id (the previous-block pointer the PoW inputs were grouped
        on), the matched Merkle root, and the cluster size — "we could
        never by accident see a Merkle tree root of another miner".
        """
        from repro.obs.evidence import Evidence

        explained: list = []
        for prev_id, merkle_roots in clusters.items():
            block = self.chain.block_after(prev_id)
            if block is None:
                continue
            root = block.merkle_root()
            if root in merkle_roots:
                height = self.chain.height_of(block)
                attributed = AttributedBlock(
                    height=height,
                    timestamp=block.header.timestamp,
                    reward_atomic=block.reward(),
                    merkle_root=root,
                )
                evidence = Evidence(
                    detector="pool",
                    verdict="attributed",
                    summary=(
                        f"block {height}: mined Merkle root matches a PoW input "
                        f"observed for cluster {prev_id.hex()[:16]}"
                    ),
                    details=(
                        ("cluster_id", prev_id.hex()),
                        ("prev_block_pointer", prev_id.hex()),
                        ("merkle_root", root.hex()),
                        ("cluster_roots_observed", str(len(merkle_roots))),
                        ("height", str(height)),
                    ),
                )
                explained.append((attributed, evidence))
        explained.sort(key=lambda pair: pair[0].height)
        return explained


@dataclass
class NetworkEstimator:
    """Derives the paper's Section 4.2 quantities.

    All methods are pure arithmetic over attributed-block counts and chain
    difficulty, so they can be unit-tested against the paper's numbers
    (8.5 blocks/day of 720 ⇒ 1.18%; 55.4 G difficulty ⇒ 462 MH/s; ×1.18%
    ⇒ 5.5 MH/s; at 20–100 H/s per client ⇒ 292 K–58 K users).
    """

    block_target_seconds: int = 120

    def blocks_per_day_network(self) -> float:
        return 86400 / self.block_target_seconds

    def pool_share(self, pool_blocks_per_day: float) -> float:
        return pool_blocks_per_day / self.blocks_per_day_network()

    def network_hashrate(self, difficulty: float) -> float:
        return difficulty / self.block_target_seconds

    def pool_hashrate(self, pool_blocks_per_day: float, difficulty: float) -> float:
        return self.pool_share(pool_blocks_per_day) * self.network_hashrate(difficulty)

    def users_required(self, pool_hashrate: float, per_user_rate: float) -> float:
        if per_user_rate <= 0:
            raise ValueError("per-user hash rate must be positive")
        return pool_hashrate / per_user_rate

    def monthly_revenue_usd(
        self, xmr_mined: float, usd_per_xmr: float = 120.0
    ) -> float:
        return xmr_mined * usd_per_xmr
