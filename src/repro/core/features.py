"""Instruction-mix feature extraction.

    "Such features e.g., comprises the number of XOR, shift or load
    operations which we found to be quite distinctive or function name
    hinting at the hash function itself." — Section 3.2

Features summarize a decoded module: per-group instruction counts and
densities, memory footprint (CryptoNight needs a 2 MB scratchpad), and
name hints. The classifier consumes these for modules whose signature is
*not* in the database — new variants of known concepts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.wasm import opcodes
from repro.wasm.decoder import WasmDecodeError, decode_module
from repro.wasm.types import Module

#: Substrings in function/export names that hint at PoW hash functions —
#: CryptoNight's internals (Keccak, AES rounds) and its finalizers
#: (BLAKE, Groestl, JH, Skein).
HASH_NAME_HINTS = (
    "cryptonight", "cn_slow", "cn_hash", "cn_lite", "cn_round",
    "keccak", "blake", "groestl", "skein", "jh_", "aes_round",
    "sha256", "monero", "miner", "mine_",
)


@dataclass(frozen=True)
class WasmFeatures:
    """Feature vector of one module."""

    total_instructions: int
    xor_count: int
    shift_count: int
    rotate_count: int
    load_count: int
    store_count: int
    mul_count: int
    float_count: int
    num_functions: int
    memory_pages: int
    name_hints: tuple = ()

    @property
    def xor_density(self) -> float:
        return self.xor_count / self.total_instructions if self.total_instructions else 0.0

    @property
    def shift_density(self) -> float:
        return self.shift_count / self.total_instructions if self.total_instructions else 0.0

    @property
    def load_density(self) -> float:
        return self.load_count / self.total_instructions if self.total_instructions else 0.0

    @property
    def rotate_density(self) -> float:
        return self.rotate_count / self.total_instructions if self.total_instructions else 0.0

    @property
    def float_density(self) -> float:
        return self.float_count / self.total_instructions if self.total_instructions else 0.0

    @property
    def bitop_density(self) -> float:
        return (self.xor_count + self.shift_count + self.rotate_count) / self.total_instructions if self.total_instructions else 0.0

    def has_hash_names(self) -> bool:
        return bool(self.name_hints)


def extract_features(module_or_bytes) -> WasmFeatures:
    """Extract :class:`WasmFeatures` from a module or raw wasm bytes.

    Raises :class:`~repro.wasm.decoder.WasmDecodeError` on non-wasm bytes.
    """
    if isinstance(module_or_bytes, (bytes, bytearray)):
        module = decode_module(bytes(module_or_bytes))
    elif isinstance(module_or_bytes, Module):
        module = module_or_bytes
    else:
        raise TypeError(f"expected Module or bytes, got {type(module_or_bytes).__name__}")

    counts = {"xor": 0, "shift": 0, "rotate": 0, "load": 0, "store": 0, "mul": 0, "float": 0}
    total = 0
    for instr in module.iter_instructions():
        total += 1
        name = instr.name
        if name in opcodes.XOR_OPS:
            counts["xor"] += 1
        elif name in opcodes.SHIFT_OPS:
            counts["shift"] += 1
        elif name in opcodes.ROTATE_OPS:
            counts["rotate"] += 1
        elif name in opcodes.LOAD_OPS:
            counts["load"] += 1
        elif name in opcodes.STORE_OPS:
            counts["store"] += 1
        elif name in opcodes.MUL_OPS:
            counts["mul"] += 1
        elif name in opcodes.FLOAT_OPS:
            counts["float"] += 1

    hints = []
    for name in module.all_function_names():
        lowered = name.lower()
        for hint in HASH_NAME_HINTS:
            if hint in lowered:
                hints.append(name)
                break

    memory_pages = max((limits.minimum for limits in module.memories), default=0)
    for imp in module.imports:
        if imp.kind == 2:
            memory_pages = max(memory_pages, imp.desc.minimum)

    return WasmFeatures(
        total_instructions=total,
        xor_count=counts["xor"],
        shift_count=counts["shift"],
        rotate_count=counts["rotate"],
        load_count=counts["load"],
        store_count=counts["store"],
        mul_count=counts["mul"],
        float_count=counts["float"],
        num_functions=len(module.codes),
        memory_pages=memory_pages,
        name_hints=tuple(dict.fromkeys(hints)),
    )
