"""Batch/automaton hot paths for the detection cascade.

The reference detectors are deliberately simple — rule-by-rule
``re.search`` loops, a fresh wasm decode per lookup, a full DOM build per
page. At paper scale (138M domains) those loops are the entire wall
clock. This module provides the batched equivalents:

- :class:`CompiledFilterSet` — a whole :class:`~repro.core.nocoin.FilterList`
  compiled into one alternation regex-set (plus an :class:`AhoCorasick`
  literal prefilter), matched once per URL/text instead of O(rules)
  searches, with match indices mapped back to the originating rule so
  evidence provenance (source, line number, matched span, exception
  handling) is unchanged;
- :class:`WasmCache` — a bounded content-hash LRU memoizing module
  decodes, function-body extraction, and the three signature digests,
  shared across a shard (one instance per worker process);
- the module-level ``--fastpath`` switch threaded through the CLI.

Everything here is an *equivalence-preserving* rewrite: for any input,
the fast path must return byte-identical results to the reference path.
``tests/test_fastpath_differential.py`` enforces that with generated
rules, URLs, inline text, and whole campaigns.

Correctness of the combined automaton rests on one observation: a
Python alternation match is found at the leftmost position ``p`` where
*any* alternative matches, taking the first alternative that matches at
``p``. The reference semantics is "first rule in *list order* matching
anywhere". So when alternative ``k`` wins the combined search, no rule
matches before position ``p``; rules ``j < k`` may still match at later
positions, so they are re-checked individually — but when the combined
search finds nothing, no automaton rule matches at all, which settles
the dominant (clean) case with a single C-speed scan.
"""

from __future__ import annotations

import hashlib
import re
from collections import OrderedDict, deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional

from repro.wasm.decoder import WasmDecodeError, decode_module, function_body_bytes

# --------------------------------------------------------------------------
# The switch. Default on; ``--no-fastpath`` selects the reference paths.
# --------------------------------------------------------------------------

_enabled = True


def enabled() -> bool:
    """Whether the optimized paths are active (the ``--fastpath`` flag)."""
    return _enabled


def set_enabled(value: bool) -> None:
    global _enabled
    _enabled = bool(value)


@contextmanager
def configure(value: bool):
    """Temporarily force the fast paths on/off (tests, twin runs)."""
    global _enabled
    previous = _enabled
    _enabled = bool(value)
    try:
        yield
    finally:
        _enabled = previous


# --------------------------------------------------------------------------
# Aho-Corasick literal automaton
# --------------------------------------------------------------------------


class AhoCorasick:
    """Multi-pattern literal matcher (the classic Aho–Corasick automaton).

    Built once over a set of needles; :meth:`occurring` reports which
    needles occur anywhere in a text with a single left-to-right pass,
    independent of needle count. Used as the prefilter that narrows the
    rule-candidate set for plain-pattern (literal) filter rules.
    """

    def __init__(self, needles) -> None:
        self._goto: list = [{}]
        out_sets: list = [set()]
        for needle_id, needle in enumerate(needles):
            node = 0
            for char in needle:
                nxt = self._goto[node].get(char)
                if nxt is None:
                    self._goto.append({})
                    out_sets.append(set())
                    nxt = len(self._goto) - 1
                    self._goto[node][char] = nxt
                node = nxt
            out_sets[node].add(needle_id)
        self._fail = [0] * len(self._goto)
        queue = deque(self._goto[0].values())
        while queue:
            node = queue.popleft()
            for char, nxt in self._goto[node].items():
                queue.append(nxt)
                fail = self._fail[node]
                while fail and char not in self._goto[fail]:
                    fail = self._fail[fail]
                target = self._goto[fail].get(char, 0)
                self._fail[nxt] = target if target != nxt else 0
                out_sets[nxt] |= out_sets[self._fail[nxt]]
        self._out = [frozenset(s) for s in out_sets]

    def occurring(self, text: str) -> set:
        """IDs of every needle occurring in ``text``, in one pass."""
        found: set = set()
        node = 0
        goto, fail, out = self._goto, self._fail, self._out
        for char in text:
            while node and char not in goto[node]:
                node = fail[node]
            node = goto[node].get(char, 0)
            if out[node]:
                found |= out[node]
        return found


# --------------------------------------------------------------------------
# Combined filter-list automaton
# --------------------------------------------------------------------------

#: ``(?`` constructs that are safe to embed in an alternation: they
#: introduce no capturing groups and no pattern-global flags. Anything
#: else (inline flags like ``(?i)``, named groups, conditionals) could
#: change the meaning of *other* alternatives and is kept residual.
_SAFE_PAREN = re.compile(r"\(\?(?![:=!<])")


def _embeddable(source: str, flags: int) -> bool:
    try:
        probe = re.compile(source, flags)
    except re.error:
        return False
    if probe.groups or probe.groupindex:
        return False
    return _SAFE_PAREN.search(source) is None


def _literal_needle(rule) -> Optional[str]:
    """A lowercase literal every URL matching ``rule`` must contain.

    Plain (non-``/regex/``) patterns are literal apart from ``*``
    (wildcard) and ``^`` (separator); the longest literal segment is
    therefore a necessary substring of any match. Returns ``None`` when
    no usable segment exists — such rules are always tested. Restricted
    to ASCII needles: for ASCII subjects, ``needle in url.lower()`` then
    coincides exactly with the matcher's ``re.IGNORECASE`` semantics.
    """
    if rule.regex is not None:
        return None
    segments = [s for s in re.split(r"[*^]", rule.pattern) if s]
    if not segments:
        return None
    needle = max(segments, key=len).lower()
    return needle if needle.isascii() else None


def _needle_index(compiled_rules):
    """Group rule indices under their required needle.

    Returns ``(needles, unfiltered)`` where ``needles`` is a tuple of
    ``(needle, rule_indices)`` pairs and ``unfiltered`` the indices with
    no extractable needle (they are tested on every subject).
    """
    by_needle: dict = {}
    unfiltered = []
    for index, compiled in enumerate(compiled_rules):
        needle = _literal_needle(compiled.rule)
        if needle is None:
            unfiltered.append(index)
        else:
            by_needle.setdefault(needle, []).append(index)
    return (
        tuple((needle, tuple(indices)) for needle, indices in by_needle.items()),
        tuple(unfiltered),
    )


def _combine_alternation(sources, flags):
    """Join regex sources into one named-group alternation.

    Returns ``(combined_pattern_or_None, group_name -> index, residual)``
    where ``residual`` holds indices of sources that could not be embedded
    safely — callers must keep matching those one-by-one.
    """
    residual = []
    safe = []
    for index, source in enumerate(sources):
        if _embeddable(source, flags):
            safe.append((index, source))
        else:
            residual.append(index)
    combined = None
    groups = {}
    if safe:
        alternation = "|".join(f"(?P<r{i}>{src})" for i, src in safe)
        try:
            combined = re.compile(alternation, flags)
            groups = {f"r{i}": i for i, _ in safe}
        except re.error:
            # A source that compiles alone but not embedded: admit
            # alternatives one at a time and residualize the failures.
            admitted = []
            for i, src in safe:
                candidate = admitted + [(i, src)]
                try:
                    re.compile(
                        "|".join(f"(?P<r{j}>{s})" for j, s in candidate), flags
                    )
                except re.error:
                    residual.append(i)
                    continue
                admitted = candidate
            if admitted:
                combined = re.compile(
                    "|".join(f"(?P<r{j}>{s})" for j, s in admitted), flags
                )
                groups = {f"r{j}": j for j, _ in admitted}
            residual.sort()
    return combined, groups, tuple(residual)


class CompiledFilterSet:
    """A whole filter list compiled for one-pass matching.

    Wraps the list's :class:`~repro.core.nocoin.CompiledRule` sequence
    (list order preserved) and answers the same three questions the
    reference loops answer — first URL match, any URL exception, first
    text match — returning ``(compiled_rule, matched_span)`` so the
    caller can build identical :class:`~repro.core.nocoin.FilterMatch`
    evidence.
    """

    def __init__(self, compiled_rules, compiled_exceptions) -> None:
        self._rules = list(compiled_rules)
        self._exceptions = list(compiled_exceptions)

        # URL plane, ASCII subjects (the overwhelming majority): a literal
        # prefilter. Each `needle in url.lower()` test is one C-speed
        # substring scan, and only rules whose needle occurs (plus the
        # needle-less few) pay an individual regex search — for a clean
        # URL that is zero regex work beyond the residue.
        self._url_needles, self._url_unfiltered = _needle_index(self._rules)
        self._exc_needles, self._exc_unfiltered = _needle_index(self._exceptions)

        # Non-ASCII subjects fall back to one combined named-group
        # alternation built from the exact regex source each rule's own
        # matcher compiled from (IGNORECASE on non-ASCII text does not
        # coincide with lowercase containment, so the prefilter is unsound
        # there).
        self._url_combined, self._url_groups, self._url_residual = (
            _combine_alternation(
                [c.matcher.pattern for c in self._rules], re.IGNORECASE
            )
        )
        self._exc_combined, _, exc_residual = _combine_alternation(
            [c.matcher.pattern for c in self._exceptions], re.IGNORECASE
        )
        self._exc_residual = exc_residual

        # Text plane. Domain-anchored rules match text by lowercase
        # substring containment of the pattern's pre-``^`` prefix; all
        # other rules reuse their URL matcher. Two prefilters cover the
        # clean case with one C-speed search each.
        anchor_alternatives = []
        plain_sources = []
        needle_by_rule = {}
        exact_needles = {}  # needle -> id, matched against text.lower()
        ascii_needles = {}  # literal plain rules; sound only for ASCII text
        for index, compiled in enumerate(self._rules):
            rule = compiled.rule
            if rule.regex is None and rule.domain_anchor:
                needle = rule.pattern.split("^")[0].lower()
                anchor_alternatives.append(re.escape(needle))
                if needle:
                    needle_by_rule[index] = ("exact", needle)
                    exact_needles.setdefault(needle, None)
            else:
                plain_sources.append(compiled.matcher.pattern)
                if (
                    rule.regex is None
                    and "*" not in rule.pattern
                    and "^" not in rule.pattern
                ):
                    needle = rule.pattern.lower()
                    if needle.isascii():
                        needle_by_rule[index] = ("ascii", needle)
                        ascii_needles.setdefault(needle, None)
        self._anchor_text_combined = (
            re.compile("|".join(anchor_alternatives)) if anchor_alternatives else None
        )
        self._plain_text_combined, _, plain_residual = _combine_alternation(
            plain_sources, re.IGNORECASE
        )
        # Map plain-plane residual positions back to rule indices.
        plain_rule_indices = [
            i
            for i, c in enumerate(self._rules)
            if not (c.rule.regex is None and c.rule.domain_anchor)
        ]
        self._text_residual = tuple(plain_rule_indices[p] for p in plain_residual)

        all_needles = list(exact_needles) + list(ascii_needles)
        self._needle_ids = {needle: i for i, needle in enumerate(all_needles)}
        self._ascii_gated = frozenset(
            self._needle_ids[n] for n in ascii_needles
        )
        self._rule_needle = {
            index: (self._needle_ids[needle], kind == "ascii")
            for index, (kind, needle) in needle_by_rule.items()
        }
        self._ac = AhoCorasick(all_needles) if all_needles else None

    # -- URL plane ---------------------------------------------------------

    def find_url(self, url: str) -> Optional[tuple]:
        """First rule (list order) matching ``url`` → ``(compiled, span)``.

        Exception rules are *not* consulted here — the caller applies
        them after, exactly like the reference loop does.
        """
        if url.isascii():
            lowered = url.lower()
            candidates = list(self._url_unfiltered)
            for needle, indices in self._url_needles:
                if needle in lowered:
                    candidates.extend(indices)
            if not candidates:
                return None
            candidates.sort()
            for j in candidates:
                span = self._rules[j].find_url(url)
                if span is not None:
                    return self._rules[j], span
            return None
        return self._find_url_combined(url)

    def _find_url_combined(self, url: str) -> Optional[tuple]:
        k = None
        k_span = None
        if self._url_combined is not None:
            found = self._url_combined.search(url)
            if found is not None:
                name = found.lastgroup
                if name is None:  # zero-width winner; locate it explicitly
                    name = next(
                        g for g, v in found.groupdict().items() if v is not None
                    )
                k = self._url_groups[name]
                k_span = found.group(0)
        if k is None:
            # No automaton rule matches anywhere; only residual rules can.
            for j in self._url_residual:
                span = self._rules[j].find_url(url)
                if span is not None:
                    return self._rules[j], span
            return None
        # Rules before the combined winner may match at later positions
        # and take precedence in list order.
        for j in range(k):
            span = self._rules[j].find_url(url)
            if span is not None:
                return self._rules[j], span
        return self._rules[k], k_span

    def any_exception_url(self, url: str) -> bool:
        if url.isascii():
            lowered = url.lower()
            if any(
                self._exceptions[j].matches_url(url)
                for j in self._exc_unfiltered
            ):
                return True
            for needle, indices in self._exc_needles:
                if needle in lowered and any(
                    self._exceptions[j].matches_url(url) for j in indices
                ):
                    return True
            return False
        if self._exc_combined is not None and self._exc_combined.search(url):
            return True
        return any(
            self._exceptions[j].matches_url(url) for j in self._exc_residual
        )

    # -- text plane --------------------------------------------------------

    def find_text(self, text: str) -> Optional[tuple]:
        """First rule (list order) matching inline text → ``(compiled, span)``."""
        lowered = None
        hit = False
        if self._anchor_text_combined is not None:
            lowered = text.lower()
            hit = self._anchor_text_combined.search(lowered) is not None
        if not hit and self._plain_text_combined is not None:
            hit = self._plain_text_combined.search(text) is not None
        if not hit:
            if not self._text_residual:
                return None
            candidates = self._text_residual
        else:
            candidates = self._text_candidates(text, lowered)
        if lowered is None:
            lowered = text.lower()
        for j in candidates:
            compiled = self._rules[j]
            span = compiled.find_text(text, lowered)
            if span is not None:
                return compiled, span
        return None

    def _text_candidates(self, text: str, lowered: Optional[str]):
        """Rule indices worth testing, narrowed by the literal prefilter.

        Anchored-rule needles are checked against ``text.lower()`` — the
        exact containment the rule itself tests, so skipping on absence
        is always sound. Plain literal rules match via ``re.IGNORECASE``
        on the original text, which coincides with lowercase containment
        only for ASCII text; non-ASCII text keeps every candidate.
        """
        if self._ac is None:
            return range(len(self._rules))
        if lowered is None:
            lowered = text.lower()
        present = self._ac.occurring(lowered)
        ascii_ok = text.isascii()
        candidates = []
        for j in range(len(self._rules)):
            gate = self._rule_needle.get(j)
            if gate is None:
                candidates.append(j)
                continue
            needle_id, needs_ascii = gate
            if needle_id in present or (needs_ascii and not ascii_ok):
                candidates.append(j)
        return candidates


# --------------------------------------------------------------------------
# Wasm decode/signature memo cache
# --------------------------------------------------------------------------

DEFAULT_CACHE_CAPACITY = 512


@dataclass
class CacheStats:
    """Hit/miss/eviction tallies with the registry merge law.

    Kept *off* the campaign's :class:`~repro.obs.metrics.MetricsRegistry`
    on purpose: fastpath and reference runs must produce byte-identical
    metrics, so cache telemetry lives beside the cache and merges across
    shards on its own.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def merge(self, other: "CacheStats") -> "CacheStats":
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        return self

    def as_registry(self):
        """The same tallies as ``fastpath.cache.*`` counters."""
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.inc("fastpath.cache.hits", self.hits)
        registry.inc("fastpath.cache.misses", self.misses)
        registry.inc("fastpath.cache.evictions", self.evictions)
        return registry


class WasmCache:
    """Bounded LRU memo for wasm decodes and signature digests.

    Keyed by content (SHA-256 of the raw bytes), so the many sites
    serving the *same* miner module — the paper's central observation —
    share one decode and one set of digests. The content hash doubles as
    the whole-module signature, making that digest free on every lookup.
    Decode failures are cached too: garbage bytes fail fast on re-probe.
    """

    def __init__(self, capacity: int = DEFAULT_CACHE_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: OrderedDict = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def _entry(self, wasm_bytes: bytes) -> tuple:
        digest = hashlib.sha256(wasm_bytes)
        key = digest.digest()
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            return entry, True
        entry = {"whole": digest.hexdigest()}
        self._entries[key] = entry
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return entry, False

    def _field(self, wasm_bytes: bytes, name: str, compute):
        entry, existed = self._entry(wasm_bytes)
        error = entry.get(name + "_error")
        if error is not None:
            self.stats.hits += 1
            raise WasmDecodeError(error)
        if existed and name in entry:
            self.stats.hits += 1
            return entry[name]
        self.stats.misses += 1
        if name not in entry:
            try:
                entry[name] = compute(entry)
            except WasmDecodeError as exc:
                entry[name + "_error"] = str(exc)
                raise
        return entry[name]

    def module(self, wasm_bytes: bytes):
        """Decoded :class:`~repro.wasm.decoder.Module` (memoized)."""
        return self._field(
            wasm_bytes, "module", lambda entry: decode_module(wasm_bytes)
        )

    def bodies(self, wasm_bytes: bytes) -> list:
        """Raw function bodies in module order (memoized)."""
        return self._field(
            wasm_bytes, "bodies", lambda entry: function_body_bytes(wasm_bytes)
        )

    def ordered_signature(self, wasm_bytes: bytes) -> str:
        from repro.core.signatures import digest_bodies

        return self._field(
            wasm_bytes,
            "ordered",
            lambda entry: digest_bodies(self.bodies(wasm_bytes)),
        )

    def unordered_signature(self, wasm_bytes: bytes) -> str:
        from repro.core.signatures import digest_bodies

        return self._field(
            wasm_bytes,
            "unordered",
            lambda entry: digest_bodies(sorted(self.bodies(wasm_bytes))),
        )

    def whole_module_signature(self, wasm_bytes: bytes) -> str:
        return self._field(wasm_bytes, "whole", lambda entry: entry["whole"])

    def features(self, wasm_bytes: bytes):
        from repro.core.features import extract_features

        return self._field(
            wasm_bytes,
            "features",
            lambda entry: extract_features(self.module(wasm_bytes)),
        )


#: One cache per process — in the sharded executors that means one per
#: shard worker, exactly the sharing scope the memo is meant for.
_shared_cache = WasmCache()


def shared_cache() -> WasmCache:
    return _shared_cache


def reset_shared_cache(capacity: int = DEFAULT_CACHE_CAPACITY) -> WasmCache:
    """Fresh shared cache (tests and long-lived services)."""
    global _shared_cache
    _shared_cache = WasmCache(capacity)
    return _shared_cache
