"""The paper's methodological contributions.

- :mod:`repro.core.nocoin` — an Adblock-syntax filter engine plus a bundled
  NoCoin-style list (the baseline detector of Section 3.1).
- :mod:`repro.core.signatures` — Wasm fingerprinting: SHA-256 over function
  bodies combined in strict order, plus the signature database.
- :mod:`repro.core.features` — instruction-mix feature extraction
  (XOR/shift/load counts, function-name hints).
- :mod:`repro.core.classifier` — miner/non-miner classification from
  signatures, features, and WebSocket backends.
- :mod:`repro.core.detector` — the combined page-level detection pipeline
  used in the crawls (NoCoin × Wasm signatures, Table 2).
- :mod:`repro.core.pool_association` — the blockchain pool-association
  methodology of Section 4.2.
"""

from repro.core.nocoin import FilterList, FilterRule, default_nocoin_list
from repro.core.signatures import SignatureDatabase, wasm_signature
from repro.core.features import WasmFeatures, extract_features
from repro.core.classifier import MinerClassifier, Classification
from repro.core.detector import PageDetector, DetectionReport
from repro.core.pool_association import PoolObserver, BlockAttributor

__all__ = [
    "FilterList",
    "FilterRule",
    "default_nocoin_list",
    "SignatureDatabase",
    "wasm_signature",
    "WasmFeatures",
    "extract_features",
    "MinerClassifier",
    "Classification",
    "PageDetector",
    "DetectionReport",
    "PoolObserver",
    "BlockAttributor",
]
