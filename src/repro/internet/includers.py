"""Deterministic third-party script-inclusion edge layer.

Musch et al. observe that real cryptojacking spreads through shared
third-party *includers* — ad networks, plugin CDNs, compromised widget
hosts — whose script tags appear across many otherwise-unrelated sites.
This module seeds a small population of such includer domains and decides,
per site, which includer script URLs appear in that site's landing page.

Every decision is a pure function of ``(seed, dataset, site.domain,
includer.name)`` via :func:`repro.sim.rng.hash_unit`, so the edge set is
identical whether sites are materialized up front, streamed through
``StreamingPopulation``, or rebuilt inside a worker shard — and it never
consumes the shared population RNG, so adding the layer perturbs nothing
else.

Includer script URLs are deliberately *not* registered on the synthetic
web: browsers treat them as harmless unresolvable third-party fetches
(exactly how the crawler sees a dead ad-network tag), and none of the
domains contain NoCoin-listed substrings, so the layer is detection-neutral
by construction — it adds provenance edges, not signal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

from repro.sim.rng import hash_unit
from repro.web.scripts import ScriptTag

#: Opaque syllables for includer host names. Deliberately hyphen-free (the
#: streaming index round-trip treats ``-<digits>.<tld>`` suffixes as site
#: indices) and free of any NoCoin-listed substring.
_SYLLABLES = (
    "zam", "vor", "qel", "lun", "dap", "pim", "nux", "tov",
    "bex", "ryk", "kol", "mis", "jat", "wub", "fen", "gur",
)

#: Host suffixes marking the domain as an infrastructure host. None of
#: these appear in the opaque/categorized site-domain generators, so an
#: includer domain can never collide with a population site domain.
_CAMPAIGN_SUFFIXES = ("cdn", "tags", "static", "push")
_BENIGN_NAMES = ("metrics", "widgets", "fonts")

#: Probability a campaign includer's tag appears on a site of its family.
#: Campaign includers never appear off-campaign: a single stray tag would
#: transitively merge two unrelated campaigns into one component.
CAMPAIGN_RATE = 0.65
#: Probability a benign infrastructure includer appears on any site.
BENIGN_RATE = 0.22

#: Site roles that count as part of a mining campaign for seeding purposes.
_CAMPAIGN_ROLES = frozenset(
    {"miner", "dead-miner", "listed-tag", "cpmstar", "consent-declined"}
)


@dataclass(frozen=True)
class IncluderSpec:
    """One third-party includer domain and its script URL."""

    name: str
    domain: str
    url: str
    #: ``campaign`` includers seed one miner family; ``benign`` includers
    #: are ordinary infrastructure shared across the population.
    kind: str
    family: str = ""


@dataclass(frozen=True)
class IncluderLayer:
    """The seeded inclusion edge layer for one ``(dataset, seed)`` pair."""

    dataset: str
    seed: int
    includers: Tuple[IncluderSpec, ...]

    def rate_for(self, includer: IncluderSpec, site) -> float:
        if includer.kind == "campaign":
            if (
                site.family == includer.family
                and getattr(site, "role", "") in _CAMPAIGN_ROLES
            ):
                return CAMPAIGN_RATE
            return 0.0
        return BENIGN_RATE

    def includers_for(self, site) -> Tuple[IncluderSpec, ...]:
        """The includers whose script tags appear on ``site``.

        Keyed by the site *domain* (not its index or draw order), so the
        same site gets the same includers no matter which code path built
        it.
        """
        chosen = []
        for includer in self.includers:
            draw = hash_unit(
                self.seed, "includer", self.dataset, site.domain, includer.name
            )
            if draw < self.rate_for(includer, site):
                chosen.append(includer)
        return tuple(chosen)

    def tags_for(self, site) -> Tuple[ScriptTag, ...]:
        """The ``<script src=...>`` tags to embed in the site's HTML."""
        return tuple(
            ScriptTag(src=includer.url) for includer in self.includers_for(site)
        )


def _host_body(seed: int, dataset: str, name: str) -> str:
    """Two opaque syllables, a pure function of the includer identity."""
    first = _SYLLABLES[
        int(hash_unit(seed, "includer-host", dataset, name, "a") * len(_SYLLABLES))
    ]
    second = _SYLLABLES[
        int(hash_unit(seed, "includer-host", dataset, name, "b") * len(_SYLLABLES))
    ]
    return first + second


def build_includer_layer(
    dataset: str, seed: int, families: Iterable[str] = ()
) -> IncluderLayer:
    """Seed the includer population for one dataset.

    One campaign includer per miner family (sorted for determinism) plus a
    fixed trio of benign infrastructure includers. Pure function of
    ``(dataset, seed, families)``.
    """
    includers = []
    used: set = set()

    def unique(domain: str, name: str) -> str:
        while domain in used:  # hash collision between includer identities
            domain = f"{_SYLLABLES[len(used) % len(_SYLLABLES)]}{domain}"
        used.add(domain)
        return domain

    for i, family in enumerate(sorted(set(families))):
        name = f"{family}-seeder"
        suffix = _CAMPAIGN_SUFFIXES[i % len(_CAMPAIGN_SUFFIXES)]
        domain = unique(f"{_host_body(seed, dataset, name)}{suffix}.io", name)
        includers.append(
            IncluderSpec(
                name=name,
                domain=domain,
                url=f"https://{domain}/t/loader.js",
                kind="campaign",
                family=family,
            )
        )
    for name in _BENIGN_NAMES:
        domain = unique(f"{_host_body(seed, dataset, name)}{name}.io", name)
        includers.append(
            IncluderSpec(
                name=name,
                domain=domain,
                url=f"https://{domain}/v1/{name}.js",
                kind="benign",
            )
        )
    return IncluderLayer(dataset=dataset, seed=seed, includers=tuple(includers))


def layer_for_spec(spec, seed: int) -> IncluderLayer:
    """The includer layer for a :class:`DatasetSpec`.

    Campaign includers are seeded for the dataset's miner families —
    ``miner_counts`` for Chrome-crawled datasets, ``official_counts`` for
    zgrab-only ones (where listed tags are the only family signal).
    """
    families = spec.miner_counts if spec.chrome_crawl else spec.official_counts
    return build_includer_layer(spec.name, seed, families.keys())
