"""Calibrated website populations per dataset.

The paper's four datasets (Alexa 1M, .com 116M, .net 12M, .org 9M) are
reproduced as seeded populations whose *detectable* composition matches the
paper's measured counts while the non-signal bulk (clean sites) is scaled
down. Calibration targets, per dataset:

========  ======================  =====================================
Dataset   zgrab NoCoin hits        Chrome layer
========  ======================  =====================================
Alexa     710 / 621 (two scans)   993 NoCoin, 737 Wasm miners, 129 both
.com      6676 / 5744             (not Chrome-crawled in the paper)
.net      618 / 553               (not Chrome-crawled in the paper)
.org      473 / 399               978 NoCoin, 1372 Wasm miners, 450 both
========  ======================  =====================================

Site roles:

- ``miner`` — actually mines (Wasm + pool WebSocket). Only a subset uses
  the official third-party script URL (NoCoin-visible); the rest
  self-host or inject dynamically.
- ``dead-miner`` — the Coinhive snippet is present but the Wasm no longer
  loads (dead account): a NoCoin hit without mining (false positive).
- ``cpmstar`` — gaming ad network matched by an overbroad list rule.
- ``consent-declined`` — Authedmine embed whose visitor said no.
- ``benign-wasm`` — games/codecs (the non-miner Wasm of Table 1).
- ``clean`` — nothing of interest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.blockchain.chain import Blockchain
from repro.blockchain.difficulty import DifficultyAdjuster
from repro.blockchain.hashing import FAST_PARAMS
from repro.coinhive.miner_script import CoinhiveMinerKit
from repro.coinhive.service import CoinhiveService, make_token
from repro.internet.deployments import BenignWasmKit, FamilyMinerKit
from repro.internet.domains import DomainGenerator
from repro.sim.rng import RngStream
from repro.wasm.builder import FAMILY_PROFILES, WasmCorpusBuilder
from repro.web.http import Resource, SyntheticWeb
from repro.internet.includers import IncluderLayer, layer_for_spec
from repro.web.scripts import InjectScriptBehavior, ScriptTag, inline_key


@dataclass(frozen=True)
class DatasetSpec:
    """Calibration of one dataset population."""

    name: str
    tld: str
    paper_total_domains: int
    scan_dates: tuple
    chrome_crawl: bool
    #: family → number of actually mining sites (Chrome datasets)
    miner_counts: dict
    #: family → number of miners using the official (listed) script URL
    official_counts: dict
    dead_tag_sites: int
    cpmstar_sites: int
    consent_declined_sites: int
    benign_wasm_sites: int
    clean_sites: int
    #: P(site reachable via TLS) for NoCoin-visible sites
    https_fraction: float
    #: P(miner tag present in static HTML) — rest inject dynamically
    static_fraction: float
    #: P(a scan-1 zgrab hit still present at scan 2)
    scan2_retention: float
    miner_category_weights: dict
    miner_classified_fraction: float
    fp_category_weights: dict
    fp_classified_fraction: float
    #: rank-stratum name → multiplier on the dataset's base signal-role
    #: rates (streaming populations; the paper's Alexa-vs-zone-file split
    #: shows mining under-represented at the very top of the rank order)
    stratum_rate_multipliers: dict = field(default_factory=dict)
    #: rank-stratum name → miner category-weight override for that stratum
    stratum_category_weights: dict = field(default_factory=dict)


ALEXA = DatasetSpec(
    name="alexa",
    tld="com",
    paper_total_domains=950_000,
    scan_dates=("11.01.18", "11.03.18"),
    chrome_crawl=True,
    miner_counts={
        "coinhive": 311, "skencituer": 123, "cryptoloot": 103, "unknown-wss": 56,
        "notgiven688": 46, "authedmine": 30, "wp-monero": 25, "web.stati.bid": 18,
        "freecontent.date": 15, "jsminer": 10,
    },
    official_counts={"coinhive": 85, "cryptoloot": 25, "authedmine": 12, "wp-monero": 7},
    dead_tag_sites=600,
    cpmstar_sites=200,
    consent_declined_sites=64,
    benign_wasm_sites=59,
    clean_sites=1200,
    https_fraction=0.85,
    static_fraction=0.84,
    scan2_retention=0.875,
    miner_category_weights={
        "Pornography": 0.23, "Technology & Telecommunication": 0.10,
        "Filesharing": 0.10, "Educational Site": 0.06,
        "Entertainment & Music": 0.06, "Gaming": 0.05, "Shopping": 0.04,
        "Business": 0.04, "Dynamic Site": 0.03,
    },
    miner_classified_fraction=0.74,
    fp_category_weights={
        "Gaming": 0.16, "Educational Site": 0.11, "Shopping": 0.10,
        "Pornography": 0.07, "Technology & Telecommunication": 0.07,
        "Business": 0.06, "Entertainment & Music": 0.05, "Hosting": 0.03,
    },
    fp_classified_fraction=0.79,
    stratum_rate_multipliers={
        "top1k": 0.25, "top10k": 0.6, "top100k": 1.0, "top1m": 1.3, "tail": 0.9,
    },
    stratum_category_weights={
        "tail": {
            "Pornography": 0.35, "Filesharing": 0.15, "Gaming": 0.08,
            "Technology & Telecommunication": 0.06, "Entertainment & Music": 0.05,
        },
    },
)

ORG = DatasetSpec(
    name="org",
    tld="org",
    paper_total_domains=9_000_000,
    scan_dates=("28.02.18", "09.05.18"),
    chrome_crawl=True,
    miner_counts={
        "coinhive": 711, "cryptoloot": 183, "web.stati.bid": 120,
        "freecontent.date": 108, "notgiven688": 92, "skencituer": 60,
        "unknown-wss": 40, "authedmine": 25, "wp-monero": 20, "jsminer": 13,
    },
    official_counts={"coinhive": 330, "cryptoloot": 80, "authedmine": 22, "wp-monero": 18},
    dead_tag_sites=350,
    cpmstar_sites=120,
    consent_declined_sites=58,
    benign_wasm_sites=119,
    clean_sites=1200,
    https_fraction=0.62,
    static_fraction=0.78,
    scan2_retention=0.844,
    miner_category_weights={
        "Religion": 0.11, "Business": 0.09, "Educational Site": 0.09,
        "Health Site": 0.08, "Technology & Telecommunication": 0.07,
        "Gaming": 0.04, "Pornography": 0.04, "Shopping": 0.03,
    },
    miner_classified_fraction=0.42,
    fp_category_weights={
        "Gaming": 0.27, "Business": 0.08, "Educational Site": 0.06,
        "Pornography": 0.05, "Shopping": 0.04,
        "Technology & Telecommunication": 0.04,
    },
    fp_classified_fraction=0.54,
    stratum_rate_multipliers={
        "top1k": 0.35, "top10k": 0.7, "top100k": 1.0, "top1m": 1.2, "tail": 1.0,
    },
)

COM = DatasetSpec(
    name="com",
    tld="com",
    paper_total_domains=116_000_000,
    scan_dates=("02.03.18", "11.05.18"),
    chrome_crawl=False,
    miner_counts={},
    official_counts={
        "coinhive": 5200, "authedmine": 420, "wp-monero": 330,
        "cryptoloot": 280, "cpmstar": 270, "jsminer": 176,
    },
    dead_tag_sites=0,
    cpmstar_sites=0,
    consent_declined_sites=0,
    benign_wasm_sites=0,
    clean_sites=1500,
    https_fraction=1.0,
    static_fraction=1.0,
    scan2_retention=0.860,
    miner_category_weights={"Business": 0.12, "Shopping": 0.10, "Gaming": 0.10},
    miner_classified_fraction=0.6,
    fp_category_weights={"Gaming": 0.2, "Business": 0.1},
    fp_classified_fraction=0.6,
)

NET = DatasetSpec(
    name="net",
    tld="net",
    paper_total_domains=12_000_000,
    scan_dates=("27.02.18", "08.05.18"),
    chrome_crawl=False,
    miner_counts={},
    official_counts={
        "coinhive": 478, "authedmine": 40, "wp-monero": 32,
        "cryptoloot": 28, "cpmstar": 24, "jsminer": 16,
    },
    dead_tag_sites=0,
    cpmstar_sites=0,
    consent_declined_sites=0,
    benign_wasm_sites=0,
    clean_sites=1200,
    https_fraction=1.0,
    static_fraction=1.0,
    scan2_retention=0.895,
    miner_category_weights={"Technology & Telecommunication": 0.15, "Hosting": 0.1},
    miner_classified_fraction=0.6,
    fp_category_weights={"Gaming": 0.15, "Hosting": 0.1},
    fp_classified_fraction=0.6,
)

DATASETS: dict = {spec.name: spec for spec in (ALEXA, COM, NET, ORG)}

#: Benign wasm family cycle for benign-wasm sites.
_BENIGN_FAMILIES = ("game-engine", "video-codec", "math-lib", "image-filter", "compression")


@dataclass
class SiteSpec:
    """Ground truth for one generated website."""

    domain: str
    role: str
    category: Optional[str] = None
    family: Optional[str] = None
    wasm_variant: int = 0
    https: bool = True
    static_tags: bool = True
    present_scan2: bool = True
    official_url: bool = False
    #: rank stratum the site was drawn in (streaming populations; "" legacy)
    stratum: str = ""
    #: 1-based popularity rank (streaming populations; 0 for legacy builds)
    rank: int = 0


@dataclass
class WebPopulation:
    """A built population: sites registered on a synthetic web."""

    spec: DatasetSpec
    web: SyntheticWeb
    sites: list = field(default_factory=list)
    behavior_registry: dict = field(default_factory=dict)
    coinhive: Optional[CoinhiveService] = None
    scale: float = 1.0
    #: seeded third-party script-inclusion edge layer (None pre-PR-10 runs)
    includer_layer: Optional[IncluderLayer] = None

    def domains(self) -> list:
        return [site.domain for site in self.sites]

    def attach_fault_plan(self, plan) -> "WebPopulation":
        """Install a :class:`~repro.faults.plan.FaultPlan` on every surface
        this population exposes: HTTP/WS transfers and the Coinhive pool.
        ``None`` detaches injection entirely."""
        self.web.fault_plan = plan
        if self.coinhive is not None:
            self.coinhive.pool.fault_plan = plan
        return self

    def ground_truth_miners(self) -> set:
        return {site.domain for site in self.sites if site.role == "miner"}

    def sites_by_role(self, role: str) -> list:
        return [site for site in self.sites if site.role == role]


def _scaled(count: int, scale: float) -> int:
    if count == 0 or scale >= 1.0:
        return int(count * scale) if scale < 1.0 else count
    return max(1, round(count * scale))


def build_population(
    dataset: str = "alexa",
    seed: int = 2018,
    scale: float = 1.0,
    web: Optional[SyntheticWeb] = None,
    coinhive: Optional[CoinhiveService] = None,
    corpus: Optional[WasmCorpusBuilder] = None,
) -> WebPopulation:
    """Generate one dataset population onto a :class:`SyntheticWeb`.

    ``scale`` shrinks every calibrated count proportionally (tests use
    small scales); shares and rates are scale-invariant.
    """
    spec = DATASETS[dataset]
    web = web if web is not None else SyntheticWeb()
    corpus = corpus if corpus is not None else WasmCorpusBuilder()
    rng = RngStream(seed, "population", dataset)
    namer = DomainGenerator(rng.substream("names"))
    population = WebPopulation(
        spec=spec, web=web, scale=scale, includer_layer=layer_for_spec(spec, seed)
    )

    if coinhive is None and spec.chrome_crawl:
        chain = Blockchain(
            pow_params=FAST_PARAMS,
            adjuster=DifficultyAdjuster(window=60, cut=5, initial_difficulty=200_000),
            genesis_timestamp=1_514_764_800,  # 2018-01-01 UTC
        )
        coinhive = CoinhiveService(chain=chain)
    population.coinhive = coinhive

    coinhive_kit = None
    authedmine_kit = None
    family_kits: dict = {}
    benign_kit = BenignWasmKit(web=web, corpus=corpus)
    if coinhive is not None:
        coinhive_kit = CoinhiveMinerKit(service=coinhive, web=web, corpus=corpus)
        coinhive_kit.install()
        authedmine_kit = CoinhiveMinerKit(
            service=coinhive, web=web, corpus=corpus, consent_banner=True
        )
        authedmine_kit.install()

    def family_kit(family: str) -> FamilyMinerKit:
        if family not in family_kits:
            family_kits[family] = FamilyMinerKit(
                family=family, web=web, rng=rng.substream("kit", family), corpus=corpus
            )
        return family_kits[family]

    def miner_tags(site: SiteSpec, token: str) -> list:
        endpoint_index = rng.randint(1, 32)
        if site.family in ("coinhive", "authedmine") and coinhive_kit is not None:
            kit = authedmine_kit if site.family == "authedmine" else coinhive_kit
            if site.official_url:
                return kit.official_tags(token, endpoint_index, wasm_variant=site.wasm_variant)
            return kit.self_hosted_tags(
                token, f"www.{site.domain}", endpoint_index, wasm_variant=site.wasm_variant
            )
        kit = family_kit(site.family)
        return kit.tags(
            token,
            variant=site.wasm_variant,
            self_host=None if site.official_url else f"www.{site.domain}",
            endpoint_index=endpoint_index,
            official_js=site.official_url,
        )

    # ---- role generation -------------------------------------------------------

    def draw_site(role: str, category_weights: dict, classified_fraction: float) -> SiteSpec:
        domain, category = namer.draw(
            spec.tld, category_weights or None, classified_fraction
        )
        return SiteSpec(domain=domain, role=role, category=category)

    # miners (Chrome datasets)
    for family, count in spec.miner_counts.items():
        count = _scaled(count, scale)
        officials = _scaled(spec.official_counts.get(family, 0), scale)
        officials = min(officials, count)
        num_variants = FAMILY_PROFILES[family].num_variants
        for i in range(count):
            site = draw_site("miner", spec.miner_category_weights, spec.miner_classified_fraction)
            site.family = family
            site.wasm_variant = rng.randint(0, num_variants - 1)
            site.official_url = i < officials
            site.https = rng.random() < spec.https_fraction
            site.static_tags = rng.random() < spec.static_fraction
            site.present_scan2 = rng.random() < spec.scan2_retention
            population.sites.append(site)

    # zgrab-only datasets: listed tags without execution semantics
    if not spec.chrome_crawl:
        for family, count in spec.official_counts.items():
            for _ in range(_scaled(count, scale)):
                site = draw_site(
                    "listed-tag", spec.fp_category_weights, spec.fp_classified_fraction
                )
                site.family = family
                site.official_url = True
                site.present_scan2 = rng.random() < spec.scan2_retention
                population.sites.append(site)

    # false-positive roles
    for _ in range(_scaled(spec.dead_tag_sites, scale)):
        site = draw_site("dead-miner", spec.fp_category_weights, spec.fp_classified_fraction)
        site.family = "coinhive"
        site.official_url = True
        site.https = rng.random() < spec.https_fraction
        site.static_tags = rng.random() < spec.static_fraction
        site.present_scan2 = rng.random() < spec.scan2_retention
        population.sites.append(site)
    for _ in range(_scaled(spec.cpmstar_sites, scale)):
        site = draw_site("cpmstar", {"Gaming": 0.9}, 0.9)
        site.family = "cpmstar"
        site.official_url = True
        site.https = rng.random() < spec.https_fraction
        site.static_tags = rng.random() < spec.static_fraction
        site.present_scan2 = rng.random() < spec.scan2_retention
        population.sites.append(site)
    for _ in range(_scaled(spec.consent_declined_sites, scale)):
        site = draw_site(
            "consent-declined", spec.fp_category_weights, spec.fp_classified_fraction
        )
        site.family = "authedmine"
        site.official_url = True
        site.https = rng.random() < spec.https_fraction
        site.static_tags = rng.random() < spec.static_fraction
        site.present_scan2 = rng.random() < spec.scan2_retention
        population.sites.append(site)

    # benign wasm + clean
    for i in range(_scaled(spec.benign_wasm_sites, scale)):
        site = draw_site("benign-wasm", spec.fp_category_weights, spec.fp_classified_fraction)
        site.family = _BENIGN_FAMILIES[i % len(_BENIGN_FAMILIES)]
        site.wasm_variant = rng.randint(0, FAMILY_PROFILES[site.family].num_variants - 1)
        population.sites.append(site)
    for _ in range(_scaled(spec.clean_sites, scale)):
        population.sites.append(
            draw_site("clean", spec.fp_category_weights, spec.fp_classified_fraction)
        )

    rng.shuffle(population.sites)

    # ---- materialize sites on the web -------------------------------------------
    for site in population.sites:
        _materialize(site, spec, population, rng, miner_tags, benign_kit)
    return population


_DEAD_COINHIVE_INLINE = "var miner=new CoinHive.Anonymous('%s');miner.start();"


def _materialize(site: SiteSpec, spec: DatasetSpec, population: WebPopulation, rng: RngStream, miner_tags, benign_kit: BenignWasmKit) -> None:
    """Build the site's HTML and register it (plus behaviours) on the web."""
    web = population.web
    token = make_token(f"{spec.name}/{site.domain}")
    role_tags: list[ScriptTag] = []

    if site.role == "miner":
        role_tags.extend(miner_tags(site, token))
    elif site.role in ("dead-miner", "listed-tag"):
        src_url = {
            "coinhive": "https://coinhive.com/lib/coinhive.min.js",
            "authedmine": "https://authedmine.com/lib/authedmine.min.js",
            "cryptoloot": "https://crypto-loot.com/lib/crypto-loot.min.js",
            "wp-monero": "https://wp-monero-miner.de/js/wp-monero-miner.js",
            "cpmstar": "https://ssl.cpmstar.com/cached/js/cpmstar.js",
            "jsminer": "https://jsminer.example/jsminer.js",
        }.get(site.family or "coinhive", "https://coinhive.com/lib/coinhive.min.js")
        role_tags.append(ScriptTag(src=src_url))
        role_tags.append(ScriptTag(inline=_DEAD_COINHIVE_INLINE % token))
    elif site.role == "cpmstar":
        role_tags.append(ScriptTag(src="https://ssl.cpmstar.com/cached/js/cpmstar.js"))
    elif site.role == "consent-declined":
        from repro.web.scripts import ConsentMinerBehavior

        role_tags.append(ScriptTag(src="https://authedmine.com/lib/authedmine.min.js"))
        role_tags.append(
            ScriptTag(
                inline=f"var m=new CoinHive.Anonymous('{token}');m.askAndStart();",
                # accept_rate 0: the dialog renders, the visitor declines,
                # nothing mines — a NoCoin hit with no Wasm (Table 2 FP)
                behavior=ConsentMinerBehavior(miner=None, accept_rate=0.0),
            )
        )
    elif site.role == "benign-wasm":
        role_tags.extend(benign_kit.tags(site.family, site.wasm_variant, f"www.{site.domain}"))

    # static_tags=False: the role's tags are injected by a first-party loader
    # at runtime, so static HTML (and thus the zgrab/NoCoin pass) never sees
    # them, while the browser's post-execution HTML does.
    if site.static_tags or not role_tags:
        static_tags, dynamic_tags = list(role_tags), []
    else:
        static_tags, dynamic_tags = [], list(role_tags)

    host = f"www.{site.domain}"
    scheme = "https" if site.https else "http"

    # every site gets an ordinary first-party script and body content
    site_js = f"{scheme}://{host}/js/site.js"
    static_tags.append(ScriptTag(src=site_js))
    web.register(site_js, Resource(content=b"/*site*/", content_type="text/javascript"))

    # third-party includer tags: keyed by (seed, dataset, domain) only, so
    # the shared population rng is never consumed here
    if population.includer_layer is not None:
        static_tags.extend(population.includer_layer.tags_for(site))

    if dynamic_tags:
        loader_url = f"{scheme}://{host}/js/loader.js"
        web.register(loader_url, Resource(content=b"/*ldr*/", content_type="text/javascript"))
        population.behavior_registry[loader_url] = _CompositeInjector(
            [InjectScriptBehavior(script=t, delay=0.2 + 0.1 * i) for i, t in enumerate(dynamic_tags)]
        )
        static_tags.append(ScriptTag(src=loader_url))

    html = _render_html(site, static_tags, rng)
    if site.https:
        web.register_page(f"https://{host}/", html.encode("utf-8"))
        web.register(f"http://{host}/", Resource(redirect_to=f"https://{host}/"))
    else:
        web.register_page(f"http://{host}/", html.encode("utf-8"))

    # behaviours of static tags, keyed by src or inline text
    for tag in static_tags:
        if tag.behavior is None:
            continue
        key = tag.src if tag.src else inline_key(tag.inline)
        population.behavior_registry[key] = tag.behavior


class _CompositeInjector:
    """Runs several injectors from one loader script."""

    def __init__(self, injectors) -> None:
        self.injectors = injectors

    def run(self, ctx) -> None:
        for injector in self.injectors:
            injector.run(ctx)


def _render_html(site: SiteSpec, tags, rng: RngStream) -> str:
    from repro.rulespace.categories import BY_NAME

    head_scripts = "".join(tag.to_element().serialize() for tag in tags)
    keywords = ""
    if site.category and site.category in BY_NAME:
        words = BY_NAME[site.category].content_keywords
        keywords = " ".join(words[: 1 + rng.randint(1, len(words) - 1)])
    filler_words = " ".join(
        rng.choice(("welcome", "updates", "news", "about", "community", "home"))
        for _ in range(6)
    )
    return (
        "<!DOCTYPE html><html><head>"
        f"<title>{site.domain}</title>{head_scripts}</head>"
        f"<body><h1>{site.domain}</h1><p>{keywords}</p><p>{filler_words}</p></body></html>"
    )
