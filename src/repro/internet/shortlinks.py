"""The cnhv.co short-link population (Section 4.1).

Calibration targets from the paper:

- 1,709,203 active links as of February 2018 (we default to 1/100 scale),
- one heavy user owns 1/3 of all links; ten users own ~85% (Figure 3),
- most links require ≤1024 hashes (<51 s at 20 H/s); a misconfigured tail
  reaches 10^19 hashes (Figure 4),
- the top-10 creators' links overwhelmingly target streaming/filesharing
  hosts (Table 4: ~89% of their sampled URLs hit just ten domains),
- the remaining users' destinations are categorically diverse, with ~1/3
  unclassifiable (Table 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.coinhive.service import CoinhiveService, make_token
from repro.coinhive.shortlink import ShortLinkService
from repro.internet.distributions import draw_hash_requirement, heavy_user_counts, MISCONFIG_CHOICES, MISCONFIG_WEIGHTS
from repro.internet.domains import DomainGenerator
from repro.rulespace.categories import CATEGORIES
from repro.sim.rng import RngStream

PAPER_TOTAL_LINKS = 1_709_203

#: Destination hosts of the paper's Table 4 with their observed shares
#: within the top-10 creators' samples.
TOP_USER_DESTINATIONS: tuple = (
    ("youtu.be", 0.20),
    ("zippyshare.com", 0.10),
    ("icerbox.com", 0.10),
    ("hq-mirror.de", 0.10),
    ("andyspeedracing.com", 0.10),
    ("ftbucket.info", 0.099),
    ("getcoinfree.com", 0.092),
    ("ul.to", 0.042),
    ("share-online.biz", 0.029),
    ("oboom.com", 0.028),
)
_TOP_DEST_OTHER = 1.0 - sum(w for _, w in TOP_USER_DESTINATIONS)  # ≈11% long tail


@dataclass
class CreatorProfile:
    """One short-link creator (token) with their habits."""

    token: str
    rank: int
    num_links: int
    is_heavy: bool
    #: heavy users pick one preset for nearly all links (the 512-hash spike)
    preferred_hashes: int = 1024


@dataclass
class ShortLinkPopulation:
    """The built population: service plus ground truth."""

    service: ShortLinkService
    creators: list = field(default_factory=list)
    scale: float = 0.01
    seed: int = 2018

    def links_per_token(self) -> dict:
        counts: dict = {}
        for link in self.service.links:
            counts[link.token] = counts.get(link.token, 0) + 1
        return counts

    def top_tokens(self, n: int = 10) -> list:
        counts = self.links_per_token()
        return sorted(counts, key=counts.get, reverse=True)[:n]


def build_shortlink_population(
    seed: int = 2018,
    scale: float = 0.01,
    coinhive: Optional[CoinhiveService] = None,
    service: Optional[ShortLinkService] = None,
) -> ShortLinkPopulation:
    """Generate the calibrated link population.

    ``scale`` multiplies the paper's 1.7M link count. Creators are
    registered as Coinhive users when a service is supplied.
    """
    rng = RngStream(seed, "shortlinks")
    total_links = max(20, int(PAPER_TOTAL_LINKS * scale))
    service = service if service is not None else ShortLinkService()
    namer = DomainGenerator(rng.substream("destnames"))

    counts = heavy_user_counts(
        total_links, rng.substream("counts"), tail_users=max(10, int(3000 * (scale * 100) ** 0.5))
    )
    creators: list[CreatorProfile] = []
    for rank, num_links in enumerate(counts, start=1):
        token = make_token(f"shortlink-user-{rank}")
        is_heavy = rank <= 10
        profile = CreatorProfile(
            token=token,
            rank=rank,
            num_links=num_links,
            is_heavy=is_heavy,
            preferred_hashes=rng.choices((512, 1024, 2048), (0.5, 0.35, 0.15))[0],
        )
        creators.append(profile)
    if coinhive is not None:
        from repro.coinhive.service import CoinhiveUser

        for profile in creators:
            coinhive.users[profile.token] = CoinhiveUser(
                token=profile.token, label=f"shortlink-{profile.rank}", kind="shortlink"
            )

    dest_rng = rng.substream("destinations")
    hash_rng = rng.substream("hashes")

    # pre-built diverse destination pool for non-heavy users (Table 5 mix)
    diverse_pool: list[str] = []
    category_cycle = [c.name for c in CATEGORIES]
    for i in range(max(50, total_links // 20)):
        if dest_rng.random() < 0.34:
            domain = namer.opaque("info")  # unclassifiable third
        else:
            domain, _ = namer.draw(
                dest_rng.choice(("com", "net", "org", "to", "biz")),
                {name: 1.0 for name in category_cycle},
                classified_fraction=1.0,
            )
        diverse_pool.append(f"https://{domain}/page{i}")

    creation_order: list[CreatorProfile] = []
    for profile in creators:
        creation_order.extend([profile] * profile.num_links)
    rng.substream("order").shuffle(creation_order)

    for profile in creation_order:
        if profile.is_heavy:
            target = _heavy_destination(dest_rng)
            # heavy users: one preset for ~90% of links, occasional others
            if hash_rng.random() < 0.9:
                required = profile.preferred_hashes
            else:
                required = draw_hash_requirement(hash_rng)
        else:
            target = dest_rng.choice(diverse_pool)
            required = draw_hash_requirement(hash_rng)
            # the 1e19 links come from many different users (paper):
            if hash_rng.random() < 0.004:
                required = MISCONFIG_CHOICES[
                    hash_rng.choices(range(len(MISCONFIG_CHOICES)), MISCONFIG_WEIGHTS)[0]
                ]
        service.create(profile.token, target, required)

    return ShortLinkPopulation(service=service, creators=creators, scale=scale, seed=seed)


def _heavy_destination(rng: RngStream) -> str:
    """Draw a top-creator destination URL (Table 4 distribution)."""
    roll = rng.random()
    acc = 0.0
    for host, share in TOP_USER_DESTINATIONS:
        acc += share
        if roll < acc:
            return f"https://{host}/item{rng.randint(1, 99999)}"
    # long tail: assorted other mirrors/boards
    return f"https://mirror{rng.randint(1, 400)}.example.net/file{rng.randint(1, 99999)}"
