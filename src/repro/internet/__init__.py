"""Synthetic internet populations.

The paper crawls 138M real domains; we generate seeded populations whose
*distributions* are calibrated to the paper's reported numbers while the
sea of non-mining domains is scaled down (it contributes crawl time, not
signal). See DESIGN.md §2 for the substitution argument and
EXPERIMENTS.md for the calibration targets.

- :mod:`repro.internet.distributions` — power laws, hash-requirement
  mixtures, diurnal/holiday activity models.
- :mod:`repro.internet.domains` — domain-name and zone generation.
- :mod:`repro.internet.population` — website populations per dataset
  (Alexa/.com/.net/.org) with miner deployments wired into a
  :class:`~repro.web.http.SyntheticWeb`.
- :mod:`repro.internet.shortlinks` — the cnhv.co link population
  (creators, hash requirements, destinations).
"""

from repro.internet.domains import DomainGenerator
from repro.internet.population import DatasetSpec, WebPopulation, build_population, DATASETS
from repro.internet.shortlinks import ShortLinkPopulation, build_shortlink_population

__all__ = [
    "DomainGenerator",
    "DatasetSpec",
    "WebPopulation",
    "build_population",
    "DATASETS",
    "ShortLinkPopulation",
    "build_shortlink_population",
]
