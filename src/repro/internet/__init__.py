"""Synthetic internet populations.

The paper crawls 138M real domains; we generate seeded populations whose
*distributions* are calibrated to the paper's reported numbers while the
sea of non-mining domains is scaled down (it contributes crawl time, not
signal). See DESIGN.md §2 for the substitution argument and
EXPERIMENTS.md for the calibration targets.

- :mod:`repro.internet.distributions` — power laws, hash-requirement
  mixtures, diurnal/holiday activity models.
- :mod:`repro.internet.domains` — domain-name and zone generation.
- :mod:`repro.internet.population` — website populations per dataset
  (Alexa/.com/.net/.org) with miner deployments wired into a
  :class:`~repro.web.http.SyntheticWeb`.
- :mod:`repro.internet.streaming` — lazy, index-addressable population
  streams with stratified rank sampling (internet-scale campaigns).
- :mod:`repro.internet.shortlinks` — the cnhv.co link population
  (creators, hash requirements, destinations).
"""

from repro.internet.domains import DomainGenerator, index_of_domain, indexed_domain
from repro.internet.population import DatasetSpec, WebPopulation, build_population, DATASETS
from repro.internet.shortlinks import ShortLinkPopulation, build_shortlink_population
from repro.internet.streaming import (
    RankStratum,
    StreamingPopulation,
    default_strata,
    parse_strata,
)

__all__ = [
    "DomainGenerator",
    "indexed_domain",
    "index_of_domain",
    "DatasetSpec",
    "WebPopulation",
    "build_population",
    "DATASETS",
    "RankStratum",
    "StreamingPopulation",
    "default_strata",
    "parse_strata",
    "ShortLinkPopulation",
    "build_shortlink_population",
]
