"""Domain-name and zone generation.

Names are built from category-flavoured fragments (so the RuleSpace
stand-in can classify a calibrated fraction of them) plus opaque
fragments (the unclassifiable remainder). Generation is seeded and
collision-free within a generator instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.rulespace.categories import CATEGORIES, BY_NAME
from repro.sim.rng import RngStream

_OPAQUE_SYLLABLES = (
    "zor", "vex", "qua", "lyn", "dra", "pix", "nok", "thu", "bel", "ryn",
    "kav", "mox", "jil", "wez", "fyr", "gos", "hap", "cid", "ulm", "eno",
)

_GENERIC_SUFFIXES = ("hub", "zone", "spot", "base", "site", "page", "now", "pro", "one", "go")


@dataclass
class DomainGenerator:
    """Seeded generator of unique domain names."""

    rng: RngStream
    _used: set = field(default_factory=set)

    def _unique(self, base: str, tld: str) -> str:
        candidate = f"{base}.{tld}"
        serial = 1
        while candidate in self._used:
            serial += 1
            candidate = f"{base}{serial}.{tld}"
        self._used.add(candidate)
        return candidate

    def opaque(self, tld: str) -> str:
        """A name with no category signal (RuleSpace gets nothing)."""
        parts = [self.rng.choice(_OPAQUE_SYLLABLES) for _ in range(self.rng.randint(2, 3))]
        return self._unique("".join(parts), tld)

    def categorized(self, category_name: str, tld: str) -> str:
        """A name carrying one of the category's domain fragments."""
        category = BY_NAME[category_name]
        fragment = self.rng.choice(category.domain_fragments)
        filler = self.rng.choice(_OPAQUE_SYLLABLES)
        suffix = self.rng.choice(_GENERIC_SUFFIXES)
        shapes = (
            f"{fragment}{suffix}",
            f"{filler}{fragment}",
            f"{fragment}{filler}",
            f"my{fragment}{suffix}",
        )
        return self._unique(self.rng.choice(shapes), tld)

    def draw(self, tld: str, category_weights: Optional[dict] = None, classified_fraction: float = 0.7) -> tuple:
        """Draw ``(domain, category_or_None)``.

        With probability ``classified_fraction`` the name carries a category
        fragment (drawn from ``category_weights`` or uniformly); otherwise
        it is opaque.
        """
        if self.rng.random() >= classified_fraction:
            return self.opaque(tld), None
        if category_weights:
            names = list(category_weights)
            weights = [category_weights[n] for n in names]
            category_name = self.rng.choices(names, weights)[0]
        else:
            category_name = self.rng.choice([c.name for c in CATEGORIES])
        return self.categorized(category_name, tld), category_name
