"""Domain-name and zone generation.

Names are built from category-flavoured fragments (so the RuleSpace
stand-in can classify a calibrated fraction of them) plus opaque
fragments (the unclassifiable remainder). Generation is seeded and
collision-free within a generator instance.

Two uniqueness schemes coexist:

- :class:`DomainGenerator` (stateful): per-base serial counters reproduce
  the historical "probe a seen-set" sequence in O(#distinct bases) memory
  instead of O(#names).
- :func:`indexed_domain` (stateless): the 0-based site index is embedded
  in the name itself (``base-<index>.tld``), so shards generating disjoint
  index ranges can never collide and site *i*'s name never depends on
  sites ``0..i-1``. :func:`index_of_domain` inverts the encoding.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

from repro.rulespace.categories import CATEGORIES, BY_NAME
from repro.sim.rng import RngStream

_OPAQUE_SYLLABLES = (
    "zor", "vex", "qua", "lyn", "dra", "pix", "nok", "thu", "bel", "ryn",
    "kav", "mox", "jil", "wez", "fyr", "gos", "hap", "cid", "ulm", "eno",
)

_GENERIC_SUFFIXES = ("hub", "zone", "spot", "base", "site", "page", "now", "pro", "one", "go")

#: indexed names carry their decimal site index between a hyphen and the
#: TLD; generator-made names are hyphen-free, so the marker is unambiguous
_INDEXED_RE = re.compile(r"-(\d+)\.[a-z]+$")

def _ambiguous(spelling: str) -> bool:
    """Spellings writable as ``stem+digits`` in more than one way.

    Any cross-base collision must involve a digit-ending base (two
    letter-ending bases plus decimal serials can never spell the same
    string), so exactly the spellings whose digit-stripped stem matches a
    digit-ending base's stem need set-based probing.
    """
    return spelling[-1].isdigit() and spelling.rstrip("0123456789") in _AMBIGUOUS_STEMS


@dataclass
class DomainGenerator:
    """Seeded generator of unique domain names.

    A per-``(base, tld)`` serial counter reproduces exactly the sequence
    the old seen-set probe produced (first draw → ``base.tld``, n-th
    repeat → ``base<n>.tld``) while retaining one integer per distinct
    base instead of every name ever issued. The handful of digit-ending
    bases (:data:`_DIGIT_BASES`) can alias another base's serialized
    spelling, so those spellings alone keep the seen-set semantics via a
    small auxiliary set.
    """

    rng: RngStream
    _base_counts: dict = field(default_factory=dict)
    _ambiguous_taken: set = field(default_factory=set)

    def _unique(self, base: str, tld: str) -> str:
        count = self._base_counts.get((base, tld), 0) + 1
        while True:
            spelling = base if count == 1 else f"{base}{count}"
            if not _ambiguous(spelling) or (spelling, tld) not in self._ambiguous_taken:
                break
            count += 1
        self._base_counts[(base, tld)] = count
        if _ambiguous(spelling):
            self._ambiguous_taken.add((spelling, tld))
        return f"{spelling}.{tld}"

    def opaque(self, tld: str) -> str:
        """A name with no category signal (RuleSpace gets nothing)."""
        parts = [self.rng.choice(_OPAQUE_SYLLABLES) for _ in range(self.rng.randint(2, 3))]
        return self._unique("".join(parts), tld)

    def categorized(self, category_name: str, tld: str) -> str:
        """A name carrying one of the category's domain fragments."""
        return self._unique(_categorized_base(self.rng, category_name), tld)

    def draw(self, tld: str, category_weights: Optional[dict] = None, classified_fraction: float = 0.7) -> tuple:
        """Draw ``(domain, category_or_None)``.

        With probability ``classified_fraction`` the name carries a category
        fragment (drawn from ``category_weights`` or uniformly); otherwise
        it is opaque.
        """
        if self.rng.random() >= classified_fraction:
            return self.opaque(tld), None
        category_name = _draw_category(self.rng, category_weights)
        return self.categorized(category_name, tld), category_name


def _opaque_base(rng: RngStream) -> str:
    return "".join(rng.choice(_OPAQUE_SYLLABLES) for _ in range(rng.randint(2, 3)))


def _categorized_base(rng: RngStream, category_name: str) -> str:
    category = BY_NAME[category_name]
    fragment = rng.choice(category.domain_fragments)
    filler = rng.choice(_OPAQUE_SYLLABLES)
    suffix = rng.choice(_GENERIC_SUFFIXES)
    shapes = (
        f"{fragment}{suffix}",
        f"{filler}{fragment}",
        f"{fragment}{filler}",
        f"my{fragment}{suffix}",
    )
    return rng.choice(shapes)


def _draw_category(rng: RngStream, category_weights: Optional[dict]) -> str:
    if category_weights:
        names = list(category_weights)
        weights = [category_weights[n] for n in names]
        return rng.choices(names, weights)[0]
    return rng.choice([c.name for c in CATEGORIES])


#: the only digit-ending bases the shape tables can produce — the
#: ``filler+fragment`` shape over digit-ending fragments (e.g. "cam4");
#: every other shape and every opaque base ends in a letter
_DIGIT_BASES = frozenset(
    f"{filler}{fragment}"
    for category in CATEGORIES
    for fragment in category.domain_fragments
    if fragment[-1:].isdigit()
    for filler in _OPAQUE_SYLLABLES
)
_AMBIGUOUS_STEMS = frozenset(base.rstrip("0123456789") for base in _DIGIT_BASES)


def indexed_domain(
    rng: RngStream,
    index: int,
    tld: str,
    category_name: Optional[str] = None,
) -> str:
    """A collision-free name for site ``index``, derived in O(1).

    The alphabetic body uses the same shape tables as the stateful
    generator; uniqueness comes from embedding the decimal site index
    after a hyphen instead of probing a seen-set. Digits and hyphens
    cannot start or extend a RuleSpace fragment match, so the suffix
    never changes how a name classifies.
    """
    if index < 0:
        raise ValueError("site index must be >= 0")
    if category_name is None:
        base = _opaque_base(rng)
    else:
        base = _categorized_base(rng, category_name)
    return f"{base}-{index}.{tld}"


def indexed_draw(
    rng: RngStream,
    index: int,
    tld: str,
    category_weights: Optional[dict] = None,
    classified_fraction: float = 0.7,
) -> tuple:
    """``(domain, category_or_None)`` mirror of :meth:`DomainGenerator.draw`
    for index-addressed names."""
    if rng.random() >= classified_fraction:
        return indexed_domain(rng, index, tld), None
    category_name = _draw_category(rng, category_weights)
    return indexed_domain(rng, index, tld, category_name), category_name


def index_of_domain(domain: str) -> Optional[int]:
    """Decode the site index embedded by :func:`indexed_domain`.

    Returns ``None`` for names without the marker (legacy generator names
    contain no hyphens, so they can never false-positive here).
    """
    match = _INDEXED_RE.search(domain)
    if match is None:
        return None
    return int(match.group(1))
