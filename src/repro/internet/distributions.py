"""Distribution models used by the populations.

Three families of distributions recur in the paper:

- **power laws** — short links per token (Figure 3: one user owns 1/3 of
  all links, ten users own 85%),
- **hash-requirement mixtures** — mostly powers of two around 512–1024
  with a far tail up to 10^19 (Figure 4),
- **temporal activity** — block finds spread over the day with holiday
  bumps and outage gaps (Figure 5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.sim.rng import RngStream


def zipf_counts(total: int, num_users: int, alpha: float, rng: RngStream) -> list:
    """Split ``total`` items over ``num_users`` with a Zipf rank law.

    Returns per-rank counts (descending); remainder items land on rank 1.
    """
    if num_users < 1 or total < num_users:
        raise ValueError("need total >= num_users >= 1")
    weights = rng.zipf_rank_weights(num_users, alpha)
    # everyone gets 1; the surplus spreads proportionally, remainder to rank 1
    counts = [1] * num_users
    surplus = total - num_users
    allocated = 0
    for i, weight in enumerate(weights):
        extra = int(surplus * weight)
        counts[i] += extra
        allocated += extra
    counts[0] += surplus - allocated
    return counts


def heavy_user_counts(
    total: int,
    rng: RngStream,
    top1_share: float = 1 / 3,
    top10_share: float = 0.85,
    tail_users: int = 3000,
    tail_alpha: float = 1.25,
) -> list:
    """Link counts per user matching Figure 3's concentration.

    Rank 1 gets ``top1_share`` of all links; ranks 2–10 split
    ``top10_share − top1_share``; the remaining links spread over
    ``tail_users`` with a Zipf tail.
    """
    top1 = int(total * top1_share)
    next9_total = int(total * (top10_share - top1_share))
    next9_weights = rng.zipf_rank_weights(9, 1.1)
    next9 = [max(1, int(next9_total * w)) for w in next9_weights]
    tail_total = total - top1 - sum(next9)
    tail_users = min(tail_users, max(1, tail_total))
    tail = zipf_counts(tail_total, tail_users, tail_alpha, rng) if tail_total >= tail_users else [1] * tail_total
    counts = [top1] + next9 + tail
    # guard: exact total preserved
    counts[0] += total - sum(counts)
    return counts


#: Hash-requirement values and their mixture weights for *typical* users.
#: Powers of two dominate (UI presets); 1024 is the default preset.
TYPICAL_HASH_CHOICES: tuple = (256, 512, 1024, 2048, 4096, 10240, 65536)
TYPICAL_HASH_WEIGHTS: tuple = (0.08, 0.22, 0.38, 0.12, 0.08, 0.07, 0.05)

#: The absurd maximum the paper found on hundreds of links: 10^19 hashes,
#: "several billion years" at browser speed.
MAX_HASHES = 10**19

#: Mid-tail values (misconfigurations, millions of hashes).
MISCONFIG_CHOICES: tuple = (10**6, 10**7, 10**9, 10**12, MAX_HASHES)
MISCONFIG_WEIGHTS: tuple = (0.25, 0.2, 0.15, 0.1, 0.3)


def draw_hash_requirement(rng: RngStream, misconfig_prob: float = 0.035) -> int:
    """One link's required-hash count (typical preset or misconfiguration)."""
    if rng.random() < misconfig_prob:
        return rng.choices(MISCONFIG_CHOICES, MISCONFIG_WEIGHTS)[0]
    return rng.choices(TYPICAL_HASH_CHOICES, TYPICAL_HASH_WEIGHTS)[0]


@dataclass
class DiurnalModel:
    """Hour-of-day activity multipliers plus holiday/outage modulation.

    ``hourly`` has 24 multipliers averaging 1.0. The paper found blocks
    "throughout the whole day" — consistent with a *global* user base, so
    the default profile is nearly flat with a mild evening bump.
    """

    hourly: Sequence[float] = field(
        default_factory=lambda: tuple(
            1.0 + 0.12 * math.sin((h - 14) / 24 * 2 * math.pi) for h in range(24)
        )
    )
    #: UTC dates (year, month, day) with elevated activity and their factor.
    holidays: dict = field(default_factory=dict)
    #: (start_unix, end_unix) windows where activity is zero (outages).
    outages: list = field(default_factory=list)

    def factor(self, unix_time: float) -> float:
        """Activity multiplier at ``unix_time`` (UTC)."""
        for start, end in self.outages:
            if start <= unix_time < end:
                return 0.0
        seconds_of_day = unix_time % 86400
        hour = int(seconds_of_day // 3600) % 24
        factor = self.hourly[hour]
        day_key = _utc_date(unix_time)
        factor *= self.holidays.get(day_key, 1.0)
        return factor


def _utc_date(unix_time: float) -> tuple:
    import datetime as _dt

    dt = _dt.datetime.fromtimestamp(unix_time, tz=_dt.timezone.utc)
    return (dt.year, dt.month, dt.day)


def paper_holiday_calendar() -> dict:
    """The activity bumps the paper explains (Section 4.2, Figure 5).

    30 Apr 2018 (pre-Labor-Day), 10 May (Ascension Day), 21–22 May
    (Pentecost Monday / day after Pentecost) show more mined blocks.
    """
    return {
        (2018, 4, 30): 1.5,
        (2018, 5, 1): 1.3,
        (2018, 5, 10): 1.5,
        (2018, 5, 21): 1.4,
        (2018, 5, 22): 1.4,
    }
