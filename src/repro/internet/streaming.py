"""Lazy, seeded, index-addressable population streams (internet scale).

The paper's headline scan covers the full .com/.net/.org zone files —
138M domains — a regime where *materializing* the site list is the
bottleneck, not crawling it. :class:`StreamingPopulation` removes the
materialization step entirely: site *i* of a dataset is a pure function
of ``(seed, dataset, i)``, which buys

- O(1) population state per campaign shard at any population size,
- shards that derive disjoint index ranges with no shared generator,
- resumed campaigns that re-derive exactly the sites they journaled,
- the same seed meaning the same internet whether streamed or
  materialized, sharded or serial.

Sites are drawn in **rank strata** (top-1k/10k/100k/1M/tail) with
per-stratum signal-role prevalence and category mix — the shape of the
paper's Alexa-vs-zone-file split (Table 2): mining skews away from the
very top of the popularity order. ``sample_per_stratum`` turns a full
scan into a stratified rank sample whose per-stratum hit rates
extrapolate back to the whole population.

Web content comes from a lazy :class:`~repro.web.http.SyntheticWeb`
subclass that materializes one site's resources on first touch and
LRU-evicts them, so per-shard memory is bounded by the cache size, not
the population. :meth:`StreamingPopulation.materialize` builds the
equivalent eager :class:`~repro.internet.population.WebPopulation`
through the *same* per-site registration function, which is what makes
stream == materialized a structural identity; the equivalence suite
(``tests/test_internet_streaming.py``) pins it byte-for-byte.

The streaming plane serves the zgrab (static-HTML) pipeline — the only
one the paper ran at zone scale. Chrome-layer behaviours are not wired
on streamed sites; Chrome experiments stay on
:func:`~repro.internet.population.build_population` scales.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence

from repro.coinhive.miner_script import AUTHEDMINE_JS_URL, OFFICIAL_JS_URL
from repro.coinhive.service import make_token
from repro.internet.domains import index_of_domain, indexed_draw
from repro.internet.population import (
    DATASETS,
    DatasetSpec,
    SiteSpec,
    WebPopulation,
    _BENIGN_FAMILIES,
    _DEAD_COINHIVE_INLINE,
    _render_html,
)
from repro.sim.rng import RngStream
from repro.wasm.builder import FAMILY_PROFILES
from repro.web.http import Resource, SyntheticWeb, split_url
from repro.internet.includers import layer_for_spec
from repro.web.scripts import ScriptTag

#: default rank-bucket upper bounds (1-based, inclusive); ``None`` extends
#: the final bucket to the end of the population
DEFAULT_STRATUM_BOUNDS = (
    ("top1k", 1_000),
    ("top10k", 10_000),
    ("top100k", 100_000),
    ("top1m", 1_000_000),
    ("tail", None),
)

#: fallback popularity-skew multipliers for datasets that do not calibrate
#: their own (``DatasetSpec.stratum_rate_multipliers``)
_DEFAULT_RATE_MULTIPLIERS = {
    "top1k": 0.3,
    "top10k": 0.6,
    "top100k": 1.0,
    "top1m": 1.25,
    "tail": 0.9,
}

#: third-party script URLs for roles carrying a listed (or listed-adjacent)
#: tag — mirrors the legacy ``_materialize`` map
_LISTED_SRC = {
    "coinhive": OFFICIAL_JS_URL,
    "authedmine": AUTHEDMINE_JS_URL,
    "cryptoloot": "https://crypto-loot.com/lib/crypto-loot.min.js",
    "wp-monero": "https://wp-monero-miner.de/js/wp-monero-miner.js",
    "cpmstar": "https://ssl.cpmstar.com/cached/js/cpmstar.js",
    "jsminer": "https://jsminer.example/jsminer.js",
}


@dataclass(frozen=True)
class RankStratum:
    """One rank bucket of a streaming population.

    ``lo``/``hi`` are 1-based ranks, inclusive; ``hi=None`` extends the
    bucket to the end of the population. ``role_rates`` are per-site draw
    probabilities for the signal roles (the remainder draws ``clean``),
    stored as an ordered tuple so the cumulative walk — and therefore
    every derived site — is pinned by the stratum value itself.
    """

    name: str
    lo: int
    hi: Optional[int]
    role_rates: tuple = ()
    miner_category_weights: tuple = ()
    miner_classified_fraction: float = 0.7
    fp_category_weights: tuple = ()
    fp_classified_fraction: float = 0.7

    def contains(self, rank: int) -> bool:
        return rank >= self.lo and (self.hi is None or rank <= self.hi)

    def size_within(self, population_size: int) -> int:
        if self.lo > population_size:
            return 0
        hi = population_size if self.hi is None else min(self.hi, population_size)
        return max(0, hi - self.lo + 1)

    def signal_rate(self) -> float:
        return sum(rate for _, rate in self.role_rates)


def base_role_rates(spec: DatasetSpec) -> tuple:
    """Dataset-level signal-role rates against the paper's zone size."""
    total = spec.paper_total_domains
    rates = []
    miner_total = sum(spec.miner_counts.values())
    if miner_total:
        rates.append(("miner", miner_total / total))
    if not spec.chrome_crawl:
        listed = sum(spec.official_counts.values())
        if listed:
            rates.append(("listed-tag", listed / total))
    for role, count in (
        ("dead-miner", spec.dead_tag_sites),
        ("cpmstar", spec.cpmstar_sites),
        ("consent-declined", spec.consent_declined_sites),
        ("benign-wasm", spec.benign_wasm_sites),
    ):
        if count:
            rates.append((role, count / total))
    return tuple(rates)


def default_strata(spec: DatasetSpec) -> tuple:
    """The dataset's calibrated rank strata (top-1k … tail)."""
    base = base_role_rates(spec)
    strata = []
    lo = 1
    for name, bound in DEFAULT_STRATUM_BOUNDS:
        multiplier = spec.stratum_rate_multipliers.get(
            name, _DEFAULT_RATE_MULTIPLIERS[name]
        )
        category_weights = spec.stratum_category_weights.get(
            name, spec.miner_category_weights
        )
        strata.append(
            RankStratum(
                name=name,
                lo=lo,
                hi=bound,
                role_rates=tuple((role, rate * multiplier) for role, rate in base),
                miner_category_weights=tuple(sorted(category_weights.items())),
                miner_classified_fraction=spec.miner_classified_fraction,
                fp_category_weights=tuple(sorted(spec.fp_category_weights.items())),
                fp_classified_fraction=spec.fp_classified_fraction,
            )
        )
        if bound is None:
            break
        lo = bound + 1
    return tuple(strata)


def parse_strata(text: str, spec: DatasetSpec) -> tuple:
    """Parse a ``--strata`` spec: comma-separated ``name:hi_rank:rate``.

    ``hi_rank`` may be empty on the last entry (unbounded tail); ``rate``
    is the stratum's total signal-role probability, split across the
    dataset's signal roles proportionally to their base composition.
    """
    base = base_role_rates(spec)
    base_total = sum(rate for _, rate in base) or 1.0
    strata = []
    lo = 1
    entries = [entry.strip() for entry in text.split(",") if entry.strip()]
    if not entries:
        raise ValueError("empty --strata spec")
    for position, entry in enumerate(entries):
        parts = entry.split(":")
        if len(parts) != 3:
            raise ValueError(
                f"malformed stratum {entry!r} (want name:hi_rank:signal_rate)"
            )
        name, hi_text, rate_text = parts
        hi = None if hi_text in ("", "-") else int(hi_text)
        if hi is not None and hi < lo:
            raise ValueError(
                f"stratum {name!r} ends at rank {hi} before it starts ({lo})"
            )
        if hi is None and position != len(entries) - 1:
            raise ValueError(f"only the last stratum may be unbounded ({name!r} is not last)")
        scale = float(rate_text) / base_total
        strata.append(
            RankStratum(
                name=name,
                lo=lo,
                hi=hi,
                role_rates=tuple((role, rate * scale) for role, rate in base),
                miner_category_weights=tuple(sorted(spec.miner_category_weights.items())),
                miner_classified_fraction=spec.miner_classified_fraction,
                fp_category_weights=tuple(sorted(spec.fp_category_weights.items())),
                fp_classified_fraction=spec.fp_classified_fraction,
            )
        )
        if hi is not None:
            lo = hi + 1
    return tuple(strata)


def _validated_strata(strata: tuple) -> tuple:
    if not strata:
        raise ValueError("a streaming population needs at least one stratum")
    names = [stratum.name for stratum in strata]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate stratum names: {names}")
    expected_lo = 1
    for stratum in strata:
        if stratum.lo != expected_lo:
            raise ValueError(
                f"stratum {stratum.name!r} starts at rank {stratum.lo}, "
                f"expected {expected_lo} (strata must tile the rank order)"
            )
        if stratum.signal_rate() > 1.0:
            raise ValueError(
                f"stratum {stratum.name!r} signal rates sum past 1.0"
            )
        if stratum.hi is None:
            if stratum is not strata[-1]:
                raise ValueError("only the last stratum may be unbounded")
            break
        expected_lo = stratum.hi + 1
    return strata


class _LazySites(Sequence):
    """Indexable view over a streaming population's sites.

    ``population.sites[i]`` derives site *i* on demand, with a small LRU
    so shard loops that touch a site a few times pay one derivation. This
    is what lets the sharded campaigns run unchanged against a streaming
    population — they only ever do ``len(sites)`` and ``sites[i]``.
    """

    def __init__(self, population: "StreamingPopulation", cache: int = 512) -> None:
        self._population = population
        self._cache_limit = max(1, cache)
        self._cache: OrderedDict = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return self._population.size

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        with self._lock:
            cached = self._cache.get(index)
            if cached is not None:
                self._cache.move_to_end(index)
                return cached
        site = self._population.site(index)
        with self._lock:
            self._cache[index] = site
            while len(self._cache) > self._cache_limit:
                self._cache.popitem(last=False)
        return site


class _StreamWeb(SyntheticWeb):
    """A :class:`SyntheticWeb` that materializes sites on demand.

    Any URL on a ``www.<indexed-domain>`` host triggers registration of
    exactly that site's resources; least-recently-touched sites are
    evicted wholesale (a site's resources live only on its own host, so
    eviction removes exactly its keys). Instances are per-thread — the
    population hands each worker thread its own — so no locking is
    needed on the resource dict.
    """

    def __init__(self, population: "StreamingPopulation", cache_limit: int = 64) -> None:
        super().__init__()
        self._population = population
        self._cache_limit = max(1, cache_limit)
        self._site_keys: OrderedDict = OrderedDict()
        self.fault_plan = population.fault_plan

    def _ensure_site(self, host: str) -> None:
        name = host[4:] if host.startswith("www.") else host
        index = self._population.index_of_domain(name)
        if index is None:
            return
        if index in self._site_keys:
            self._site_keys.move_to_end(index)
            return
        keys, https_host = self._population.register_site(self, index)
        self._site_keys[index] = (tuple(keys), https_host)
        while len(self._site_keys) > self._cache_limit:
            _, (old_keys, old_host) = self._site_keys.popitem(last=False)
            for key in old_keys:
                self.resources.pop(key, None)
            if old_host is not None:
                self.https_hosts.discard(old_host)

    def has_host(self, host: str) -> bool:
        host = host.lower()
        self._ensure_site(host)
        return super().has_host(host)

    def lookup(self, url: str):
        _scheme, host, _path = split_url(url)
        self._ensure_site(host)
        return super().lookup(url)


class StreamingPopulation:
    """An index-addressable population: site *i* ≡ f(seed, dataset, *i*).

    Drop-in for :class:`~repro.internet.population.WebPopulation` on the
    zgrab path: exposes ``spec``/``sites``/``web``/``attach_fault_plan``
    plus the streaming-only hooks the campaign layer discovers via
    ``getattr`` (``shard_plan``, ``checkpoint_identity``, ``strata``,
    ``stratum_sizes``).
    """

    def __init__(
        self,
        dataset: str = "alexa",
        seed: int = 2018,
        size: int = 1_000_000,
        strata: Optional[tuple] = None,
        sample_per_stratum: int = 0,
        site_cache: int = 512,
        web_cache: int = 64,
    ) -> None:
        if size < 0:
            raise ValueError("population size must be >= 0")
        if sample_per_stratum < 0:
            raise ValueError("sample_per_stratum must be >= 0")
        self.spec: DatasetSpec = DATASETS[dataset]
        self.seed = int(seed)
        self.size = int(size)
        self.strata = _validated_strata(
            tuple(strata) if strata is not None else default_strata(self.spec)
        )
        self.sample_per_stratum = int(sample_per_stratum)
        self.scale = 1.0
        self.coinhive = None
        self.behavior_registry: dict = {}
        self.fault_plan = None
        self.includer_layer = layer_for_spec(self.spec, self.seed)
        self.sites = _LazySites(self, cache=site_cache)
        self._web_cache = web_cache
        self._webs = threading.local()
        self._all_webs: list = []
        self._web_lock = threading.Lock()

    # -- identity -----------------------------------------------------------

    def fingerprint_parts(self) -> tuple:
        """Everything that pins which internet this population streams."""
        return (
            "stream",
            self.spec.name,
            self.seed,
            self.size,
            self.strata,
            self.sample_per_stratum,
        )

    def checkpoint_identity(self, indices) -> tuple:
        """Journal-fingerprint material for a shard's index assignment.

        O(1) in the range length for contiguous ranges: the population
        identity plus the bounds pin the same information as the legacy
        per-domain list, because every domain is a pure function of them.
        """
        if isinstance(indices, range):
            bounds: tuple = ("range", indices.start, indices.stop, indices.step)
        else:
            bounds = ("list", tuple(indices))
        return self.fingerprint_parts() + bounds

    # -- per-site derivation ------------------------------------------------

    def _site_rng(self, index: int, *names: str) -> RngStream:
        return RngStream(self.seed, "stream", self.spec.name, str(index), *names)

    def stratum_of_rank(self, rank: int) -> RankStratum:
        for stratum in self.strata:
            if stratum.contains(rank):
                return stratum
        return self.strata[-1]

    def stratum_sizes(self) -> dict:
        return {s.name: s.size_within(self.size) for s in self.strata}

    def site(self, index: int) -> SiteSpec:
        """Derive site ``index`` from scratch — no other site is touched."""
        if not 0 <= index < self.size:
            raise IndexError(f"site index {index} out of range [0, {self.size})")
        rank = index + 1
        stratum = self.stratum_of_rank(rank)
        rng = self._site_rng(index)
        spec = self.spec

        role = "clean"
        role_draw = rng.random()
        cumulative = 0.0
        for candidate, rate in stratum.role_rates:
            cumulative += rate
            if role_draw < cumulative:
                role = candidate
                break

        if role == "miner":
            weights = dict(stratum.miner_category_weights)
            fraction = stratum.miner_classified_fraction
        elif role == "cpmstar":
            weights, fraction = {"Gaming": 0.9}, 0.9
        else:
            weights = dict(stratum.fp_category_weights)
            fraction = stratum.fp_classified_fraction
        domain, category = indexed_draw(rng, index, spec.tld, weights or None, fraction)

        site = SiteSpec(
            domain=domain,
            role=role,
            category=category,
            stratum=stratum.name,
            rank=rank,
        )
        if role == "miner":
            families = tuple(spec.miner_counts) or ("coinhive",)
            counts = tuple(spec.miner_counts.values()) or (1,)
            site.family = rng.choices(families, counts)[0]
            site.wasm_variant = rng.randint(
                0, FAMILY_PROFILES[site.family].num_variants - 1
            )
            official_share = spec.official_counts.get(site.family, 0) / max(
                spec.miner_counts.get(site.family, 1), 1
            )
            site.official_url = rng.random() < official_share
            site.https = rng.random() < spec.https_fraction
            site.static_tags = rng.random() < spec.static_fraction
            site.present_scan2 = rng.random() < spec.scan2_retention
        elif role == "listed-tag":
            families = tuple(spec.official_counts) or ("coinhive",)
            counts = tuple(spec.official_counts.values()) or (1,)
            site.family = rng.choices(families, counts)[0]
            site.official_url = True
            site.present_scan2 = rng.random() < spec.scan2_retention
        elif role in ("dead-miner", "cpmstar", "consent-declined"):
            site.family = {
                "dead-miner": "coinhive",
                "cpmstar": "cpmstar",
                "consent-declined": "authedmine",
            }[role]
            site.official_url = True
            site.https = rng.random() < spec.https_fraction
            site.static_tags = rng.random() < spec.static_fraction
            site.present_scan2 = rng.random() < spec.scan2_retention
        elif role == "benign-wasm":
            site.family = _BENIGN_FAMILIES[index % len(_BENIGN_FAMILIES)]
            site.wasm_variant = rng.randint(
                0, FAMILY_PROFILES[site.family].num_variants - 1
            )
        return site

    def iter_sites(self, indices: Optional[Iterable[int]] = None) -> Iterator[SiteSpec]:
        """Stream sites over ``indices`` (default: the whole population)."""
        source = indices if indices is not None else range(self.size)
        for index in source:
            yield self.site(index)

    def iter_domains(self) -> Iterator[str]:
        for index in range(self.size):
            yield self.site(index).domain

    # -- ground truth -------------------------------------------------------

    def index_of_domain(self, domain: str) -> Optional[int]:
        """Decode and *verify* a streamed domain back to its site index."""
        index = index_of_domain(domain)
        if index is None or not 0 <= index < self.size:
            return None
        return index if self.sites[index].domain == domain else None

    def is_true_miner(self, domain: str) -> bool:
        """O(1) ground-truth membership: decode the index, re-derive."""
        index = self.index_of_domain(domain)
        return index is not None and self.sites[index].role == "miner"

    def ground_truth_miners(self, indices: Optional[Iterable[int]] = None) -> set:
        """Domains of true miners — O(n) in the range, for small scales
        and the equivalence tests. Zone-scale scorecards use
        :meth:`is_true_miner` (O(1) per verdict) instead."""
        miners = set()
        for site in self.iter_sites(indices):
            if site.role == "miner":
                miners.add(site.domain)
        return miners

    def sites_by_role(self, role: str) -> list:
        return [site for site in self.iter_sites() if site.role == role]

    # -- web plane ----------------------------------------------------------

    @property
    def web(self) -> SyntheticWeb:
        """This thread's lazy web (one per worker thread by design)."""
        web = getattr(self._webs, "web", None)
        if web is None:
            web = _StreamWeb(self, cache_limit=self._web_cache)
            self._webs.web = web
            with self._web_lock:
                self._all_webs.append(web)
        return web

    def attach_fault_plan(self, plan) -> "StreamingPopulation":
        self.fault_plan = plan
        with self._web_lock:
            for web in self._all_webs:
                web.fault_plan = plan
        return self

    def register_site(self, web: SyntheticWeb, index: int) -> tuple:
        """Register site ``index``'s first-party resources on ``web``.

        Returns ``(keys, https_host_or_None)`` so the lazy web can evict
        precisely. The same function feeds :meth:`materialize`, which is
        what makes stream == materialized a structural identity. Only the
        static-HTML observables the zgrab pipeline can see are built;
        third-party script URLs appear in the HTML text but are never
        registered (zgrab fetches only the landing page).
        """
        site = self.sites[index]
        token = make_token(f"{self.spec.name}/{site.domain}")
        host = f"www.{site.domain}"
        scheme = "https" if site.https else "http"
        keys = []

        role_tags, own_resources = _role_assets(site, token, host)
        static_tags = list(role_tags) if site.static_tags or not role_tags else []
        for url, resource in own_resources:
            web.register(url, resource)
            keys.append(url)

        site_js = f"{scheme}://{host}/js/site.js"
        static_tags.append(ScriptTag(src=site_js))
        web.register(site_js, Resource(content=b"/*site*/", content_type="text/javascript"))
        keys.append(site_js)

        # third-party includer tags: domain-keyed pure function, so the
        # streamed HTML is byte-identical to the materialized build
        static_tags.extend(self.includer_layer.tags_for(site))

        if role_tags and not site.static_tags:
            # dynamic injection: static HTML shows only the first-party
            # loader, so the zgrab/NoCoin pass sees nothing — same blind
            # spot the legacy builder models
            loader_url = f"{scheme}://{host}/js/loader.js"
            web.register(loader_url, Resource(content=b"/*ldr*/", content_type="text/javascript"))
            keys.append(loader_url)
            static_tags.append(ScriptTag(src=loader_url))

        html = _render_html(site, static_tags, self._site_rng(index, "web"))
        if site.https:
            web.register_page(f"https://{host}/", html.encode("utf-8"))
            web.register(f"http://{host}/", Resource(redirect_to=f"https://{host}/"))
            keys.extend([f"https://{host}/", f"http://{host}/"])
        else:
            web.register_page(f"http://{host}/", html.encode("utf-8"))
            keys.append(f"http://{host}/")
        # self-hosted https assets can mark even an http-only landing host
        # as TLS-capable; evict whatever this site actually added
        https_host = host if host in web.https_hosts else None
        return keys, https_host

    # -- sharding / sampling ------------------------------------------------

    def sample_indices(self) -> list:
        """Deterministic stratified rank sample, sorted ascending.

        Each stratum contributes ``min(sample_per_stratum, |stratum|)``
        uniform ranks from its own substream, so a stratum's sample does
        not depend on the other strata, the shard count, or visit order.
        """
        if self.sample_per_stratum <= 0:
            return []
        chosen: list = []
        for stratum in self.strata:
            count = stratum.size_within(self.size)
            if count == 0:
                continue
            lo_index = stratum.lo - 1
            k = min(self.sample_per_stratum, count)
            rng = RngStream(self.seed, "sample", self.spec.name, stratum.name)
            chosen.extend(sorted(rng.sample(range(lo_index, lo_index + count), k)))
        return chosen

    def scan_indices(self):
        """The index set a campaign covers: the full range, or the sample."""
        if self.sample_per_stratum > 0:
            return self.sample_indices()
        return range(self.size)

    def shard_plan(self, num_shards: int) -> list:
        """Contiguous per-shard slices of :meth:`scan_indices`.

        Contiguity keeps per-shard memory O(1): a shard walks its range
        deriving each site in order. The slices are disjoint and their
        union is exactly ``scan_indices()`` for every shard count —
        pinned by the property suite.
        """
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        indices = self.scan_indices()
        total = len(indices)
        base, extra = divmod(total, num_shards)
        plan = []
        lo = 0
        for shard_id in range(num_shards):
            count = base + (1 if shard_id < extra else 0)
            plan.append(indices[lo : lo + count])
            lo += count
        return plan

    # -- materialization ----------------------------------------------------

    def materialize(self, limit: Optional[int] = None) -> WebPopulation:
        """Build the equivalent eager :class:`WebPopulation`.

        For overlapping-scale equivalence checks and small experiments;
        materializing 10M sites defeats the point. ``limit`` caps the
        build to the first ``limit`` sites of the stream.
        """
        count = self.size if limit is None else min(limit, self.size)
        web = SyntheticWeb()
        web.fault_plan = self.fault_plan
        population = WebPopulation(
            spec=self.spec, web=web, scale=1.0, includer_layer=self.includer_layer
        )
        for index in range(count):
            population.sites.append(self.site(index))
            self.register_site(web, index)
        return population


def _role_assets(site: SiteSpec, token: str, host: str) -> tuple:
    """``(script tags, first-party resources)`` for one streamed site.

    URL and inline shapes mirror the deployment kits exactly, so the
    NoCoin list and the static detector see the same observables on a
    streamed site as on a legacy-built one.
    """
    tags: list = []
    resources: list = []
    if site.role == "miner":
        family = site.family or "coinhive"
        if site.official_url:
            if family in ("coinhive", "authedmine"):
                start = "start" if family == "coinhive" else "askAndStart"
                tags.append(ScriptTag(src=_LISTED_SRC[family]))
                tags.append(
                    ScriptTag(inline=f"var miner=new CoinHive.Anonymous('{token}');miner.{start}();")
                )
            else:
                tags.append(ScriptTag(src=_family_official_js(family)))
                tags.append(ScriptTag(inline=f"startMiner('{token}');"))
        elif family in ("coinhive", "authedmine"):
            js_url = f"https://{host}/assets/app-support.js"
            resources.append(
                (
                    js_url,
                    Resource(
                        content=b"/*bundle*/(function(){var m;})();",
                        content_type="text/javascript",
                    ),
                )
            )
            tags.append(ScriptTag(src=js_url))
            tags.append(ScriptTag(inline=f"window.__rt&&__rt.init('{token[:12]}');"))
        else:
            js_url = f"https://{host}/js/app-{token[:6].lower()}.js"
            resources.append(
                (js_url, Resource(content=b"/*app*/", content_type="text/javascript"))
            )
            tags.append(ScriptTag(src=js_url))
            tags.append(ScriptTag(inline=f"(function(){{init('{token}');}})();"))
    elif site.role in ("dead-miner", "listed-tag"):
        src_url = _LISTED_SRC.get(site.family or "coinhive", _LISTED_SRC["coinhive"])
        tags.append(ScriptTag(src=src_url))
        tags.append(ScriptTag(inline=_DEAD_COINHIVE_INLINE % token))
    elif site.role == "cpmstar":
        tags.append(ScriptTag(src=_LISTED_SRC["cpmstar"]))
    elif site.role == "consent-declined":
        tags.append(ScriptTag(src=_LISTED_SRC["authedmine"]))
        tags.append(
            ScriptTag(inline=f"var m=new CoinHive.Anonymous('{token}');m.askAndStart();")
        )
    elif site.role == "benign-wasm":
        family = site.family or _BENIGN_FAMILIES[0]
        js_url = f"https://{host}/static/{family}-loader.js"
        resources.append(
            (js_url, Resource(content=b"/*loader*/", content_type="text/javascript"))
        )
        tags.append(ScriptTag(src=js_url))
        tags.append(
            ScriptTag(inline=f"loadRuntime('{family}-v{site.wasm_variant}@{host}');")
        )
    return tags, resources


def _family_official_js(family: str) -> str:
    profile = FAMILY_PROFILES[family]
    if profile.backend is None:
        return f"https://{family}/lib/{family.replace('.', '-')}.min.js"
    base_host = (profile.backend % 1).split("://", 1)[1].split("/")[0]
    return f"https://{base_host}/lib/{family.replace('.', '-')}.min.js"
